//! Cross-crate integration tests: the full pipeline from workload
//! trace through the cache hierarchy, shift controller and p-ECC down
//! to MTTF and energy reports.

use hifi_rtm::controller::controller::ShiftPolicy;
use hifi_rtm::core::experiments::{RtVariant, SimSweep, SweepSettings};
use hifi_rtm::core::RtmConfig;
use hifi_rtm::mem::hierarchy::{Hierarchy, LlcChoice};
use hifi_rtm::trace::{TraceGenerator, WorkloadProfile};
use hifi_rtm::util::units::SECONDS_PER_YEAR;

fn quick_settings() -> SweepSettings {
    let mut s = SweepSettings::quick();
    s.accesses = 30_000;
    s
}

#[test]
fn full_pipeline_reproduces_protection_ladder() {
    // One workload, all six racetrack variants, end to end.
    let mut settings = quick_settings();
    settings.workloads = Some(vec!["streamcluster"]);
    let sweep = SimSweep::run_variants(&settings, &RtVariant::ALL);
    let per = &sweep.by_variant["streamcluster"];

    let sdc = |v: RtVariant| per[v.label()].sdc_mttf().as_secs();
    let due = |v: RtVariant| per[v.label()].due_mttf().as_secs();

    // The paper's reliability ladder, Figs. 10 and 11.
    assert!(sdc(RtVariant::Baseline) < 1e-3, "baseline is microseconds");
    assert!(sdc(RtVariant::Sed) > sdc(RtVariant::Baseline) * 1e3);
    assert!(sdc(RtVariant::Secded) > 1000.0 * SECONDS_PER_YEAR);
    assert!(due(RtVariant::Sed) < 1.0);
    assert!(due(RtVariant::Secded) < due(RtVariant::SecdedSafeAdaptive));
    assert!(due(RtVariant::SecdedSafeAdaptive) > 10.0 * SECONDS_PER_YEAR);
    assert!(due(RtVariant::SecdedO) >= due(RtVariant::SecdedSafeAdaptive));
}

#[test]
fn execution_time_ordering_follows_fig16() {
    let p = WorkloadProfile::by_name("ferret").unwrap();
    let n = 400_000;
    let cycles = |choice: LlcChoice| {
        let mut sys = Hierarchy::new(choice);
        sys.run(&mut TraceGenerator::new(p, 99), n).cycles
    };
    let ideal = cycles(LlcChoice::RacetrackIdeal);
    let unprot = cycles(LlcChoice::RacetrackUnprotected);
    let adaptive = cycles(LlcChoice::RacetrackPeccSAdaptive);
    let pecc_o = cycles(LlcChoice::RacetrackPeccO);
    let sram = cycles(LlcChoice::SramBaseline);

    // Shift latency and protection stack in the expected order.
    assert!(ideal <= unprot);
    assert!(unprot <= adaptive);
    assert!(adaptive <= pecc_o);
    // ferret's 64 MB working set thrashes the 4 MB SRAM LLC.
    assert!(
        ideal < sram,
        "big LLC must win on a capacity-sensitive load"
    );
}

#[test]
fn config_builder_to_controller_to_stripe_agree() {
    // The statistical controller and the physical stripe must agree on
    // what a sequence costs and what a code can repair.
    let config = RtmConfig::paper_default().with_policy(ShiftPolicy::Adaptive);
    let mut controller = config.build_controller();
    let mut stripe = config.build_stripe();

    // Plan a 7-step request cold (safest sequence) and apply it
    // physically with one injected +1 error.
    let plan = controller.plan_shift(7, 0);
    assert_eq!(plan.sequence.iter().sum::<u32>(), 7);
    let mut faults = hifi_rtm::track::fault::ScriptedFaultModel::new([
        hifi_rtm::model::shift::ShiftOutcome::Pinned { offset: 1 },
    ]);
    let mut worst = hifi_rtm::pecc::code::Verdict::Clean;
    for &d in &plan.sequence {
        let v = stripe.shift_checked(d as i64, &mut faults, 3);
        if v != hifi_rtm::pecc::code::Verdict::Clean {
            worst = v;
        }
    }
    assert_eq!(worst, hifi_rtm::pecc::code::Verdict::Clean);
    assert!(stripe.is_synchronised());
    assert_eq!(stripe.believed_head(), 7);
}

#[test]
fn energy_composition_is_consistent_across_layers() {
    let p = WorkloadProfile::by_name("vips").unwrap();
    let mut sys = Hierarchy::new(LlcChoice::RacetrackPeccSAdaptive);
    let r = sys.run(&mut TraceGenerator::new(p, 5), 100_000);
    // Activity counters must match the stats the energy model consumed.
    assert_eq!(r.activity.reads, r.llc.cache.reads);
    assert_eq!(r.activity.shift_steps, r.llc.shift_steps);
    assert!(r.activity.pecc_checks > 0);
    // Dynamic < total (leakage is positive), and the system proxy adds
    // DRAM energy on top.
    let dyn_e = r.llc_dynamic_energy().value();
    let tot = r.llc_total_energy().value();
    let sys_e = r.system_energy().value();
    assert!(dyn_e > 0.0 && tot > dyn_e && sys_e > tot);
}

#[test]
fn unprotected_vs_protected_risk_budget() {
    // Same trace, same shifts: protection must not change WHAT shifts
    // happen (head positions are data-driven), only their cost & risk.
    let p = WorkloadProfile::by_name("canneal").unwrap();
    let run = |choice: LlcChoice| {
        let mut sys = Hierarchy::new(choice);
        sys.run(&mut TraceGenerator::new(p, 31), 60_000)
    };
    let unprot = run(LlcChoice::RacetrackUnprotected);
    let adaptive = run(LlcChoice::RacetrackPeccSAdaptive);
    assert_eq!(unprot.llc.shift_steps, adaptive.llc.shift_steps);
    assert_eq!(unprot.llc.cache.misses, adaptive.llc.cache.misses);
    // All risk silent without p-ECC; essentially none with it.
    assert!(unprot.llc.expected_sdcs > 0.0);
    assert_eq!(unprot.llc.expected_dues, 0.0);
    assert!(adaptive.llc.expected_sdcs < unprot.llc.expected_sdcs * 1e-9);
}

#[test]
fn workload_capacity_classes_behave() {
    // Each capacity-sensitive workload must benefit more from the big
    // LLC than each insensitive one (cycle ratio RM-Ideal / SRAM).
    let ratio = |name: &str| {
        let p = WorkloadProfile::by_name(name).unwrap();
        let mut rm = Hierarchy::new(LlcChoice::RacetrackIdeal);
        let mut sram = Hierarchy::new(LlcChoice::SramBaseline);
        let n = 600_000;
        let a = rm.run(&mut TraceGenerator::new(p, 77), n).cycles as f64;
        let b = sram.run(&mut TraceGenerator::new(p, 77), n).cycles as f64;
        a / b
    };
    let sensitive = ratio("freqmine");
    let insensitive = ratio("blackscholes");
    assert!(
        sensitive < insensitive - 0.02,
        "freqmine {sensitive:.3} vs blackscholes {insensitive:.3}"
    );
}
