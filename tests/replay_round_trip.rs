//! Record/replay integration: a recorded trace must reproduce the
//! generator-driven simulation exactly.

use hifi_rtm::mem::hierarchy::{Hierarchy, LlcChoice};
use hifi_rtm::trace::replay::{read_trace, write_trace};
use hifi_rtm::trace::{TraceGenerator, WorkloadProfile};

#[test]
fn recorded_trace_reproduces_simulation_exactly() {
    let profile = WorkloadProfile::by_name("bodytrack").unwrap();
    let n = 50_000;

    // Generator-driven run.
    let mut live = Hierarchy::new(LlcChoice::RacetrackPeccSAdaptive);
    let live_result = live.run(&mut TraceGenerator::new(profile, 77), n);

    // Record the same stream, serialise, deserialise, replay.
    let accesses = TraceGenerator::new(profile, 77).take_vec(n as usize);
    let mut buf = Vec::new();
    write_trace(&mut buf, &accesses).expect("serialise");
    let decoded = read_trace(buf.as_slice()).expect("deserialise");

    let mut replayed = Hierarchy::new(LlcChoice::RacetrackPeccSAdaptive);
    let replay_result = replayed.run_trace(&decoded);

    assert_eq!(live_result.cycles, replay_result.cycles);
    assert_eq!(live_result.llc, replay_result.llc);
    assert_eq!(live_result.dram_accesses, replay_result.dram_accesses);
    assert_eq!(live_result.instructions, replay_result.instructions);
}

#[test]
fn replayed_trace_is_portable_across_llc_choices() {
    // One recorded stream drives every configuration — the comparison
    // methodology Figs. 16-18 rely on.
    let profile = WorkloadProfile::by_name("ferret").unwrap();
    let accesses = TraceGenerator::new(profile, 5).take_vec(30_000);
    let mut cycles = Vec::new();
    for choice in [
        LlcChoice::SramBaseline,
        LlcChoice::RacetrackIdeal,
        LlcChoice::RacetrackPeccO,
    ] {
        let mut sys = Hierarchy::new(choice);
        cycles.push(sys.run_trace(&accesses).cycles);
    }
    // Same instruction stream, different memory systems: the ideal
    // racetrack is never slower than p-ECC-O on identical input.
    assert!(cycles[1] <= cycles[2]);
}
