//! Anchors against the paper's published numbers: every quantitative
//! claim the reproduction is expected to hit, in one place.
//!
//! These are *shape* checks, not exact-digit checks, except where the
//! artifact is a published constant we carry verbatim (Tables 2 and 5).

use hifi_rtm::controller::controller::{ShiftController, ShiftPolicy};
use hifi_rtm::controller::safety::SafetyBudget;
use hifi_rtm::controller::sequence::SequenceTable;
use hifi_rtm::cost::overhead::{ProtectionOverhead, Scheme};
use hifi_rtm::cost::technology::LlcDesign;
use hifi_rtm::model::rates::OutOfStepRates;
use hifi_rtm::model::sts::StsTiming;
use hifi_rtm::pecc::layout::{PeccLayout, ProtectionKind};
use hifi_rtm::track::geometry::StripeGeometry;
use hifi_rtm::util::units::Cycles;

#[test]
fn table2_constants_verbatim() {
    let r = OutOfStepRates::paper_calibration();
    assert_eq!(r.rate(1, 1), 4.55e-5);
    assert_eq!(r.rate(2, 1), 9.95e-5);
    assert_eq!(r.rate(3, 1), 2.07e-4);
    assert_eq!(r.rate(4, 1), 3.76e-4);
    assert_eq!(r.rate(5, 1), 5.94e-4);
    assert_eq!(r.rate(6, 1), 8.43e-4);
    assert_eq!(r.rate(7, 1), 1.10e-3);
    assert_eq!(r.rate(1, 2), 1.37e-21);
    assert_eq!(r.rate(7, 2), 7.57e-15);
}

#[test]
fn sts_latency_anchors() {
    // Section 4.1: 3 cycles for a 1-step shift, 8 for a 7-step shift.
    let t = StsTiming::paper();
    assert_eq!(t.shift_cycles(1), Cycles(3));
    assert_eq!(t.shift_cycles(7), Cycles(8));
}

#[test]
fn section42_pecc_costs() {
    // "In order to correct m-step position errors ... m + 1 extra read
    // ports are needed" and the Fig. 6 example needs 9 code domains.
    let small = StripeGeometry::new(8, 2).unwrap();
    let secded = PeccLayout::new(small, ProtectionKind::SECDED).unwrap();
    assert_eq!(secded.code_domains, 9);
    assert_eq!(secded.extra_read_ports, 2);
    for m in 1..=2u32 {
        let l = PeccLayout::new(small, ProtectionKind::Correcting { m }).unwrap();
        assert_eq!(l.extra_read_ports as u32, m + 1);
        assert_eq!(l.guard_domains as u32, 2 * m);
    }
}

#[test]
fn table5_cell_overhead_anchor() {
    // Table 5 lists 17.6 % for SECDED p-ECC (we compute 17.4 %) and a
    // smaller figure for p-ECC-O.
    let geom = StripeGeometry::paper_default();
    let pecc = PeccLayout::new(geom, ProtectionKind::SECDED).unwrap();
    let got = pecc.storage_overhead();
    assert!((got - 0.176).abs() < 0.01, "cell overhead {got:.3}");
    let published = ProtectionOverhead::table5(Scheme::Pecc);
    assert_eq!(published.cell_area_overhead, Some(0.176));
}

#[test]
fn section52_safe_distance_anchor() {
    // "a 128MB racetrack memory ... up to 83M accesses per second.
    // Thus, the safe distance is set to 3 steps conservatively."
    let budget = SafetyBudget::paper_secded();
    assert_eq!(budget.safe_distance_at(83e6), Some(3));
}

#[test]
fn table3b_full_frontier() {
    // The published frontier rows with their latencies.
    let budget = SafetyBudget::paper_secded();
    let table = SequenceTable::build(&budget, &StsTiming::paper(), 7, 7);
    let lat = |seq: &[u32]| {
        table
            .options(7)
            .iter()
            .find(|o| o.sequence == seq)
            .map(|o| o.latency.count())
    };
    assert_eq!(lat(&[7]), Some(9));
    assert_eq!(lat(&[4, 3]), Some(13));
    assert_eq!(lat(&[3, 2, 2]), Some(16));
    assert_eq!(lat(&[2, 2, 2, 1]), Some(19));
    assert_eq!(lat(&[2, 2, 1, 1, 1]), Some(22));
    assert_eq!(lat(&[2, 1, 1, 1, 1, 1]), Some(25));
    assert_eq!(lat(&[1, 1, 1, 1, 1, 1, 1]), Some(28));
}

#[test]
fn section424_pecc_o_latency_comparison() {
    // "the latency for a single 7-step shift is 9 cycles, compared to
    // 28 cycles for 7 times 1-step shift operations."
    let mut single = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
    let mut stepped = ShiftController::new(ProtectionKind::SECDED_O, ShiftPolicy::StepByStep);
    assert_eq!(single.plan_shift(7, 0).latency, Cycles(9));
    assert_eq!(stepped.plan_shift(7, 0).latency, Cycles(28));
}

#[test]
fn table4_constants() {
    let rm = LlcDesign::racetrack();
    assert_eq!(rm.capacity_bytes, 128 << 20);
    assert_eq!(rm.read_cycles, 24);
    assert_eq!(rm.shift_cycles_per_step, 4);
    assert!((rm.shift_energy_per_step.as_nanojoules() - 1.331).abs() < 1e-12);
    let sram = LlcDesign::sram();
    assert!((sram.leakage.value() - 2673.5).abs() < 1e-9);
}

#[test]
fn fig1_required_rate_anchor() {
    // "the position error rate needs to be at least lower than 1e-19 to
    // satisfy a requirement of 10-year MTTF."
    let rate = hifi_rtm::reliability::figure1::required_rate(
        hifi_rtm::util::units::Seconds::from_years(10.0),
    );
    assert!((1e-20..1e-18).contains(&rate), "rate {rate:.2e}");
}

#[test]
fn section32_becc_failure_argument() {
    // The paper's Section 3.2: with 8-bit stripes and refresh-based
    // correction, a second position error during the thousands-of-shift
    // correction process is likely (~0.17 for their example), so b-ECC
    // cannot maintain reliability. Reconstruct the scale of that claim:
    // ~512 stripes x ~8 shifts each during refresh at ~1e-4..1e-3 per
    // shift lands the double-error probability in the tens of percent.
    let rates = OutOfStepRates::paper_calibration();
    let per_shift = rates.any_error_rate(4);
    let shifts_during_refresh = 512.0 * 8.0;
    let p_second = rtm_util_any_of_n(per_shift, shifts_during_refresh);
    assert!(
        (0.05..0.9).contains(&p_second),
        "second-error probability {p_second:.3}"
    );
}

fn rtm_util_any_of_n(p: f64, n: f64) -> f64 {
    hifi_rtm::util::math::any_of_n(p, n)
}
