//! Cross-validation: the statistical racetrack LLC and the bit-level
//! physical cache must agree on head-position arithmetic and shift
//! accounting for the same access pattern.

use hifi_rtm::mem::cache::{AccessKind, Cache};
use hifi_rtm::mem::physical::PhysicalCache;
use hifi_rtm::pecc::layout::ProtectionKind;
use hifi_rtm::track::bit::Bit;
use hifi_rtm::track::fault::IdealFaultModel;
use hifi_rtm::util::rng::SmallRng64;

#[test]
fn physical_movement_matches_analytic_head_model() {
    // Drive the physical cache and, in parallel, a purely analytic
    // shadow model (same replacement state, head positions computed
    // from the geometry). Every per-access physical shift distance must
    // equal the analytic prediction — the arithmetic the statistical
    // LLC is built on.
    let mut physical = PhysicalCache::new(
        64 * 64, // 64 lines = one group
        16,
        ProtectionKind::SECDED,
        8,
        Box::new(IdealFaultModel),
    );
    let geometry = *physical.geometry();
    let mut shadow_cache = Cache::new(64 * 64, 16, 64);
    let mut shadow_head: u64 = 0;

    let mut rng = SmallRng64::new(2015);
    for i in 0..500 {
        let line = rng.next_below(64);
        let addr = line * 64;
        let (pr, _) = physical.access(addr, AccessKind::Read, None);

        // Shadow prediction.
        let set = shadow_cache.set_of(addr);
        let r = shadow_cache.access(addr, AccessKind::Read);
        let line_index = set * 16 + r.way() as u64;
        let domain = (line_index % geometry.data_len() as u64) as usize;
        let target = geometry.head_position_for(domain) as u64;
        let predicted = shadow_head.abs_diff(target);
        shadow_head = target;

        assert_eq!(
            pr.shift_steps, predicted,
            "access {i} (line {line}): physical {} vs analytic {}",
            pr.shift_steps, predicted
        );
    }
}

#[test]
fn physical_data_integrity_under_calibrated_faults() {
    // Drive the physical cache with the real (tiny) error rates long
    // enough to cross a few thousand shifts: SECDED must keep every
    // line's data intact (±1 slips repaired; ±2 at these rates are
    // ~1e-17 per run and will never fire).
    let faults = hifi_rtm::track::fault::CalibratedFaultModel::paper(7);
    let mut c = PhysicalCache::new(64 * 64, 16, ProtectionKind::SECDED, 8, Box::new(faults));
    let pattern = |line: u64| -> Vec<Bit> {
        (0..8)
            .map(|i| Bit::from((line >> (i % 6)) & 1 == 1))
            .collect()
    };
    for line in 0..64u64 {
        c.access(line * 64, AccessKind::Write, Some(&pattern(line)));
    }
    let mut rng = SmallRng64::new(3);
    for _ in 0..500 {
        let line = rng.next_below(64);
        let (_, data) = c.access(line * 64, AccessKind::Read, None);
        assert_eq!(data.unwrap(), pattern(line), "line {line}");
    }
    assert_eq!(c.dues(), 0);
    assert!(c.shift_steps() > 1000, "the test must actually shift");
}
