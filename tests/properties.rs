//! Property-based tests over the core invariants, spanning crates.

use hifi_rtm::controller::safety::SafetyBudget;
use hifi_rtm::controller::sequence::SequenceTable;
use hifi_rtm::mem::cache::{AccessKind, Cache};
use hifi_rtm::model::rates::{mttf_for_error_rate, OutOfStepRates};
use hifi_rtm::model::shift::ShiftOutcome;
use hifi_rtm::model::sts::StsTiming;
use hifi_rtm::pecc::code::{PeccCode, Verdict};
use hifi_rtm::pecc::layout::ProtectionKind;
use hifi_rtm::pecc::protected::ProtectedStripe;
use hifi_rtm::track::bit::Bit;
use hifi_rtm::track::fault::ScriptedFaultModel;
use hifi_rtm::track::geometry::StripeGeometry;
use hifi_rtm::track::stripe::SegmentedStripe;
use proptest::prelude::*;

proptest! {
    /// Error-free shifting is reversible for any data pattern and any
    /// in-range seek schedule: the stripe's data region is preserved.
    #[test]
    fn prop_error_free_seeks_preserve_data(
        data in proptest::collection::vec(any::<bool>(), 64),
        seeks in proptest::collection::vec(0usize..8, 1..20),
    ) {
        let geometry = StripeGeometry::paper_default();
        let bits: Vec<Bit> = data.iter().copied().map(Bit::from).collect();
        let mut stripe = SegmentedStripe::with_data(geometry, &bits);
        for &s in &seeks {
            stripe.seek(s).unwrap();
        }
        prop_assert_eq!(stripe.read_all().unwrap(), bits);
    }

    /// For every strength m and every offset |e| <= m, the code
    /// corrects exactly e; |e| = m+1 is flagged uncorrectable.
    #[test]
    fn prop_code_corrects_to_strength(m in 0u32..6, e in -7i32..=7) {
        let code = PeccCode::new(m);
        let verdict = code.classify_offset(e);
        if e == 0 {
            prop_assert_eq!(verdict, Verdict::Clean);
        } else if e.unsigned_abs() <= m {
            prop_assert_eq!(verdict, Verdict::Correctable(e));
        } else if e.unsigned_abs() == m + 1 {
            prop_assert_eq!(verdict, Verdict::Uncorrectable);
        }
        // Beyond m+1 the verdict may alias, but it must never claim a
        // correction larger than the strength.
        if let Verdict::Correctable(k) = verdict {
            prop_assert!(k.unsigned_abs() <= m);
        }
    }

    /// The physical stripe and the phase arithmetic always agree: an
    /// injected offset e is decoded exactly as classify_offset says,
    /// from any starting head position reachable without data loss.
    #[test]
    fn prop_physical_decode_matches_classification(
        start in 0usize..8,
        delta in 1i64..=3,
        e in -2i32..=2,
    ) {
        let geometry = StripeGeometry::paper_default();
        let mut stripe = ProtectedStripe::new(geometry, ProtectionKind::SECDED).unwrap();
        let mut ideal = hifi_rtm::track::fault::IdealFaultModel;
        stripe.seek_checked(start, &mut ideal);
        // Keep the faulty shift inside the head range.
        let delta = if start as i64 + delta > 7 { -delta } else { delta };
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: e }]);
        stripe.shift(delta, &mut faults);
        // The fault model expresses the offset in the direction of
        // travel; the decoder reports it in absolute head coordinates.
        let absolute = delta.signum() as i32 * e;
        let code = PeccCode::secded();
        prop_assert_eq!(stripe.check(), code.classify_offset(absolute));
    }

    /// Every safe sequence covers its distance, respects the part cap,
    /// and meets its own interval threshold's risk bound.
    #[test]
    fn prop_sequences_cover_and_bound(distance in 1u32..=7, interval in 0u64..10_000) {
        let budget = SafetyBudget::paper_secded();
        let table = SequenceTable::build(&budget, &StsTiming::paper(), 7, 7);
        let opt = table.select(distance, interval);
        prop_assert_eq!(opt.sequence.iter().sum::<u32>(), distance);
        prop_assert!(opt.sequence.iter().all(|&p| (1..=7).contains(&p)));
        // Risk equals the sum of per-part residuals.
        let direct: f64 = opt.sequence.iter().map(|&d| budget.residual_rate(d)).sum();
        prop_assert!((opt.risk - direct).abs() <= direct * 1e-12);
        // The safest option is never riskier than the selected one.
        prop_assert!(table.safest(distance).risk <= opt.risk * (1.0 + 1e-12));
    }

    /// Cache conservation: hits + misses == accesses, writebacks never
    /// exceed misses, and re-access of the most recent line always hits.
    #[test]
    fn prop_cache_conservation(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..300)) {
        let mut cache = Cache::new(16 << 10, 4, 64);
        for (i, &a) in addrs.iter().enumerate() {
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            cache.access(a, kind);
        }
        let s = *cache.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        prop_assert!(s.writebacks <= s.misses);
        // MRU property.
        let last = *addrs.last().unwrap();
        prop_assert!(cache.access(last, AccessKind::Read).is_hit());
    }

    /// MTTF is monotone: more error rate or more intensity never helps.
    #[test]
    fn prop_mttf_monotone(
        rate_exp in -24.0f64..-2.0,
        intensity_exp in 3.0f64..11.0,
        bump in 1.1f64..10.0,
    ) {
        let rate = 10f64.powf(rate_exp);
        let intensity = 10f64.powf(intensity_exp);
        let base = mttf_for_error_rate(rate, intensity).as_secs();
        prop_assert!(mttf_for_error_rate(rate * bump, intensity).as_secs() < base);
        prop_assert!(mttf_for_error_rate(rate, intensity * bump).as_secs() < base);
    }

    /// Rate-table sanity for every distance/k in (extrapolated) range:
    /// probabilities are in [0, 1], monotone in distance, and decay
    /// catastrophically in k.
    #[test]
    fn prop_rate_table_sanity(d in 1u32..=15, k in 1u32..=4) {
        let rates = OutOfStepRates::paper_calibration();
        let r = rates.rate(d, k);
        prop_assert!((0.0..=1.0).contains(&r));
        if d < 15 {
            prop_assert!(rates.rate(d + 1, k) >= r);
        }
        if k < 4 && r > 0.0 {
            prop_assert!(rates.rate(d, k + 1) < r);
        }
    }

    /// Bit packing round-trips for arbitrary lengths.
    #[test]
    fn prop_bit_pack_round_trip(data in proptest::collection::vec(any::<bool>(), 0..130)) {
        let bits: Vec<Bit> = data.iter().copied().map(Bit::from).collect();
        let bytes = Bit::pack(&bits);
        prop_assert_eq!(Bit::unpack(&bytes, bits.len()), bits);
    }

    /// STS latency formula: cycles are positive, monotone in distance,
    /// and amortisation holds at scale (doubling the distance never
    /// doubles the cost; per-step cost is bounded by the 1-step cost).
    /// Exact per-step monotonicity is broken by ceil() quantisation at
    /// a few boundaries, so the property compares across octaves.
    #[test]
    fn prop_sts_latency_amortises(n in 1u32..64) {
        let t = StsTiming::paper();
        let c_n = t.shift_cycles(n).count();
        prop_assert!(c_n >= 3);
        prop_assert!(t.shift_cycles(n + 1).count() >= c_n);
        let c_2n = t.shift_cycles(2 * n).count();
        prop_assert!(c_2n < 2 * c_n, "doubling must amortise stage 2");
        let per_1 = t.shift_cycles(1).count() as f64;
        prop_assert!(c_n as f64 / n as f64 <= per_1 + 1e-12);
    }
}
