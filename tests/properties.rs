//! Property-based tests over the core invariants, spanning crates.

use hifi_rtm::controller::safety::SafetyBudget;
use hifi_rtm::controller::sequence::SequenceTable;
use hifi_rtm::mem::cache::{AccessKind, Cache};
use hifi_rtm::model::rates::{mttf_for_error_rate, OutOfStepRates};
use hifi_rtm::model::shift::ShiftOutcome;
use hifi_rtm::model::sts::StsTiming;
use hifi_rtm::pecc::code::{PeccCode, Verdict};
use hifi_rtm::pecc::layout::ProtectionKind;
use hifi_rtm::pecc::protected::ProtectedStripe;
use hifi_rtm::track::bit::Bit;
use hifi_rtm::track::fault::ScriptedFaultModel;
use hifi_rtm::track::geometry::StripeGeometry;
use hifi_rtm::track::stripe::SegmentedStripe;
use hifi_rtm::util::check::{run_cases, Gen};

/// Error-free shifting is reversible for any data pattern and any
/// in-range seek schedule: the stripe's data region is preserved.
#[test]
fn prop_error_free_seeks_preserve_data() {
    run_cases(64, |g: &mut Gen| {
        let data = g.vec_of(64, 64, |g| g.bool());
        let seeks = g.vec_of(1, 19, |g| g.usize_in(0, 7));
        let geometry = StripeGeometry::paper_default();
        let bits: Vec<Bit> = data.iter().copied().map(Bit::from).collect();
        let mut stripe = SegmentedStripe::with_data(geometry, &bits);
        for &s in &seeks {
            stripe.seek(s).unwrap();
        }
        assert_eq!(stripe.read_all().unwrap(), bits);
    });
}

/// For every strength m and every offset |e| <= m, the code
/// corrects exactly e; |e| = m+1 is flagged uncorrectable.
#[test]
fn prop_code_corrects_to_strength() {
    run_cases(256, |g: &mut Gen| {
        let m = g.u32_in(0, 5);
        let e = g.i32_in(-7, 7);
        let code = PeccCode::new(m);
        let verdict = code.classify_offset(e);
        if e == 0 {
            assert_eq!(verdict, Verdict::Clean);
        } else if e.unsigned_abs() <= m {
            assert_eq!(verdict, Verdict::Correctable(e));
        } else if e.unsigned_abs() == m + 1 {
            assert_eq!(verdict, Verdict::Uncorrectable);
        }
        // Beyond m+1 the verdict may alias, but it must never claim a
        // correction larger than the strength.
        if let Verdict::Correctable(k) = verdict {
            assert!(k.unsigned_abs() <= m);
        }
    });
}

/// The physical stripe and the phase arithmetic always agree: an
/// injected offset e is decoded exactly as classify_offset says,
/// from any starting head position reachable without data loss.
#[test]
fn prop_physical_decode_matches_classification() {
    run_cases(256, |g: &mut Gen| {
        let start = g.usize_in(0, 7);
        let delta = g.i64_in(1, 3);
        let e = g.i32_in(-2, 2);
        let geometry = StripeGeometry::paper_default();
        let mut stripe = ProtectedStripe::new(geometry, ProtectionKind::SECDED).unwrap();
        let mut ideal = hifi_rtm::track::fault::IdealFaultModel;
        stripe.seek_checked(start, &mut ideal);
        // Keep the faulty shift inside the head range.
        let delta = if start as i64 + delta > 7 {
            -delta
        } else {
            delta
        };
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: e }]);
        stripe.shift(delta, &mut faults);
        // The fault model expresses the offset in the direction of
        // travel; the decoder reports it in absolute head coordinates.
        let absolute = delta.signum() as i32 * e;
        let code = PeccCode::secded();
        assert_eq!(stripe.check(), code.classify_offset(absolute));
    });
}

/// Every safe sequence covers its distance, respects the part cap,
/// and meets its own interval threshold's risk bound.
#[test]
fn prop_sequences_cover_and_bound() {
    run_cases(128, |g: &mut Gen| {
        let distance = g.u32_in(1, 7);
        let interval = g.u64_in(0, 9_999);
        let budget = SafetyBudget::paper_secded();
        let table = SequenceTable::build(&budget, &StsTiming::paper(), 7, 7);
        let opt = table.select(distance, interval);
        assert_eq!(opt.sequence.iter().sum::<u32>(), distance);
        assert!(opt.sequence.iter().all(|&p| (1..=7).contains(&p)));
        // Risk equals the sum of per-part residuals.
        let direct: f64 = opt.sequence.iter().map(|&d| budget.residual_rate(d)).sum();
        assert!((opt.risk - direct).abs() <= direct * 1e-12);
        // The safest option is never riskier than the selected one.
        assert!(table.safest(distance).risk <= opt.risk * (1.0 + 1e-12));
    });
}

/// Cache conservation: hits + misses == accesses, writebacks never
/// exceed misses, and re-access of the most recent line always hits.
#[test]
fn prop_cache_conservation() {
    run_cases(64, |g: &mut Gen| {
        let addrs = g.vec_of(1, 299, |g| g.u64_in(0, (1u64 << 20) - 1));
        let mut cache = Cache::new(16 << 10, 4, 64);
        for (i, &a) in addrs.iter().enumerate() {
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            cache.access(a, kind);
        }
        let s = *cache.stats();
        assert_eq!(s.hits + s.misses, addrs.len() as u64);
        assert!(s.writebacks <= s.misses);
        // MRU property.
        let last = *addrs.last().unwrap();
        assert!(cache.access(last, AccessKind::Read).is_hit());
    });
}

/// MTTF is monotone: more error rate or more intensity never helps.
#[test]
fn prop_mttf_monotone() {
    run_cases(256, |g: &mut Gen| {
        let rate = 10f64.powf(g.f64_in(-24.0, -2.0));
        let intensity = 10f64.powf(g.f64_in(3.0, 11.0));
        let bump = g.f64_in(1.1, 10.0);
        let base = mttf_for_error_rate(rate, intensity).as_secs();
        assert!(mttf_for_error_rate(rate * bump, intensity).as_secs() < base);
        assert!(mttf_for_error_rate(rate, intensity * bump).as_secs() < base);
    });
}

/// Rate-table sanity for every distance/k in (extrapolated) range:
/// probabilities are in [0, 1], monotone in distance, and decay
/// catastrophically in k.
#[test]
fn prop_rate_table_sanity() {
    run_cases(256, |g: &mut Gen| {
        let d = g.u32_in(1, 15);
        let k = g.u32_in(1, 4);
        let rates = OutOfStepRates::paper_calibration();
        let r = rates.rate(d, k);
        assert!((0.0..=1.0).contains(&r));
        if d < 15 {
            assert!(rates.rate(d + 1, k) >= r);
        }
        if k < 4 && r > 0.0 {
            assert!(rates.rate(d, k + 1) < r);
        }
    });
}

/// Bit packing round-trips for arbitrary lengths.
#[test]
fn prop_bit_pack_round_trip() {
    run_cases(256, |g: &mut Gen| {
        let data = g.vec_of(0, 129, |g| g.bool());
        let bits: Vec<Bit> = data.iter().copied().map(Bit::from).collect();
        let bytes = Bit::pack(&bits);
        assert_eq!(Bit::unpack(&bytes, bits.len()), bits);
    });
}

/// STS latency formula: cycles are positive, monotone in distance,
/// and amortisation holds at scale (doubling the distance never
/// doubles the cost; per-step cost is bounded by the 1-step cost).
/// Exact per-step monotonicity is broken by ceil() quantisation at
/// a few boundaries, so the property compares across octaves.
#[test]
fn prop_sts_latency_amortises() {
    run_cases(64, |g: &mut Gen| {
        let n = g.u32_in(1, 63);
        let t = StsTiming::paper();
        let c_n = t.shift_cycles(n).count();
        assert!(c_n >= 3);
        assert!(t.shift_cycles(n + 1).count() >= c_n);
        let c_2n = t.shift_cycles(2 * n).count();
        assert!(c_2n < 2 * c_n, "doubling must amortise stage 2");
        let per_1 = t.shift_cycles(1).count() as f64;
        assert!(c_n as f64 / n as f64 <= per_1 + 1e-12);
    });
}
