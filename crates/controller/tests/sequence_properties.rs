//! Property tests for Algorithm 1's sequence planner.

use rtm_controller::controller::{ShiftController, ShiftPolicy};
use rtm_controller::safety::SafetyBudget;
use rtm_controller::sequence::SequenceTable;
use rtm_model::sts::StsTiming;
use rtm_pecc::layout::ProtectionKind;
use rtm_util::check::{run_cases, Gen};

fn table() -> SequenceTable {
    SequenceTable::build(&SafetyBudget::paper_secded(), &StsTiming::paper(), 7, 7)
}

/// The selected option is optimal: no Pareto option with a
/// satisfied threshold is faster.
#[test]
fn selection_is_latency_optimal() {
    run_cases(256, |g: &mut Gen| {
        let distance = g.u32_in(1, 7);
        let interval = g.u64_in(0, 4_999_999);
        let t = table();
        let chosen = t.select(distance, interval);
        for opt in t.options(distance) {
            if opt.min_interval <= interval {
                assert!(
                    chosen.latency <= opt.latency,
                    "chosen {:?} slower than feasible {:?}",
                    chosen.sequence,
                    opt.sequence
                );
            }
        }
    });
}

/// The frontier is complete: every composition of the distance into
/// parts <= 7 is dominated by (or equal to) some frontier entry.
#[test]
fn frontier_dominates_random_compositions() {
    run_cases(256, |g: &mut Gen| {
        let distance = g.u32_in(1, 7);
        let cuts = g.vec_of(1, 5, |g| g.u32_in(1, 7));
        // Build an arbitrary composition of `distance` from the cuts.
        let mut seq = Vec::new();
        let mut rest = distance;
        for &c in &cuts {
            if rest == 0 {
                break;
            }
            let part = c.min(rest);
            seq.push(part);
            rest -= part;
        }
        if rest > 0 {
            seq.push(rest);
        }

        let budget = SafetyBudget::paper_secded();
        let timing = StsTiming::paper();
        let latency: u64 = seq
            .iter()
            .map(|&d| timing.shift_cycles(d).count() + 1)
            .sum();
        let risk: f64 = seq.iter().map(|&d| budget.residual_rate(d)).sum();

        let t = table();
        let dominated = t
            .options(distance)
            .iter()
            .any(|o| o.latency.count() <= latency && o.risk <= risk * (1.0 + 1e-12));
        assert!(dominated, "composition {seq:?} undominated");
    });
}

/// Adaptive planning is risk-sound: over any request pattern, the
/// accumulated expected DUEs stay within the budget implied by the
/// elapsed time (the interval-threshold invariant), up to the
/// quantisation of the safest sequence.
#[test]
fn adaptive_risk_within_time_budget() {
    run_cases(64, |g: &mut Gen| {
        let n = g.usize_in(1, 59);
        let gaps = g.vec_of(n, n, |g| g.u64_in(4, 99_999));
        let distances = g.vec_of(n, n, |g| g.u32_in(1, 7));
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut t = 0u64;
        for (gap, d) in gaps.iter().zip(&distances) {
            t += gap;
            let _ = ctl.plan_shift(*d, t);
        }
        let stats = ctl.stats();
        // Budget: elapsed wall time / reliability target, plus one
        // "safest sequence" allowance for the cold start and threshold
        // rounding.
        let elapsed_secs = t as f64 / 2.0e9;
        let target = rtm_controller::safety::PAPER_RELIABILITY_TARGET.as_secs();
        let slack = 8.0 * 7.0 * 1.37e-21; // a few safest sequences
        assert!(
            stats.expected_dues <= elapsed_secs / target + slack,
            "risk {} exceeds budget {}",
            stats.expected_dues,
            elapsed_secs / target + slack
        );
    });
}

/// FixedSafe always splits to its cap; StepByStep always to ones.
#[test]
fn policies_obey_distance_caps() {
    run_cases(32, |g: &mut Gen| {
        let distance = g.u32_in(1, 7);
        let mut fixed = ShiftController::new(
            ProtectionKind::SECDED,
            ShiftPolicy::FixedSafe {
                worst_intensity_hz: 83_000_000,
            },
        );
        let plan = fixed.plan_shift(distance, 0);
        assert!(plan.sequence.iter().all(|&p| p <= 3));
        assert_eq!(plan.sequence.iter().sum::<u32>(), distance);

        let mut step = ShiftController::new(ProtectionKind::SECDED_O, ShiftPolicy::StepByStep);
        let plan = step.plan_shift(distance, 0);
        assert_eq!(plan.sequence, vec![1; distance as usize]);
    });
}

/// Risk accounting conserves probability: SDC + DUE + corrections
/// mass equals the total error mass of the sequence.
#[test]
fn risk_mass_conserved() {
    run_cases(32, |g: &mut Gen| {
        let distance = g.u32_in(1, 7);
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
        let plan = ctl.plan_shift(distance, 0);
        let rates = rtm_model::rates::OutOfStepRates::paper_calibration();
        let total: f64 = (1..=4u32).map(|k| rates.rate(distance, k)).sum();
        let acc = plan.sdc_risk + plan.due_risk + plan.expected_corrections;
        assert!((acc - total).abs() <= total * 1e-9);
    });
}
