//! Safe-distance arithmetic — Section 5.2 and Table 3(a).
//!
//! MTTF is statistical: if a memory performs `I` shift operations per
//! second and each carries residual (post-correction) error probability
//! `p`, then `MTTF = 1 / (p · I)`. Given a reliability target `T`, the
//! per-shift budget is `p ≤ 1 / (T · I)`, and the **safe distance** is
//! the longest single-shift distance whose residual rate stays inside
//! that budget.
//!
//! Under SECDED, ±1 errors are corrected on the spot, so the residual
//! risk of one shift is its **±2-step** rate — the second column of the
//! paper's Table 2. Reproducing the paper's Table 3(a) pairs
//! (distance 1 ↔ 4.53 G shifts/s, …, distance 7 ↔ 0.82 K) fixes the
//! implied reliability target at `T ≈ 1.61 × 10¹¹ s` (about 5,100
//! years; failure rate λ ≈ 6.2 × 10⁻¹² per second), which this module
//! exposes as [`PAPER_RELIABILITY_TARGET`].

use rtm_model::rates::OutOfStepRates;
use rtm_util::units::Seconds;

/// The reliability target implied by the paper's Table 3 (seconds).
pub const PAPER_RELIABILITY_TARGET: Seconds = Seconds(1.61e11);

/// A per-shift residual-risk budget derived from a reliability target.
#[derive(Debug, Clone)]
pub struct SafetyBudget {
    rates: OutOfStepRates,
    target: Seconds,
    /// Which ±k column constitutes *residual* risk (2 for SECDED:
    /// ±1 is corrected; 1 for detection-only schemes).
    residual_k: u32,
}

impl SafetyBudget {
    /// Creates a budget for a memory that corrects up to `m` steps.
    ///
    /// The residual column is `m + 1` (the first uncorrectable
    /// magnitude).
    pub fn new(rates: OutOfStepRates, target: Seconds, m: u32) -> Self {
        Self {
            rates,
            target,
            residual_k: m + 1,
        }
    }

    /// The paper's configuration: SECDED residuals against the implied
    /// Table 3 target.
    pub fn paper_secded() -> Self {
        Self::new(
            OutOfStepRates::paper_calibration(),
            PAPER_RELIABILITY_TARGET,
            1,
        )
    }

    /// The reliability target.
    pub fn target(&self) -> Seconds {
        self.target
    }

    /// The rate table.
    pub fn rates(&self) -> &OutOfStepRates {
        &self.rates
    }

    /// Residual error probability of a single `distance`-step shift.
    pub fn residual_rate(&self, distance: u32) -> f64 {
        self.rates.rate(distance, self.residual_k)
    }

    /// Residual error probability of a shift *sequence* (risks add).
    pub fn sequence_rate(&self, seq: &[u32]) -> f64 {
        seq.iter().map(|&d| self.residual_rate(d)).sum()
    }

    /// Maximum tolerable per-shift error probability at `intensity`
    /// shift operations per second.
    pub fn max_rate_at(&self, intensity: f64) -> f64 {
        assert!(intensity > 0.0, "intensity must be positive");
        1.0 / (self.target.as_secs() * intensity)
    }

    /// The safe distance at `intensity` shifts/s: the longest distance
    /// whose residual rate fits the budget, or `None` when even 1-step
    /// shifts do not fit (the memory is simply too hot for the target).
    pub fn safe_distance_at(&self, intensity: f64) -> Option<u32> {
        let budget = self.max_rate_at(intensity);
        let mut best = None;
        for d in 1..=rtm_model::rates::MAX_TABULATED_DISTANCE {
            if self.residual_rate(d) <= budget {
                best = Some(d);
            } else {
                break;
            }
        }
        best
    }

    /// The maximum shift intensity (operations per second) at which
    /// `distance`-step shifts stay inside the budget — the paper's
    /// Table 3(a) right column.
    pub fn max_intensity_for(&self, distance: u32) -> f64 {
        1.0 / (self.target.as_secs() * self.residual_rate(distance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3a_intensities_reproduce() {
        // Paper Table 3(a): distance → max intensity.
        let budget = SafetyBudget::paper_secded();
        let expect = [
            (1u32, 4.53e9),
            (2, 518e6),
            (3, 111e6),
            (4, 34.3e6),
            (5, 13.9e6),
            (6, 621e3),
            (7, 0.82e3),
        ];
        for (d, want) in expect {
            let got = budget.max_intensity_for(d);
            let ratio = got / want;
            assert!(
                (0.8..1.25).contains(&ratio),
                "distance {d}: got {got:.3e}, paper {want:.3e}"
            );
        }
    }

    #[test]
    fn conservative_safe_distance_matches_paper() {
        // Section 5.2: a 128 MB memory supporting up to 83 M accesses/s
        // gets a conservative safe distance of 3 steps.
        let budget = SafetyBudget::paper_secded();
        assert_eq!(budget.safe_distance_at(83e6), Some(3));
    }

    #[test]
    fn safe_distance_monotone_in_intensity() {
        let budget = SafetyBudget::paper_secded();
        let mut prev = u32::MAX;
        for intensity in [1e3, 1e5, 1e7, 1e9, 1e10] {
            let d = budget.safe_distance_at(intensity).unwrap_or(0);
            assert!(d <= prev, "safe distance must shrink as intensity grows");
            prev = d;
        }
        // Low-intensity traffic may use the full 7-step shift.
        assert_eq!(budget.safe_distance_at(100.0), Some(7));
        // Absurd intensity admits nothing.
        assert_eq!(budget.safe_distance_at(1e22), None);
    }

    #[test]
    fn sequence_rate_adds() {
        let budget = SafetyBudget::paper_secded();
        let single = budget.residual_rate(2);
        assert!((budget.sequence_rate(&[2, 2]) - 2.0 * single).abs() < 1e-30);
        assert_eq!(budget.sequence_rate(&[]), 0.0);
    }

    #[test]
    fn detection_only_budget_uses_k1() {
        // For SED (m = 0) the residual is the ±1 column: far larger.
        let sed = SafetyBudget::new(
            OutOfStepRates::paper_calibration(),
            PAPER_RELIABILITY_TARGET,
            0,
        );
        let secded = SafetyBudget::paper_secded();
        assert!(sed.residual_rate(7) > secded.residual_rate(7) * 1e10);
        // SED can never meet the target at any realistic intensity.
        assert_eq!(sed.safe_distance_at(1e6), None);
    }

    #[test]
    #[should_panic]
    fn zero_intensity_rejected() {
        let _ = SafetyBudget::paper_secded().max_rate_at(0.0);
    }
}
