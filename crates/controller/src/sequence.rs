//! Algorithm 1: minimum-latency shift sequences under a risk bound —
//! and the interval-threshold table of Table 3(b).
//!
//! A request for `D` steps can be served by any composition
//! `D = d₁ + d₂ + …` with each part at most the tabulated maximum.
//! Latency and residual risk are both additive over parts, so the
//! planner enumerates the Pareto frontier of (risk, latency) per
//! distance once, and run-time selection is a table lookup:
//!
//! * each candidate sequence has a **minimum interval threshold** —
//!   the inter-shift interval (in cycles) above which its risk fits the
//!   reliability budget (`interval ≥ risk · f_clk · T_target`);
//! * the adapter measures the actual interval and picks the fastest
//!   sequence whose threshold is met, exactly the paper's Table 3(b)
//!   rows for a 7-step request: a single `[7]` needs ≈ 2.4 M idle
//!   cycles, `[4,3]` ≈ 76, `[3,2,2]` ≈ 26, down to `[1×7]` at ≈ 3.

use crate::safety::SafetyBudget;
use rtm_model::sts::StsTiming;
use rtm_util::units::Cycles;

/// Cycles charged for the p-ECC check after each sub-shift (the
/// detection logic runs in well under a cycle — Table 5 lists 0.34 ns —
/// but occupies a pipeline slot).
pub const PECC_CHECK_CYCLES: u64 = 1;

/// One candidate sequence for a given total distance.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceOption {
    /// The sub-shift distances (descending), summing to the request.
    pub sequence: Vec<u32>,
    /// Total latency including per-sub-shift p-ECC checks.
    pub latency: Cycles,
    /// Total residual error probability.
    pub risk: f64,
    /// Minimum inter-shift interval (cycles) at which this sequence
    /// meets the reliability target.
    pub min_interval: u64,
}

/// The per-distance Pareto table the adapter indexes at run time.
#[derive(Debug, Clone)]
pub struct SequenceTable {
    /// `options[d - 1]` = Pareto-optimal sequences for a d-step request,
    /// fastest (highest threshold) first.
    options: Vec<Vec<SequenceOption>>,
    max_part: u32,
}

impl SequenceTable {
    /// Builds the table for requests up to `max_distance` steps, with
    /// individual sub-shifts capped at `max_part`, under `budget` and
    /// `timing`.
    ///
    /// # Panics
    ///
    /// Panics if `max_distance == 0` or `max_part == 0`.
    pub fn build(
        budget: &SafetyBudget,
        timing: &StsTiming,
        max_distance: u32,
        max_part: u32,
    ) -> Self {
        assert!(max_distance > 0, "max_distance must be positive");
        assert!(max_part > 0, "max_part must be positive");
        let clock = timing.clock_hz;
        let target = budget.target().as_secs();
        let latency_of = |d: u32| timing.shift_cycles(d).count() + PECC_CHECK_CYCLES;

        // Pareto DP over total distance: frontier of (latency, risk).
        #[derive(Clone)]
        struct Node {
            latency: u64,
            risk: f64,
            seq: Vec<u32>,
        }
        let mut frontiers: Vec<Vec<Node>> = vec![Vec::new(); max_distance as usize + 1];
        frontiers[0].push(Node {
            latency: 0,
            risk: 0.0,
            seq: Vec::new(),
        });
        for d in 1..=max_distance as usize {
            let mut cands: Vec<Node> = Vec::new();
            for part in 1..=max_part.min(d as u32) {
                let rest = d - part as usize;
                for node in &frontiers[rest] {
                    // Keep parts descending to avoid duplicate
                    // permutations.
                    if node.seq.first().is_some_and(|&f| part > f) {
                        continue;
                    }
                    let mut seq = Vec::with_capacity(node.seq.len() + 1);
                    seq.push(part);
                    seq.extend_from_slice(&node.seq);
                    seq.sort_unstable_by(|a, b| b.cmp(a));
                    cands.push(Node {
                        latency: node.latency + latency_of(part),
                        risk: node.risk + budget.residual_rate(part),
                        seq,
                    });
                }
            }
            // Prune to the Pareto frontier (min latency for any risk).
            cands.sort_by(|a, b| {
                a.latency
                    .cmp(&b.latency)
                    .then(a.risk.partial_cmp(&b.risk).expect("finite risks"))
            });
            let mut frontier: Vec<Node> = Vec::new();
            let mut best_risk = f64::INFINITY;
            for c in cands {
                if c.risk < best_risk {
                    best_risk = c.risk;
                    frontier.push(c);
                }
            }
            frontiers[d] = frontier;
        }

        let options = frontiers
            .into_iter()
            .skip(1)
            .map(|frontier| {
                frontier
                    .into_iter()
                    .map(|n| {
                        let min_interval = (n.risk * clock * target).ceil().max(1.0);
                        let min_interval = if min_interval >= u64::MAX as f64 {
                            u64::MAX
                        } else {
                            min_interval as u64
                        };
                        SequenceOption {
                            sequence: n.seq,
                            latency: Cycles(n.latency),
                            risk: n.risk,
                            min_interval,
                        }
                    })
                    .collect()
            })
            .collect();
        Self { options, max_part }
    }

    /// Largest single sub-shift allowed by the table.
    pub fn max_part(&self) -> u32 {
        self.max_part
    }

    /// Largest request distance covered.
    pub fn max_distance(&self) -> u32 {
        self.options.len() as u32
    }

    /// All Pareto options for a `distance`-step request, fastest first.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero or beyond the table.
    pub fn options(&self, distance: u32) -> &[SequenceOption] {
        assert!(
            distance >= 1 && distance <= self.max_distance(),
            "distance {distance} outside table"
        );
        &self.options[distance as usize - 1]
    }

    /// Picks the fastest sequence whose interval threshold is satisfied
    /// by the observed `interval` (cycles since the previous shift).
    /// Falls back to the safest available sequence when even it misses
    /// the threshold (the request cannot be refused — matching the
    /// paper's conservative degradation to 1-step shifts).
    ///
    /// # Panics
    ///
    /// Panics like [`SequenceTable::options`].
    pub fn select(&self, distance: u32, interval: u64) -> &SequenceOption {
        let opts = self.options(distance);
        opts.iter()
            .find(|o| o.min_interval <= interval)
            .unwrap_or_else(|| opts.last().expect("frontier never empty"))
    }

    /// The safest (lowest-risk) option for a request — what the
    /// worst-case ("p-ECC-S worst") policy uses when its static safe
    /// distance splits a request.
    ///
    /// # Panics
    ///
    /// Panics like [`SequenceTable::options`].
    pub fn safest(&self, distance: u32) -> &SequenceOption {
        self.options(distance).last().expect("frontier never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::SafetyBudget;

    fn paper_table() -> SequenceTable {
        SequenceTable::build(&SafetyBudget::paper_secded(), &StsTiming::paper(), 7, 7)
    }

    #[test]
    fn table3b_latencies_reproduce() {
        // Paper Table 3(b): sequence → latency for a 7-step request.
        let t = paper_table();
        let opts = t.options(7);
        let find = |seq: &[u32]| {
            opts.iter()
                .find(|o| o.sequence == seq)
                .unwrap_or_else(|| panic!("sequence {seq:?} missing from frontier"))
        };
        assert_eq!(find(&[7]).latency, Cycles(9));
        assert_eq!(find(&[4, 3]).latency, Cycles(13));
        assert_eq!(find(&[3, 2, 2]).latency, Cycles(16));
        assert_eq!(find(&[2, 2, 2, 1]).latency, Cycles(19));
        assert_eq!(find(&[2, 2, 1, 1, 1]).latency, Cycles(22));
        assert_eq!(find(&[2, 1, 1, 1, 1, 1]).latency, Cycles(25));
        assert_eq!(find(&[1, 1, 1, 1, 1, 1, 1]).latency, Cycles(28));
    }

    #[test]
    fn table3b_interval_thresholds_reproduce() {
        // Paper Table 3(b) interval column (cycles): 2445260, 76, 26,
        // 12, 9, 6, 3.
        let t = paper_table();
        let expect: [(&[u32], u64); 7] = [
            (&[7], 2_445_260),
            (&[4, 3], 76),
            (&[3, 2, 2], 26),
            (&[2, 2, 2, 1], 12),
            (&[2, 2, 1, 1, 1], 9),
            (&[2, 1, 1, 1, 1, 1], 6),
            (&[1, 1, 1, 1, 1, 1, 1], 3),
        ];
        for (seq, want) in expect {
            let opt = t
                .options(7)
                .iter()
                .find(|o| o.sequence == seq)
                .unwrap_or_else(|| panic!("sequence {seq:?} missing"));
            let got = opt.min_interval;
            let ratio = got as f64 / want as f64;
            assert!(
                (0.7..1.4).contains(&ratio),
                "seq {seq:?}: interval {got} vs paper {want}"
            );
        }
    }

    #[test]
    fn frontier_is_sorted_and_strictly_improving() {
        let t = paper_table();
        for d in 1..=7 {
            let opts = t.options(d);
            assert!(!opts.is_empty());
            for w in opts.windows(2) {
                assert!(w[0].latency < w[1].latency, "latency must increase");
                assert!(w[0].risk > w[1].risk, "risk must decrease");
            }
            // Every sequence sums to the request.
            for o in opts {
                assert_eq!(o.sequence.iter().sum::<u32>(), d);
            }
        }
    }

    #[test]
    fn select_honours_interval() {
        let t = paper_table();
        // Plenty of idle time: take the single 7-step shift.
        assert_eq!(t.select(7, 3_000_000).sequence, vec![7]);
        // ~100 idle cycles: [4,3] fits, [7] does not.
        assert_eq!(t.select(7, 100).sequence, vec![4, 3]);
        // Back-to-back: fall back to the safest sequence.
        assert_eq!(t.select(7, 1).sequence, vec![1; 7]);
    }

    #[test]
    fn safest_is_all_single_steps() {
        let t = paper_table();
        for d in 1..=7 {
            assert_eq!(t.safest(d).sequence, vec![1; d as usize]);
        }
    }

    #[test]
    fn short_requests_have_trivial_frontier_head() {
        let t = paper_table();
        assert_eq!(t.options(1).len(), 1);
        assert_eq!(t.options(1)[0].sequence, vec![1]);
        assert_eq!(t.options(1)[0].latency, Cycles(4)); // 3 + 1 check
    }

    #[test]
    fn max_part_caps_sub_shifts() {
        let t = SequenceTable::build(&SafetyBudget::paper_secded(), &StsTiming::paper(), 7, 3);
        for o in t.options(7) {
            assert!(o.sequence.iter().all(|&p| p <= 3), "{:?}", o.sequence);
        }
    }

    #[test]
    fn distances_beyond_tabulated_rates_still_work() {
        // A 15-step request (e.g. Lseg = 16 geometries) uses the
        // power-law extrapolation transparently.
        let t = SequenceTable::build(&SafetyBudget::paper_secded(), &StsTiming::paper(), 15, 7);
        let o = t.select(15, 1_000_000_000);
        assert_eq!(o.sequence.iter().sum::<u32>(), 15);
    }

    #[test]
    #[should_panic]
    fn zero_distance_select_panics() {
        let _ = paper_table().select(0, 100);
    }
}
