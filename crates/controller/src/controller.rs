//! The error-aware shift controller (the paper's Fig. 9) in its
//! statistical form: planning, latency accounting and residual-risk
//! bookkeeping for the architecture simulator.
//!
//! Four policies mirror the paper's evaluated configurations:
//!
//! | policy | paper label | behaviour |
//! |---|---|---|
//! | [`ShiftPolicy::Unconstrained`] | baseline / plain p-ECC | one shift per request, any distance |
//! | [`ShiftPolicy::StepByStep`] | p-ECC-O | 1-step shift-and-write operations only |
//! | [`ShiftPolicy::FixedSafe`] | p-ECC-S worst | static safe distance from the worst-case access rate |
//! | [`ShiftPolicy::Adaptive`] | p-ECC-S adaptive | run-time interval counter indexes the Table 3(b) thresholds |

use crate::safety::SafetyBudget;
use crate::sequence::{SequenceTable, PECC_CHECK_CYCLES};
use rtm_model::rates::MAX_TABULATED_DISTANCE;
use rtm_model::sts::StsTiming;
use rtm_obs::events::{PeccOutcome, ShiftEvent};
use rtm_pecc::code::Verdict;
use rtm_pecc::layout::ProtectionKind;
use rtm_util::units::Cycles;

/// How the controller bounds shift distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftPolicy {
    /// No distance constraint: each request is one shift operation.
    Unconstrained,
    /// Every request is served with 1-step shift-and-write operations
    /// (the p-ECC-O discipline).
    StepByStep,
    /// A static safe distance computed for `worst_intensity` shift
    /// operations per second ("p-ECC-S worst").
    FixedSafe {
        /// The worst-case (peak) shift intensity the memory supports.
        worst_intensity_hz: u64,
    },
    /// Run-time adaptive safe distance from the inter-shift interval
    /// ("p-ECC-S adaptive").
    Adaptive,
}

/// A planned shift transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftPlan {
    /// Sub-shift distances (each ≤ the geometry's max shift).
    pub sequence: Vec<u32>,
    /// Total latency: STS stages plus one p-ECC check per sub-shift.
    pub latency: Cycles,
    /// Number of p-ECC checks performed.
    pub checks: u32,
    /// Probability that this transaction raises a DUE (detected
    /// uncorrectable position error).
    pub due_risk: f64,
    /// Probability that this transaction silently corrupts data
    /// (undetected or mis-corrected position error).
    pub sdc_risk: f64,
    /// Expected number of corrective back-shifts (each also costs a
    /// shift + check, folded into expected latency by callers that care;
    /// the paper treats this as negligible for performance).
    pub expected_corrections: f64,
}

impl ShiftPlan {
    /// Total steps moved.
    pub fn distance(&self) -> u32 {
        self.sequence.iter().sum()
    }
}

/// A batched shift command stream: one STS setup, N entries. Produced
/// by [`ShiftController::plan_shift_batch`] when the serving layer
/// coalesces consecutive same-stripe-group requests.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// Per-entry plans, in stream order; entries after the first are
    /// continuations (their first sub-shift pays no stage-2 settle).
    pub plans: Vec<ShiftPlan>,
    /// End-to-end latency of the stream.
    pub latency: Cycles,
    /// Total cycles saved versus planning every entry standalone.
    pub saved_cycles: u64,
}

/// Running statistics the controller maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControllerStats {
    /// Shift requests served.
    pub requests: u64,
    /// Physical shift operations issued (sub-shifts).
    pub operations: u64,
    /// Total steps moved.
    pub steps: u64,
    /// Total latency spent shifting.
    pub shift_cycles: u64,
    /// p-ECC checks performed.
    pub checks: u64,
    /// Requests served as batch continuations (STS driver already
    /// armed by the preceding request of the same stream).
    pub batched_requests: u64,
    /// Cycles saved by batching: one stage-2 settle per continuation.
    pub batch_saved_cycles: u64,
    /// Accumulated DUE probability (sums to expected DUE count).
    pub expected_dues: f64,
    /// Accumulated SDC probability.
    pub expected_sdcs: f64,
}

impl ControllerStats {
    /// This stats block as an [`rtm_obs`] registry snapshot, under
    /// `controller.*` metric names (counts as counters, accumulated
    /// probabilities as gauges).
    pub fn to_metrics(&self) -> rtm_obs::metrics::RegistrySnapshot {
        let reg = rtm_obs::metrics::MetricsRegistry::new();
        reg.set_enabled(true);
        reg.counter_add("controller.requests", self.requests);
        reg.counter_add("controller.operations", self.operations);
        reg.counter_add("controller.steps", self.steps);
        reg.counter_add("controller.shift_cycles", self.shift_cycles);
        reg.counter_add("controller.checks", self.checks);
        reg.counter_add("controller.batched_requests", self.batched_requests);
        reg.counter_add("controller.batch_saved_cycles", self.batch_saved_cycles);
        reg.gauge_set("controller.expected_dues", self.expected_dues);
        reg.gauge_set("controller.expected_sdcs", self.expected_sdcs);
        reg.snapshot()
    }
}

/// The position-error-aware shift controller.
#[derive(Debug, Clone)]
pub struct ShiftController {
    kind: ProtectionKind,
    policy: ShiftPolicy,
    timing: StsTiming,
    budget: SafetyBudget,
    table: SequenceTable,
    stats: ControllerStats,
    /// Cycle timestamp of the previous shift request (for the adapter).
    last_shift_at: Option<u64>,
}

impl ShiftController {
    /// Creates a controller with the paper's timing and rate
    /// calibration for the given protection scheme and policy.
    pub fn new(kind: ProtectionKind, policy: ShiftPolicy) -> Self {
        Self::with_parts(
            kind,
            policy,
            StsTiming::paper(),
            SafetyBudget::new(
                rtm_model::rates::OutOfStepRates::paper_calibration(),
                crate::safety::PAPER_RELIABILITY_TARGET,
                kind.strength(),
            ),
            MAX_TABULATED_DISTANCE,
        )
    }

    /// Fully parameterised constructor.
    pub fn with_parts(
        kind: ProtectionKind,
        policy: ShiftPolicy,
        timing: StsTiming,
        budget: SafetyBudget,
        max_distance: u32,
    ) -> Self {
        let max_part = match kind {
            ProtectionKind::OverheadRegion { .. } => 1,
            _ => max_distance,
        };
        let table = SequenceTable::build(&budget, &timing, max_distance.max(1), max_part.max(1));
        Self {
            kind,
            policy,
            timing,
            budget,
            table,
            stats: ControllerStats::default(),
            last_shift_at: None,
        }
    }

    /// The protection scheme in force.
    pub fn kind(&self) -> ProtectionKind {
        self.kind
    }

    /// The active policy.
    pub fn policy(&self) -> ShiftPolicy {
        self.policy
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Plans a shift of `distance` steps requested at absolute cycle
    /// time `now_cycles`, updates statistics, and returns the plan.
    ///
    /// # Panics
    ///
    /// Panics if `distance == 0` or exceeds the planning table.
    pub fn plan_shift(&mut self, distance: u32, now_cycles: u64) -> ShiftPlan {
        self.plan_distance(distance, now_cycles, false)
    }

    /// Plans a shift that *continues* a batched command stream: the
    /// directly preceding request on this controller keeps the STS
    /// driver armed, so this transaction's first sub-shift skips the
    /// stage-2 settle ([`StsTiming::setup_cycles`] cheaper than a
    /// standalone [`Self::plan_shift`]). Sequence selection, p-ECC
    /// checks and risk accounting are *identical* to the standalone
    /// plan — batching buys latency, never safety.
    ///
    /// # Panics
    ///
    /// Panics if `distance == 0` or exceeds the planning table.
    pub fn plan_shift_continuation(&mut self, distance: u32, now_cycles: u64) -> ShiftPlan {
        self.plan_distance(distance, now_cycles, true)
    }

    /// Plans a whole batched shift command stream: the first entry is
    /// a standalone plan (pays the STS setup), every later entry a
    /// continuation, with time advancing by each plan's latency so the
    /// interval adapter sees the true back-to-back spacing.
    ///
    /// # Panics
    ///
    /// Panics if `distances` is empty or any entry is zero.
    pub fn plan_shift_batch(&mut self, distances: &[u32], now_cycles: u64) -> BatchPlan {
        assert!(!distances.is_empty(), "a batch needs at least one shift");
        let mut plans = Vec::with_capacity(distances.len());
        let mut t = now_cycles;
        let mut saved = 0u64;
        for (i, &d) in distances.iter().enumerate() {
            let plan = if i == 0 {
                self.plan_shift(d, t)
            } else {
                saved += self.timing.setup_cycles().count();
                self.plan_shift_continuation(d, t)
            };
            t += plan.latency.count();
            plans.push(plan);
        }
        BatchPlan {
            latency: Cycles(t - now_cycles),
            saved_cycles: saved,
            plans,
        }
    }

    fn plan_distance(&mut self, distance: u32, now_cycles: u64, fused: bool) -> ShiftPlan {
        assert!(distance > 0, "zero-distance shifts are no-ops");
        let interval = match self.last_shift_at {
            Some(prev) => now_cycles.saturating_sub(prev),
            // Cold start: the adapter has no interval measurement yet,
            // so it must assume the worst (back-to-back traffic) and
            // use the safest sequence.
            None => 0,
        };
        self.last_shift_at = Some(now_cycles);

        let sequence: Vec<u32> = match (self.kind, self.policy) {
            // Unprotected or plain p-ECC without distance constraint.
            (_, ShiftPolicy::Unconstrained) => vec![distance],
            (_, ShiftPolicy::StepByStep) => vec![1; distance as usize],
            (_, ShiftPolicy::FixedSafe { worst_intensity_hz }) => {
                let dsafe = self
                    .budget
                    .safe_distance_at(worst_intensity_hz as f64)
                    .unwrap_or(1);
                split_by_cap(distance, dsafe)
            }
            (_, ShiftPolicy::Adaptive) => self.table.select(distance, interval).sequence.clone(),
        };
        let mut plan = self.cost_sequence(&sequence);
        if fused {
            // The armed driver skips one stage-2 settle on the first
            // sub-shift. Checks and risk stay as costed: batching
            // shortens latency, never weakens the safety argument.
            let saved = self.timing.setup_cycles().count();
            plan.latency = Cycles(plan.latency.count() - saved);
            self.stats.batched_requests += 1;
            self.stats.batch_saved_cycles += saved;
        }
        self.stats.requests += 1;
        self.stats.operations += plan.sequence.len() as u64;
        self.stats.steps += distance as u64;
        self.stats.shift_cycles += plan.latency.count();
        self.stats.checks += plan.checks as u64;
        self.stats.expected_dues += plan.due_risk;
        self.stats.expected_sdcs += plan.sdc_risk;
        self.record_observability(distance, &plan, now_cycles, fused);
        plan
    }

    /// Emits the transaction into the global observer. No-ops (one
    /// relaxed atomic load each) when metrics/tracing are disabled.
    /// `fused` marks a batch continuation, whose *first* pulse is the
    /// stage-1-only continuation pulse — the span/trace walk shortens
    /// that pulse so children still tile the plan's latency exactly.
    fn record_observability(&self, distance: u32, plan: &ShiftPlan, now_cycles: u64, fused: bool) {
        let obs = rtm_obs::global();
        let reg = obs.registry();
        if reg.enabled() {
            reg.counter_add("shift.count", 1);
            reg.counter_add("shift.operations", plan.sequence.len() as u64);
            reg.counter_add("shift.steps", distance as u64);
            reg.counter_add("pecc.checks", plan.checks as u64);
            if plan.sequence.len() > 1 {
                reg.counter_add("shift.split.count", 1);
            }
            if fused {
                reg.counter_add("shift.batch.continuations", 1);
                reg.counter_add(
                    "shift.batch.saved_cycles",
                    self.timing.setup_cycles().count(),
                );
            }
            reg.observe("shift.latency_cycles", plan.latency.count() as f64);
            reg.observe_with(
                "shift.distance",
                distance as f64,
                &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 16.0, 32.0, 64.0],
            );
        }
        let protected = plan.checks > 0;
        let pulse_cycles = |idx: usize, d: u32| {
            if fused && idx == 0 {
                self.timing.continuation_shift_cycles(d).count()
            } else {
                self.timing.shift_cycles(d).count()
            }
        };
        let spans = obs.spans();
        if spans.enabled() {
            // The whole transaction nests under whatever span the
            // caller entered (a serving-layer dispatch, or nothing for
            // standalone runs), then unfolds into its pulse/check
            // sequence using the same walk the event trace performs.
            let plan_span = spans.record(
                rtm_obs::span::current_parent(),
                "plan_shift",
                now_cycles,
                now_cycles + plan.latency.count(),
            );
            let mut t = now_cycles;
            for (i, &d) in plan.sequence.iter().enumerate() {
                let cycles = pulse_cycles(i, d);
                spans.record(plan_span, "sts_pulse", t, t + cycles);
                t += cycles;
                if protected {
                    spans.record(plan_span, "pecc_verify", t, t + PECC_CHECK_CYCLES);
                    t += PECC_CHECK_CYCLES;
                }
            }
        }
        let trace = obs.trace();
        if trace.enabled() {
            let parts = plan.sequence.len() as u32;
            trace.record(
                now_cycles,
                ShiftEvent::ShiftPlanned {
                    distance,
                    parts,
                    latency_cycles: plan.latency.count(),
                },
            );
            if parts > 1 {
                let cap = plan.sequence.iter().copied().max().unwrap_or(distance);
                trace.record(
                    now_cycles,
                    ShiftEvent::SafeDistanceSplit {
                        distance,
                        cap,
                        parts,
                    },
                );
            }
            // The statistical controller does not sample faults, so
            // every planned check lands clean here; sampled
            // corrected/uncorrectable verdicts come from the
            // bit-accurate injection layer.
            let mut t = now_cycles;
            for (i, &d) in plan.sequence.iter().enumerate() {
                let cycles = pulse_cycles(i, d);
                trace.record(
                    t,
                    ShiftEvent::StsPulse {
                        distance: d,
                        cycles,
                    },
                );
                t += cycles;
                if protected {
                    t += PECC_CHECK_CYCLES;
                    trace.record(
                        t,
                        ShiftEvent::PeccVerdict {
                            outcome: PeccOutcome::Clean,
                        },
                    );
                }
            }
        }
    }

    /// Computes latency and residual risk for an explicit sequence
    /// without updating statistics (used by what-if exploration).
    pub fn cost_sequence(&self, sequence: &[u32]) -> ShiftPlan {
        let protected = !matches!(self.kind, ProtectionKind::None);
        let mut latency = 0u64;
        let mut due = 0.0f64;
        let mut sdc = 0.0f64;
        let mut corrections = 0.0f64;
        for &d in sequence {
            latency += self.timing.shift_cycles(d).count();
            if protected {
                latency += PECC_CHECK_CYCLES;
            }
            let (s, u, c) = self.classify_risk(d);
            sdc += s;
            due += u;
            corrections += c;
        }
        ShiftPlan {
            sequence: sequence.to_vec(),
            latency: Cycles(latency),
            checks: if protected { sequence.len() as u32 } else { 0 },
            due_risk: due,
            sdc_risk: sdc,
            expected_corrections: corrections,
        }
    }

    /// Splits the error probability mass of one `d`-step shift into
    /// (SDC, DUE, expected corrections) under the active protection.
    fn classify_risk(&self, d: u32) -> (f64, f64, f64) {
        let rates = self.budget.rates();
        let mut sdc = 0.0;
        let mut due = 0.0;
        let mut corrections = 0.0;
        for k in 1..=4u32 {
            let p = rates.rate(d, k);
            if p <= 0.0 {
                continue;
            }
            match self.kind.classify_offset(k as i32) {
                Verdict::Clean => sdc += p, // unprotected or aliased: silently wrong
                Verdict::Correctable(c) => {
                    if c == k as i32 {
                        corrections += p; // repaired on the spot
                    } else {
                        sdc += p; // mis-correction: silently wrong
                    }
                }
                Verdict::Uncorrectable => due += p,
            }
        }
        (sdc, due, corrections)
    }

    /// Expected latency of a plan *including* the occasional corrective
    /// back-shift: each expected correction costs a 1-step shift, a
    /// re-check, and the Table 5 correction pipeline slot. The paper
    /// treats this as negligible for performance — this method shows
    /// why (the expectation adds ~10⁻⁴ cycles per shift).
    pub fn expected_latency_with_corrections(&self, plan: &ShiftPlan) -> f64 {
        let correction_cost = (self.timing.shift_cycles(1).count() + PECC_CHECK_CYCLES) as f64;
        plan.latency.count() as f64 + plan.expected_corrections * correction_cost
    }

    /// The planning table (diagnostic / experiment plotting).
    pub fn sequence_table(&self) -> &SequenceTable {
        &self.table
    }

    /// The safety budget in force.
    pub fn budget(&self) -> &SafetyBudget {
        &self.budget
    }

    /// Resets run-time state (stats and interval tracking).
    pub fn reset(&mut self) {
        self.stats = ControllerStats::default();
        self.last_shift_at = None;
    }
}

/// Splits `distance` into parts of at most `cap`, largest first.
fn split_by_cap(distance: u32, cap: u32) -> Vec<u32> {
    assert!(cap >= 1);
    let mut out = Vec::new();
    let mut rest = distance;
    while rest > 0 {
        let part = rest.min(cap);
        out.push(part);
        rest -= part;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_is_single_shift() {
        let mut ctl = ShiftController::new(ProtectionKind::None, ShiftPolicy::Unconstrained);
        let plan = ctl.plan_shift(7, 0);
        assert_eq!(plan.sequence, vec![7]);
        assert_eq!(plan.checks, 0);
        // All error mass is silent for an unprotected memory.
        assert!(plan.sdc_risk > 1e-3 * 0.9);
        assert_eq!(plan.due_risk, 0.0);
    }

    #[test]
    fn step_by_step_is_all_ones_with_checks() {
        let mut ctl = ShiftController::new(ProtectionKind::SECDED_O, ShiftPolicy::StepByStep);
        let plan = ctl.plan_shift(7, 0);
        assert_eq!(plan.sequence, vec![1; 7]);
        assert_eq!(plan.checks, 7);
        assert_eq!(plan.latency, Cycles(28)); // Table 3(b) last row
    }

    #[test]
    fn fixed_safe_uses_conservative_distance() {
        // 83 M accesses/s → safe distance 3 (Section 5.2).
        let mut ctl = ShiftController::new(
            ProtectionKind::SECDED,
            ShiftPolicy::FixedSafe {
                worst_intensity_hz: 83_000_000,
            },
        );
        let plan = ctl.plan_shift(7, 0);
        assert_eq!(plan.sequence, vec![3, 3, 1]);
    }

    #[test]
    fn adaptive_relaxes_with_idle_time() {
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        // Cold start: no interval measured yet, so the safest sequence.
        assert_eq!(ctl.plan_shift(7, 0).sequence, vec![1; 7]);
        // Immediately after (interval 4): still conservative.
        let tight = ctl.plan_shift(7, 4);
        assert!(tight.sequence.len() >= 4, "{:?}", tight.sequence);
        // After a long idle gap, single-shot.
        let relaxed = ctl.plan_shift(7, 10_000_000);
        assert_eq!(relaxed.sequence, vec![7]);
    }

    #[test]
    fn adaptive_latency_beats_step_by_step() {
        let mut adaptive = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut stepwise = ShiftController::new(ProtectionKind::SECDED_O, ShiftPolicy::StepByStep);
        let mut t = 0u64;
        let mut lat_a = 0u64;
        let mut lat_s = 0u64;
        for _ in 0..1000 {
            t += 100; // moderately busy: 100-cycle intervals
            lat_a += adaptive.plan_shift(4, t).latency.count();
            lat_s += stepwise.plan_shift(4, t).latency.count();
        }
        assert!(lat_a < lat_s, "adaptive {lat_a} vs step-by-step {lat_s}");
    }

    #[test]
    fn secded_converts_k1_mass_to_corrections() {
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
        let plan = ctl.plan_shift(7, 0);
        let rates = rtm_model::rates::OutOfStepRates::paper_calibration();
        // ±1 mass becomes corrections, ±2 mass becomes DUE risk, deeper
        // aliases become SDC.
        assert!((plan.expected_corrections - rates.rate(7, 1)).abs() < 1e-12);
        assert!((plan.due_risk - rates.rate(7, 2)).abs() < 1e-25);
        assert!(plan.sdc_risk < rates.rate(7, 2) * 1e-6);
    }

    #[test]
    fn sed_detects_but_does_not_correct() {
        let mut ctl = ShiftController::new(ProtectionKind::Sed, ShiftPolicy::Unconstrained);
        let plan = ctl.plan_shift(7, 0);
        let rates = rtm_model::rates::OutOfStepRates::paper_calibration();
        // ±1 detected (DUE); ±2 silently accepted (SDC).
        assert!((plan.due_risk - rates.rate(7, 1)).abs() < 1e-12);
        assert!((plan.sdc_risk - rates.rate(7, 2)).abs() < 1e-25);
        assert_eq!(plan.expected_corrections, 0.0);
    }

    #[test]
    fn safe_sequences_reduce_due_risk() {
        let mut unconstrained =
            ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
        let mut safe = ShiftController::new(
            ProtectionKind::SECDED,
            ShiftPolicy::FixedSafe {
                worst_intensity_hz: 83_000_000,
            },
        );
        let loose = unconstrained.plan_shift(7, 0);
        let tight = safe.plan_shift(7, 0);
        assert!(
            tight.due_risk < loose.due_risk / 1e4,
            "safe {:.3e} vs loose {:.3e}",
            tight.due_risk,
            loose.due_risk
        );
        // ... at a modest latency premium.
        assert!(tight.latency > loose.latency);
        assert!(tight.latency.count() < 3 * loose.latency.count());
    }

    #[test]
    fn stats_accumulate() {
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        ctl.plan_shift(3, 0);
        ctl.plan_shift(4, 1000);
        let s = *ctl.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.steps, 7);
        assert!(s.operations >= 2);
        assert!(s.shift_cycles > 0);
        assert!(s.expected_dues > 0.0);
        ctl.reset();
        assert_eq!(ctl.stats().requests, 0);
    }

    #[test]
    fn corrections_are_negligible_for_latency() {
        // The paper treats correction latency as noise; the expectation
        // confirms it: well under a thousandth of a cycle per shift.
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
        let plan = ctl.plan_shift(7, 0);
        let base = plan.latency.count() as f64;
        let with = ctl.expected_latency_with_corrections(&plan);
        assert!(with > base, "expectation must add something");
        assert!(with - base < 1e-2, "correction overhead {}", with - base);
    }

    #[test]
    fn split_by_cap_covers_distance() {
        assert_eq!(split_by_cap(7, 3), vec![3, 3, 1]);
        assert_eq!(split_by_cap(6, 3), vec![3, 3]);
        assert_eq!(split_by_cap(2, 7), vec![2]);
        assert_eq!(split_by_cap(5, 1), vec![1; 5]);
    }

    #[test]
    #[should_panic]
    fn zero_distance_rejected() {
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let _ = ctl.plan_shift(0, 0);
    }

    #[test]
    fn continuation_saves_exactly_the_setup() {
        // Prime both controllers identically, then serve the same
        // request standalone vs as a batch continuation: the
        // continuation is cheaper by exactly one stage-2 settle and
        // identical in sequence, checks and risk.
        let mut standalone = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut fused = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        standalone.plan_shift(5, 0);
        fused.plan_shift(5, 0);
        let a = standalone.plan_shift(7, 40);
        let b = fused.plan_shift_continuation(7, 40);
        let setup = StsTiming::paper().setup_cycles().count();
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.due_risk, b.due_risk);
        assert_eq!(a.sdc_risk, b.sdc_risk);
        assert_eq!(a.latency.count(), b.latency.count() + setup);
        assert_eq!(fused.stats().batched_requests, 1);
        assert_eq!(fused.stats().batch_saved_cycles, setup);
        assert_eq!(standalone.stats().batched_requests, 0);
    }

    #[test]
    fn batch_amortises_one_setup_per_continuation() {
        let mut batched = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut serial = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let batch = batched.plan_shift_batch(&[3, 3, 3], 100);
        // Replay the same stream without fusion, at the stream's own
        // (longer) timestamps so the interval adapter is no laxer.
        let mut t = 100u64;
        let mut serial_latency = 0u64;
        for plan in &batch.plans {
            let p = serial.plan_shift(plan.distance(), t);
            t += plan.latency.count();
            serial_latency += p.latency.count();
        }
        let setup = StsTiming::paper().setup_cycles().count();
        assert_eq!(batch.plans.len(), 3);
        assert_eq!(batch.saved_cycles, 2 * setup);
        assert_eq!(batch.latency.count(), serial_latency - batch.saved_cycles);
        assert_eq!(batched.stats().requests, 3);
        assert_eq!(batched.stats().batched_requests, 2);
        // Safety accounting is identical to the unfused replay.
        assert_eq!(batched.stats().checks, serial.stats().checks);
        assert_eq!(batched.stats().expected_dues, serial.stats().expected_dues);
        assert_eq!(batched.stats().expected_sdcs, serial.stats().expected_sdcs);
    }

    #[test]
    #[should_panic]
    fn empty_batch_rejected() {
        let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let _ = ctl.plan_shift_batch(&[], 0);
    }

    #[test]
    fn plan_spans_tile_the_transaction_exactly() {
        // The span trace is process-global; this is the only test in
        // the crate that enables it, and it scopes its assertions to
        // the one plan_shift span it creates.
        let spans = rtm_obs::global().spans();
        spans.reset();
        spans.set_enabled(true);
        let mut ctl = ShiftController::new(ProtectionKind::SECDED_O, ShiftPolicy::StepByStep);
        let plan = ctl.plan_shift(5, 1_000);
        spans.set_enabled(false);
        let snap = spans.snapshot();
        let plan_span = snap
            .spans
            .iter()
            .find(|s| s.name == "plan_shift")
            .expect("plan_shift span recorded");
        assert_eq!(plan_span.start_cycle, 1_000);
        assert_eq!(plan_span.duration(), plan.latency.count());
        // Children tile the parent exactly: 5 pulses + 5 checks.
        let children = snap.children_of(plan_span.id);
        assert_eq!(children.len(), 10);
        let child_sum: u64 = children.iter().map(|c| c.duration()).sum();
        assert_eq!(child_sum, plan.latency.count());
        assert_eq!(snap.self_cycles(plan_span), 0);
        let verify_sum: u64 = children
            .iter()
            .filter(|c| c.name == "pecc_verify")
            .map(|c| c.duration())
            .sum();
        assert_eq!(verify_sum, plan.checks as u64 * PECC_CHECK_CYCLES);
        spans.reset();

        // Fused continuations must tile too: the first pulse span is
        // the stage-1-only continuation pulse, so children still sum
        // to the (shorter) plan latency with zero self time.
        spans.set_enabled(true);
        let fused = ctl.plan_shift_continuation(5, 2_000);
        spans.set_enabled(false);
        let snap = spans.snapshot();
        let fused_span = snap
            .spans
            .iter()
            .find(|s| s.name == "plan_shift" && s.start_cycle == 2_000)
            .expect("fused plan_shift span recorded");
        assert_eq!(fused_span.duration(), fused.latency.count());
        let children = snap.children_of(fused_span.id);
        let child_sum: u64 = children.iter().map(|c| c.duration()).sum();
        assert_eq!(child_sum, fused.latency.count());
        assert_eq!(snap.self_cycles(fused_span), 0);
        spans.reset();
    }
}
