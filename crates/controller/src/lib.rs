//! The position-error-aware shift controller — Section 5 of the Hi-fi
//! Playback paper.
//!
//! The controller wraps every shift in a protected transaction: the STS
//! driver issues the two-stage pulse, the p-ECC check logic reads the
//! code taps, and a corrective back-shift repairs correctable errors.
//! On top sits the **safe distance** machinery: long shifts are split
//! into sequences of shorter ones so the per-operation residual risk
//! stays under the reliability budget, either conservatively for the
//! worst-case access rate ("p-ECC-S worst") or adaptively from the
//! measured inter-shift interval ("p-ECC-S adaptive").
//!
//! * [`safety`] — safe-distance arithmetic (the paper's Table 3a);
//! * [`sequence`] — Algorithm 1: minimum-latency shift sequences under
//!   a risk bound (Table 3b), with the interval-threshold table the
//!   adapter indexes at run time;
//! * [`controller`] — the shift controller proper: planning, statistics
//!   and residual-risk accounting for the architecture simulator.
//!
//! # Examples
//!
//! ```
//! use rtm_controller::controller::{ShiftController, ShiftPolicy};
//! use rtm_pecc::layout::ProtectionKind;
//!
//! let mut ctl = ShiftController::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
//! ctl.plan_shift(1, 0); // warm up the interval counter
//! // A 7-step request arriving after a long idle period may run as a
//! // single shift...
//! let relaxed = ctl.plan_shift(7, 3_000_000);
//! assert_eq!(relaxed.sequence, vec![7]);
//! // ...but under back-to-back traffic it is split for safety.
//! let tight = ctl.plan_shift(7, 3_000_004);
//! assert!(tight.sequence.len() > 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod safety;
pub mod sequence;

pub use controller::{ShiftController, ShiftPlan, ShiftPolicy};
pub use safety::SafetyBudget;
pub use sequence::SequenceTable;
