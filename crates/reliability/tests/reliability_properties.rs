//! Property tests for the reliability accounting layer.

use rtm_pecc::layout::ProtectionKind;
use rtm_reliability::accounting::{ReliabilityReport, ShiftMix};
use rtm_reliability::becc::BitEccScenario;
use rtm_util::check::{run_cases, Gen};

/// Probability mass conservation: SDC + DUE + corrections equals
/// the total error mass of the mix, for every scheme.
#[test]
fn scheme_partitions_error_mass() {
    run_cases(128, |g: &mut Gen| {
        let distances = g.vec_of(1, 4, |g| g.u32_in(1, 7));
        let m = g.u32_in(0, 3);
        let mix = ShiftMix::new(distances.iter().map(|&d| (d, 1.0)));
        let kind = if m == 0 {
            ProtectionKind::Sed
        } else {
            ProtectionKind::Correcting { m }
        };
        let intensity = 1.0e6;
        let report = ReliabilityReport::analytic(kind, &mix, intensity);
        let rates = rtm_model::rates::OutOfStepRates::paper_calibration();
        let total: f64 = mix
            .iter()
            .flat_map(|(d, w)| (1..=4u32).map(move |k| (d, w, k)))
            .map(|(d, w, k)| rates.rate(d, k) * w)
            .sum::<f64>()
            * intensity;
        let acc = report.sdc_rate_per_second
            + report.due_rate_per_second
            + report.correction_rate_per_second;
        assert!((acc - total).abs() <= total * 1e-9 + 1e-30);
    });
}

/// Stronger protection never increases SDC or DUE rates (for the
/// same mix and intensity).
#[test]
fn stronger_is_never_worse() {
    run_cases(128, |g: &mut Gen| {
        let distances = g.vec_of(1, 4, |g| g.u32_in(1, 7));
        let mix = ShiftMix::new(distances.iter().map(|&d| (d, 1.0)));
        let i = 1.0e7;
        let mut prev_due = f64::INFINITY;
        for m in 1..=3u32 {
            let r = ReliabilityReport::analytic(ProtectionKind::Correcting { m }, &mix, i);
            assert!(r.due_rate_per_second <= prev_due * (1.0 + 1e-12));
            prev_due = r.due_rate_per_second;
        }
    });
}

/// Reports scale exactly linearly with intensity.
#[test]
fn intensity_linearity() {
    run_cases(256, |g: &mut Gen| {
        let d = g.u32_in(1, 7);
        let scale = g.f64_in(1.1, 100.0);
        let mix = ShiftMix::single(d);
        let a = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, 1e6);
        let b = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, 1e6 * scale);
        if a.due_rate_per_second > 0.0 {
            assert!((b.due_rate_per_second / a.due_rate_per_second - scale).abs() < 1e-9 * scale);
        }
    });
}

/// The b-ECC scenario's second-error probability is monotone in
/// both the error rate and the stripe size, and bounded by 1.
#[test]
fn becc_monotonicity() {
    run_cases(256, |g: &mut Gen| {
        let rate_exp = g.f64_in(-7.0, -3.0);
        let bits_pow = g.u32_in(3, 7);
        let mut s = BitEccScenario::paper_example(1e6);
        s.error_rate_per_shift = 10f64.powf(rate_exp);
        s.stripe_bits = 1 << bits_pow;
        let p = s.second_error_probability();
        assert!((0.0..=1.0).contains(&p));
        let mut bigger = s;
        bigger.stripe_bits *= 2;
        assert!(bigger.second_error_probability() >= p);
        let mut worse = s;
        worse.error_rate_per_shift *= 2.0;
        assert!(worse.second_error_probability() >= p);
    });
}

/// MTTF methods never return negative or NaN values.
#[test]
fn mttf_outputs_sane() {
    run_cases(256, |g: &mut Gen| {
        let d = g.u32_in(1, 7);
        let int_exp = g.f64_in(0.0, 12.0);
        let mix = ShiftMix::single(d);
        for kind in [
            ProtectionKind::None,
            ProtectionKind::Sed,
            ProtectionKind::SECDED,
        ] {
            let r = ReliabilityReport::analytic(kind, &mix, 10f64.powf(int_exp));
            for v in [r.sdc_mttf().as_secs(), r.due_mttf().as_secs()] {
                assert!(!v.is_nan());
                assert!(v > 0.0);
            }
        }
    });
}
