//! Monte-Carlo fault injection against the bit-accurate protected
//! stripe.
//!
//! The analytic accounting in [`crate::accounting`] classifies error
//! magnitudes through the code's phase arithmetic. This module
//! validates that classification physically: it drives a
//! [`rtm_pecc::ProtectedStripe`] with a fault model whose error rates
//! are inflated to observable levels, lets the controller transaction
//! (shift → check → correct → re-check) run, and *observes* what
//! actually happened to the stripe — including whether the data is
//! silently desynchronised.

use rtm_model::alias::AliasTable;
use rtm_model::shift::ShiftOutcome;
use rtm_pecc::code::Verdict;
use rtm_pecc::layout::ProtectionKind;
use rtm_pecc::protected::ProtectedStripe;
use rtm_track::fault::FaultModel;
use rtm_track::geometry::StripeGeometry;
use rtm_util::rng::SmallRng64;

/// The five inflated outcome classes, in alias-table slot order.
const INFLATED_OFFSETS: [i32; 5] = [0, 1, -1, 2, -2];

/// A fault model with uniformly inflated ±k rates, for making rare
/// events observable in bounded test time.
///
/// Outcomes are drawn from a precomputed five-class Walker alias table
/// (`{clean, +1, −1, +2, −2}`) — one RNG draw per sample instead of
/// the old ladder walk plus a second sign draw.
#[derive(Debug, Clone)]
pub struct InflatedFaultModel {
    /// Probability of a ±1 error per shift operation.
    pub p1: f64,
    /// Probability of a ±2 error per shift operation.
    pub p2: f64,
    /// Fraction of errors that over-shift.
    pub plus_fraction: f64,
    table: AliasTable,
    rng: SmallRng64,
}

impl InflatedFaultModel {
    /// Creates a model with the given inflated rates.
    ///
    /// # Panics
    ///
    /// Panics if `p1 + p2 > 1` or any probability is out of range.
    pub fn new(p1: f64, p2: f64, plus_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p1) && (0.0..=1.0).contains(&p2));
        assert!(p1 + p2 <= 1.0, "probabilities must not exceed 1");
        assert!((0.0..=1.0).contains(&plus_fraction));
        let weights = [
            (1.0 - p1 - p2).max(0.0),
            p1 * plus_fraction,
            p1 * (1.0 - plus_fraction),
            p2 * plus_fraction,
            p2 * (1.0 - plus_fraction),
        ];
        Self {
            p1,
            p2,
            plus_fraction,
            table: AliasTable::new(&weights),
            rng: SmallRng64::new(seed),
        }
    }
}

impl FaultModel for InflatedFaultModel {
    fn sample(&mut self, _distance: u32) -> ShiftOutcome {
        let offset = INFLATED_OFFSETS[self.table.sample(&mut self.rng)];
        ShiftOutcome::Pinned { offset }
    }
}

/// Tallies from an injection campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionTally {
    /// Shift transactions driven.
    pub transactions: u64,
    /// Transactions that ended clean and physically synchronised.
    pub clean: u64,
    /// Transactions where the stripe ended desynchronised but the code
    /// reported clean — silent data corruption.
    pub silent_corruptions: u64,
    /// Transactions that surfaced an uncorrectable verdict (DUE).
    pub detected_uncorrectable: u64,
    /// Corrective back-shifts issued across the campaign.
    pub corrections: u64,
}

impl InjectionTally {
    /// Observed SDC probability per transaction.
    pub fn sdc_rate(&self) -> f64 {
        self.silent_corruptions as f64 / self.transactions.max(1) as f64
    }

    /// Observed DUE probability per transaction.
    pub fn due_rate(&self) -> f64 {
        self.detected_uncorrectable as f64 / self.transactions.max(1) as f64
    }
}

/// Runs an injection campaign: `transactions` protected shift
/// transactions of random legal distances on a fresh stripe, with
/// faults drawn from `faults`. After any uncorrectable verdict the
/// stripe is rebuilt (modelling the refill-from-upper-level recovery).
///
/// # Panics
///
/// Panics if the layout is invalid for the geometry.
pub fn run_injection(
    geometry: StripeGeometry,
    kind: ProtectionKind,
    faults: &mut dyn FaultModel,
    transactions: u64,
    seed: u64,
) -> InjectionTally {
    let mut stripe = ProtectedStripe::new(geometry, kind).expect("valid layout");
    let mut rng = SmallRng64::new(seed);
    let mut tally = InjectionTally::default();
    let max_step = stripe.layout().max_shift_per_op as i64;
    for _ in 0..transactions {
        tally.transactions += 1;
        // Pick a random legal target different from the current head.
        let target = loop {
            let t = rng.next_below(geometry.max_shift() as u64 + 1) as i64;
            if t != stripe.believed_head() {
                break t;
            }
        };
        let corrections_before = stripe.corrections();
        let mut verdict = Verdict::Clean;
        while stripe.believed_head() != target {
            let delta = (target - stripe.believed_head()).clamp(-max_step, max_step);
            verdict = stripe.shift_checked(delta, faults, 3);
            if verdict == Verdict::Uncorrectable {
                break;
            }
        }
        tally.corrections += stripe.corrections() - corrections_before;
        match verdict {
            Verdict::Uncorrectable => {
                tally.detected_uncorrectable += 1;
                // Recovery: refill the stripe from clean state.
                stripe = ProtectedStripe::new(geometry, kind).expect("valid layout");
            }
            _ => {
                if stripe.is_synchronised() {
                    tally.clean += 1;
                } else {
                    tally.silent_corruptions += 1;
                    // The corruption is latent; reset so later
                    // transactions are independently classified.
                    stripe = ProtectedStripe::new(geometry, kind).expect("valid layout");
                }
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> StripeGeometry {
        StripeGeometry::paper_default()
    }

    #[test]
    fn secded_corrects_all_one_step_injections() {
        // Only ±1 errors injected: SECDED must repair every one.
        let mut faults = InflatedFaultModel::new(0.05, 0.0, 0.8, 1);
        let tally = run_injection(geometry(), ProtectionKind::SECDED, &mut faults, 3000, 2);
        assert_eq!(tally.silent_corruptions, 0, "{tally:?}");
        assert_eq!(tally.detected_uncorrectable, 0, "{tally:?}");
        assert!(tally.corrections > 50, "{tally:?}");
        assert_eq!(tally.clean, tally.transactions);
    }

    #[test]
    fn secded_flags_two_step_injections_as_due() {
        let mut faults = InflatedFaultModel::new(0.0, 0.02, 0.8, 3);
        let tally = run_injection(geometry(), ProtectionKind::SECDED, &mut faults, 3000, 4);
        assert!(tally.detected_uncorrectable > 10, "{tally:?}");
        assert_eq!(tally.silent_corruptions, 0, "±2 is always detected");
    }

    #[test]
    fn unprotected_stripe_corrupts_silently() {
        let mut faults = InflatedFaultModel::new(0.02, 0.0, 0.8, 5);
        let tally = run_injection(geometry(), ProtectionKind::None, &mut faults, 3000, 6);
        assert!(tally.silent_corruptions > 10, "{tally:?}");
        assert_eq!(tally.detected_uncorrectable, 0);
    }

    #[test]
    fn sed_detects_one_step_but_cannot_fix() {
        let mut faults = InflatedFaultModel::new(0.02, 0.0, 0.8, 7);
        let tally = run_injection(geometry(), ProtectionKind::Sed, &mut faults, 3000, 8);
        assert!(tally.detected_uncorrectable > 10, "{tally:?}");
        assert_eq!(tally.corrections, 0, "SED never corrects");
    }

    #[test]
    fn stronger_code_turns_dues_into_corrections() {
        let mut faults = InflatedFaultModel::new(0.0, 0.02, 0.8, 9);
        let tally = run_injection(
            geometry(),
            ProtectionKind::Correcting { m: 2 },
            &mut faults,
            3000,
            10,
        );
        assert_eq!(tally.detected_uncorrectable, 0, "{tally:?}");
        assert_eq!(tally.silent_corruptions, 0, "{tally:?}");
        assert!(tally.corrections > 10);
    }

    #[test]
    fn observed_rates_match_injected_rates() {
        let p2 = 0.01;
        let mut faults = InflatedFaultModel::new(0.0, p2, 0.8, 11);
        let n = 20_000;
        let tally = run_injection(geometry(), ProtectionKind::SECDED, &mut faults, n, 12);
        // Each transaction runs ~avg 2+ shift ops (mean distance over
        // random seeks with corrections); the DUE rate per transaction
        // should be within a factor ~4 of p2 × ops-per-transaction ≈ p2.
        let due = tally.due_rate();
        assert!(
            (p2 * 0.5..p2 * 8.0).contains(&due),
            "observed DUE rate {due:.4} vs injected {p2}"
        );
    }

    #[test]
    fn fault_free_campaign_is_all_clean() {
        let mut faults = InflatedFaultModel::new(0.0, 0.0, 0.8, 13);
        let tally = run_injection(geometry(), ProtectionKind::SECDED, &mut faults, 500, 14);
        assert_eq!(tally.clean, 500);
        assert_eq!(tally.corrections, 0);
    }

    #[test]
    #[should_panic]
    fn overfull_probabilities_rejected() {
        let _ = InflatedFaultModel::new(0.7, 0.6, 0.5, 1);
    }
}
