//! The motivation curve — Fig. 1 of the paper.
//!
//! For a racetrack LLC performing `I` shift operations per second, a
//! per-stripe position-error rate `p` yields MTTF `1/(p·I·stripes)`
//! (every stripe of the commanded group fails independently). The paper
//! plots this against `p` and reads off that reaching a 10-year MTTF
//! needs rates below roughly 10⁻¹⁹ — while physical shifts deliver
//! 10⁻⁴–10⁻⁵.

use rtm_model::rates::mttf_for_error_rate;
use rtm_util::units::Seconds;

/// One point of the Fig. 1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure1Point {
    /// Per-stripe, per-shift position error rate.
    pub error_rate: f64,
    /// Resulting MTTF.
    pub mttf: Seconds,
}

/// Reference lines the paper draws on Fig. 1.
pub const REFERENCE_LINES: [(&str, f64); 5] = [
    ("1000 years", 1000.0 * rtm_util::units::SECONDS_PER_YEAR),
    ("10 years", 10.0 * rtm_util::units::SECONDS_PER_YEAR),
    ("1 month", 30.0 * 24.0 * 3600.0),
    ("1 day", 24.0 * 3600.0),
    ("1 min", 60.0),
];

/// The effective shift intensity of the Fig. 1 LLC (group shift
/// commands per second times stripes per group): the STAG-style 128 MB
/// LLC at its peak access rate.
pub fn paper_effective_intensity() -> f64 {
    // 62.5 M shift-bearing accesses/s × 512 stripes per line group.
    6.25e7 * 512.0
}

/// Generates the Fig. 1 curve over `[rate_lo, rate_hi]` with
/// `points_per_decade` logarithmically spaced samples.
///
/// # Panics
///
/// Panics unless `0 < rate_lo < rate_hi <= 1` and
/// `points_per_decade > 0`.
pub fn figure1_curve(
    rate_lo: f64,
    rate_hi: f64,
    points_per_decade: u32,
    effective_intensity: f64,
) -> Vec<Figure1Point> {
    assert!(rate_lo > 0.0 && rate_lo < rate_hi && rate_hi <= 1.0);
    assert!(points_per_decade > 0);
    let decades = (rate_hi / rate_lo).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            let error_rate = rate_lo * 10f64.powf(f * decades);
            Figure1Point {
                error_rate,
                mttf: mttf_for_error_rate(error_rate, effective_intensity),
            }
        })
        .collect()
}

/// The error rate needed to reach `target` MTTF at the Fig. 1
/// intensity — the "must be lower than 10⁻¹⁹" reading.
pub fn required_rate(target: Seconds) -> f64 {
    rtm_model::rates::required_rate_for_mttf(target, paper_effective_intensity())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_year_target_needs_1e19() {
        let rate = required_rate(Seconds::from_years(10.0));
        // Paper: "position error rate needs to be at least lower than
        // 10^-19 to satisfy a requirement of 10-year MTTF".
        assert!((1e-20..1e-18).contains(&rate), "required rate {rate:.3e}");
    }

    #[test]
    fn typical_rates_fail_catastrophically() {
        // At the physical 1e-4..1e-5 rates, MTTF is microseconds.
        let p = figure1_curve(1e-5, 1e-4, 1, paper_effective_intensity());
        for pt in &p {
            assert!(pt.mttf.as_secs() < 1e-2, "{:?}", pt);
        }
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let pts = figure1_curve(1e-24, 1e-2, 4, paper_effective_intensity());
        for w in pts.windows(2) {
            assert!(w[1].error_rate > w[0].error_rate);
            assert!(w[1].mttf.as_secs() < w[0].mttf.as_secs());
        }
    }

    #[test]
    fn curve_spans_reference_lines() {
        let pts = figure1_curve(1e-24, 1e-2, 4, paper_effective_intensity());
        let lo = pts.last().unwrap().mttf.as_secs();
        let hi = pts.first().unwrap().mttf.as_secs();
        for (name, line) in REFERENCE_LINES {
            assert!(
                (lo..hi).contains(&line),
                "reference {name} outside curve range"
            );
        }
    }

    #[test]
    #[should_panic]
    fn bad_range_rejected() {
        let _ = figure1_curve(1e-3, 1e-5, 4, 1e9);
    }
}
