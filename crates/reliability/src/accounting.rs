//! Per-scheme reliability reports: shift mix × intensity × code →
//! SDC/DUE failure rates and MTTFs.
//!
//! The classification follows the code semantics exactly (including
//! aliasing): for each shift distance `d` and error magnitude `k`, the
//! active p-ECC either silently accepts (`SDC`), corrects in place
//! (harmless), mis-corrects (`SDC`), or detects without correcting
//! (`DUE`). Reference targets follow the paper's Section 2.2: IBM's
//! 1000-year SDC and 10-year DUE goals.

use rtm_model::rates::OutOfStepRates;
use rtm_pecc::code::Verdict;
use rtm_pecc::layout::ProtectionKind;
use rtm_util::units::{Seconds, SECONDS_PER_YEAR};
use std::collections::BTreeMap;

/// IBM's SDC target the paper adopts (1000 years).
pub const SDC_TARGET_SECONDS: f64 = 1000.0 * SECONDS_PER_YEAR;

/// IBM's DUE target the paper adopts (10 years).
pub const DUE_TARGET_SECONDS: f64 = 10.0 * SECONDS_PER_YEAR;

/// A distribution over single-operation shift distances.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftMix {
    weights: BTreeMap<u32, f64>,
}

impl ShiftMix {
    /// Builds a mix from `(distance, weight)` pairs; weights are
    /// normalised.
    ///
    /// # Panics
    ///
    /// Panics if no positive-weight, positive-distance entry exists.
    pub fn new<I: IntoIterator<Item = (u32, f64)>>(entries: I) -> Self {
        let mut weights = BTreeMap::new();
        for (d, w) in entries {
            if w > 0.0 {
                assert!(d > 0, "distance must be positive");
                *weights.entry(d).or_insert(0.0) += w;
            }
        }
        assert!(!weights.is_empty(), "shift mix must not be empty");
        let total: f64 = weights.values().sum();
        for w in weights.values_mut() {
            *w /= total;
        }
        Self { weights }
    }

    /// Uniform mix over a distance range.
    pub fn uniform(range: std::ops::RangeInclusive<u32>) -> Self {
        Self::new(range.map(|d| (d, 1.0)))
    }

    /// A single fixed distance.
    pub fn single(distance: u32) -> Self {
        Self::new([(distance, 1.0)])
    }

    /// Iterates `(distance, probability)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.weights.iter().map(|(&d, &w)| (d, w))
    }

    /// Mean shift distance.
    pub fn mean_distance(&self) -> f64 {
        self.iter().map(|(d, w)| d as f64 * w).sum()
    }
}

/// SDC/DUE failure rates for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityReport {
    /// Expected silent corruptions per second.
    pub sdc_rate_per_second: f64,
    /// Expected detected-uncorrectable errors per second.
    pub due_rate_per_second: f64,
    /// Expected (harmless) corrections per second.
    pub correction_rate_per_second: f64,
}

impl ReliabilityReport {
    /// Analytic report for `kind` protection under a shift `mix` at
    /// `intensity` stripe-shift operations per second.
    ///
    /// `intensity` counts *stripe* operations: for a 512-stripe line
    /// group served together, multiply the group command rate by 512.
    pub fn analytic(kind: ProtectionKind, mix: &ShiftMix, intensity: f64) -> Self {
        Self::with_rates(kind, mix, intensity, &OutOfStepRates::paper_calibration())
    }

    /// Analytic report with an explicit rate table.
    pub fn with_rates(
        kind: ProtectionKind,
        mix: &ShiftMix,
        intensity: f64,
        rates: &OutOfStepRates,
    ) -> Self {
        assert!(intensity >= 0.0, "intensity must be non-negative");
        let mut sdc = 0.0;
        let mut due = 0.0;
        let mut corrections = 0.0;
        for (d, w) in mix.iter() {
            for k in 1..=4u32 {
                let p = rates.rate(d, k) * w;
                if p <= 0.0 {
                    continue;
                }
                // Kind-level classification covers the cyclic family
                // (with its aliasing) and the stream codecs (which
                // never alias) alike; an unprotected kind classifies
                // everything Clean, i.e. silent.
                match kind.classify_offset(k as i32) {
                    Verdict::Clean => sdc += p,
                    Verdict::Correctable(c) if c == k as i32 => corrections += p,
                    Verdict::Correctable(_) => sdc += p,
                    Verdict::Uncorrectable => due += p,
                }
            }
        }
        Self {
            sdc_rate_per_second: sdc * intensity,
            due_rate_per_second: due * intensity,
            correction_rate_per_second: corrections * intensity,
        }
    }

    /// SDC mean time to failure.
    pub fn sdc_mttf(&self) -> Seconds {
        rate_to_mttf(self.sdc_rate_per_second)
    }

    /// DUE mean time to failure.
    pub fn due_mttf(&self) -> Seconds {
        rate_to_mttf(self.due_rate_per_second)
    }

    /// Meets the 1000-year SDC goal.
    pub fn meets_sdc_target(&self) -> bool {
        self.sdc_mttf().as_secs() >= SDC_TARGET_SECONDS
    }

    /// Meets the 10-year DUE goal.
    pub fn meets_due_target(&self) -> bool {
        self.due_mttf().as_secs() >= DUE_TARGET_SECONDS
    }
}

fn rate_to_mttf(rate: f64) -> Seconds {
    if rate <= 0.0 {
        Seconds(f64::INFINITY)
    } else {
        Seconds(1.0 / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's default LLC serves 512-stripe groups; a moderate
    /// workload issues ~10M group commands/s.
    fn paper_intensity() -> f64 {
        1.0e7 * 512.0
    }

    #[test]
    fn baseline_mttf_is_microseconds() {
        // Fig. 10 baseline: 1.33 µs SDC MTTF.
        let mix = ShiftMix::uniform(1..=7);
        let r = ReliabilityReport::analytic(ProtectionKind::None, &mix, paper_intensity());
        let mttf = r.sdc_mttf().as_secs();
        assert!(
            (1e-7..1e-3).contains(&mttf),
            "baseline SDC MTTF {mttf:.3e} s"
        );
        assert_eq!(r.due_rate_per_second, 0.0, "nothing is ever detected");
    }

    #[test]
    fn sed_detects_but_leaves_due_exposure() {
        let mix = ShiftMix::uniform(1..=7);
        let r = ReliabilityReport::analytic(ProtectionKind::Sed, &mix, paper_intensity());
        // Fig. 10: SED improves SDC MTTF to ~10 hours; Fig. 11: DUE
        // MTTF is tiny because every ±1 is only detected.
        let sdc_hours = r.sdc_mttf().as_secs() / 3600.0;
        assert!(sdc_hours > 1.0, "SED SDC MTTF {sdc_hours} hours");
        assert!(r.due_mttf().as_secs() < 1.0, "SED DUE MTTF should be tiny");
        assert!(!r.meets_due_target());
    }

    #[test]
    fn secded_fixes_sdc_keeps_modest_due() {
        let mix = ShiftMix::uniform(1..=7);
        let r = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, paper_intensity());
        // Fig. 10: SECDED SDC MTTF > 1000 years.
        assert!(r.meets_sdc_target(), "SDC MTTF {}", r.sdc_mttf().as_years());
        // Fig. 11: plain SECDED DUE MTTF ~1 day-ish — not good enough.
        let due_days = r.due_mttf().as_secs() / 86400.0;
        assert!(
            (0.01..100.0).contains(&due_days),
            "DUE MTTF {due_days} days"
        );
        assert!(!r.meets_due_target());
    }

    #[test]
    fn safe_distance_reaches_due_target() {
        // Restricting shifts to ≤3 steps (the worst-case safe distance)
        // pushes DUE MTTF past 10 years — the p-ECC-S result.
        let mix = ShiftMix::uniform(1..=3);
        let r = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, paper_intensity());
        assert!(
            r.meets_due_target(),
            "DUE MTTF {} years",
            r.due_mttf().as_years()
        );
        assert!(r.meets_sdc_target());
    }

    #[test]
    fn pecc_o_single_steps_are_safest() {
        let r = ReliabilityReport::analytic(
            ProtectionKind::SECDED_O,
            &ShiftMix::single(1),
            paper_intensity(),
        );
        // Fig. 12: p-ECC-O tops the DUE MTTF chart.
        assert!(r.due_mttf().as_years() > 1000.0);
    }

    #[test]
    fn stronger_codes_shift_due_to_corrections() {
        let mix = ShiftMix::uniform(1..=7);
        let secded = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, paper_intensity());
        let m2 = ReliabilityReport::analytic(
            ProtectionKind::Correcting { m: 2 },
            &mix,
            paper_intensity(),
        );
        // m = 2 corrects ±2 as well, so its DUE rate (±3) is far lower.
        assert!(m2.due_rate_per_second < secded.due_rate_per_second * 1e-3);
        assert!(m2.correction_rate_per_second > secded.correction_rate_per_second);
    }

    #[test]
    fn report_scales_linearly_with_intensity() {
        let mix = ShiftMix::uniform(1..=7);
        let a = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, 1e6);
        let b = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, 2e6);
        assert!((b.due_rate_per_second / a.due_rate_per_second - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_intensity_is_immortal() {
        let mix = ShiftMix::single(7);
        let r = ReliabilityReport::analytic(ProtectionKind::None, &mix, 0.0);
        assert!(!r.sdc_mttf().as_secs().is_finite());
    }

    #[test]
    fn shift_mix_normalises_and_means() {
        let mix = ShiftMix::new([(1, 2.0), (3, 2.0)]);
        assert!((mix.mean_distance() - 2.0).abs() < 1e-12);
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_mix_rejected() {
        let _ = ShiftMix::new(std::iter::empty::<(u32, f64)>());
    }
}
