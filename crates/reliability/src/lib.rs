//! MTTF/FIT arithmetic and SDC/DUE accounting for racetrack-memory
//! position errors.
//!
//! * [`figure1`] — the motivation curve: MTTF of a racetrack LLC
//!   against the per-stripe position-error rate (the paper's Fig. 1),
//!   with the 10-year DUE and 1000-year SDC reference targets;
//! * [`accounting`] — per-scheme reliability reports: feed in a shift
//!   distance histogram and an intensity, get SDC/DUE failure rates and
//!   MTTFs classified by the active p-ECC;
//! * [`injection`] — Monte-Carlo fault injection against the
//!   *bit-accurate* protected stripe, cross-validating the analytic
//!   classification (every injected fault is physically simulated and
//!   its outcome observed).
//!
//! # Examples
//!
//! ```
//! use rtm_reliability::accounting::{ReliabilityReport, ShiftMix};
//! use rtm_pecc::layout::ProtectionKind;
//!
//! let mix = ShiftMix::uniform(1..=7);
//! let report = ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, 1.0e7);
//! // SECDED corrects ±1, so silent corruption is essentially gone...
//! assert!(report.meets_sdc_target());
//! // ...while ±2 errors remain detected-but-uncorrectable.
//! assert!(report.due_rate_per_second > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod becc;
pub mod figure1;
pub mod injection;

pub use accounting::{ReliabilityReport, ShiftMix};
pub use figure1::figure1_curve;
