//! Why conventional bit-error ECC fails against position errors —
//! the quantitative model behind the paper's Section 3.2.
//!
//! Two data layouts, two failure modes:
//!
//! * **word-per-stripe** — multiple bits of a protected word live on
//!   one stripe. A ±1 position error shifts *all* of them together, so
//!   the b-ECC check simply evaluates a different (but internally
//!   consistent) word: the error is structurally undetectable.
//! * **bit-interleaved** — one bit per stripe (the 512-stripe line
//!   groups). A single desynchronised stripe looks like a 1-bit error,
//!   which SECDED b-ECC happily "corrects" on every read — but the
//!   stripe stays physically misaligned, so latent desyncs accumulate
//!   until two overlap (uncorrectable / miscorrected). The only cure
//!   is a full refresh, which itself costs thousands of shifts; the
//!   probability that a *second* position error lands during the
//!   refresh is the paper's 0.17 for its 8-bit-stripe example, and the
//!   resulting MTTF collapses to the paper's quoted ~20 ms.

use rtm_util::math::any_of_n;
use rtm_util::units::Seconds;

/// Parameters of a bit-interleaved b-ECC protected racetrack memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitEccScenario {
    /// Stripes per protected line group (512 for a 64 B line).
    pub stripes: u32,
    /// Data domains per stripe.
    pub stripe_bits: u32,
    /// Per-shift, per-stripe position error rate (±1 dominates).
    pub error_rate_per_shift: f64,
    /// Group shift commands per second.
    pub group_shift_intensity: f64,
}

impl BitEccScenario {
    /// The paper's Section 3.2 example: 8-bit stripes, 512-stripe
    /// groups, 1-step error rate from Table 2.
    pub fn paper_example(group_shift_intensity: f64) -> Self {
        Self {
            stripes: 512,
            stripe_bits: 8,
            error_rate_per_shift: 4.55e-5,
            group_shift_intensity,
        }
    }

    /// Shift operations needed to refresh (re-read and rewrite) every
    /// domain of every stripe in the group: each stripe's full content
    /// passes its port once, i.e. `stripe_bits` 1-step shifts per
    /// stripe.
    pub fn refresh_shift_ops(&self) -> u64 {
        self.stripes as u64 * self.stripe_bits as u64
    }

    /// Probability that at least one further position error occurs
    /// somewhere in the group *during* the refresh — the paper's 0.17.
    pub fn second_error_probability(&self) -> f64 {
        any_of_n(self.error_rate_per_shift, self.refresh_shift_ops() as f64)
    }

    /// Rate at which the group detects a 1-bit (single-stripe) desync,
    /// triggering a refresh.
    pub fn detection_rate_per_second(&self) -> f64 {
        // Any of the stripes may slip on any group shift command.
        self.error_rate_per_shift * self.stripes as f64 * self.group_shift_intensity
    }

    /// MTTF of the b-ECC protected memory: a failure occurs when a
    /// refresh (triggered at the detection rate) suffers a second
    /// error — at which point two stripes are desynchronised and
    /// SECDED b-ECC mis-corrects or flags an uncorrectable error.
    pub fn mttf(&self) -> Seconds {
        let failure_rate = self.detection_rate_per_second() * self.second_error_probability();
        if failure_rate <= 0.0 {
            Seconds(f64::INFINITY)
        } else {
            Seconds(1.0 / failure_rate)
        }
    }
}

/// The word-per-stripe layout: a uniform k-step shift of the whole
/// word is invisible to any bit-ECC (the syndrome of a valid codeword's
/// shifted *neighbour* is again a valid codeword of the neighbouring
/// data). Returns the fraction of position errors detected: zero.
pub fn word_per_stripe_detection_fraction() -> f64 {
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_second_error_probability() {
        // "For an 8-bit racetrack memory stripe, the possibility is
        // about 0.17."
        let s = BitEccScenario::paper_example(1.0e6);
        let p = s.second_error_probability();
        assert!((0.15..0.20).contains(&p), "second-error probability {p:.3}");
    }

    #[test]
    fn paper_mttf_collapses_to_milliseconds() {
        // "the MTTF after using b-ECC is 20ms" — reproduced at the
        // intensity that makes the paper's numbers self-consistent
        // (~12.5 K group commands/s keeps the LLC modestly busy).
        let s = BitEccScenario::paper_example(12_500.0);
        let mttf = s.mttf().as_secs();
        assert!(
            (5e-3..1e-1).contains(&mttf),
            "b-ECC MTTF {mttf:.4} s (paper: ~20 ms)"
        );
        // Far, far from the 10-year target at ANY plausible intensity.
        let busy = BitEccScenario::paper_example(1.0e7);
        assert!(busy.mttf().as_secs() < 1.0);
    }

    #[test]
    fn word_per_stripe_is_blind() {
        assert_eq!(word_per_stripe_detection_fraction(), 0.0);
    }

    #[test]
    fn pecc_beats_becc_by_many_orders() {
        // The paper's punchline: dedicated position protection, not
        // bit protection, is what racetrack memory needs.
        let becc = BitEccScenario::paper_example(1.0e7).mttf().as_secs();
        let pecc = crate::accounting::ReliabilityReport::analytic(
            rtm_pecc::layout::ProtectionKind::SECDED,
            &crate::accounting::ShiftMix::uniform(1..=3),
            1.0e7 * 512.0,
        )
        .due_mttf()
        .as_secs();
        assert!(pecc > becc * 1e9, "p-ECC {pecc:.3e} vs b-ECC {becc:.3e}");
    }

    #[test]
    fn refresh_cost_scales_with_geometry() {
        let small = BitEccScenario::paper_example(1e6);
        let mut large = small;
        large.stripe_bits = 64;
        assert_eq!(small.refresh_shift_ops(), 512 * 8);
        assert_eq!(large.refresh_shift_ops(), 512 * 64);
        assert!(large.second_error_probability() > small.second_error_probability());
    }

    #[test]
    fn mttf_monotone_in_intensity() {
        let slow = BitEccScenario::paper_example(1e4).mttf().as_secs();
        let fast = BitEccScenario::paper_example(1e6).mttf().as_secs();
        assert!(fast < slow);
    }
}
