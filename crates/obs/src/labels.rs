//! Dimensioned metrics: counters, gauges and histograms keyed on
//! `(name, label-set)` instead of a flat name.
//!
//! Flat names force instrumentation to mangle dimensions into strings
//! (`"serve.tenant3.requests"`), which neither aggregates nor filters.
//! Here a metric carries an explicit label set — `tenant`, `bank`,
//! `scheme`, `policy`, `engine`, `workload` — and the snapshot keeps
//! every combination separately, sorted, so reports can slice along
//! any dimension.
//!
//! # Cost model
//!
//! Label sets are **interned per shard**: a caller canonicalises its
//! labels once (at setup, or per cell — not per event) via
//! [`LabeledMetrics::intern`] and receives a copyable [`LabelId`].
//! Re-interning an already known set is lock-free: each shard keeps a
//! read-mostly [`RcuCell`] snapshot of its canonical-key → id index,
//! so the lookup is an atomic pointer load plus a binary search, and
//! the shard `Mutex` is taken only on a genuine miss (first sighting
//! of a label set). The hot recording path costs one relaxed atomic
//! load for the enabled gate, an FNV hash, and one short-lived shard
//! `Mutex` — with no per-event allocation or label sorting. Shards are
//! picked by the *label set* (not the metric name), so the interned id
//! also names its shard and a recording call locks only that shard.
//!
//! The `*_with` convenience methods intern on every call; they are for
//! cold paths (per-run summaries), not per-event instrumentation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use rtm_par::rcu::RcuCell;

use crate::json::Json;
use crate::metrics::{
    fnv1a, merge_histograms, metric_from_json, metric_to_json, summarise, Hist, Metric,
    MetricValue, DEFAULT_BUCKETS, SHARD_COUNT,
};

/// An interned label set: the shard that owns it plus its index there.
/// Cheap to copy and stable for the life of the [`LabeledMetrics`]
/// (ids survive [`LabeledMetrics::reset`], which clears values only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelId {
    shard: u8,
    idx: u32,
}

#[derive(Debug, Default)]
struct LabelShard {
    /// Canonical label string → interned index.
    interned: BTreeMap<String, u32>,
    /// Interned index → sorted `(key, value)` pairs.
    sets: Vec<Vec<(String, String)>>,
    /// `(metric name, interned index)` → value.
    metrics: BTreeMap<(String, u32), Metric>,
}

/// Canonical form of a label set: pairs sorted by key, joined with
/// unit/record separators so no key or value concatenation aliases
/// another set.
fn canonical(labels: &[(&str, &str)]) -> (String, Vec<(String, String)>) {
    let mut pairs: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    pairs.sort();
    pairs.dedup();
    let mut key = String::new();
    for (k, v) in &pairs {
        key.push_str(k);
        key.push('\u{1f}');
        key.push_str(v);
        key.push('\u{1e}');
    }
    (key, pairs)
}

/// A registry of labeled metrics (see the module docs for the cost
/// model). Like [`crate::metrics::MetricsRegistry`], it is disabled by
/// default and a disabled recording call is one relaxed atomic load.
#[derive(Debug)]
pub struct LabeledMetrics {
    enabled: AtomicBool,
    shards: [Mutex<LabelShard>; SHARD_COUNT],
    /// Per-shard read-mostly copy of the canonical-key → id index, so
    /// re-interning a known label set never takes the shard mutex.
    /// Writers (inside the shard mutex) publish a fresh sorted copy.
    intern_index: [RcuCell<Vec<(String, u32)>>; SHARD_COUNT],
}

impl Default for LabeledMetrics {
    fn default() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            shards: std::array::from_fn(|_| Mutex::new(LabelShard::default())),
            intern_index: std::array::from_fn(|_| RcuCell::new(Vec::new())),
        }
    }
}

impl LabeledMetrics {
    /// Creates an empty, disabled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on or off (off by default). Interning works
    /// regardless, so ids can be prepared before recording starts.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Interns a label set and returns its id. Order and duplicates in
    /// `labels` do not matter — pairs are sorted and deduplicated, so
    /// `[("a","1"),("b","2")]` and `[("b","2"),("a","1")]` intern to
    /// the same id.
    pub fn intern(&self, labels: &[(&str, &str)]) -> LabelId {
        let (key, pairs) = canonical(labels);
        let shard = (fnv1a(&key) % SHARD_COUNT as u64) as u8;
        // Lock-free fast path: a known set is found in the shard's
        // published index without touching the mutex.
        {
            let index = self.intern_index[shard as usize].read();
            if let Ok(i) = index.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
                return LabelId {
                    shard,
                    idx: index[i].1,
                };
            }
        }
        let mut inner = self.shard(shard as usize);
        // Re-check under the mutex: another thread may have interned
        // this set between our index read and the lock.
        if let Some(&idx) = inner.interned.get(&key) {
            return LabelId { shard, idx };
        }
        let idx = inner.sets.len() as u32;
        inner.interned.insert(key, idx);
        inner.sets.push(pairs);
        // Publish a fresh index copy; the shard mutex serialises
        // writers, and the BTreeMap iterates in key order, so the copy
        // is already sorted for the binary search above.
        self.intern_index[shard as usize].replace(
            inner
                .interned
                .iter()
                .map(|(k, &i)| (k.clone(), i))
                .collect(),
        );
        LabelId { shard, idx }
    }

    fn shard(&self, i: usize) -> std::sync::MutexGuard<'_, LabelShard> {
        self.shards[i].lock().expect("labeled metrics poisoned")
    }

    /// Adds `delta` to counter `name` under the interned label set.
    pub fn counter_add(&self, name: &str, id: LabelId, delta: u64) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.shard(id.shard as usize);
        match inner
            .metrics
            .entry((name.to_string(), id.idx))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            _ => debug_assert!(false, "labeled metric {name} is not a counter"),
        }
    }

    /// Sets gauge `name` under the interned label set.
    pub fn gauge_set(&self, name: &str, id: LabelId, value: f64) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.shard(id.shard as usize);
        match inner
            .metrics
            .entry((name.to_string(), id.idx))
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(v) => *v = value,
            _ => debug_assert!(false, "labeled metric {name} is not a gauge"),
        }
    }

    /// Records `value` into histogram `name` under the interned label
    /// set, with the [`DEFAULT_BUCKETS`] layout.
    pub fn observe(&self, name: &str, id: LabelId, value: f64) {
        self.observe_with_buckets(name, id, value, &DEFAULT_BUCKETS);
    }

    /// [`Self::observe`] with explicit bucket bounds on first use.
    pub fn observe_with_buckets(&self, name: &str, id: LabelId, value: f64, bounds: &[f64]) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.shard(id.shard as usize);
        match inner
            .metrics
            .entry((name.to_string(), id.idx))
            .or_insert_with(|| Metric::Histogram(Hist::new(bounds)))
        {
            Metric::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "labeled metric {name} is not a histogram"),
        }
    }

    /// Cold-path convenience: interns `labels` and adds to the counter
    /// in one call.
    pub fn counter_add_with(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if !self.enabled() {
            return;
        }
        let id = self.intern(labels);
        self.counter_add(name, id, delta);
    }

    /// Cold-path convenience: interns `labels` and sets the gauge in
    /// one call.
    pub fn gauge_set_with(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled() {
            return;
        }
        let id = self.intern(labels);
        self.gauge_set(name, id, value);
    }

    /// Cold-path convenience: interns `labels` and records into the
    /// histogram in one call.
    pub fn observe_labeled(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled() {
            return;
        }
        let id = self.intern(labels);
        self.observe(name, id, value);
    }

    /// Clears every metric *value*; interned label sets (and handed-out
    /// [`LabelId`]s) stay valid. The enabled flag is untouched.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .expect("labeled metrics poisoned")
                .metrics
                .clear();
        }
    }

    /// A copy of every labeled metric, sorted by `(name, labels)` so
    /// the output is independent of interning order and shard layout.
    pub fn snapshot(&self) -> LabeledSnapshot {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let inner = shard.lock().expect("labeled metrics poisoned");
            for ((name, idx), metric) in &inner.metrics {
                entries.push(LabeledMetricSnapshot {
                    name: name.clone(),
                    labels: inner.sets[*idx as usize].clone(),
                    value: match metric {
                        Metric::Counter(v) => MetricValue::Counter(*v),
                        Metric::Gauge(v) => MetricValue::Gauge(*v),
                        Metric::Histogram(h) => MetricValue::Histogram(summarise(h)),
                    },
                });
            }
        }
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        LabeledSnapshot { entries }
    }
}

/// A point-in-time copy of one labeled metric.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledMetricSnapshot {
    /// The metric's registered name.
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

impl LabeledMetricSnapshot {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The labels as a compact `k=v;k=v` string (CSV-friendly).
    pub fn label_string(&self) -> String {
        self.labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// A copy of a whole labeled registry, sorted by `(name, labels)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabeledSnapshot {
    /// All labeled metrics, sorted by `(name, labels)`.
    pub entries: Vec<LabeledMetricSnapshot>,
}

impl LabeledSnapshot {
    /// Looks up a metric by name and exact label set (order-sensitive
    /// on sorted pairs — pass them sorted, as snapshots store them).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|e| &e.value)
    }

    /// The value of counter `name` under `labels`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name` under `labels`, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Every entry of metric `name`, in label order.
    pub fn series(&self, name: &str) -> Vec<&LabeledMetricSnapshot> {
        self.entries.iter().filter(|e| e.name == name).collect()
    }

    /// Merges counters by addition, gauges by taking `other`'s value,
    /// histograms bucket-wise; entries only in `other` are appended.
    /// Mirrors [`crate::metrics::RegistrySnapshot::absorb`].
    pub fn absorb(&mut self, other: &LabeledSnapshot) {
        for theirs in &other.entries {
            match self
                .entries
                .iter_mut()
                .find(|e| e.name == theirs.name && e.labels == theirs.labels)
            {
                None => self.entries.push(theirs.clone()),
                Some(mine) => match (&mut mine.value, &theirs.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        merge_histograms(a, b);
                    }
                    _ => {}
                },
            }
        }
        self.entries
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Encodes the snapshot as a JSON array of labeled metrics.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::Str(e.name.clone())),
                        (
                            "labels",
                            Json::Obj(
                                e.labels
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                    .collect(),
                            ),
                        ),
                        ("value", metric_to_json(&e.value)),
                    ])
                })
                .collect(),
        )
    }

    /// Decodes a snapshot previously produced by [`Self::to_json`].
    pub fn from_json(doc: &Json) -> Option<LabeledSnapshot> {
        let mut entries = Vec::new();
        for e in doc.as_arr()? {
            let Json::Obj(label_pairs) = e.get("labels")? else {
                return None;
            };
            let mut labels = Vec::with_capacity(label_pairs.len());
            for (k, v) in label_pairs {
                labels.push((k.clone(), v.as_str()?.to_string()));
            }
            entries.push(LabeledMetricSnapshot {
                name: e.get("name")?.as_str()?.to_string(),
                labels,
                value: metric_from_json(e.get("value")?)?,
            });
        }
        Some(LabeledSnapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let m = LabeledMetrics::new();
        let id = m.intern(&[("tenant", "0")]);
        m.counter_add("req", id, 1);
        m.observe("lat", id, 3.0);
        assert!(m.snapshot().entries.is_empty());
    }

    #[test]
    fn interning_is_order_and_duplicate_insensitive() {
        let m = LabeledMetrics::new();
        let a = m.intern(&[("tenant", "0"), ("bank", "3")]);
        let b = m.intern(&[("bank", "3"), ("tenant", "0")]);
        let c = m.intern(&[("bank", "3"), ("tenant", "0"), ("bank", "3")]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        let other = m.intern(&[("tenant", "1"), ("bank", "3")]);
        assert_ne!(a, other);
    }

    #[test]
    fn canonical_form_does_not_alias() {
        // "ab"+"c" must not collide with "a"+"bc".
        let m = LabeledMetrics::new();
        let a = m.intern(&[("ab", "c")]);
        let b = m.intern(&[("a", "bc")]);
        assert_ne!(a, b);
    }

    #[test]
    fn counters_gauges_histograms_accumulate_per_label_set() {
        let m = LabeledMetrics::new();
        m.set_enabled(true);
        let t0 = m.intern(&[("tenant", "0")]);
        let t1 = m.intern(&[("tenant", "1")]);
        m.counter_add("serve.requests", t0, 3);
        m.counter_add("serve.requests", t1, 5);
        m.counter_add("serve.requests", t0, 1);
        m.gauge_set("serve.occupancy", t0, 0.5);
        m.observe("serve.latency", t0, 12.0);
        m.observe("serve.latency", t0, 20.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("serve.requests", &[("tenant", "0")]), Some(4));
        assert_eq!(snap.counter("serve.requests", &[("tenant", "1")]), Some(5));
        assert_eq!(snap.gauge("serve.occupancy", &[("tenant", "0")]), Some(0.5));
        let series = snap.series("serve.requests");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label("tenant"), Some("0"));
        match snap.get("serve.latency", &[("tenant", "0")]) {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_by_name_then_labels() {
        let m = LabeledMetrics::new();
        m.set_enabled(true);
        // Intern in scrambled order on purpose.
        for t in [3, 1, 2, 0] {
            m.counter_add_with("b.metric", &[("tenant", &t.to_string())], 1);
            m.counter_add_with("a.metric", &[("tenant", &t.to_string())], 1);
        }
        let snap = m.snapshot();
        let keys: Vec<(String, String)> = snap
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.label_string()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(snap.entries.len(), 8);
    }

    #[test]
    fn reset_clears_values_but_keeps_ids() {
        let m = LabeledMetrics::new();
        m.set_enabled(true);
        let id = m.intern(&[("bank", "2")]);
        m.counter_add("c", id, 7);
        m.reset();
        assert!(m.snapshot().entries.is_empty());
        m.counter_add("c", id, 1);
        assert_eq!(m.snapshot().counter("c", &[("bank", "2")]), Some(1));
    }

    #[test]
    fn absorb_merges_matching_label_sets() {
        let a = LabeledMetrics::new();
        a.set_enabled(true);
        a.counter_add_with("c", &[("tenant", "0")], 2);
        a.observe_labeled("h", &[("tenant", "0")], 1.0);
        let b = LabeledMetrics::new();
        b.set_enabled(true);
        b.counter_add_with("c", &[("tenant", "0")], 3);
        b.counter_add_with("c", &[("tenant", "1")], 9);
        b.observe_labeled("h", &[("tenant", "0")], 5.0);
        let mut total = a.snapshot();
        total.absorb(&b.snapshot());
        assert_eq!(total.counter("c", &[("tenant", "0")]), Some(5));
        assert_eq!(total.counter("c", &[("tenant", "1")]), Some(9));
        match total.get("h", &[("tenant", "0")]) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.min, 1.0);
                assert_eq!(h.max, 5.0);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_round_trip_preserves_snapshot() {
        let m = LabeledMetrics::new();
        m.set_enabled(true);
        m.counter_add_with(
            "serve.requests",
            &[("tenant", "0"), ("scheme", "p-ECC-S")],
            4,
        );
        m.gauge_set_with("bank.busy_frac", &[("bank", "5")], 0.25);
        m.observe_labeled("serve.latency", &[("tenant", "1")], 33.0);
        let snap = m.snapshot();
        let text = snap.to_json().pretty();
        let parsed = Json::parse(&text).expect("parse");
        let back = LabeledSnapshot::from_json(&parsed).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_labeled_updates_are_lossless() {
        let m = LabeledMetrics::new();
        m.set_enabled(true);
        let ids: Vec<LabelId> = (0..4)
            .map(|t| m.intern(&[("tenant", &t.to_string())]))
            .collect();
        std::thread::scope(|scope| {
            for &id in &ids {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        m.counter_add("req", id, 1);
                    }
                });
            }
        });
        let snap = m.snapshot();
        for t in 0..4 {
            assert_eq!(
                snap.counter("req", &[("tenant", &t.to_string())]),
                Some(1_000),
                "tenant {t}"
            );
        }
    }
}
