//! Unified observability for the `hifi-rtm` workspace.
//!
//! Simulation code across the workspace (shift controller, p-ECC
//! layer, LLC model, Monte-Carlo drivers) emits into one process-wide
//! [`Observer`] holding:
//!
//! * a [`metrics::MetricsRegistry`] of named counters, gauges and
//!   fixed-bucket histograms with p50/p95/p99 summaries;
//! * a [`labels::LabeledMetrics`] store for metrics keyed on
//!   `(name, label-set)` — tenant, bank, scheme, policy — with
//!   per-shard label interning so the hot path stays a hash plus an
//!   atomic;
//! * an [`events::EventTrace`] — a bounded ring buffer of
//!   shift-transaction events ([`events::ShiftEvent`]) with sequence
//!   numbers and cycle timestamps, so peak memory stays independent of
//!   run length;
//! * a [`span::SpanTrace`] — a bounded ring of hierarchical,
//!   cycle-stamped spans (`request → dispatch → plan_shift →
//!   sts_pulse`), exportable as folded stacks (flamegraphs) and Chrome
//!   `trace_event` JSON;
//! * [`attrib::AttributionTable`] — exact per-cell cycle attribution
//!   (components sum to the measured total within one cycle);
//! * [`timer::ScopedTimer`] and [`timer::Progress`] for wall-clock
//!   phase timing and sweep heartbeats.
//!
//! Everything is **off by default**: a disabled recording call is a
//! single relaxed atomic load, so instrumentation costs nothing in
//! uninstrumented runs. The `repro` binary switches recording on when
//! `--metrics` / `--events` / `--progress` flags are present and
//! writes machine-readable reports via [`json::Json`] and
//! [`export::to_csv`] — both implemented here because offline builds
//! cannot depend on external serialisation crates.
//!
//! # Examples
//!
//! ```
//! use rtm_obs::events::{PeccOutcome, ShiftEvent};
//!
//! let obs = rtm_obs::global();
//! obs.registry().set_enabled(true);
//! obs.trace().set_enabled(true);
//!
//! obs.registry().counter_add("shift.count", 1);
//! obs.registry().observe("shift.latency_cycles", 18.0);
//! obs.trace().record(7, ShiftEvent::PeccVerdict { outcome: PeccOutcome::Clean });
//!
//! let snap = obs.registry().snapshot();
//! assert_eq!(snap.counter("shift.count"), Some(1));
//! # obs.registry().set_enabled(false);
//! # obs.trace().set_enabled(false);
//! # obs.registry().reset();
//! # obs.trace().reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod events;
pub mod export;
pub mod json;
pub mod labels;
pub mod metrics;
mod ring;
pub mod span;
pub mod timer;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use events::{EventTrace, ShiftEvent};
use labels::LabeledMetrics;
use metrics::MetricsRegistry;
use span::SpanTrace;

/// The process-wide metrics registry, labeled-metric store, event
/// trace and span trace.
#[derive(Debug, Default)]
pub struct Observer {
    registry: MetricsRegistry,
    labeled: LabeledMetrics,
    trace: EventTrace,
    spans: SpanTrace,
}

impl Observer {
    /// Creates a fresh, disabled observer (tests use private
    /// observers; production code shares [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The labeled-metric store.
    pub fn labeled(&self) -> &LabeledMetrics {
        &self.labeled
    }

    /// The shift-transaction event trace.
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }

    /// The hierarchical span trace.
    pub fn spans(&self) -> &SpanTrace {
        &self.spans
    }
}

/// The process-wide observer instrumented code emits into.
pub fn global() -> &'static Observer {
    static GLOBAL: OnceLock<Observer> = OnceLock::new();
    GLOBAL.get_or_init(Observer::new)
}

static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Switches heartbeat progress reporting on or off (off by default);
/// read by [`timer::Progress`] at construction.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Whether heartbeat progress reporting is on.
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Records a shift-transaction event into the global trace.
///
/// Free-function convenience so hot paths need one import; a disabled
/// trace makes this a single relaxed atomic load.
pub fn record_event(cycle: u64, event: ShiftEvent) {
    global().trace().record(cycle, event);
}

/// Adds to a counter in the global registry (no-op while disabled).
pub fn counter_add(name: &str, delta: u64) {
    global().registry().counter_add(name, delta);
}

/// Records into a default-bucket histogram in the global registry
/// (no-op while disabled).
pub fn observe(name: &str, value: f64) {
    global().registry().observe(name, value);
}

/// Records a completed span into the global span trace and returns its
/// id (0 while disabled). Pass [`span::current_parent`] as `parent` to
/// nest under the enclosing [`span::ParentScope`].
pub fn record_span(parent: u64, name: &str, start_cycle: u64, end_cycle: u64) -> u64 {
    global()
        .spans()
        .record(parent, name, start_cycle, end_cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_disabled_by_default_and_shared() {
        let a = global();
        let b = global();
        assert!(std::ptr::eq(a, b));
        // Free functions are no-ops while disabled.
        counter_add("t.count", 1);
        observe("t.hist", 1.0);
        record_event(0, ShiftEvent::BackShift { steps: 1 });
        assert_eq!(a.registry().snapshot().counter("t.count"), None);
        assert_eq!(a.trace().snapshot().total, 0);
    }

    #[test]
    fn progress_flag_toggles() {
        assert!(!progress_enabled());
        set_progress(true);
        assert!(progress_enabled());
        set_progress(false);
    }
}
