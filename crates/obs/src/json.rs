//! A minimal JSON value type with a parser and printers.
//!
//! The workspace builds offline, so it cannot depend on `serde_json`.
//! This module implements the small subset of JSON the observability
//! exporters need: objects (with preserved key order), arrays, strings,
//! finite numbers, booleans and null, plus compact and pretty printers
//! and a recursive-descent parser used by the round-trip tests.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite values cannot be represented in
    /// JSON; encode them as strings (see the exporters' `"inf"`
    /// convention for histogram bucket bounds).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if exactly
    /// representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline —
    /// the format written to `--metrics` / `--events` files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the byte offset and cause on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact single-line rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                debug_assert!(v.is_finite(), "non-finite number in JSON output");
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    // `{:?}` prints the shortest decimal that parses
                    // back to the same f64.
                    write!(f, "{v:?}")
                }
            }
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: byte offset plus a short cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 up to the next quote or escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is at the 'u'.
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require \uXXXX low half.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let doc = Json::obj(vec![
            ("name", Json::Str("shift.latency \"cycles\"".into())),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(0.125)),
            ("neg", Json::Num(-3.5e-9)),
            ("flag", Json::Bool(true)),
            ("gap", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn round_trips_pretty() {
        let doc = Json::obj(vec![
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::Num(1.0))])]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.pretty()).expect("parse"), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(7.0).to_string(), "7");
        assert_eq!(Json::Num(-2.0).to_string(), "-2");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\nb\t\"\\ é 😀""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\nb\t\"\\ \u{e9} \u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"x",
            "[1] extra",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_work() {
        let doc = Json::parse(r#"{"n": 3, "s": "hi", "a": [1]}"#).expect("parse");
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }
}
