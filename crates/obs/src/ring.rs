//! The bounded-ring discipline shared by the event trace and the span
//! trace: once `capacity` records are held the oldest is dropped and a
//! drop counter advances, so peak memory stays independent of run
//! length. Sequence numbers (or span ids) are never reused, which makes
//! drops detectable in any snapshot.

use std::collections::VecDeque;

/// Interior state of a bounded ring (callers wrap it in a `Mutex`).
#[derive(Debug)]
pub(crate) struct BoundedRing<T> {
    pub(crate) capacity: usize,
    pub(crate) buf: VecDeque<T>,
    /// Next sequence number / id to hand out (monotonic, never reused).
    pub(crate) next_seq: u64,
    /// Records overwritten by the ring bound.
    pub(crate) dropped: u64,
}

impl<T> BoundedRing<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Hands out the next monotonic sequence number.
    pub(crate) fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Appends a record, evicting the oldest when full.
    pub(crate) fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// Shrinks (or grows) the bound; excess oldest records are dropped
    /// immediately.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
    }

    /// Clears records and counters.
    pub(crate) fn reset(&mut self) {
        self.buf.clear();
        self.next_seq = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = BoundedRing::new(3);
        for i in 0..10u64 {
            let seq = r.take_seq();
            assert_eq!(seq, i);
            r.push(seq);
        }
        assert_eq!(r.buf.len(), 3);
        assert_eq!(r.dropped, 7);
        assert_eq!(r.buf.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        r.set_capacity(1);
        assert_eq!(r.dropped, 9);
        r.reset();
        assert_eq!(r.next_seq, 0);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = BoundedRing::new(0);
        r.push(1u32);
        r.push(2);
        assert_eq!(r.buf.len(), 1);
        assert_eq!(r.dropped, 1);
    }
}
