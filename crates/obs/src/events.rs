//! Bounded ring-buffer trace of shift-transaction events.
//!
//! Every stage of a racetrack shift transaction can emit an event:
//! the controller plans the shift ([`ShiftEvent::ShiftPlanned`]),
//! splits it at the safe distance ([`ShiftEvent::SafeDistanceSplit`]),
//! issues shift-then-stop pulses ([`ShiftEvent::StsPulse`]), the p-ECC
//! layer checks the landing position ([`ShiftEvent::PeccVerdict`]) and
//! possibly back-shifts to repair an overshoot
//! ([`ShiftEvent::BackShift`]).
//!
//! The trace is a bounded ring: once `capacity` events are held, the
//! oldest is dropped and a drop counter advances, so peak memory is
//! independent of how many transactions a run executes. Events carry a
//! global sequence number (never reused, so drops are detectable) and
//! the simulation cycle at which they were recorded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::Json;
use crate::ring::BoundedRing;

/// Default ring capacity (events held in memory).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Outcome of one p-ECC position check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeccOutcome {
    /// The code saw no position error.
    Clean,
    /// The code corrected an offset of `k` domains.
    Corrected(u32),
    /// The code detected an error it cannot correct (a DUE).
    DetectedUncorrectable,
}

/// One shift-transaction event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShiftEvent {
    /// The controller planned a shift transaction.
    ShiftPlanned {
        /// Requested shift distance in domains (absolute value).
        distance: u32,
        /// Number of sub-shifts the plan was split into.
        parts: u32,
        /// Total planned latency in memory cycles.
        latency_cycles: u64,
    },
    /// A shift-then-stop pulse sequence moving `distance` domains.
    StsPulse {
        /// Domains moved by this pulse sequence.
        distance: u32,
        /// Cycles the pulse sequence occupies.
        cycles: u64,
    },
    /// A p-ECC position check completed.
    PeccVerdict {
        /// What the code concluded.
        outcome: PeccOutcome,
    },
    /// A corrective back-shift of `steps` domains after an overshoot.
    BackShift {
        /// Domains shifted back.
        steps: u32,
    },
    /// A requested distance exceeded the safe cap and was split.
    SafeDistanceSplit {
        /// Requested distance in domains.
        distance: u32,
        /// Safe-distance cap applied.
        cap: u32,
        /// Sub-shifts produced.
        parts: u32,
    },
    /// A request entered a stripe-group queue in the serving layer.
    ReqEnqueued {
        /// Scheduler-assigned request id (monotonic per run).
        id: u64,
        /// Stripe group the request targets.
        group: u32,
    },
    /// A queued request was dispatched to its bank for service.
    ReqDispatched {
        /// Scheduler-assigned request id.
        id: u64,
        /// Stripe group the request targets.
        group: u32,
        /// Cycles the request waited in its queue before dispatch.
        queue_delay: u64,
    },
    /// A dispatched request finished (LLC service plus any memory
    /// fill).
    ReqCompleted {
        /// Scheduler-assigned request id.
        id: u64,
        /// Cycles between dispatch and completion.
        service_cycles: u64,
    },
    /// Admission stalled because a stripe-group queue was full.
    ReqBackpressure {
        /// Stripe group whose queue rejected the request.
        group: u32,
    },
}

impl ShiftEvent {
    /// Stable kind tag used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            ShiftEvent::ShiftPlanned { .. } => "ShiftPlanned",
            ShiftEvent::StsPulse { .. } => "StsPulse",
            ShiftEvent::PeccVerdict { .. } => "PeccVerdict",
            ShiftEvent::BackShift { .. } => "BackShift",
            ShiftEvent::SafeDistanceSplit { .. } => "SafeDistanceSplit",
            ShiftEvent::ReqEnqueued { .. } => "ReqEnqueued",
            ShiftEvent::ReqDispatched { .. } => "ReqDispatched",
            ShiftEvent::ReqCompleted { .. } => "ReqCompleted",
            ShiftEvent::ReqBackpressure { .. } => "ReqBackpressure",
        }
    }

    /// Whether this is a serving-layer queue event (as opposed to a
    /// shift-transaction event).
    pub fn is_queue_event(&self) -> bool {
        matches!(
            self,
            ShiftEvent::ReqEnqueued { .. }
                | ShiftEvent::ReqDispatched { .. }
                | ShiftEvent::ReqCompleted { .. }
                | ShiftEvent::ReqBackpressure { .. }
        )
    }
}

/// An event plus its trace metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedEvent {
    /// Global sequence number, starting at 0, never reused. Gaps in a
    /// snapshot indicate dropped (overwritten) events.
    pub seq: u64,
    /// Simulation cycle at which the event was recorded.
    pub cycle: u64,
    /// The event payload.
    pub event: ShiftEvent,
}

/// A bounded, sequence-numbered event ring.
#[derive(Debug)]
pub struct EventTrace {
    enabled: AtomicBool,
    inner: Mutex<BoundedRing<TracedEvent>>,
}

impl Default for EventTrace {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl EventTrace {
    /// Creates a disabled trace with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a disabled trace holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(BoundedRing::new(capacity)),
        }
    }

    /// Turns recording on or off. Off is the default; disabled
    /// recording calls cost one relaxed atomic load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Changes the ring capacity; excess oldest events are dropped
    /// immediately.
    pub fn set_capacity(&self, capacity: usize) {
        self.inner
            .lock()
            .expect("event trace poisoned")
            .set_capacity(capacity);
    }

    /// Records an event at the given simulation cycle.
    pub fn record(&self, cycle: u64, event: ShiftEvent) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("event trace poisoned");
        let seq = inner.take_seq();
        inner.push(TracedEvent { seq, cycle, event });
    }

    /// Clears events and counters (the enabled flag and capacity are
    /// untouched).
    pub fn reset(&self) {
        self.inner.lock().expect("event trace poisoned").reset();
    }

    /// A point-in-time copy of the ring.
    pub fn snapshot(&self) -> EventTraceSnapshot {
        let inner = self.inner.lock().expect("event trace poisoned");
        EventTraceSnapshot {
            events: inner.buf.iter().copied().collect(),
            total: inner.next_seq,
            dropped: inner.dropped,
        }
    }
}

/// A copy of the ring contents at snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventTraceSnapshot {
    /// Retained events, in sequence order.
    pub events: Vec<TracedEvent>,
    /// Total events ever recorded (`= dropped + events.len()`).
    pub total: u64,
    /// Events overwritten by the ring bound.
    pub dropped: u64,
}

impl EventTraceSnapshot {
    /// Number of retained events of the given kind tag.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count()
    }

    /// Encodes the snapshot as a JSON object with an ordered event
    /// stream.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total", Json::Num(self.total as f64)),
            ("dropped", Json::Num(self.dropped as f64)),
            (
                "events",
                Json::Arr(self.events.iter().map(event_to_json).collect()),
            ),
        ])
    }

    /// Decodes a snapshot previously produced by [`Self::to_json`].
    pub fn from_json(doc: &Json) -> Option<EventTraceSnapshot> {
        Some(EventTraceSnapshot {
            total: doc.get("total")?.as_u64()?,
            dropped: doc.get("dropped")?.as_u64()?,
            events: doc
                .get("events")?
                .as_arr()?
                .iter()
                .map(event_from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

fn event_to_json(e: &TracedEvent) -> Json {
    let mut pairs = vec![
        ("seq", Json::Num(e.seq as f64)),
        ("cycle", Json::Num(e.cycle as f64)),
        ("kind", Json::Str(e.event.kind().to_string())),
    ];
    match e.event {
        ShiftEvent::ShiftPlanned {
            distance,
            parts,
            latency_cycles,
        } => {
            pairs.push(("distance", Json::Num(distance as f64)));
            pairs.push(("parts", Json::Num(parts as f64)));
            pairs.push(("latency_cycles", Json::Num(latency_cycles as f64)));
        }
        ShiftEvent::StsPulse { distance, cycles } => {
            pairs.push(("distance", Json::Num(distance as f64)));
            pairs.push(("cycles", Json::Num(cycles as f64)));
        }
        ShiftEvent::PeccVerdict { outcome } => {
            let (name, k) = match outcome {
                PeccOutcome::Clean => ("clean", None),
                PeccOutcome::Corrected(k) => ("corrected", Some(k)),
                PeccOutcome::DetectedUncorrectable => ("detected_uncorrectable", None),
            };
            pairs.push(("outcome", Json::Str(name.to_string())));
            if let Some(k) = k {
                pairs.push(("k", Json::Num(k as f64)));
            }
        }
        ShiftEvent::BackShift { steps } => {
            pairs.push(("steps", Json::Num(steps as f64)));
        }
        ShiftEvent::SafeDistanceSplit {
            distance,
            cap,
            parts,
        } => {
            pairs.push(("distance", Json::Num(distance as f64)));
            pairs.push(("cap", Json::Num(cap as f64)));
            pairs.push(("parts", Json::Num(parts as f64)));
        }
        ShiftEvent::ReqEnqueued { id, group } => {
            pairs.push(("id", Json::Num(id as f64)));
            pairs.push(("group", Json::Num(group as f64)));
        }
        ShiftEvent::ReqDispatched {
            id,
            group,
            queue_delay,
        } => {
            pairs.push(("id", Json::Num(id as f64)));
            pairs.push(("group", Json::Num(group as f64)));
            pairs.push(("queue_delay", Json::Num(queue_delay as f64)));
        }
        ShiftEvent::ReqCompleted { id, service_cycles } => {
            pairs.push(("id", Json::Num(id as f64)));
            pairs.push(("service_cycles", Json::Num(service_cycles as f64)));
        }
        ShiftEvent::ReqBackpressure { group } => {
            pairs.push(("group", Json::Num(group as f64)));
        }
    }
    Json::obj(pairs)
}

fn event_from_json(doc: &Json) -> Option<TracedEvent> {
    let seq = doc.get("seq")?.as_u64()?;
    let cycle = doc.get("cycle")?.as_u64()?;
    let u32_field = |key: &str| doc.get(key).and_then(Json::as_u64).map(|v| v as u32);
    let event = match doc.get("kind")?.as_str()? {
        "ShiftPlanned" => ShiftEvent::ShiftPlanned {
            distance: u32_field("distance")?,
            parts: u32_field("parts")?,
            latency_cycles: doc.get("latency_cycles")?.as_u64()?,
        },
        "StsPulse" => ShiftEvent::StsPulse {
            distance: u32_field("distance")?,
            cycles: doc.get("cycles")?.as_u64()?,
        },
        "PeccVerdict" => ShiftEvent::PeccVerdict {
            outcome: match doc.get("outcome")?.as_str()? {
                "clean" => PeccOutcome::Clean,
                "corrected" => PeccOutcome::Corrected(u32_field("k")?),
                "detected_uncorrectable" => PeccOutcome::DetectedUncorrectable,
                _ => return None,
            },
        },
        "BackShift" => ShiftEvent::BackShift {
            steps: u32_field("steps")?,
        },
        "SafeDistanceSplit" => ShiftEvent::SafeDistanceSplit {
            distance: u32_field("distance")?,
            cap: u32_field("cap")?,
            parts: u32_field("parts")?,
        },
        "ReqEnqueued" => ShiftEvent::ReqEnqueued {
            id: doc.get("id")?.as_u64()?,
            group: u32_field("group")?,
        },
        "ReqDispatched" => ShiftEvent::ReqDispatched {
            id: doc.get("id")?.as_u64()?,
            group: u32_field("group")?,
            queue_delay: doc.get("queue_delay")?.as_u64()?,
        },
        "ReqCompleted" => ShiftEvent::ReqCompleted {
            id: doc.get("id")?.as_u64()?,
            service_cycles: doc.get("service_cycles")?.as_u64()?,
        },
        "ReqBackpressure" => ShiftEvent::ReqBackpressure {
            group: u32_field("group")?,
        },
        _ => return None,
    };
    Some(TracedEvent { seq, cycle, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = EventTrace::new();
        t.record(0, ShiftEvent::BackShift { steps: 1 });
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.total, 0);
    }

    #[test]
    fn sequence_numbers_and_cycles_are_preserved() {
        let t = EventTrace::new();
        t.set_enabled(true);
        t.record(
            10,
            ShiftEvent::StsPulse {
                distance: 4,
                cycles: 2,
            },
        );
        t.record(
            12,
            ShiftEvent::PeccVerdict {
                outcome: PeccOutcome::Clean,
            },
        );
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].seq, 0);
        assert_eq!(snap.events[1].seq, 1);
        assert_eq!(snap.events[0].cycle, 10);
        assert_eq!(snap.events[1].cycle, 12);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = EventTrace::with_capacity(8);
        t.set_enabled(true);
        for i in 0..100u32 {
            t.record(i as u64, ShiftEvent::BackShift { steps: i });
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 8, "ring stays bounded");
        assert_eq!(snap.total, 100);
        assert_eq!(snap.dropped, 92);
        // The retained window is the most recent events, in order.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (92..100).collect::<Vec<_>>());
    }

    #[test]
    fn shrinking_capacity_drops_oldest() {
        let t = EventTrace::with_capacity(10);
        t.set_enabled(true);
        for i in 0..10u32 {
            t.record(i as u64, ShiftEvent::BackShift { steps: i });
        }
        t.set_capacity(3);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 7);
        assert_eq!(snap.events[0].seq, 7);
    }

    #[test]
    fn json_round_trip_covers_every_kind() {
        let t = EventTrace::new();
        t.set_enabled(true);
        t.record(
            1,
            ShiftEvent::ShiftPlanned {
                distance: 32,
                parts: 2,
                latency_cycles: 18,
            },
        );
        t.record(
            2,
            ShiftEvent::SafeDistanceSplit {
                distance: 32,
                cap: 16,
                parts: 2,
            },
        );
        t.record(
            3,
            ShiftEvent::StsPulse {
                distance: 16,
                cycles: 9,
            },
        );
        t.record(
            4,
            ShiftEvent::PeccVerdict {
                outcome: PeccOutcome::Clean,
            },
        );
        t.record(
            5,
            ShiftEvent::PeccVerdict {
                outcome: PeccOutcome::Corrected(2),
            },
        );
        t.record(
            6,
            ShiftEvent::PeccVerdict {
                outcome: PeccOutcome::DetectedUncorrectable,
            },
        );
        t.record(7, ShiftEvent::BackShift { steps: 2 });
        t.record(8, ShiftEvent::ReqEnqueued { id: 42, group: 7 });
        t.record(
            9,
            ShiftEvent::ReqDispatched {
                id: 42,
                group: 7,
                queue_delay: 15,
            },
        );
        t.record(
            10,
            ShiftEvent::ReqCompleted {
                id: 42,
                service_cycles: 33,
            },
        );
        t.record(11, ShiftEvent::ReqBackpressure { group: 7 });
        let snap = t.snapshot();
        let text = snap.to_json().pretty();
        let parsed = Json::parse(&text).expect("parse");
        let back = EventTraceSnapshot::from_json(&parsed).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn queue_events_are_distinguished() {
        assert!(ShiftEvent::ReqEnqueued { id: 0, group: 0 }.is_queue_event());
        assert!(ShiftEvent::ReqBackpressure { group: 0 }.is_queue_event());
        assert!(!ShiftEvent::BackShift { steps: 1 }.is_queue_event());
    }

    #[test]
    fn reset_restarts_sequence() {
        let t = EventTrace::new();
        t.set_enabled(true);
        t.record(0, ShiftEvent::BackShift { steps: 1 });
        t.reset();
        t.record(5, ShiftEvent::BackShift { steps: 2 });
        let snap = t.snapshot();
        assert_eq!(snap.total, 1);
        assert_eq!(snap.events[0].seq, 0);
    }

    #[test]
    fn count_kind_filters() {
        let t = EventTrace::new();
        t.set_enabled(true);
        t.record(
            0,
            ShiftEvent::PeccVerdict {
                outcome: PeccOutcome::Clean,
            },
        );
        t.record(1, ShiftEvent::BackShift { steps: 1 });
        t.record(
            2,
            ShiftEvent::PeccVerdict {
                outcome: PeccOutcome::Corrected(1),
            },
        );
        let snap = t.snapshot();
        assert_eq!(snap.count_kind("PeccVerdict"), 2);
        assert_eq!(snap.count_kind("BackShift"), 1);
        assert_eq!(snap.count_kind("StsPulse"), 0);
    }
}
