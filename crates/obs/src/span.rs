//! Hierarchical, cycle-stamped span tracing.
//!
//! A span is one named interval of simulated time with an optional
//! parent, so a serving-layer request unfolds into the tree
//!
//! ```text
//! request
//! ├── queue
//! ├── dispatch
//! │   └── plan_shift
//! │       ├── sts_pulse
//! │       ├── pecc_verify
//! │       └── ...
//! └── mem_fill
//! ```
//!
//! Spans follow the same bounded-ring discipline as the event trace
//! (see [`crate::events`]): at most `capacity` spans are held, the
//! oldest is evicted when full, and a drop counter advances so
//! truncation is always detectable. Because the simulators are
//! discrete-event, every span's extent is known at the instant it is
//! created, so the API records *complete* spans — there is no open/
//! close pairing to get wrong.
//!
//! Ids are handed out under the trace mutex, monotonically, starting at
//! 1 (`0` means "no parent"). Within one simulation thread the id
//! stream is deterministic; when several sweep workers record into one
//! trace their spans interleave in scheduling order, which is why the
//! determinism gates in CI compare attribution *tables* (built from
//! per-cell accounting) rather than raw span streams.
//!
//! Parent linkage across crate boundaries uses a thread-local current
//! parent: the serving layer opens a `dispatch` span and enters it with
//! [`ParentScope`], and the shift controller — which knows nothing
//! about scheduling — parents its `plan_shift` span on
//! [`current_parent`].

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::Json;
use crate::ring::BoundedRing;

/// Default span-ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotonic id, starting at 1; never reused. Gaps in a snapshot
    /// indicate dropped (overwritten) spans.
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Stage name (`"request"`, `"plan_shift"`, `"sts_pulse"`, ...).
    pub name: String,
    /// First cycle covered by the span.
    pub start_cycle: u64,
    /// First cycle past the span (`end_cycle >= start_cycle`).
    pub end_cycle: u64,
}

impl SpanRecord {
    /// Cycles covered by the span.
    pub fn duration(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

thread_local! {
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

/// The span id new spans on this thread parent under (0 = root).
pub fn current_parent() -> u64 {
    CURRENT_PARENT.with(|c| c.get())
}

/// Makes `id` the current parent for the scope's lifetime; the previous
/// parent is restored on drop. Instrumentation layers that cannot pass
/// ids explicitly (the shift controller under the serving layer) read
/// [`current_parent`] instead.
#[derive(Debug)]
pub struct ParentScope {
    prev: u64,
}

impl ParentScope {
    /// Enters `id` as the current parent.
    pub fn enter(id: u64) -> Self {
        let prev = CURRENT_PARENT.with(|c| c.replace(id));
        Self { prev }
    }
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        CURRENT_PARENT.with(|c| c.set(self.prev));
    }
}

/// A bounded ring of completed spans.
#[derive(Debug)]
pub struct SpanTrace {
    enabled: AtomicBool,
    inner: Mutex<BoundedRing<SpanRecord>>,
}

impl Default for SpanTrace {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanTrace {
    /// Creates a disabled trace with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a disabled trace holding at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(BoundedRing::new(capacity)),
        }
    }

    /// Turns recording on or off. Off is the default; disabled
    /// recording calls cost one relaxed atomic load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Changes the ring capacity; excess oldest spans are dropped
    /// immediately.
    pub fn set_capacity(&self, capacity: usize) {
        self.inner
            .lock()
            .expect("span trace poisoned")
            .set_capacity(capacity);
    }

    /// Records a completed span covering `[start_cycle, end_cycle)`
    /// under `parent` (0 = root) and returns its id, or 0 when the
    /// trace is disabled. `end_cycle` is clamped up to `start_cycle`.
    pub fn record(&self, parent: u64, name: &str, start_cycle: u64, end_cycle: u64) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let mut inner = self.inner.lock().expect("span trace poisoned");
        let id = inner.take_seq() + 1;
        inner.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_cycle,
            end_cycle: end_cycle.max(start_cycle),
        });
        id
    }

    /// Reserves a span id without recording anything, for spans whose
    /// extent is not yet known but whose children record first — the
    /// serving layer reserves its `dispatch` span, enters it as the
    /// current parent around the LLC access (whose `plan_shift` spans
    /// nest under it), and records the reserved span afterwards via
    /// [`Self::record_reserved`]. Returns 0 when disabled.
    ///
    /// A reserved id counts towards a snapshot's `total` immediately;
    /// until its record lands the snapshot simply has a gap at that id
    /// (children recorded in between may precede their parent in ring
    /// order, which the ancestry walk handles).
    pub fn reserve(&self) -> u64 {
        if !self.enabled() {
            return 0;
        }
        self.inner.lock().expect("span trace poisoned").take_seq() + 1
    }

    /// Records the span for a previously [`Self::reserve`]d id. No-op
    /// when `id` is 0 (a disabled-time reservation) or recording is off.
    pub fn record_reserved(
        &self,
        id: u64,
        parent: u64,
        name: &str,
        start_cycle: u64,
        end_cycle: u64,
    ) {
        if id == 0 || !self.enabled() {
            return;
        }
        self.inner
            .lock()
            .expect("span trace poisoned")
            .push(SpanRecord {
                id,
                parent,
                name: name.to_string(),
                start_cycle,
                end_cycle: end_cycle.max(start_cycle),
            });
    }

    /// Clears spans and counters (the enabled flag and capacity are
    /// untouched).
    pub fn reset(&self) {
        self.inner.lock().expect("span trace poisoned").reset();
    }

    /// A point-in-time copy of the ring.
    pub fn snapshot(&self) -> SpanTraceSnapshot {
        let inner = self.inner.lock().expect("span trace poisoned");
        SpanTraceSnapshot {
            spans: inner.buf.iter().cloned().collect(),
            total: inner.next_seq,
            dropped: inner.dropped,
        }
    }
}

/// A copy of the span ring at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanTraceSnapshot {
    /// Retained spans, in recording order (id order, except that a
    /// reserved span lands where its record was filled in).
    pub spans: Vec<SpanRecord>,
    /// Span ids ever handed out (`>= dropped + spans.len()`; reserved
    /// ids count immediately).
    pub total: u64,
    /// Spans overwritten by the ring bound.
    pub dropped: u64,
}

impl SpanTraceSnapshot {
    /// Looks a retained span up by id.
    pub fn get(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// The retained children of span `id`, in id order.
    pub fn children_of(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Cycles of `span` not covered by any retained child — the value a
    /// flamegraph assigns to the frame itself.
    pub fn self_cycles(&self, span: &SpanRecord) -> u64 {
        let child_sum: u64 = self.children_of(span.id).iter().map(|c| c.duration()).sum();
        span.duration().saturating_sub(child_sum)
    }

    /// The `;`-joined ancestor path of a span, root first. A span whose
    /// parent fell out of the ring is treated as a root.
    pub fn path_of(&self, span: &SpanRecord) -> String {
        let mut names = vec![span.name.as_str()];
        let mut cursor = span.parent;
        // Reserved spans may carry a parent recorded after them, so id
        // order says nothing about ancestry; bound the walk by the
        // snapshot size so malformed (cyclic) input still terminates.
        while cursor != 0 && names.len() <= self.spans.len() {
            match self.get(cursor) {
                Some(p) => {
                    names.push(p.name.as_str());
                    cursor = p.parent;
                }
                None => break,
            }
        }
        names.reverse();
        names.join(";")
    }

    /// Encodes the snapshot as a JSON object with an ordered span
    /// stream.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total", Json::Num(self.total as f64)),
            ("dropped", Json::Num(self.dropped as f64)),
            (
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("id", Json::Num(s.id as f64)),
                                ("parent", Json::Num(s.parent as f64)),
                                ("name", Json::Str(s.name.clone())),
                                ("start", Json::Num(s.start_cycle as f64)),
                                ("end", Json::Num(s.end_cycle as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a snapshot previously produced by [`Self::to_json`].
    pub fn from_json(doc: &Json) -> Option<SpanTraceSnapshot> {
        Some(SpanTraceSnapshot {
            total: doc.get("total")?.as_u64()?,
            dropped: doc.get("dropped")?.as_u64()?,
            spans: doc
                .get("spans")?
                .as_arr()?
                .iter()
                .map(|s| {
                    Some(SpanRecord {
                        id: s.get("id")?.as_u64()?,
                        parent: s.get("parent")?.as_u64()?,
                        name: s.get("name")?.as_str()?.to_string(),
                        start_cycle: s.get("start")?.as_u64()?,
                        end_cycle: s.get("end")?.as_u64()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_returns_zero() {
        let t = SpanTrace::new();
        assert_eq!(t.record(0, "request", 0, 10), 0);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.total, 0);
    }

    #[test]
    fn ids_start_at_one_and_parents_link() {
        let t = SpanTrace::new();
        t.set_enabled(true);
        let req = t.record(0, "request", 0, 100);
        assert_eq!(req, 1);
        let q = t.record(req, "queue", 0, 30);
        let d = t.record(req, "dispatch", 30, 100);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.get(q).unwrap().parent, req);
        assert_eq!(snap.children_of(req).len(), 2);
        assert_eq!(snap.path_of(snap.get(d).unwrap()), "request;dispatch");
    }

    #[test]
    fn self_cycles_subtract_children() {
        let t = SpanTrace::new();
        t.set_enabled(true);
        let req = t.record(0, "request", 0, 100);
        t.record(req, "queue", 0, 30);
        t.record(req, "dispatch", 30, 90);
        let snap = t.snapshot();
        let root = snap.get(req).unwrap();
        assert_eq!(root.duration(), 100);
        assert_eq!(snap.self_cycles(root), 10);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = SpanTrace::with_capacity(4);
        t.set_enabled(true);
        for i in 0..10u64 {
            t.record(0, "s", i, i + 1);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.total, 10);
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.spans[0].id, 7);
    }

    #[test]
    fn dropped_parent_degrades_to_root_path() {
        let t = SpanTrace::with_capacity(1);
        t.set_enabled(true);
        let req = t.record(0, "request", 0, 100);
        t.record(req, "dispatch", 10, 90); // evicts "request"
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.path_of(&snap.spans[0]), "dispatch");
    }

    #[test]
    fn inverted_extent_is_clamped() {
        let t = SpanTrace::new();
        t.set_enabled(true);
        let id = t.record(0, "odd", 50, 20);
        let snap = t.snapshot();
        assert_eq!(snap.get(id).unwrap().duration(), 0);
    }

    #[test]
    fn parent_scope_nests_and_restores() {
        assert_eq!(current_parent(), 0);
        {
            let _outer = ParentScope::enter(7);
            assert_eq!(current_parent(), 7);
            {
                let _inner = ParentScope::enter(9);
                assert_eq!(current_parent(), 9);
            }
            assert_eq!(current_parent(), 7);
        }
        assert_eq!(current_parent(), 0);
    }

    #[test]
    fn json_round_trip_preserves_snapshot() {
        let t = SpanTrace::new();
        t.set_enabled(true);
        let req = t.record(0, "request", 5, 105);
        let d = t.record(req, "dispatch", 20, 100);
        t.record(d, "plan_shift", 20, 60);
        let snap = t.snapshot();
        let text = snap.to_json().pretty();
        let parsed = Json::parse(&text).expect("parse");
        let back = SpanTraceSnapshot::from_json(&parsed).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn reserved_spans_parent_children_recorded_first() {
        let t = SpanTrace::new();
        t.set_enabled(true);
        // The serving-layer shape: dispatch id exists first, its
        // children record during the access, the request/dispatch
        // records land last.
        let dispatch = t.reserve();
        assert_eq!(dispatch, 1);
        let plan = t.record(dispatch, "plan_shift", 30, 70);
        t.record(plan, "sts_pulse", 30, 60);
        let req = t.record(0, "request", 0, 100);
        t.record(req, "queue", 0, 30);
        t.record_reserved(dispatch, req, "dispatch", 30, 90);
        let snap = t.snapshot();
        // Five ids handed out: the reservation plus four records
        // (record_reserved reuses the reserved id).
        assert_eq!(snap.total, 5);
        assert_eq!(snap.spans.len(), 5);
        let d = snap.get(dispatch).unwrap();
        assert_eq!(d.name, "dispatch");
        assert_eq!(d.parent, req);
        let p = snap.get(plan).unwrap();
        assert_eq!(snap.path_of(p), "request;dispatch;plan_shift");
        assert_eq!(snap.self_cycles(d), 90 - 30 - 40);
    }

    #[test]
    fn disabled_reservations_are_inert() {
        let t = SpanTrace::new();
        let id = t.reserve();
        assert_eq!(id, 0);
        t.record_reserved(id, 0, "x", 0, 10);
        assert_eq!(t.snapshot().total, 0);
    }

    #[test]
    fn reset_restarts_ids() {
        let t = SpanTrace::new();
        t.set_enabled(true);
        t.record(0, "a", 0, 1);
        t.reset();
        let id = t.record(0, "b", 0, 1);
        assert_eq!(id, 1);
        assert_eq!(t.snapshot().total, 1);
    }
}
