//! CSV and file exporters for snapshots.
//!
//! [`to_csv`] is the single CSV serialiser for the whole workspace;
//! `rtm_core::experiments::to_csv` re-exports it so experiment drivers
//! and the observability exporters cannot drift apart. Span snapshots
//! additionally export as [`folded_stacks`] (the flamegraph collapsed
//! format: one `path value` line per stack) and as [`chrome_trace`]
//! (Chrome/Perfetto `trace_event` JSON, loadable in `about:tracing`).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::events::EventTraceSnapshot;
use crate::json::Json;
use crate::labels::LabeledSnapshot;
use crate::metrics::{MetricValue, RegistrySnapshot};
use crate::span::SpanTraceSnapshot;

/// Serialises rows of cells as RFC-4180-style CSV (quotes doubled,
/// cells containing commas/quotes/newlines quoted).
pub fn to_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

impl RegistrySnapshot {
    /// Rows for CSV export: `name,type,count,sum|value,min,max,p50,p95,p99`,
    /// header included.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![vec![
            "name".to_string(),
            "type".to_string(),
            "count".to_string(),
            "value".to_string(),
            "min".to_string(),
            "max".to_string(),
            "p50".to_string(),
            "p95".to_string(),
            "p99".to_string(),
        ]];
        for m in &self.metrics {
            let row = match &m.value {
                MetricValue::Counter(v) => vec![
                    m.name.clone(),
                    "counter".into(),
                    String::new(),
                    v.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ],
                MetricValue::Gauge(v) => vec![
                    m.name.clone(),
                    "gauge".into(),
                    String::new(),
                    num(*v),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ],
                MetricValue::Histogram(h) => vec![
                    m.name.clone(),
                    "histogram".into(),
                    h.count.to_string(),
                    num(h.sum),
                    num(h.min),
                    num(h.max),
                    num(h.p50),
                    num(h.p95),
                    num(h.p99),
                ],
            };
            rows.push(row);
        }
        rows
    }

    /// CSV rendering of [`Self::rows`].
    pub fn to_csv(&self) -> String {
        to_csv(&self.rows())
    }
}

impl EventTraceSnapshot {
    /// Rows for CSV export in a wide schema (one column per possible
    /// field, blanks where a kind has no such field), header included.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![vec![
            "seq".to_string(),
            "cycle".to_string(),
            "kind".to_string(),
            "distance".to_string(),
            "parts".to_string(),
            "latency_cycles".to_string(),
            "cycles".to_string(),
            "outcome".to_string(),
            "k".to_string(),
            "steps".to_string(),
            "cap".to_string(),
            "id".to_string(),
            "group".to_string(),
            "queue_delay".to_string(),
            "service_cycles".to_string(),
        ]];
        use crate::events::{PeccOutcome, ShiftEvent};
        for e in &self.events {
            let mut row = vec![
                e.seq.to_string(),
                e.cycle.to_string(),
                e.event.kind().to_string(),
            ];
            row.resize(15, String::new());
            match e.event {
                ShiftEvent::ShiftPlanned {
                    distance,
                    parts,
                    latency_cycles,
                } => {
                    row[3] = distance.to_string();
                    row[4] = parts.to_string();
                    row[5] = latency_cycles.to_string();
                }
                ShiftEvent::StsPulse { distance, cycles } => {
                    row[3] = distance.to_string();
                    row[6] = cycles.to_string();
                }
                ShiftEvent::PeccVerdict { outcome } => match outcome {
                    PeccOutcome::Clean => row[7] = "clean".into(),
                    PeccOutcome::Corrected(k) => {
                        row[7] = "corrected".into();
                        row[8] = k.to_string();
                    }
                    PeccOutcome::DetectedUncorrectable => {
                        row[7] = "detected_uncorrectable".into();
                    }
                },
                ShiftEvent::BackShift { steps } => {
                    row[9] = steps.to_string();
                }
                ShiftEvent::SafeDistanceSplit {
                    distance,
                    cap,
                    parts,
                } => {
                    row[3] = distance.to_string();
                    row[10] = cap.to_string();
                    row[4] = parts.to_string();
                }
                ShiftEvent::ReqEnqueued { id, group } => {
                    row[11] = id.to_string();
                    row[12] = group.to_string();
                }
                ShiftEvent::ReqDispatched {
                    id,
                    group,
                    queue_delay,
                } => {
                    row[11] = id.to_string();
                    row[12] = group.to_string();
                    row[13] = queue_delay.to_string();
                }
                ShiftEvent::ReqCompleted { id, service_cycles } => {
                    row[11] = id.to_string();
                    row[14] = service_cycles.to_string();
                }
                ShiftEvent::ReqBackpressure { group } => {
                    row[12] = group.to_string();
                }
            }
            rows.push(row);
        }
        rows
    }

    /// CSV rendering of [`Self::rows`].
    pub fn to_csv(&self) -> String {
        to_csv(&self.rows())
    }

    /// Rows for the serving-layer queue events only, in a narrow
    /// schema (header included): enqueue/dispatch/complete/backpressure
    /// with blanks where a kind has no such field.
    pub fn queue_rows(&self) -> Vec<Vec<String>> {
        use crate::events::ShiftEvent;
        let mut rows = vec![vec![
            "seq".to_string(),
            "cycle".to_string(),
            "kind".to_string(),
            "id".to_string(),
            "group".to_string(),
            "queue_delay".to_string(),
            "service_cycles".to_string(),
        ]];
        for e in &self.events {
            if !e.event.is_queue_event() {
                continue;
            }
            let mut row = vec![
                e.seq.to_string(),
                e.cycle.to_string(),
                e.event.kind().to_string(),
            ];
            row.resize(7, String::new());
            match e.event {
                ShiftEvent::ReqEnqueued { id, group } => {
                    row[3] = id.to_string();
                    row[4] = group.to_string();
                }
                ShiftEvent::ReqDispatched {
                    id,
                    group,
                    queue_delay,
                } => {
                    row[3] = id.to_string();
                    row[4] = group.to_string();
                    row[5] = queue_delay.to_string();
                }
                ShiftEvent::ReqCompleted { id, service_cycles } => {
                    row[3] = id.to_string();
                    row[6] = service_cycles.to_string();
                }
                ShiftEvent::ReqBackpressure { group } => {
                    row[4] = group.to_string();
                }
                _ => unreachable!("filtered to queue events"),
            }
            rows.push(row);
        }
        rows
    }

    /// CSV rendering of [`Self::queue_rows`].
    pub fn queue_csv(&self) -> String {
        to_csv(&self.queue_rows())
    }
}

impl LabeledSnapshot {
    /// Rows for CSV export:
    /// `name,labels,type,count,value,min,max,p50,p95,p99` with labels
    /// rendered as `k=v;k=v`, header included.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![vec![
            "name".to_string(),
            "labels".to_string(),
            "type".to_string(),
            "count".to_string(),
            "value".to_string(),
            "min".to_string(),
            "max".to_string(),
            "p50".to_string(),
            "p95".to_string(),
            "p99".to_string(),
        ]];
        for e in &self.entries {
            let mut row = vec![e.name.clone(), e.label_string()];
            match &e.value {
                MetricValue::Counter(v) => {
                    row.extend(["counter".into(), String::new(), v.to_string()]);
                    row.resize(10, String::new());
                }
                MetricValue::Gauge(v) => {
                    row.extend(["gauge".into(), String::new(), num(*v)]);
                    row.resize(10, String::new());
                }
                MetricValue::Histogram(h) => {
                    row.extend([
                        "histogram".into(),
                        h.count.to_string(),
                        num(h.sum),
                        num(h.min),
                        num(h.max),
                        num(h.p50),
                        num(h.p95),
                        num(h.p99),
                    ]);
                }
            }
            rows.push(row);
        }
        rows
    }

    /// CSV rendering of [`Self::rows`].
    pub fn to_csv(&self) -> String {
        to_csv(&self.rows())
    }
}

/// Renders a span snapshot in the flamegraph *collapsed stack* format:
/// one `root;child;leaf value` line per distinct stack, where the value
/// is the stack's total *self* cycles (time not covered by retained
/// children). Lines are sorted by path and zero-valued stacks are
/// omitted, so equal snapshots render byte-identically and the output
/// feeds `flamegraph.pl` / speedscope / `inferno` unchanged.
pub fn folded_stacks(snap: &SpanTraceSnapshot) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in &snap.spans {
        let cycles = snap.self_cycles(span);
        if cycles > 0 {
            *stacks.entry(snap.path_of(span)).or_insert(0) += cycles;
        }
    }
    let mut out = String::new();
    for (path, cycles) in stacks {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&cycles.to_string());
        out.push('\n');
    }
    out
}

/// Renders a span snapshot as Chrome `trace_event` JSON (complete `X`
/// events; 1 simulated cycle = 1 µs), loadable in `about:tracing` or
/// Perfetto. Span ids and parents ride along in `args`.
pub fn chrome_trace(snap: &SpanTraceSnapshot) -> Json {
    Json::obj(vec![
        ("displayTimeUnit", Json::Str("ns".to_string())),
        (
            "traceEvents",
            Json::Arr(
                snap.spans
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::Str(s.name.clone())),
                            ("ph", Json::Str("X".to_string())),
                            ("ts", Json::Num(s.start_cycle as f64)),
                            ("dur", Json::Num(s.duration() as f64)),
                            ("pid", Json::Num(0.0)),
                            ("tid", Json::Num(0.0)),
                            (
                                "args",
                                Json::obj(vec![
                                    ("id", Json::Num(s.id as f64)),
                                    ("parent", Json::Num(s.parent as f64)),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Writes a JSON document to `path` in pretty form. `.csv` paths are
/// not special-cased here; callers pick the representation.
pub fn write_json(path: &Path, doc: &Json) -> io::Result<()> {
    std::fs::write(path, doc.pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventTrace, PeccOutcome, ShiftEvent};
    use crate::labels::LabeledMetrics;
    use crate::metrics::MetricsRegistry;
    use crate::span::SpanTrace;

    #[test]
    fn csv_quotes_special_cells() {
        let rows = vec![
            vec!["a".into(), "b,c".into()],
            vec!["say \"hi\"".into(), "plain".into()],
        ];
        assert_eq!(to_csv(&rows), "a,\"b,c\"\n\"say \"\"hi\"\"\",plain\n");
    }

    #[test]
    fn snapshot_csv_has_header_and_all_metrics() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.counter_add("shift.count", 9);
        r.gauge_set("energy.pj", 1.25);
        r.observe("lat", 3.0);
        let csv = r.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name,type,count"));
        assert!(csv.contains("shift.count,counter,,9"));
        assert!(csv.contains("energy.pj,gauge,,1.25"));
        assert!(csv.contains("lat,histogram,1,3"));
    }

    #[test]
    fn event_csv_round_numbers() {
        let t = EventTrace::new();
        t.set_enabled(true);
        t.record(
            3,
            ShiftEvent::PeccVerdict {
                outcome: PeccOutcome::Corrected(2),
            },
        );
        let csv = t.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], "0,3,PeccVerdict,,,,,corrected,2,,,,,,");
    }

    #[test]
    fn queue_csv_filters_to_queue_events() {
        let t = EventTrace::new();
        t.set_enabled(true);
        t.record(1, ShiftEvent::BackShift { steps: 2 });
        t.record(5, ShiftEvent::ReqEnqueued { id: 9, group: 3 });
        t.record(
            8,
            ShiftEvent::ReqDispatched {
                id: 9,
                group: 3,
                queue_delay: 3,
            },
        );
        t.record(
            20,
            ShiftEvent::ReqCompleted {
                id: 9,
                service_cycles: 12,
            },
        );
        t.record(21, ShiftEvent::ReqBackpressure { group: 3 });
        let csv = t.snapshot().queue_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + the four queue events; the BackShift is filtered.
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "seq,cycle,kind,id,group,queue_delay,service_cycles"
        );
        assert_eq!(lines[1], "1,5,ReqEnqueued,9,3,,");
        assert_eq!(lines[2], "2,8,ReqDispatched,9,3,3,");
        assert_eq!(lines[3], "3,20,ReqCompleted,9,,,12");
        assert_eq!(lines[4], "4,21,ReqBackpressure,,3,,");
    }

    fn sample_spans() -> SpanTraceSnapshot {
        let t = SpanTrace::new();
        t.set_enabled(true);
        let req = t.record(0, "request", 0, 100);
        t.record(req, "queue", 0, 30);
        let d = t.record(req, "dispatch", 30, 95);
        t.record(d, "plan_shift", 30, 70);
        // Second request hitting the same stack shapes.
        let req2 = t.record(0, "request", 100, 140);
        t.record(req2, "queue", 100, 110);
        t.snapshot()
    }

    #[test]
    fn folded_stacks_aggregate_self_cycles_by_path() {
        let folded = folded_stacks(&sample_spans());
        let lines: Vec<&str> = folded.lines().collect();
        // Sorted by path; "request" self = (100-30-65) + (40-10).
        assert_eq!(
            lines,
            vec![
                "request 35",
                "request;dispatch 25",
                "request;dispatch;plan_shift 40",
                "request;queue 40",
            ]
        );
    }

    #[test]
    fn folded_stacks_omit_zero_frames() {
        let t = SpanTrace::new();
        t.set_enabled(true);
        let a = t.record(0, "outer", 0, 10);
        t.record(a, "inner", 0, 10); // covers outer fully
        let folded = folded_stacks(&t.snapshot());
        assert_eq!(folded, "outer;inner 10\n");
    }

    #[test]
    fn chrome_trace_emits_complete_events() {
        let doc = chrome_trace(&sample_spans());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 6);
        let first = &events[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("request"));
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(first.get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(first.get("dur").unwrap().as_u64(), Some(100));
        assert_eq!(
            first.get("args").unwrap().get("parent").unwrap().as_u64(),
            Some(0)
        );
        // Parseable by our own JSON reader (and thus well-formed).
        assert!(Json::parse(&doc.pretty()).is_ok());
    }

    #[test]
    fn labeled_csv_has_labels_column() {
        let m = LabeledMetrics::new();
        m.set_enabled(true);
        m.counter_add_with("serve.requests", &[("tenant", "0"), ("bank", "2")], 7);
        m.observe_labeled("serve.latency", &[("tenant", "0")], 4.0);
        let csv = m.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,labels,type"));
        assert_eq!(lines[1], "serve.latency,tenant=0,histogram,1,4,4,4,4,4,4");
        assert_eq!(lines[2], "serve.requests,bank=2;tenant=0,counter,,7,,,,,");
    }
}
