//! A registry of named counters, gauges and fixed-bucket histograms.
//!
//! The registry is designed for hot simulation loops: when disabled
//! (the default) every recording call is a single relaxed atomic load,
//! so instrumented code pays essentially nothing in uninstrumented
//! runs. When enabled, the *read* path is lock-free: the name index is
//! an [`RcuCell`] snapshot (a sorted `Vec` of `(name, Arc<cell>)`
//! pairs, binary-searched per call) and every metric cell is plain
//! atomics, so recording an existing metric takes one atomic pointer
//! load, a short binary search, and one atomic RMW — no mutex, no
//! allocation. Only *creating* a metric (first recording under a new
//! name) serialises on a writer mutex, which copies the index,
//! inserts, and atomically swaps the new snapshot in.
//!
//! # Orderings audit (multi-worker case)
//!
//! `enabled` is loaded and stored with `Relaxed` ordering on purpose:
//! it is a sampling gate, not a synchronization edge. A worker that
//! reads a stale `false` skips one recording near the moment the flag
//! flipped — acceptable, because callers enable recording before
//! spawning workers and snapshot after joining them.
//!
//! The index is published with `Release` and read with `Acquire` (the
//! `RcuCell` contract), so a reader that finds a cell always sees its
//! fully initialised state. Cell *updates* are `Relaxed` atomic RMWs:
//! RMWs cannot lose increments regardless of ordering, and snapshot
//! visibility is provided by the caller's join edge (the sweep drivers
//! snapshot after joining their workers), exactly the contract the old
//! mutex-sharded implementation documented. Gauge/histogram `f64`
//! state is stored as bit patterns in `AtomicU64` and combined with
//! compare-exchange loops, so concurrent `gauge_add`/`observe` calls
//! are lossless too.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rtm_par::rcu::RcuCell;

use crate::json::Json;

/// Default histogram bucket upper bounds: a 1–2–5 ladder covering
/// nine decades, suitable for cycle counts and latencies.
pub const DEFAULT_BUCKETS: [f64; 28] = [
    1.0, 2.0, 5.0, 1.0e1, 2.0e1, 5.0e1, 1.0e2, 2.0e2, 5.0e2, 1.0e3, 2.0e3, 5.0e3, 1.0e4, 2.0e4,
    5.0e4, 1.0e5, 2.0e5, 5.0e5, 1.0e6, 2.0e6, 5.0e6, 1.0e7, 2.0e7, 5.0e7, 1.0e8, 2.0e8, 5.0e8,
    1.0e9,
];

#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Hist),
}

/// Fixed-bucket histogram state: `counts[i]` tallies observations with
/// `value <= bounds[i]`; the final slot is the overflow bucket.
#[derive(Debug, Clone)]
pub(crate) struct Hist {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Hist {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub(crate) fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// Number of independently locked shards in a [`crate::labels::LabeledMetrics`]
/// registry. Sixteen comfortably exceeds the worker counts the
/// `rtm-par` pool spawns on typical hosts, so two workers rarely queue
/// on the same lock.
pub const SHARD_COUNT: usize = 16;

/// FNV-1a hash of a string (used by the label-set-sharded
/// [`crate::labels::LabeledMetrics`] to pick a shard).
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Adds `delta` to an `f64` stored as bits in an `AtomicU64`, losslessly
/// under concurrency via a compare-exchange loop.
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Folds `value` into an `f64` min-or-max cell (bits in an `AtomicU64`)
/// with a compare-exchange loop that only writes when `value` improves
/// on the current extreme.
fn atomic_f64_extreme(cell: &AtomicU64, value: f64, take: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while take(value, f64::from_bits(cur)) {
        match cell.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// One live metric cell: plain atomics, shared across index snapshots
/// through an `Arc` so every snapshot generation observes the same
/// state.
#[derive(Debug)]
enum AtomicMetric {
    Counter(AtomicU64),
    /// `f64` bits.
    Gauge(AtomicU64),
    Histogram(AtomicHist),
}

/// Lock-free histogram state mirroring [`Hist`]: bucket tallies and
/// moments as atomics, `f64` moments as bit patterns.
#[derive(Debug)]
struct AtomicHist {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum, value);
        atomic_f64_extreme(&self.min, value, |v, cur| v < cur);
        atomic_f64_extreme(&self.max, value, |v, cur| v > cur);
    }

    /// Materialises the current state as a plain [`Hist`] for the
    /// shared summarisation code.
    fn to_hist(&self) -> Hist {
        Hist {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max.load(Ordering::Relaxed)),
        }
    }
}

/// The registry's name index: `(name, cell)` pairs sorted by name so
/// lookups are a binary search and snapshots need no extra sort.
type MetricIndex = Vec<(String, Arc<AtomicMetric>)>;

/// A registry of named metrics.
///
/// Names are free-form dotted strings (`"shift.latency_cycles"`). A
/// name keeps the kind of its first recording; recording a different
/// kind under the same name is ignored rather than panicking, so
/// instrumentation can never take a simulation down.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    /// Read-mostly snapshot of the name index; recording threads read
    /// it lock-free, creation swaps in a copy under `writer`.
    index: RcuCell<MetricIndex>,
    /// Serialises metric creation and `reset` (never held on the
    /// recording fast path).
    writer: Mutex<()>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            index: RcuCell::new(Vec::new()),
            writer: Mutex::new(()),
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty, disabled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on or off. Off is the default; disabled
    /// recording calls cost one relaxed atomic load.
    pub fn set_enabled(&self, on: bool) {
        // Relaxed: a sampling gate, not a synchronization edge (see the
        // module-level orderings audit).
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Runs `op` on the cell registered under `name`, creating it with
    /// `make` first if absent. The hit path is lock-free: one index
    /// load plus a binary search. The miss path takes the writer
    /// mutex, re-checks (another thread may have created the metric
    /// meanwhile), then publishes a copied index with the new entry.
    fn with_cell(
        &self,
        name: &str,
        make: impl FnOnce() -> AtomicMetric,
        op: impl Fn(&AtomicMetric),
    ) {
        {
            let index = self.index.read();
            if let Ok(i) = index.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                op(&index[i].1);
                return;
            }
        }
        let _writer = self.writer.lock().expect("metrics registry poisoned");
        let index = self.index.read();
        match index.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => op(&index[i].1),
            Err(pos) => {
                let cell = Arc::new(make());
                let mut next = index.clone();
                next.insert(pos, (name.to_string(), Arc::clone(&cell)));
                self.index.replace(next);
                op(&cell);
            }
        }
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.enabled() {
            return;
        }
        self.with_cell(
            name,
            || AtomicMetric::Counter(AtomicU64::new(0)),
            |cell| match cell {
                AtomicMetric::Counter(v) => {
                    v.fetch_add(delta, Ordering::Relaxed);
                }
                _ => debug_assert!(false, "metric {name} is not a counter"),
            },
        );
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.enabled() {
            return;
        }
        self.with_cell(
            name,
            || AtomicMetric::Gauge(AtomicU64::new(0.0f64.to_bits())),
            |cell| match cell {
                AtomicMetric::Gauge(v) => v.store(value.to_bits(), Ordering::Relaxed),
                _ => debug_assert!(false, "metric {name} is not a gauge"),
            },
        );
    }

    /// Adds `delta` to the gauge `name`, creating it at zero first.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        if !self.enabled() {
            return;
        }
        self.with_cell(
            name,
            || AtomicMetric::Gauge(AtomicU64::new(0.0f64.to_bits())),
            |cell| match cell {
                AtomicMetric::Gauge(v) => atomic_f64_add(v, delta),
                _ => debug_assert!(false, "metric {name} is not a gauge"),
            },
        );
    }

    /// Records `value` into the histogram `name` with the
    /// [`DEFAULT_BUCKETS`] layout.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, &DEFAULT_BUCKETS);
    }

    /// Records `value` into the histogram `name`, creating it with the
    /// given strictly increasing bucket upper bounds on first use.
    /// Later calls reuse the existing layout.
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        if !self.enabled() {
            return;
        }
        self.with_cell(
            name,
            || AtomicMetric::Histogram(AtomicHist::new(bounds)),
            |cell| match cell {
                AtomicMetric::Histogram(h) => h.observe(value),
                _ => debug_assert!(false, "metric {name} is not a histogram"),
            },
        );
    }

    /// Removes every metric (the enabled flag is untouched).
    pub fn reset(&self) {
        let _writer = self.writer.lock().expect("metrics registry poisoned");
        self.index.replace(Vec::new());
    }

    /// A copy of every metric, sorted by name. The index snapshot is
    /// a consistent set of *cells*, but cell values are read with
    /// relaxed loads — take snapshots when no workers are recording
    /// (the sweep drivers snapshot after joining) if the copy must be
    /// a single consistent cut across all metrics.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let index = self.index.read();
        let metrics = index
            .iter()
            .map(|(name, cell)| MetricSnapshot {
                name: name.clone(),
                value: match &**cell {
                    AtomicMetric::Counter(v) => MetricValue::Counter(v.load(Ordering::Relaxed)),
                    AtomicMetric::Gauge(v) => {
                        MetricValue::Gauge(f64::from_bits(v.load(Ordering::Relaxed)))
                    }
                    AtomicMetric::Histogram(h) => MetricValue::Histogram(summarise(&h.to_hist())),
                },
            })
            .collect();
        RegistrySnapshot { metrics }
    }
}

pub(crate) fn summarise(h: &Hist) -> HistogramSummary {
    let (min, max) = if h.count == 0 {
        (0.0, 0.0)
    } else {
        (h.min, h.max)
    };
    HistogramSummary {
        count: h.count,
        sum: h.sum,
        min,
        max,
        p50: bucket_quantile(h, 0.50),
        p95: bucket_quantile(h, 0.95),
        p99: bucket_quantile(h, 0.99),
        buckets: h
            .bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(h.counts.iter().copied())
            .collect(),
    }
}

/// Quantile estimate by linear interpolation inside the bucket that
/// contains the target rank; exact at bucket edges and clamped to the
/// observed `[min, max]`.
///
/// # Edge cases (pinned by unit tests)
///
/// * **Empty histogram**: every quantile is `0.0` (not NaN), matching
///   `min`/`max`, which are reported as `0.0` when `count == 0`.
/// * **Single sample `v`**: every quantile is exactly `v` — the clamp
///   to `[min, max] = [v, v]` collapses the in-bucket interpolation.
/// * **Point mass** (all samples equal): same collapse, exact value.
///
/// These match the *nearest-rank* convention used for exact sample
/// vectors (see [`nearest_rank`]): both report an actually observed
/// value for degenerate inputs rather than an interpolated one.
fn bucket_quantile(h: &Hist, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let rank = q * h.count as f64;
    let mut cumulative = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cumulative + c;
        if next as f64 >= rank {
            let lower = if i == 0 {
                h.min.min(0.0)
            } else {
                h.bounds[i - 1]
            };
            let upper = if i < h.bounds.len() {
                h.bounds[i]
            } else {
                h.max
            };
            let frac = (rank - cumulative as f64) / c as f64;
            let est = lower + frac * (upper - lower);
            return est.clamp(h.min, h.max);
        }
        cumulative = next;
    }
    h.max
}

/// Exact nearest-rank percentile over a **sorted** sample slice:
/// `sorted[(n - 1) * pct / 100]` with integer arithmetic, so results
/// are bit-identical across platforms and thread counts.
///
/// # Edge cases (pinned by unit tests)
///
/// * **Empty slice**: returns `0` (there is no sample to report; the
///   zero matches the empty [`HistogramSummary`], whose `min`/`max`/
///   quantiles all read `0`).
/// * **Single sample**: every percentile — p0 through p100 — returns
///   that sample: the only observed value *is* every quantile.
/// * The index `(n - 1) * pct / 100` rounds the rank *down*, so p50 of
///   `[1, 2]` is `1` (the lower of the two), and p99 of 100 samples is
///   the 99th (index 98), not the maximum.
///
/// # Panics
///
/// Debug-asserts that `sorted` is non-decreasing and `pct <= 100`.
pub fn nearest_rank(sorted: &[u64], pct: usize) -> u64 {
    debug_assert!(pct <= 100, "percentile out of range: {pct}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "nearest_rank needs sorted input"
    );
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// A point-in-time copy of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The metric's registered name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// The value of a snapshotted metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-set (or accumulated) level.
    Gauge(f64),
    /// Distribution summary.
    Histogram(HistogramSummary),
}

/// Summary of a histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// `(upper_bound, count)` per bucket; the last bound is
    /// `f64::INFINITY` (the overflow bucket).
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSummary {
    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of a whole registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The summary of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Merges counters by addition, gauges by taking `other`'s value,
    /// and histograms bucket-wise (layouts must match; mismatched
    /// layouts keep `self`'s entry). Used to aggregate per-cell
    /// snapshots into a sweep-level report.
    pub fn absorb(&mut self, other: &RegistrySnapshot) {
        for theirs in &other.metrics {
            match self.metrics.iter_mut().find(|m| m.name == theirs.name) {
                None => self.metrics.push(theirs.clone()),
                Some(mine) => match (&mut mine.value, &theirs.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        merge_histograms(a, b);
                    }
                    _ => {}
                },
            }
        }
        self.metrics.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

pub(crate) fn merge_histograms(a: &mut HistogramSummary, b: &HistogramSummary) {
    if b.count == 0 {
        return;
    }
    let layouts_match = a.buckets.len() == b.buckets.len()
        && a.buckets
            .iter()
            .zip(&b.buckets)
            .all(|((ba, _), (bb, _))| ba == bb || (ba.is_infinite() && bb.is_infinite()));
    if !layouts_match {
        return;
    }
    if a.count == 0 {
        *a = b.clone();
        return;
    }
    for ((_, ca), (_, cb)) in a.buckets.iter_mut().zip(&b.buckets) {
        *ca += cb;
    }
    a.count += b.count;
    a.sum += b.sum;
    a.min = a.min.min(b.min);
    a.max = a.max.max(b.max);
    // Re-derive quantiles from the merged buckets.
    let bounds: Vec<f64> = a
        .buckets
        .iter()
        .map(|&(b, _)| b)
        .filter(|b| b.is_finite())
        .collect();
    let merged = Hist {
        counts: a.buckets.iter().map(|&(_, c)| c).collect(),
        bounds,
        count: a.count,
        sum: a.sum,
        min: a.min,
        max: a.max,
    };
    a.p50 = bucket_quantile(&merged, 0.50);
    a.p95 = bucket_quantile(&merged, 0.95);
    a.p99 = bucket_quantile(&merged, 0.99);
}

fn bound_to_json(b: f64) -> Json {
    if b.is_infinite() {
        Json::Str("inf".to_string())
    } else {
        Json::Num(b)
    }
}

fn bound_from_json(j: &Json) -> Option<f64> {
    match j {
        Json::Str(s) if s == "inf" => Some(f64::INFINITY),
        Json::Num(v) => Some(*v),
        _ => None,
    }
}

impl RegistrySnapshot {
    /// Encodes the snapshot as a JSON object keyed by metric name.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.metrics
                .iter()
                .map(|m| (m.name.clone(), metric_to_json(&m.value)))
                .collect(),
        )
    }

    /// Decodes a snapshot previously produced by [`Self::to_json`].
    ///
    /// Returns `None` when the document does not have the snapshot
    /// shape.
    pub fn from_json(doc: &Json) -> Option<RegistrySnapshot> {
        let Json::Obj(pairs) = doc else { return None };
        let mut metrics = Vec::with_capacity(pairs.len());
        for (name, value) in pairs {
            metrics.push(MetricSnapshot {
                name: name.clone(),
                value: metric_from_json(value)?,
            });
        }
        Some(RegistrySnapshot { metrics })
    }
}

pub(crate) fn metric_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::obj(vec![
            ("type", Json::Str("counter".into())),
            ("value", Json::Num(*v as f64)),
        ]),
        MetricValue::Gauge(v) => Json::obj(vec![
            ("type", Json::Str("gauge".into())),
            ("value", Json::Num(*v)),
        ]),
        MetricValue::Histogram(h) => Json::obj(vec![
            ("type", Json::Str("histogram".into())),
            ("count", Json::Num(h.count as f64)),
            ("sum", Json::Num(h.sum)),
            ("min", Json::Num(h.min)),
            ("max", Json::Num(h.max)),
            ("p50", Json::Num(h.p50)),
            ("p95", Json::Num(h.p95)),
            ("p99", Json::Num(h.p99)),
            (
                "buckets",
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(le, count)| {
                            Json::obj(vec![
                                ("le", bound_to_json(le)),
                                ("count", Json::Num(count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

pub(crate) fn metric_from_json(doc: &Json) -> Option<MetricValue> {
    match doc.get("type")?.as_str()? {
        "counter" => Some(MetricValue::Counter(doc.get("value")?.as_u64()?)),
        "gauge" => Some(MetricValue::Gauge(doc.get("value")?.as_f64()?)),
        "histogram" => {
            let buckets = doc
                .get("buckets")?
                .as_arr()?
                .iter()
                .map(|b| Some((bound_from_json(b.get("le")?)?, b.get("count")?.as_u64()?)))
                .collect::<Option<Vec<_>>>()?;
            Some(MetricValue::Histogram(HistogramSummary {
                count: doc.get("count")?.as_u64()?,
                sum: doc.get("sum")?.as_f64()?,
                min: doc.get("min")?.as_f64()?,
                max: doc.get("max")?.as_f64()?,
                p50: doc.get("p50")?.as_f64()?,
                p95: doc.get("p95")?.as_f64()?,
                p99: doc.get("p99")?.as_f64()?,
                buckets,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 5);
        r.gauge_set("g", 1.0);
        r.observe("h", 3.0);
        assert!(r.snapshot().metrics.is_empty());
    }

    #[test]
    fn counter_accumulates() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.counter_add("shift.count", 3);
        r.counter_add("shift.count", 4);
        assert_eq!(r.snapshot().counter("shift.count"), Some(7));
    }

    #[test]
    fn gauge_set_and_add() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.gauge_set("energy.pj", 10.0);
        r.gauge_set("energy.pj", 4.0);
        assert_eq!(r.snapshot().gauge("energy.pj"), Some(4.0));
        r.gauge_add("energy.pj", 1.5);
        assert_eq!(r.snapshot().gauge("energy.pj"), Some(5.5));
    }

    #[test]
    fn histogram_counts_and_moments() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        for v in [1.0, 2.0, 3.0, 100.0] {
            r.observe("lat", v);
        }
        let snap = r.snapshot();
        let h = snap.histogram("lat").expect("histogram");
        assert_eq!(h.count, 4);
        assert!((h.sum - 106.0).abs() < 1e-12);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.5).abs() < 1e-12);
        let total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        assert!(h.buckets.last().expect("overflow").0.is_infinite());
    }

    #[test]
    fn quantiles_are_ordered_and_within_range() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        for i in 0..1000 {
            r.observe("lat", (i % 97) as f64 + 1.0);
        }
        let snap = r.snapshot();
        let h = snap.histogram("lat").expect("histogram");
        assert!(h.min <= h.p50 && h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
        // Uniform-ish over [1, 97]: p50 should sit near the middle.
        assert!(h.p50 > 20.0 && h.p50 < 80.0, "p50 {}", h.p50);
    }

    #[test]
    fn quantile_exact_for_point_mass() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        for _ in 0..50 {
            r.observe("lat", 42.0);
        }
        let snap = r.snapshot();
        let h = snap.histogram("lat").expect("histogram");
        assert_eq!(h.p50, 42.0);
        assert_eq!(h.p99, 42.0);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        // Pinned edge case: an empty histogram reports 0.0 for every
        // summary field rather than NaN or an interpolation artefact.
        let h = summarise(&Hist::new(&DEFAULT_BUCKETS));
        assert_eq!(h.count, 0);
        assert_eq!((h.min, h.max), (0.0, 0.0));
        assert_eq!((h.p50, h.p95, h.p99), (0.0, 0.0, 0.0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_of_single_sample_are_exact() {
        // Pinned edge case: with one observation, every quantile is
        // that observation — the [min, max] clamp collapses the
        // in-bucket interpolation to the exact value.
        for v in [0.0, 1.0, 3.7, 42.0, 1.5e8, 9.9e9] {
            let mut hist = Hist::new(&DEFAULT_BUCKETS);
            hist.observe(v);
            let h = summarise(&hist);
            assert_eq!(h.count, 1);
            assert_eq!((h.min, h.max), (v, v));
            assert_eq!((h.p50, h.p95, h.p99), (v, v, v), "value {v}");
        }
    }

    #[test]
    fn nearest_rank_pins_edge_cases() {
        // Empty: no sample to report, so 0 (matching the empty
        // histogram summary).
        assert_eq!(nearest_rank(&[], 50), 0);
        assert_eq!(nearest_rank(&[], 99), 0);
        // Single sample: every percentile is that sample.
        for pct in [0, 1, 50, 95, 99, 100] {
            assert_eq!(nearest_rank(&[7], pct), 7, "p{pct}");
        }
        // Two samples: the floor rank picks the lower one at p50.
        assert_eq!(nearest_rank(&[1, 2], 50), 1);
        assert_eq!(nearest_rank(&[1, 2], 100), 2);
        // 100 samples 1..=100: p99 is the 99th, not the max.
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 50), 50);
        assert_eq!(nearest_rank(&v, 95), 95);
        assert_eq!(nearest_rank(&v, 99), 99);
        assert_eq!(nearest_rank(&v, 100), 100);
    }

    #[test]
    fn custom_buckets_are_kept() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.observe_with("d", 3.0, &[1.0, 4.0, 9.0]);
        r.observe_with("d", 100.0, &[1.0, 4.0, 9.0]);
        let snap = r.snapshot();
        let h = snap.histogram("d").expect("histogram");
        assert_eq!(h.buckets.len(), 4);
        assert_eq!(h.buckets[1], (4.0, 1));
        assert_eq!(h.buckets[3].1, 1, "overflow bucket holds 100.0");
    }

    #[test]
    fn reset_clears_metrics() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.counter_add("c", 1);
        r.reset();
        assert!(r.snapshot().metrics.is_empty());
        assert!(r.enabled(), "reset keeps the enabled flag");
    }

    #[test]
    fn snapshot_json_round_trip() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.counter_add("a.count", 12);
        r.gauge_set("b.level", -2.5);
        for v in [1.0, 7.0, 7.0, 30.0] {
            r.observe("c.hist", v);
        }
        let snap = r.snapshot();
        let doc = snap.to_json();
        let text = doc.pretty();
        let parsed = Json::parse(&text).expect("parse");
        let back = RegistrySnapshot::from_json(&parsed).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        r.counter_add("shared.count", 1);
                        r.counter_add(&format!("worker{t}.count"), 1);
                        r.observe("shared.hist", (i % 10) as f64);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("shared.count"), Some(8_000));
        for t in 0..8 {
            assert_eq!(snap.counter(&format!("worker{t}.count")), Some(1_000));
        }
        assert_eq!(snap.histogram("shared.hist").expect("hist").count, 8_000);
    }

    #[test]
    fn snapshot_is_sorted_across_shards() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        // Enough names to land in many different shards.
        for i in 0..100 {
            r.counter_add(&format!("m{i:03}"), i);
        }
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 100);
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn absorb_merges_counters_and_histograms() {
        let r1 = MetricsRegistry::new();
        r1.set_enabled(true);
        r1.counter_add("c", 2);
        r1.observe("h", 1.0);
        let r2 = MetricsRegistry::new();
        r2.set_enabled(true);
        r2.counter_add("c", 3);
        r2.observe("h", 9.0);
        r2.counter_add("only2", 1);
        let mut total = r1.snapshot();
        total.absorb(&r2.snapshot());
        assert_eq!(total.counter("c"), Some(5));
        assert_eq!(total.counter("only2"), Some(1));
        let h = total.histogram("h").expect("histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 9.0);
    }
}
