//! Wall-clock scoped timers and a heartbeat progress reporter for
//! long Monte-Carlo sweeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::MetricsRegistry;

/// Records wall-clock time into a histogram metric when dropped.
///
/// ```
/// use rtm_obs::metrics::MetricsRegistry;
/// use rtm_obs::timer::ScopedTimer;
///
/// let registry = MetricsRegistry::new();
/// registry.set_enabled(true);
/// {
///     let _t = ScopedTimer::new(&registry, "time.demo_ms");
///     // ... timed work ...
/// }
/// assert_eq!(registry.snapshot().histogram("time.demo_ms").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    registry: &'a MetricsRegistry,
    name: String,
    start: Instant,
}

impl<'a> ScopedTimer<'a> {
    /// Starts a timer that will record elapsed milliseconds into the
    /// histogram `name` on drop.
    pub fn new(registry: &'a MetricsRegistry, name: impl Into<String>) -> Self {
        Self {
            registry,
            name: name.into(),
            start: Instant::now(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        let ms = self.start.elapsed().as_secs_f64() * 1e3;
        self.registry.observe(&self.name, ms);
    }
}

/// Periodic progress reporter for long-running sweeps.
///
/// `tick` is cheap (one atomic add, plus an occasional clock read);
/// heartbeat lines go to stderr at most every `min_interval` so even a
/// million-trial Monte-Carlo loop can tick per trial. Nothing is
/// printed unless reporting was switched on with
/// [`crate::set_progress`].
#[derive(Debug)]
pub struct Progress {
    label: String,
    unit: &'static str,
    total: u64,
    done: AtomicU64,
    start: Instant,
    last_report: Mutex<Instant>,
    min_interval: Duration,
    active: bool,
}

impl Progress {
    /// Creates a reporter for `total` units of work (0 when unknown).
    pub fn new(label: impl Into<String>, total: u64, unit: &'static str) -> Self {
        let now = Instant::now();
        Self {
            label: label.into(),
            unit,
            total,
            done: AtomicU64::new(0),
            start: now,
            last_report: Mutex::new(now),
            min_interval: Duration::from_millis(500),
            active: crate::progress_enabled(),
        }
    }

    /// Advances the counter by `n` and emits a heartbeat if one is
    /// due.
    pub fn tick(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if !self.active {
            return;
        }
        let mut last = self.last_report.lock().expect("progress poisoned");
        if last.elapsed() >= self.min_interval {
            *last = Instant::now();
            drop(last);
            self.report(done, false);
        }
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Emits a final summary line (if reporting is on).
    pub fn finish(&self) {
        if self.active {
            self.report(self.done(), true);
        }
    }

    fn report(&self, done: u64, finished: bool) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let state = if finished { "done" } else { "running" };
        if self.total > 0 {
            let pct = 100.0 * done as f64 / self.total as f64;
            eprintln!(
                "[progress] {}: {}/{} {} ({:.1}%), {:.1}s elapsed, {:.0} {}/s, {}",
                self.label, done, self.total, self.unit, pct, elapsed, rate, self.unit, state
            );
        } else {
            eprintln!(
                "[progress] {}: {} {}, {:.1}s elapsed, {:.0} {}/s, {}",
                self.label, done, self.unit, elapsed, rate, self.unit, state
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_timer_records_one_observation() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        {
            let t = ScopedTimer::new(&r, "time.block_ms");
            assert!(t.elapsed() < Duration::from_secs(5));
        }
        let snap = r.snapshot();
        let h = snap.histogram("time.block_ms").expect("histogram");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn progress_counts_ticks() {
        let p = Progress::new("unit-test", 10, "steps");
        p.tick(3);
        p.tick(4);
        assert_eq!(p.done(), 7);
        p.finish();
    }
}
