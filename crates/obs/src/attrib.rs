//! Cycle-attribution tables: where did a run's cycles actually go?
//!
//! An [`AttributionTable`] is a grid of cells, each identified by a
//! tuple of key values (workload, scheme, policy, tenant, ...) and
//! carrying a fixed set of cycle components (queue delay, STS shift,
//! p-ECC verify, back-shift, array access, memory fill, ...) plus the
//! cell's independently measured total. The defining invariant —
//! checked by [`AttributionTable::max_residual`] and gated in CI — is
//! that the components sum to the total within one cycle: attribution
//! is an exact decomposition, not a sampling estimate.
//!
//! The type is schema-flexible (key and component names are data, not
//! fields) so the serving sweep, the fig14 hierarchy sweep and future
//! per-tenant reports all share one JSON/CSV format and one renderer.

use crate::export::to_csv;
use crate::json::Json;

/// One attributed cell: key values plus its cycle decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionCell {
    /// Key values, aligned with the table's `key_names`.
    pub keys: Vec<String>,
    /// Component cycle counts, aligned with the table's `components`.
    pub cycles: Vec<u64>,
    /// The cell's independently measured total cycles.
    pub total: u64,
}

impl AttributionCell {
    /// Sum of the component cycles.
    pub fn components_sum(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `components_sum - total` (0 when the decomposition is exact).
    pub fn residual(&self) -> i64 {
        self.components_sum() as i64 - self.total as i64
    }
}

/// A named attribution grid.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttributionTable {
    /// What the key columns mean (e.g. `["workload", "scheme",
    /// "policy"]`).
    pub key_names: Vec<String>,
    /// What the cycle columns mean (e.g. `["queue_delay", "sts_shift",
    /// "pecc_verify", ...]`).
    pub components: Vec<String>,
    /// The cells, in the sweep's grid order.
    pub cells: Vec<AttributionCell>,
}

impl AttributionTable {
    /// Creates an empty table with the given column schema.
    pub fn new(
        key_names: impl IntoIterator<Item = impl Into<String>>,
        components: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self {
            key_names: key_names.into_iter().map(Into::into).collect(),
            components: components.into_iter().map(Into::into).collect(),
            cells: Vec::new(),
        }
    }

    /// Appends a cell.
    ///
    /// # Panics
    ///
    /// Panics if the key or component counts do not match the schema —
    /// a malformed table would silently misalign every export.
    pub fn push(
        &mut self,
        keys: impl IntoIterator<Item = impl Into<String>>,
        cycles: impl IntoIterator<Item = u64>,
        total: u64,
    ) {
        let cell = AttributionCell {
            keys: keys.into_iter().map(Into::into).collect(),
            cycles: cycles.into_iter().collect(),
            total,
        };
        assert_eq!(cell.keys.len(), self.key_names.len(), "key arity");
        assert_eq!(cell.cycles.len(), self.components.len(), "component arity");
        self.cells.push(cell);
    }

    /// Looks a cell up by exact key values.
    pub fn cell(&self, keys: &[&str]) -> Option<&AttributionCell> {
        self.cells
            .iter()
            .find(|c| c.keys.len() == keys.len() && c.keys.iter().zip(keys).all(|(a, b)| a == b))
    }

    /// A cell's cycles for one named component.
    pub fn component(&self, cell: &AttributionCell, name: &str) -> Option<u64> {
        let i = self.components.iter().position(|c| c == name)?;
        cell.cycles.get(i).copied()
    }

    /// Largest `|components_sum - total|` over all cells (0 for an
    /// empty table). The acceptance gate is `max_residual() <= 1`.
    pub fn max_residual(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.residual().unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Header + data rows (strings), for text rendering and CSV: the
    /// key columns, each component, the component sum, and the total.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut header: Vec<String> = self.key_names.clone();
        header.extend(self.components.iter().cloned());
        header.push("components_sum".to_string());
        header.push("total".to_string());
        let mut rows = vec![header];
        for c in &self.cells {
            let mut row = c.keys.clone();
            row.extend(c.cycles.iter().map(u64::to_string));
            row.push(c.components_sum().to_string());
            row.push(c.total.to_string());
            rows.push(row);
        }
        rows
    }

    /// The table as RFC-4180 CSV.
    pub fn to_csv(&self) -> String {
        to_csv(&self.rows())
    }

    /// Encodes the table as a JSON object.
    pub fn to_json(&self) -> Json {
        let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj(vec![
            ("key_names", strs(&self.key_names)),
            ("components", strs(&self.components)),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("keys", strs(&c.keys)),
                                (
                                    "cycles",
                                    Json::Arr(
                                        c.cycles.iter().map(|&v| Json::Num(v as f64)).collect(),
                                    ),
                                ),
                                ("total", Json::Num(c.total as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a table previously produced by [`Self::to_json`].
    pub fn from_json(doc: &Json) -> Option<AttributionTable> {
        let strs = |j: &Json| -> Option<Vec<String>> {
            j.as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect()
        };
        let mut cells = Vec::new();
        for c in doc.get("cells")?.as_arr()? {
            cells.push(AttributionCell {
                keys: strs(c.get("keys")?)?,
                cycles: c
                    .get("cycles")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Option<Vec<_>>>()?,
                total: c.get("total")?.as_u64()?,
            });
        }
        Some(AttributionTable {
            key_names: strs(doc.get("key_names")?)?,
            components: strs(doc.get("components")?)?,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttributionTable {
        let mut t = AttributionTable::new(
            ["workload", "policy"],
            ["queue_delay", "sts_shift", "pecc_verify", "array_access"],
        );
        t.push(["canneal", "fcfs"], [100, 40, 10, 50], 200);
        t.push(["canneal", "shift-aware"], [60, 30, 10, 50], 150);
        t
    }

    #[test]
    fn exact_decomposition_has_zero_residual() {
        let t = sample();
        assert_eq!(t.max_residual(), 0);
        let c = t.cell(&["canneal", "fcfs"]).expect("cell");
        assert_eq!(c.components_sum(), 200);
        assert_eq!(c.residual(), 0);
        assert_eq!(t.component(c, "sts_shift"), Some(40));
        assert_eq!(t.component(c, "missing"), None);
    }

    #[test]
    fn residual_flags_inexact_cells() {
        let mut t = sample();
        t.push(["x", "fcfs"], [1, 1, 1, 1], 10);
        assert_eq!(t.max_residual(), 6);
        assert_eq!(t.cell(&["x", "fcfs"]).unwrap().residual(), -6);
    }

    #[test]
    fn rows_have_schema_columns_plus_sum_and_total() {
        let t = sample();
        let rows = t.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 2 + 4 + 2);
        assert_eq!(rows[0][6], "components_sum");
        assert_eq!(rows[1][6], "200");
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("workload,policy,queue_delay"));
    }

    #[test]
    fn json_round_trip_preserves_table() {
        let t = sample();
        let text = t.to_json().pretty();
        let parsed = Json::parse(&text).expect("parse");
        let back = AttributionTable::from_json(&parsed).expect("decode");
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "component arity")]
    fn mismatched_component_arity_panics() {
        let mut t = sample();
        t.push(["a", "b"], [1, 2], 3);
    }
}
