//! Cross-module invariants the unit tests cannot see in one place:
//! every export format round-trips byte-identically, and span trees
//! obey the attribution invariants the profiler reports rely on.

use rtm_obs::attrib::AttributionTable;
use rtm_obs::events::{EventTrace, EventTraceSnapshot, PeccOutcome, ShiftEvent};
use rtm_obs::export::{chrome_trace, folded_stacks};
use rtm_obs::json::Json;
use rtm_obs::labels::{LabeledMetrics, LabeledSnapshot};
use rtm_obs::metrics::{MetricsRegistry, RegistrySnapshot};
use rtm_obs::span::{SpanTrace, SpanTraceSnapshot};

/// export → parse → re-export must be byte-identical: the pretty
/// printer is deterministic and the parser loses nothing.
fn assert_json_stable(doc: &Json) {
    let first = doc.pretty();
    let reparsed = Json::parse(&first).expect("self-produced JSON parses");
    assert_eq!(
        reparsed.pretty(),
        first,
        "JSON re-export not byte-identical"
    );
}

fn populated_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();
    r.set_enabled(true);
    r.counter_add("shift.count", 41);
    r.gauge_set("energy.pj", 2.625);
    for v in [1.0, 3.0, 250.0, 9.5] {
        r.observe("shift.latency", v);
    }
    r
}

fn populated_labeled() -> LabeledMetrics {
    let m = LabeledMetrics::new();
    m.set_enabled(true);
    for tenant in 0..3 {
        let t = tenant.to_string();
        m.counter_add_with(
            "serve.requests",
            &[("tenant", &t), ("scheme", "p-ECC-S")],
            10 + tenant,
        );
        m.observe_labeled(
            "serve.latency",
            &[("tenant", &t)],
            12.0 * (tenant + 1) as f64,
        );
    }
    m.gauge_set_with(
        "bank.busy_frac",
        &[("bank", "3"), ("policy", "shift-aware")],
        0.375,
    );
    m
}

fn populated_events() -> EventTrace {
    let t = EventTrace::new();
    t.set_enabled(true);
    t.record(
        1,
        ShiftEvent::ShiftPlanned {
            distance: 32,
            parts: 2,
            latency_cycles: 18,
        },
    );
    t.record(
        3,
        ShiftEvent::StsPulse {
            distance: 16,
            cycles: 9,
        },
    );
    t.record(
        12,
        ShiftEvent::PeccVerdict {
            outcome: PeccOutcome::Corrected(1),
        },
    );
    t.record(13, ShiftEvent::BackShift { steps: 1 });
    t.record(
        20,
        ShiftEvent::ReqDispatched {
            id: 7,
            group: 2,
            queue_delay: 5,
        },
    );
    t
}

/// A two-request span forest exercising nesting, siblings and roots.
fn populated_spans() -> SpanTrace {
    let t = SpanTrace::new();
    t.set_enabled(true);
    let req = t.record(0, "request", 0, 120);
    t.record(req, "queue", 0, 25);
    let d = t.record(req, "dispatch", 25, 110);
    let plan = t.record(d, "plan_shift", 25, 80);
    t.record(plan, "sts_pulse", 25, 50);
    t.record(plan, "sts_pulse", 50, 72);
    t.record(plan, "pecc_verify", 72, 80);
    t.record(d, "mem_fill", 80, 110);
    let req2 = t.record(0, "request", 120, 160);
    t.record(req2, "dispatch", 120, 160);
    t
}

#[test]
fn registry_json_round_trips_byte_identically() {
    let snap = populated_registry().snapshot();
    let doc = snap.to_json();
    assert_json_stable(&doc);
    let back = RegistrySnapshot::from_json(&doc).expect("decode");
    assert_eq!(back, snap);
    assert_eq!(back.to_json().pretty(), doc.pretty());
}

#[test]
fn labeled_json_round_trips_byte_identically() {
    let snap = populated_labeled().snapshot();
    let doc = snap.to_json();
    assert_json_stable(&doc);
    let back = LabeledSnapshot::from_json(&doc).expect("decode");
    assert_eq!(back, snap);
    assert_eq!(back.to_json().pretty(), doc.pretty());
}

#[test]
fn event_json_round_trips_byte_identically() {
    let snap = populated_events().snapshot();
    let doc = snap.to_json();
    assert_json_stable(&doc);
    let back = EventTraceSnapshot::from_json(&doc).expect("decode");
    assert_eq!(back, snap);
    assert_eq!(back.to_json().pretty(), doc.pretty());
}

#[test]
fn span_json_round_trips_byte_identically() {
    let snap = populated_spans().snapshot();
    let doc = snap.to_json();
    assert_json_stable(&doc);
    let back = SpanTraceSnapshot::from_json(&doc).expect("decode");
    assert_eq!(back, snap);
    assert_eq!(back.to_json().pretty(), doc.pretty());
}

#[test]
fn attribution_json_round_trips_byte_identically() {
    let mut t = AttributionTable::new(
        ["workload", "scheme", "policy"],
        [
            "queue_delay",
            "sts_shift",
            "pecc_verify",
            "back_shift",
            "array_access",
            "mem_fill",
        ],
    );
    t.push(["canneal", "p-ECC-S", "fcfs"], [50, 20, 6, 0, 30, 14], 120);
    t.push(
        ["dedup", "p-ECC-O", "shift-aware"],
        [10, 22, 8, 0, 40, 0],
        80,
    );
    let doc = t.to_json();
    assert_json_stable(&doc);
    let back = AttributionTable::from_json(&doc).expect("decode");
    assert_eq!(back, t);
    assert_eq!(back.to_json().pretty(), doc.pretty());
}

#[test]
fn csv_exports_are_stable_after_json_round_trip() {
    // CSV is derived from snapshots; after a JSON round-trip the CSV
    // must come out byte-identical too.
    let reg = populated_registry().snapshot();
    let reg2 = RegistrySnapshot::from_json(&reg.to_json()).unwrap();
    assert_eq!(reg.to_csv(), reg2.to_csv());

    let lab = populated_labeled().snapshot();
    let lab2 = LabeledSnapshot::from_json(&lab.to_json()).unwrap();
    assert_eq!(lab.to_csv(), lab2.to_csv());

    let ev = populated_events().snapshot();
    let ev2 = EventTraceSnapshot::from_json(&ev.to_json()).unwrap();
    assert_eq!(ev.to_csv(), ev2.to_csv());
    assert_eq!(ev.queue_csv(), ev2.queue_csv());
}

#[test]
fn span_children_nest_within_parents() {
    let snap = populated_spans().snapshot();
    for span in &snap.spans {
        if span.parent == 0 {
            continue;
        }
        let parent = snap.get(span.parent).expect("parent retained");
        assert!(
            span.start_cycle >= parent.start_cycle && span.end_cycle <= parent.end_cycle,
            "span {} [{}, {}) escapes parent {} [{}, {})",
            span.name,
            span.start_cycle,
            span.end_cycle,
            parent.name,
            parent.start_cycle,
            parent.end_cycle,
        );
    }
}

#[test]
fn child_cycle_sums_never_exceed_parents() {
    let snap = populated_spans().snapshot();
    for span in &snap.spans {
        let child_sum: u64 = snap.children_of(span.id).iter().map(|c| c.duration()).sum();
        assert!(
            child_sum <= span.duration(),
            "children of {} sum to {child_sum} > {}",
            span.name,
            span.duration(),
        );
        assert_eq!(snap.self_cycles(span), span.duration() - child_sum);
    }
}

#[test]
fn folded_stacks_conserve_total_cycles() {
    // Self-cycle attribution is exact: summing every folded-stack
    // value recovers exactly the root spans' total duration.
    let snap = populated_spans().snapshot();
    let folded = folded_stacks(&snap);
    let folded_total: u64 = folded
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    let root_total: u64 = snap
        .spans
        .iter()
        .filter(|s| s.parent == 0)
        .map(|s| s.duration())
        .sum();
    assert_eq!(folded_total, root_total);
}

#[test]
fn chrome_trace_covers_every_span() {
    let snap = populated_spans().snapshot();
    let doc = chrome_trace(&snap);
    assert_json_stable(&doc);
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), snap.spans.len());
    let dur_total: u64 = events
        .iter()
        .map(|e| e.get("dur").unwrap().as_u64().unwrap())
        .sum();
    let span_total: u64 = snap.spans.iter().map(|s| s.duration()).sum();
    assert_eq!(dur_total, span_total);
}

#[test]
fn attribution_components_sum_to_total_within_one_cycle() {
    let mut t = AttributionTable::new(["cell"], ["a", "b"]);
    t.push(["exact"], [70, 30], 100);
    t.push(["off-by-one"], [70, 30], 101);
    assert!(t.max_residual() <= 1);
    for cell in &t.cells {
        assert!(cell.residual().unsigned_abs() <= 1, "cell {:?}", cell.keys);
    }
}
