//! Property tests for the area and energy cost models.

use rtm_cost::area::AreaModel;
use rtm_cost::energy::{LlcActivity, LlcEnergyModel};
use rtm_cost::overhead::Scheme;
use rtm_cost::technology::LlcDesign;
use rtm_pecc::layout::{PeccLayout, ProtectionKind};
use rtm_track::geometry::StripeGeometry;
use rtm_util::check::{run_cases, Gen};
use rtm_util::units::Seconds;

/// Area grows monotonically with every component count.
#[test]
fn stripe_area_monotone() {
    run_cases(256, |g: &mut Gen| {
        let domains = g.usize_in(1, 255);
        let r = g.usize_in(0, 15);
        let rw = g.usize_in(0, 15);
        let m = AreaModel::paper();
        let base = m.stripe_area(domains, r, rw).value();
        assert!(m.stripe_area(domains + 1, r, rw).value() > base);
        assert!(m.stripe_area(domains, r + 1, rw).value() > base);
        assert!(m.stripe_area(domains, r, rw + 1).value() > base);
    });
}

/// Protection never shrinks area, for every valid configuration.
#[test]
fn protection_costs_area() {
    run_cases(128, |g: &mut Gen| {
        let ports = 1usize << g.u32_in(0, 3);
        let data = 1usize << g.u32_in(3, 6);
        if !data.is_multiple_of(ports) || data / ports <= 2 {
            return;
        }
        let geom = StripeGeometry::new(data, ports).expect("valid");
        let m = AreaModel::paper();
        let bare = m.area_per_bit(&geom, 0, 0).value();
        for kind in [
            ProtectionKind::Sed,
            ProtectionKind::SECDED,
            ProtectionKind::SECDED_O,
        ] {
            if let Ok(layout) = PeccLayout::new(geom, kind) {
                let prot = m.protected_area_per_bit(&layout).value();
                assert!(prot > bare, "{kind:?}: {prot} vs {bare}");
            }
        }
    });
}

/// Energy is linear in activity: doubling every count doubles the
/// dynamic energy.
#[test]
fn dynamic_energy_is_linear() {
    run_cases(256, |g: &mut Gen| {
        let reads = g.u64_in(0, 99_999);
        let writes = g.u64_in(0, 99_999);
        let steps = g.u64_in(0, 99_999);
        let checks = g.u64_in(0, 99_999);
        let m = LlcEnergyModel::new(LlcDesign::racetrack(), Some(Scheme::PeccSAdaptive), 512);
        let a = LlcActivity {
            reads,
            writes,
            shift_steps: steps,
            shift_ops: steps,
            pecc_checks: checks,
            pecc_corrections: 0,
            duration: Seconds(1e-3),
        };
        let mut doubled = a;
        doubled.reads *= 2;
        doubled.writes *= 2;
        doubled.shift_steps *= 2;
        doubled.pecc_checks *= 2;
        let e1 = m.dynamic_energy(&a).value();
        let e2 = m.dynamic_energy(&doubled).value();
        assert!((e2 - 2.0 * e1).abs() <= 2.0 * e1 * 1e-12 + 1e-9);
    });
}

/// Total energy decomposes exactly into dynamic + leakage.
#[test]
fn total_is_dynamic_plus_leakage() {
    run_cases(256, |g: &mut Gen| {
        let duration_ms = g.f64_in(0.0, 100.0);
        let m = LlcEnergyModel::new(LlcDesign::sram(), None, 1);
        let a = LlcActivity {
            reads: 1000,
            writes: 500,
            shift_steps: 0,
            shift_ops: 0,
            pecc_checks: 0,
            pecc_corrections: 0,
            duration: Seconds(duration_ms * 1e-3),
        };
        let total = m.total_energy(&a).value();
        let parts = m.dynamic_energy(&a).value() + m.leakage_energy(&a).value();
        assert!((total - parts).abs() < 1e-6);
    });
}

/// Stronger codes never have fewer extra domains or ports.
#[test]
fn layout_monotone_in_strength() {
    run_cases(16, |g: &mut Gen| {
        let m = g.u32_in(1, 4);
        let geom = StripeGeometry::new(64, 4).expect("valid");
        let a = PeccLayout::new(geom, ProtectionKind::Correcting { m }).expect("fits");
        let b = PeccLayout::new(geom, ProtectionKind::Correcting { m: m + 1 }).expect("fits");
        assert!(b.extra_domains() > a.extra_domains());
        assert!(b.extra_read_ports > a.extra_read_ports);
        assert!(b.storage_overhead() > a.storage_overhead());
    });
}
