//! Write-style trade-off: shift-based writes vs conventional
//! (STT-style) writes.
//!
//! Section 2.1 of the paper notes both options for a read/write port:
//! the shift-based write steers a pinned reference domain's value into
//! the target with a 1-step local shift and a modest transistor, while
//! an STT-style write programs the domain directly but "requires a
//! larger transistor, due to larger current for write". This module
//! quantifies that trade for the area/energy models.

use rtm_util::units::{Picojoules, SquareF};

/// How a read/write port programs a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteStyle {
    /// Steer a reference domain's value in with a local 1-step shift.
    ShiftBased,
    /// Program the domain directly with a large spin-transfer current.
    SttStyle,
}

/// Per-port cost constants for one write style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePortCost {
    /// Style described.
    pub style: WriteStyle,
    /// Port transistor footprint.
    pub area: SquareF,
    /// Energy per written bit.
    pub energy_per_bit: Picojoules,
    /// Extra local shift steps per write (0 for STT-style).
    pub local_shift_steps: u32,
}

impl WritePortCost {
    /// Calibrated constants: the shift-based port matches the Fig. 7
    /// R/W port (60 F²); the STT-style driver needs roughly twice the
    /// transistor width for its write current but skips the local
    /// shift. Energy per bit follows the Table 4 write-vs-shift split.
    pub fn of(style: WriteStyle) -> Self {
        match style {
            WriteStyle::ShiftBased => Self {
                style,
                area: SquareF(60.0),
                energy_per_bit: Picojoules(1.86), // write share (0.952 nJ / 512)
                local_shift_steps: 1,
            },
            WriteStyle::SttStyle => Self {
                style,
                area: SquareF(120.0),
                energy_per_bit: Picojoules(4.1), // STT-RAM-like write (2.093 nJ / 512)
                local_shift_steps: 0,
            },
        }
    }

    /// Total energy for writing one bit, including the local shift
    /// (charged at the per-stripe share of the Table 4 shift energy).
    pub fn total_write_energy(&self) -> Picojoules {
        let shift_share = Picojoules(1.331e3 / 512.0); // nJ per group / stripes
        self.energy_per_bit + shift_share * self.local_shift_steps as f64
    }
}

/// Area delta of choosing STT-style writes for every data port of a
/// stripe with `rw_ports` read/write ports, per data bit.
pub fn stt_area_premium_per_bit(rw_ports: usize, data_bits: usize) -> SquareF {
    assert!(data_bits > 0, "stripe must hold data");
    let delta = WritePortCost::of(WriteStyle::SttStyle).area
        - WritePortCost::of(WriteStyle::ShiftBased).area;
    delta * rw_ports as f64 / data_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stt_ports_are_larger_but_shiftless() {
        let shift = WritePortCost::of(WriteStyle::ShiftBased);
        let stt = WritePortCost::of(WriteStyle::SttStyle);
        assert!(stt.area.value() > 1.5 * shift.area.value());
        assert_eq!(stt.local_shift_steps, 0);
        assert_eq!(shift.local_shift_steps, 1);
    }

    #[test]
    fn total_energy_includes_local_shift() {
        let shift = WritePortCost::of(WriteStyle::ShiftBased);
        assert!(shift.total_write_energy().value() > shift.energy_per_bit.value());
        let stt = WritePortCost::of(WriteStyle::SttStyle);
        assert_eq!(stt.total_write_energy(), stt.energy_per_bit);
    }

    #[test]
    fn shift_based_wins_area_at_comparable_energy() {
        // The paper's design choice is area-driven: the shift-based
        // write halves the port transistor. Total energy lands within
        // ~20 % of the STT-style write once the local shift is charged.
        let shift = WritePortCost::of(WriteStyle::ShiftBased);
        let stt = WritePortCost::of(WriteStyle::SttStyle);
        assert!(shift.area.value() <= 0.5 * stt.area.value());
        let ratio = shift.total_write_energy().value() / stt.total_write_energy().value();
        assert!((0.8..1.25).contains(&ratio), "energy ratio {ratio:.2}");
    }

    #[test]
    fn premium_scales_with_port_density() {
        let dense = stt_area_premium_per_bit(8, 64);
        let sparse = stt_area_premium_per_bit(2, 64);
        assert!(dense.value() > sparse.value());
        assert!((dense.value() - 60.0 * 8.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        let _ = stt_area_premium_per_bit(1, 0);
    }
}
