//! LLC energy composition: turning operation counts into the dynamic
//! and total energy figures of the paper's Figs. 17 and 18.

use crate::overhead::{ProtectionOverhead, Scheme};
use crate::technology::LlcDesign;
use rtm_util::units::{Picojoules, Seconds};

/// Operation counts accumulated by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LlcActivity {
    /// Line reads served.
    pub reads: u64,
    /// Line writes served.
    pub writes: u64,
    /// Total shift *steps* executed (sum over operations of their
    /// distance, across the line's whole stripe group).
    pub shift_steps: u64,
    /// Shift operations (sub-shifts) executed.
    pub shift_ops: u64,
    /// p-ECC detection checks performed.
    pub pecc_checks: u64,
    /// p-ECC corrections performed.
    pub pecc_corrections: u64,
    /// Wall-clock duration of the run.
    pub duration: Seconds,
}

impl LlcActivity {
    /// Adds another activity record (e.g. per-bank accumulation).
    pub fn merge(&mut self, other: &LlcActivity) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.shift_steps += other.shift_steps;
        self.shift_ops += other.shift_ops;
        self.pecc_checks += other.pecc_checks;
        self.pecc_corrections += other.pecc_corrections;
        self.duration = Seconds(self.duration.as_secs().max(other.duration.as_secs()));
    }
}

/// Energy model for one LLC design point plus a protection scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcEnergyModel {
    design: LlcDesign,
    protection: Option<ProtectionOverhead>,
    /// Number of stripes that act together per access (the paper's
    /// 512-stripe line groups) — p-ECC checks run on every stripe.
    stripes_per_group: u32,
}

impl LlcEnergyModel {
    /// Creates a model. `scheme = None` means an unprotected memory.
    pub fn new(design: LlcDesign, scheme: Option<Scheme>, stripes_per_group: u32) -> Self {
        assert!(stripes_per_group > 0, "a group has at least one stripe");
        Self {
            design,
            protection: scheme.map(ProtectionOverhead::table5),
            stripes_per_group,
        }
    }

    /// The design point.
    pub fn design(&self) -> &LlcDesign {
        &self.design
    }

    /// Dynamic energy for an activity record: reads + writes + shifts +
    /// p-ECC detection/correction.
    pub fn dynamic_energy(&self, a: &LlcActivity) -> Picojoules {
        let mut e = Picojoules::ZERO;
        e += self.design.read_energy * a.reads as f64;
        e += self.design.write_energy * a.writes as f64;
        e += self.design.shift_energy_per_step * a.shift_steps as f64;
        if let Some(p) = &self.protection {
            // Detection runs on every stripe of the group in parallel.
            let per_check = p.detect_energy * self.stripes_per_group as f64;
            e += per_check * a.pecc_checks as f64;
            e += p.correct_energy * a.pecc_corrections as f64;
        }
        e
    }

    /// Leakage energy over the run duration.
    pub fn leakage_energy(&self, a: &LlcActivity) -> Picojoules {
        self.design.leakage.energy_over(a.duration)
    }

    /// Dynamic + leakage.
    pub fn total_energy(&self, a: &LlcActivity) -> Picojoules {
        self.dynamic_energy(a) + self.leakage_energy(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::LlcDesign;

    fn activity() -> LlcActivity {
        LlcActivity {
            reads: 1000,
            writes: 500,
            shift_steps: 3000,
            shift_ops: 1500,
            pecc_checks: 1500,
            pecc_corrections: 2,
            duration: Seconds(1e-3),
        }
    }

    #[test]
    fn dynamic_energy_components_add_up() {
        let m = LlcEnergyModel::new(LlcDesign::racetrack(), None, 512);
        let a = activity();
        let e = m.dynamic_energy(&a);
        let manual = 0.956e3 * 1000.0 + 0.952e3 * 500.0 + 1.331e3 * 3000.0;
        assert!((e.value() - manual).abs() < 1.0, "got {e}, want {manual}");
    }

    #[test]
    fn protection_adds_check_energy() {
        let bare = LlcEnergyModel::new(LlcDesign::racetrack(), None, 512);
        let prot = LlcEnergyModel::new(LlcDesign::racetrack(), Some(Scheme::PeccSAdaptive), 512);
        let a = activity();
        let extra = prot.dynamic_energy(&a).value() - bare.dynamic_energy(&a).value();
        // 1500 checks × 512 stripes × 3.86 pJ plus two corrections.
        let want = 1500.0 * 512.0 * 3.86 + 2.0 * 6.19;
        assert!(
            (extra - want).abs() / want < 1e-9,
            "extra {extra}, want {want}"
        );
    }

    #[test]
    fn sram_pays_no_shift_energy() {
        let m = LlcEnergyModel::new(LlcDesign::sram(), None, 1);
        let mut a = activity();
        let with_shifts = m.dynamic_energy(&a);
        a.shift_steps = 0;
        let without = m.dynamic_energy(&a);
        assert_eq!(with_shifts, without);
    }

    #[test]
    fn leakage_scales_with_duration() {
        let m = LlcEnergyModel::new(LlcDesign::sram(), None, 1);
        let mut a = activity();
        let e1 = m.leakage_energy(&a);
        a.duration = Seconds(2e-3);
        let e2 = m.leakage_energy(&a);
        assert!((e2.value() / e1.value() - 2.0).abs() < 1e-9);
        // 2673.5 mW × 1 ms = 2.6735 mJ.
        assert!((e1.as_millijoules() - 2.6735).abs() < 1e-6);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = activity();
        let b = activity();
        a.merge(&b);
        assert_eq!(a.reads, 2000);
        assert_eq!(a.shift_steps, 6000);
        assert_eq!(a.duration, Seconds(1e-3), "duration is max, not sum");
    }

    #[test]
    #[should_panic]
    fn zero_stripes_rejected() {
        let _ = LlcEnergyModel::new(LlcDesign::racetrack(), None, 0);
    }
}
