//! Area, latency and energy cost models for racetrack memory designs.
//!
//! Three sources feed this crate, mirroring the paper's methodology:
//!
//! * [`area`] — a circuit-level area model for stripes and access
//!   ports, calibrated to the paper's Fig. 7 (average area per data bit
//!   versus port count) and reused for the Fig. 13 sensitivity study;
//! * [`technology`] — the evaluated system's Table 4 constants: L1/L2
//!   parameters and the SRAM / STT-RAM / racetrack LLC design points
//!   (latency, per-access energy, leakage), plus main memory;
//! * [`overhead`] — the paper's Table 5: per-scheme detection and
//!   correction time/energy and controller area, published numbers from
//!   the authors' 45 nm RTL synthesis carried as constants (synthesis
//!   is not reproducible offline — see DESIGN.md);
//! * [`energy`] — composition helpers turning operation counts into
//!   LLC energy figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod overhead;
pub mod technology;
pub mod writes;

pub use area::AreaModel;
pub use energy::LlcEnergyModel;
pub use overhead::{ProtectionOverhead, Scheme};
pub use technology::{CacheTech, LlcDesign, SystemConfig};
