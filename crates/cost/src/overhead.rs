//! Per-scheme protection overhead constants — the paper's Table 5.
//!
//! These figures come from the authors' 45 nm RTL synthesis of the
//! error-aware shift controller; synthesis cannot be reproduced offline,
//! so the published numbers are carried as constants (see DESIGN.md's
//! substitution table). Everything downstream (energy accounting, the
//! Table 5 repro binary) reads them from here.

use rtm_codes::{CheeKiahCodec, PositionCodec, Vahid2diCodec};
use rtm_util::units::{Picojoules, Seconds};

/// The protection mechanisms Table 5 rows describe — the paper's five
/// schemes plus the two deletion/insertion position codes from the
/// coding-theory line of work (rows we derive, not carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Sub-threshold shift alone.
    Sts,
    /// Plain SECDED p-ECC.
    Pecc,
    /// Overhead-region p-ECC-O.
    PeccO,
    /// p-ECC with worst-case safe distance.
    PeccSWorst,
    /// p-ECC with adaptive safe distance.
    PeccSAdaptive,
    /// Chee–Kiah multi-look code (arXiv 1701.06874): redundancy in
    /// read ports and read energy, little in stored bits.
    CheeKiah,
    /// Vahid two-deletion/insertion VT code (arXiv 1701.06478):
    /// redundancy in stored syndrome bits, none in ports.
    Vahid2di,
}

impl Scheme {
    /// All rows in Table 5 order.
    pub const ALL: [Scheme; 7] = [
        Scheme::Sts,
        Scheme::Pecc,
        Scheme::PeccO,
        Scheme::PeccSWorst,
        Scheme::PeccSAdaptive,
        Scheme::CheeKiah,
        Scheme::Vahid2di,
    ];
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Sts => write!(f, "STS"),
            Scheme::Pecc => write!(f, "p-ECC"),
            Scheme::PeccO => write!(f, "p-ECC-O"),
            Scheme::PeccSWorst => write!(f, "p-ECC-S worst"),
            Scheme::PeccSAdaptive => write!(f, "p-ECC-S adaptive"),
            Scheme::CheeKiah => write!(f, "Chee-Kiah"),
            Scheme::Vahid2di => write!(f, "Vahid 2-DI"),
        }
    }
}

/// One Table 5 row: detection/correction cost per stripe plus area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectionOverhead {
    /// Scheme this row describes.
    pub scheme: Scheme,
    /// Detection time per stripe.
    pub detect_time: Seconds,
    /// Detection energy per stripe.
    pub detect_energy: Picojoules,
    /// Correction time per stripe.
    pub correct_time: Seconds,
    /// Correction energy per stripe.
    pub correct_energy: Picojoules,
    /// Cell (capacity) area overhead, fraction (`None` where the paper
    /// lists N/A — STS adds no storage).
    pub cell_area_overhead: Option<f64>,
    /// Controller area in µm² at 45 nm.
    pub controller_area_um2: f64,
}

impl ProtectionOverhead {
    /// The Table 5 row for `scheme`.
    pub fn table5(scheme: Scheme) -> Self {
        let ns = Seconds::from_nanos;
        match scheme {
            Scheme::Sts => Self {
                scheme,
                detect_time: ns(0.82),
                detect_energy: Picojoules(1.31),
                correct_time: ns(0.82),
                correct_energy: Picojoules(1.31),
                cell_area_overhead: None,
                controller_area_um2: 1.94,
            },
            Scheme::Pecc => Self {
                scheme,
                detect_time: ns(0.34),
                detect_energy: Picojoules(3.73),
                correct_time: ns(1.34),
                correct_energy: Picojoules(6.16),
                cell_area_overhead: Some(0.176),
                controller_area_um2: 54.0,
            },
            Scheme::PeccO => Self {
                scheme,
                detect_time: ns(0.34),
                detect_energy: Picojoules(3.74),
                correct_time: ns(1.34),
                correct_energy: Picojoules(9.90),
                cell_area_overhead: Some(0.157),
                controller_area_um2: 54.0,
            },
            Scheme::PeccSWorst => Self {
                scheme,
                detect_time: ns(0.38),
                detect_energy: Picojoules(3.75),
                correct_time: ns(1.35),
                correct_energy: Picojoules(6.17),
                cell_area_overhead: Some(0.176),
                controller_area_um2: 54.3,
            },
            Scheme::PeccSAdaptive => Self {
                scheme,
                detect_time: ns(0.61),
                detect_energy: Picojoules(3.86),
                correct_time: ns(1.37),
                correct_energy: Picojoules(6.19),
                cell_area_overhead: Some(0.176),
                controller_area_um2: 109.4,
            },
            // The two stream-codec rows are derived, not published:
            // cell overhead comes exactly from the codec's
            // overhead_bits_per_word over the codeword it implies, and
            // the time/energy entries are scaled from the measured
            // p-ECC row by the extra work the decode does.
            Scheme::CheeKiah => {
                let codec = CheeKiahCodec::paper_default();
                let looks = codec.heads() as f64;
                Self {
                    scheme,
                    // Both looks read concurrently through their own
                    // ports; the cross-port merge adds one compare
                    // stage over the p-ECC phase check.
                    detect_time: ns(0.34 * 2.0),
                    // Every look pays the window-read energy.
                    detect_energy: Picojoules(3.73 * looks),
                    correct_time: ns(1.34),
                    correct_energy: Picojoules(6.16),
                    cell_area_overhead: Some(derived_cell_overhead(&codec)),
                    controller_area_um2: 86.2,
                }
            }
            Scheme::Vahid2di => {
                let codec = Vahid2diCodec::paper_default();
                let stream = codec.pulses() as f64;
                let window = 2.0; // p-ECC reads an (m+1)-tap window
                Self {
                    scheme,
                    // Detection replays the whole serial stream through
                    // the existing ports: stream-length/window times
                    // the p-ECC window read.
                    detect_time: ns(0.34 * stream / window / 8.0),
                    detect_energy: Picojoules(3.73 * stream / window / 8.0),
                    correct_time: ns(1.34),
                    correct_energy: Picojoules(6.16),
                    cell_area_overhead: Some(derived_cell_overhead(&codec)),
                    controller_area_um2: 97.6,
                }
            }
        }
    }

    /// All Table 5 rows.
    pub fn all() -> Vec<Self> {
        Scheme::ALL.iter().map(|&s| Self::table5(s)).collect()
    }
}

/// Exact storage redundancy of a stream codec: overhead bits over the
/// codeword they imply (data + overhead). This is the channel by which
/// `rtm_codes::PositionCodec::overhead_bits_per_word` feeds the cost
/// model — the figure is computed, never transcribed.
fn derived_cell_overhead<C: PositionCodec>(codec: &C) -> f64 {
    let oh = codec.overhead_bits_per_word() as f64;
    oh / (codec.data_bits() as f64 + oh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values_carried_verbatim() {
        let pecc = ProtectionOverhead::table5(Scheme::Pecc);
        assert!((pecc.detect_time.as_nanos() - 0.34).abs() < 1e-12);
        assert!((pecc.detect_energy.value() - 3.73).abs() < 1e-12);
        assert!((pecc.correct_time.as_nanos() - 1.34).abs() < 1e-12);
        assert_eq!(pecc.cell_area_overhead, Some(0.176));
        assert_eq!(pecc.controller_area_um2, 54.0);
    }

    #[test]
    fn sts_has_no_cell_overhead() {
        let sts = ProtectionOverhead::table5(Scheme::Sts);
        assert_eq!(sts.cell_area_overhead, None);
        assert!(sts.controller_area_um2 < 5.0);
    }

    #[test]
    fn adaptive_controller_is_biggest() {
        let areas: Vec<f64> = ProtectionOverhead::all()
            .iter()
            .map(|r| r.controller_area_um2)
            .collect();
        let max = areas.iter().copied().fold(0.0, f64::max);
        assert_eq!(
            ProtectionOverhead::table5(Scheme::PeccSAdaptive).controller_area_um2,
            max
        );
    }

    #[test]
    fn pecc_o_corrections_cost_more_energy() {
        // Shift-and-write makes p-ECC-O corrections the most expensive.
        let o = ProtectionOverhead::table5(Scheme::PeccO);
        let p = ProtectionOverhead::table5(Scheme::Pecc);
        assert!(o.correct_energy.value() > p.correct_energy.value());
        // ...but its cell area is lower (overhead-region reuse).
        assert!(o.cell_area_overhead.unwrap() < p.cell_area_overhead.unwrap());
    }

    #[test]
    fn all_rows_present_in_order() {
        let rows = ProtectionOverhead::all();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].scheme, Scheme::Sts);
        assert_eq!(rows[4].scheme, Scheme::PeccSAdaptive);
        assert_eq!(rows[5].scheme, Scheme::CheeKiah);
        assert_eq!(rows[6].scheme, Scheme::Vahid2di);
    }

    #[test]
    fn stream_codec_cell_overheads_are_exact() {
        // Chee-Kiah: 8 checksum + 2 look-offset cells on 64 data bits.
        let ck = ProtectionOverhead::table5(Scheme::CheeKiah);
        assert!((ck.cell_area_overhead.unwrap() - 10.0 / 74.0).abs() < 1e-12);
        // Vahid 2-DI: 21 syndrome bits on 64 data bits.
        let v = ProtectionOverhead::table5(Scheme::Vahid2di);
        assert!((v.cell_area_overhead.unwrap() - 21.0 / 85.0).abs() < 1e-12);
    }

    #[test]
    fn stream_codecs_trade_axes_against_pecc() {
        let pecc = ProtectionOverhead::table5(Scheme::Pecc);
        let ck = ProtectionOverhead::table5(Scheme::CheeKiah);
        let v = ProtectionOverhead::table5(Scheme::Vahid2di);
        // Chee-Kiah: less stored redundancy, more read energy (ports).
        assert!(ck.cell_area_overhead.unwrap() < pecc.cell_area_overhead.unwrap());
        assert!(ck.detect_energy.value() > pecc.detect_energy.value());
        // Vahid: more stored redundancy, slowest detection (serial
        // stream replay), but no port cost at all.
        assert!(v.cell_area_overhead.unwrap() > pecc.cell_area_overhead.unwrap());
        assert!(v.detect_time.as_nanos() > ck.detect_time.as_nanos());
    }

    #[test]
    fn display_labels() {
        assert_eq!(Scheme::PeccSWorst.to_string(), "p-ECC-S worst");
    }
}
