//! Stripe/port area model — the paper's Fig. 7 and Fig. 13.
//!
//! A racetrack stripe is stacked over its access transistors, so the
//! footprint is domains plus port transistors plus per-port periphery.
//! Absolute constants below are calibrated to the paper's Fig. 7 curves
//! (average area per data bit of a 64-bit stripe, 8–16 F²/b across the
//! plotted port counts); the model's *structure* — read/write ports cost
//! ~3× a read-only port, domains amortise, many ports dominate — follows
//! the circuit models the paper cites.

use rtm_pecc::layout::{PeccLayout, ProtectionKind};
use rtm_track::geometry::StripeGeometry;
use rtm_util::units::SquareF;

/// Area model constants (all in F²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Footprint per domain (cell pitch and wire share).
    pub domain_area: SquareF,
    /// Footprint per read-only port (sense transistor + periphery).
    pub read_port_area: SquareF,
    /// Footprint per read/write port (write driver transistor is
    /// several times wider).
    pub rw_port_area: SquareF,
    /// Footprint per auxiliary single-bit write port (the p-ECC-O
    /// shift-and-write heads drive one domain, not a full line slice).
    pub aux_write_port_area: SquareF,
}

impl AreaModel {
    /// Constants calibrated to the paper's Fig. 7.
    pub fn paper() -> Self {
        Self {
            domain_area: SquareF(4.0),
            read_port_area: SquareF(9.4),
            rw_port_area: SquareF(60.0),
            aux_write_port_area: SquareF(20.0),
        }
    }

    /// Total area of a stripe with the given domain and port counts.
    pub fn stripe_area(&self, total_domains: usize, read_ports: usize, rw_ports: usize) -> SquareF {
        self.domain_area * total_domains as f64
            + self.read_port_area * read_ports as f64
            + self.rw_port_area * rw_ports as f64
    }

    /// Average area per *data* bit for a bare stripe (the paper's
    /// Fig. 7): a `geometry` stripe plus `extra_read_ports` added
    /// read-only ports and `extra_rw_ports` added read/write ports.
    pub fn area_per_bit(
        &self,
        geometry: &StripeGeometry,
        extra_read_ports: usize,
        extra_rw_ports: usize,
    ) -> SquareF {
        let total = self.stripe_area(
            geometry.total_len(),
            extra_read_ports,
            geometry.num_ports() + extra_rw_ports,
        );
        total / geometry.data_len() as f64
    }

    /// Average area per data bit for a protected stripe (the paper's
    /// Fig. 13): p-ECC code domains and tap ports included.
    pub fn protected_area_per_bit(&self, layout: &PeccLayout) -> SquareF {
        let geometry = layout.geometry;
        let total = self.stripe_area(
            geometry.total_len() + layout.extra_domains(),
            layout.extra_read_ports,
            geometry.num_ports(),
        ) + self.aux_write_port_area * layout.extra_write_ports as f64;
        total / geometry.data_len() as f64
    }

    /// Relative area overhead of a protection scheme versus the bare
    /// stripe.
    pub fn protection_overhead(&self, layout: &PeccLayout) -> f64 {
        let bare = self.area_per_bit(&layout.geometry, 0, 0);
        let prot = self.protected_area_per_bit(layout);
        prot / bare - 1.0
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// The Fig. 7 sweep: area per bit of a 64-bit stripe as read-only ports
/// are added, one series per base read/write port count.
pub fn figure7_series(
    model: &AreaModel,
    rw_counts: &[usize],
    max_extra_read: usize,
) -> Vec<(usize, Vec<(usize, SquareF)>)> {
    rw_counts
        .iter()
        .map(|&rw| {
            // Overhead region shrinks as read/write ports subdivide the
            // stripe; a port-less (read-only) stripe behaves like one
            // 64-domain segment. Uneven divisions round the segment
            // length up, as a physical design would.
            let lseg = 64usize.div_ceil(rw.max(1));
            let total_domains = 64 + (lseg - 1);
            let series = (1..=max_extra_read)
                .map(|r| {
                    let a = (model.domain_area * total_domains as f64
                        + model.rw_port_area * rw as f64
                        + model.read_port_area * r as f64)
                        / 64.0;
                    (r, a)
                })
                .collect();
            (rw, series)
        })
        .collect()
}

/// Convenience: layout + area in one call for the Fig. 13 sensitivity
/// sweep across segment configurations.
pub fn config_area_per_bit(
    model: &AreaModel,
    data_len: usize,
    num_ports: usize,
    kind: ProtectionKind,
) -> Option<SquareF> {
    let geom = StripeGeometry::new(data_len, num_ports).ok()?;
    let layout = PeccLayout::new(geom, kind).ok()?;
    Some(model.protected_area_per_bit(&layout))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_base_point_is_in_paper_band() {
        // Fig. 7: ~8-9 F²/b for a 64-bit stripe with one read port and
        // no read/write ports.
        let m = AreaModel::paper();
        let g = StripeGeometry::new(64, 1).unwrap();
        let base = (m.domain_area * g.total_len() as f64 + m.read_port_area * 1.0) / 64.0;
        assert!((7.5..9.5).contains(&base.value()), "base area {base}");
    }

    #[test]
    fn fig7_slopes_and_offsets() {
        let m = AreaModel::paper();
        let series = figure7_series(&m, &[0, 2, 4, 6, 8], 20);
        // Every series rises with port count.
        for (_, pts) in &series {
            for w in pts.windows(2) {
                assert!(w[1].1.value() > w[0].1.value());
            }
        }
        // More read/write ports shift the whole curve upward.
        let at = |rw: usize, r: usize| {
            series
                .iter()
                .find(|(c, _)| *c == rw)
                .unwrap()
                .1
                .iter()
                .find(|(x, _)| *x == r)
                .unwrap()
                .1
        };
        assert!(at(8, 1).value() > at(0, 1).value() + 2.0);
        // The full plotted range stays within the paper's 8-16 F²/b axis.
        for (_, pts) in &series {
            for (_, a) in pts {
                assert!((7.0..17.0).contains(&a.value()), "area {a}");
            }
        }
    }

    #[test]
    fn secded_cell_overhead_matches_table5() {
        // Table 5: 17.6 % cell overhead for SECDED p-ECC on the default
        // stripe (our layout computes 17.4 %); p-ECC-O stores less.
        let geom = StripeGeometry::paper_default();
        let pecc = PeccLayout::new(geom, ProtectionKind::SECDED).unwrap();
        let oh = pecc.storage_overhead() * 100.0;
        assert!((15.0..20.0).contains(&oh), "SECDED cell overhead {oh:.1}%");
        let pecc_o = PeccLayout::new(geom, ProtectionKind::SECDED_O).unwrap();
        let oh_o = pecc_o.storage_overhead() * 100.0;
        assert!(oh_o < oh, "p-ECC-O {oh_o:.1}% vs p-ECC {oh:.1}%");
        // The area model puts the full (port-inclusive) premium of
        // SECDED protection in a single-digit-to-~20 % band.
        let m = AreaModel::paper();
        let area_oh = m.protection_overhead(&pecc) * 100.0;
        assert!(
            (5.0..25.0).contains(&area_oh),
            "area overhead {area_oh:.1}%"
        );
    }

    #[test]
    fn fig13_shape_many_ports_cost_more() {
        // Fig. 13: 16×2 (16 ports on 32 bits) is far more expensive per
        // bit than 2×16 (2 ports on 32 bits).
        let m = AreaModel::paper();
        let dense = m.area_per_bit(&StripeGeometry::new(32, 16).unwrap(), 0, 0);
        let sparse = m.area_per_bit(&StripeGeometry::new(32, 2).unwrap(), 0, 0);
        assert!(dense.value() > 1.5 * sparse.value());
        assert!((20.0..36.0).contains(&dense.value()), "dense {dense}");
        assert!((7.0..12.0).contains(&sparse.value()), "sparse {sparse}");
    }

    #[test]
    fn fig13_pecc_o_wins_at_long_segments() {
        // Fig. 13: for Lseg ≥ 16 the p-ECC-O bars drop below p-ECC-S.
        let m = AreaModel::paper();
        let pecc = config_area_per_bit(&m, 128, 4, ProtectionKind::SECDED).unwrap();
        let pecc_o = config_area_per_bit(&m, 128, 4, ProtectionKind::SECDED_O).unwrap();
        assert!(pecc_o.value() < pecc.value(), "O {pecc_o} vs S {pecc}");
        // ...and the gap narrows/reverses for short segments.
        let pecc_s4 = config_area_per_bit(&m, 128, 32, ProtectionKind::SECDED).unwrap();
        let pecc_o4 = config_area_per_bit(&m, 128, 32, ProtectionKind::SECDED_O).unwrap();
        assert!(pecc_o4.value() > pecc_s4.value() * 0.95);
    }

    #[test]
    fn invalid_configs_return_none() {
        let m = AreaModel::paper();
        assert!(config_area_per_bit(&m, 10, 3, ProtectionKind::SECDED).is_none());
        // Lseg = 2 cannot host SECDED (m + 1 >= Lseg).
        assert!(config_area_per_bit(&m, 64, 32, ProtectionKind::SECDED).is_none());
    }
}
