//! System configuration constants — the paper's Table 4.
//!
//! The evaluated platform: four in-order 2 GHz cores, private split L1s,
//! a shared L2, and a shared L3 (LLC) built from one of three memory
//! technologies at iso-area, plus dual-channel DDR3 main memory.

use rtm_util::units::{Milliwatts, Picojoules};

/// Which memory technology implements the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTech {
    /// Conventional SRAM (smallest capacity at iso-area).
    Sram,
    /// Spin-transfer-torque MRAM.
    SttRam,
    /// Racetrack (domain-wall) memory — largest capacity, needs shifts.
    Racetrack,
}

impl std::fmt::Display for CacheTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheTech::Sram => write!(f, "SRAM"),
            CacheTech::SttRam => write!(f, "STT-RAM"),
            CacheTech::Racetrack => write!(f, "RM"),
        }
    }
}

/// One LLC design point (Table 4's L3 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcDesign {
    /// Technology.
    pub tech: CacheTech,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Read latency in CPU cycles.
    pub read_cycles: u64,
    /// Write latency in CPU cycles.
    pub write_cycles: u64,
    /// Latency of a 1-step shift in CPU cycles (0 for non-racetrack).
    pub shift_cycles_per_step: u64,
    /// Read energy per access.
    pub read_energy: Picojoules,
    /// Write energy per access.
    pub write_energy: Picojoules,
    /// Energy of a 1-step shift across one cache line's stripe group.
    pub shift_energy_per_step: Picojoules,
    /// Leakage power of the whole LLC.
    pub leakage: Milliwatts,
}

impl LlcDesign {
    /// Table 4 SRAM LLC: 4 MB, 24/22-cycle, 0.802/0.761 nJ, 2673.5 mW.
    pub fn sram() -> Self {
        Self {
            tech: CacheTech::Sram,
            capacity_bytes: 4 << 20,
            read_cycles: 24,
            write_cycles: 22,
            shift_cycles_per_step: 0,
            read_energy: Picojoules::from_nanojoules(0.802),
            write_energy: Picojoules::from_nanojoules(0.761),
            shift_energy_per_step: Picojoules::ZERO,
            leakage: Milliwatts(2673.5),
        }
    }

    /// Table 4 STT-RAM LLC: 32 MB, 27/41-cycle, 1.056/2.093 nJ,
    /// 862.2 mW.
    pub fn stt_ram() -> Self {
        Self {
            tech: CacheTech::SttRam,
            capacity_bytes: 32 << 20,
            read_cycles: 27,
            write_cycles: 41,
            shift_cycles_per_step: 0,
            read_energy: Picojoules::from_nanojoules(1.056),
            write_energy: Picojoules::from_nanojoules(2.093),
            shift_energy_per_step: Picojoules::ZERO,
            leakage: Milliwatts(862.2),
        }
    }

    /// Table 4 racetrack LLC: 128 MB, R/W/S 24/24/4-cycle,
    /// 0.956/0.952/1.331 nJ, 948.4 mW.
    pub fn racetrack() -> Self {
        Self {
            tech: CacheTech::Racetrack,
            capacity_bytes: 128 << 20,
            read_cycles: 24,
            write_cycles: 24,
            shift_cycles_per_step: 4,
            read_energy: Picojoules::from_nanojoules(0.956),
            write_energy: Picojoules::from_nanojoules(0.952),
            shift_energy_per_step: Picojoules::from_nanojoules(1.331),
            leakage: Milliwatts(948.4),
        }
    }

    /// The design point for a technology.
    pub fn of(tech: CacheTech) -> Self {
        match tech {
            CacheTech::Sram => Self::sram(),
            CacheTech::SttRam => Self::stt_ram(),
            CacheTech::Racetrack => Self::racetrack(),
        }
    }
}

/// L1/L2 cache constants (identical across LLC variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpperLevelCache {
    /// Capacity in bytes (per cache).
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles.
    pub access_cycles: u64,
    /// Read energy per access.
    pub read_energy: Picojoules,
    /// Write energy per access.
    pub write_energy: Picojoules,
    /// Leakage power.
    pub leakage: Milliwatts,
}

/// Main-memory constants (Table 4 bottom row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MainMemory {
    /// Access latency in CPU cycles.
    pub access_cycles: u64,
    /// Energy per access.
    pub access_energy: Picojoules,
    /// Peak bandwidth in bytes/s.
    pub bandwidth_bytes_per_s: f64,
}

/// The full Table 4 system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: u32,
    /// Core clock (Hz).
    pub clock_hz: f64,
    /// L1 data/instruction cache (each).
    pub l1: UpperLevelCache,
    /// Shared L2.
    pub l2: UpperLevelCache,
    /// LLC design point.
    pub llc: LlcDesign,
    /// Main memory.
    pub memory: MainMemory,
    /// Cache line size in bytes (all levels).
    pub line_bytes: u32,
    /// LLC associativity.
    pub llc_ways: u32,
}

impl SystemConfig {
    /// The paper's Table 4 configuration with the chosen LLC technology.
    pub fn paper(tech: CacheTech) -> Self {
        Self {
            cores: 4,
            clock_hz: 2.0e9,
            l1: UpperLevelCache {
                capacity_bytes: 32 << 10,
                ways: 2,
                access_cycles: 1,
                read_energy: Picojoules::from_nanojoules(0.074),
                write_energy: Picojoules::from_nanojoules(0.074),
                leakage: Milliwatts(23.4),
            },
            l2: UpperLevelCache {
                capacity_bytes: 1 << 20,
                ways: 4,
                access_cycles: 7,
                read_energy: Picojoules::from_nanojoules(0.407),
                write_energy: Picojoules::from_nanojoules(0.386),
                leakage: Milliwatts(681.5),
            },
            llc: LlcDesign::of(tech),
            memory: MainMemory {
                access_cycles: 100,
                access_energy: Picojoules::from_nanojoules(38.10),
                bandwidth_bytes_per_s: 12.8e9,
            },
            line_bytes: 64,
            llc_ways: 16,
        }
    }

    /// Number of cache lines the LLC holds.
    pub fn llc_lines(&self) -> u64 {
        self.llc.capacity_bytes / self.line_bytes as u64
    }

    /// Number of LLC sets.
    pub fn llc_sets(&self) -> u64 {
        self.llc_lines() / self.llc_ways as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_llc_rows() {
        let sram = LlcDesign::sram();
        assert_eq!(sram.capacity_bytes, 4 << 20);
        assert_eq!(sram.read_cycles, 24);
        assert_eq!(sram.write_cycles, 22);

        let stt = LlcDesign::stt_ram();
        assert_eq!(stt.capacity_bytes, 32 << 20);
        assert!((stt.write_energy.as_nanojoules() - 2.093).abs() < 1e-9);

        let rm = LlcDesign::racetrack();
        assert_eq!(rm.capacity_bytes, 128 << 20);
        assert_eq!(rm.shift_cycles_per_step, 4);
        assert!((rm.shift_energy_per_step.as_nanojoules() - 1.331).abs() < 1e-9);
    }

    #[test]
    fn capacity_ordering_is_the_papers_selling_point() {
        // Iso-area: RM holds 32× SRAM and 4× STT-RAM.
        assert_eq!(
            LlcDesign::racetrack().capacity_bytes,
            32 * LlcDesign::sram().capacity_bytes
        );
        assert_eq!(
            LlcDesign::racetrack().capacity_bytes,
            4 * LlcDesign::stt_ram().capacity_bytes
        );
    }

    #[test]
    fn sram_leaks_most() {
        assert!(LlcDesign::sram().leakage.value() > LlcDesign::stt_ram().leakage.value());
        assert!(LlcDesign::sram().leakage.value() > LlcDesign::racetrack().leakage.value());
    }

    #[test]
    fn system_geometry() {
        let sys = SystemConfig::paper(CacheTech::Racetrack);
        assert_eq!(sys.cores, 4);
        assert_eq!(sys.line_bytes, 64);
        assert_eq!(sys.llc_lines(), 2 * 1024 * 1024);
        assert_eq!(sys.llc_sets(), 131_072);
        assert_eq!(sys.llc_lines() % sys.llc_ways as u64, 0);
    }

    #[test]
    fn of_round_trips() {
        for t in [CacheTech::Sram, CacheTech::SttRam, CacheTech::Racetrack] {
            assert_eq!(LlcDesign::of(t).tech, t);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CacheTech::Sram.to_string(), "SRAM");
        assert_eq!(CacheTech::SttRam.to_string(), "STT-RAM");
        assert_eq!(CacheTech::Racetrack.to_string(), "RM");
    }
}
