//! Deterministic request queueing and scheduling in front of the
//! racetrack LLC.
//!
//! The paper (and the default `rtm-mem` hierarchy) evaluates the LLC
//! under a single-request-at-a-time access model. This crate lifts that
//! assumption with a discrete-event serving layer between the trace
//! generators and [`rtm_mem::RacetrackLlc`]:
//!
//! * **per-stripe-group request queues** with bounded depth and
//!   admission backpressure;
//! * **bank-level parallelism** — stripe groups are interleaved over
//!   independent banks, each servicing one request at a time, so
//!   requests to different banks overlap;
//! * **pluggable scheduling policies** ([`SchedPolicy`]): FCFS,
//!   FR-FCFS-style row-hit-first (a zero-shift candidate bypasses
//!   older work), and shift-aware shortest-shift-distance-first, which
//!   consults per-group head positions and the p-ECC/STS latency model
//!   from `rtm-controller`;
//! * **a closed-loop client model** with per-client think time and a
//!   bounded outstanding-request budget;
//! * **full queueing statistics** — exact p50/p95/p99 queue delay,
//!   service and total latency, stall/backpressure counters, occupancy
//!   peaks — plus `rtm-obs` histograms and queue events
//!   (`ReqEnqueued`/`ReqDispatched`/`ReqCompleted`/`ReqBackpressure`)
//!   when observability is enabled.
//!
//! Everything is single-threaded and seedable: a [`ServeSim`] run is a
//! pure function of its configuration and trace, so sweeps parallelised
//! with `rtm-par` are bit-identical for any thread count.
//!
//! For whole-hierarchy integration, [`QueuedLlc`] wraps a
//! [`rtm_mem::RacetrackLlc`] with bank-occupancy accounting and mounts
//! into [`rtm_mem::Hierarchy`] via `Hierarchy::with_llc` (the
//! queued-LLC mode).
//!
//! # Examples
//!
//! ```
//! use rtm_serve::{SchedPolicy, ServeConfig, ServeSim};
//! use rtm_trace::{TraceGenerator, WorkloadProfile};
//!
//! let profile = WorkloadProfile::by_name("canneal").unwrap();
//! let cfg = ServeConfig::new(SchedPolicy::ShiftAware).with_requests(2_000);
//! let mut source = TraceGenerator::new(profile, 42);
//! let result = ServeSim::new(cfg).run(&mut source);
//! assert_eq!(result.requests, 2_000);
//! assert!(result.service.p99 >= result.service.p50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;
pub mod policy;
pub mod queued;
pub mod sim;

pub use parallel::{
    run_mutex, run_oracle, run_parallel, GroupRouter, ServeStats, ShiftCommand, ThroughputConfig,
};
pub use policy::SchedPolicy;
pub use queued::{queued_hierarchy, QueuedLlc};
pub use sim::{
    Completion, LatencySummary, RequestSource, ServeConfig, ServeResult, ServeSim, SourcePoll,
    ATTRIBUTION_COMPONENTS,
};
