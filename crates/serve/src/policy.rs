//! Scheduling policies for the serving layer.

/// How a bank picks the next request among its queued candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// First-come-first-served: oldest request across the bank's
    /// queues, regardless of head positions.
    #[default]
    Fcfs,
    /// FR-FCFS-style row-hit-first: a candidate whose stripe group's
    /// head is already aligned (zero shift — the racetrack analogue of
    /// an open DRAM row) bypasses older work; ties and the no-hit case
    /// fall back to arrival order.
    FrFcfs,
    /// Shortest-shift-distance-first: picks the candidate with the
    /// lowest estimated service latency under the bank's p-ECC/STS
    /// cost model and current head positions, oldest first on ties.
    ShiftAware,
}

impl SchedPolicy {
    /// All policies, in comparison order.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::Fcfs,
        SchedPolicy::FrFcfs,
        SchedPolicy::ShiftAware,
    ];

    /// Stable label used in CLI flags, reports and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::FrFcfs => "fr-fcfs",
            SchedPolicy::ShiftAware => "shift-aware",
        }
    }

    /// Parses a [`SchedPolicy::label`] back into a policy.
    pub fn by_name(name: &str) -> Option<SchedPolicy> {
        SchedPolicy::ALL.into_iter().find(|p| p.label() == name)
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::by_name(p.label()), Some(p));
            assert_eq!(format!("{p}"), p.label());
        }
        assert_eq!(SchedPolicy::by_name("nope"), None);
    }
}
