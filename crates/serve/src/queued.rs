//! Bank-occupancy-aware LLC wrapper for hierarchy integration.
//!
//! [`QueuedLlc`] wraps a [`RacetrackLlc`] and charges queueing wait
//! when a request arrives while its bank is still busy with an earlier
//! one. Mounted into a [`Hierarchy`] via [`Hierarchy::with_llc`] this
//! is the *queued-LLC mode*: under the paper's serialised
//! single-request drive the wait is provably zero (each access starts
//! after the previous one finished, which a test pins down), while
//! drives with overlapping timestamps — the [`crate::ServeSim`] event
//! loop, or replay of timestamped traces — observe real bank
//! contention.

use rtm_cost::energy::LlcActivity;
use rtm_cost::technology::LlcDesign;
use rtm_mem::cache::AccessKind;
use rtm_mem::hierarchy::{Hierarchy, LlcChoice};
use rtm_mem::llc::{LlcModel, LlcResponse, LlcStats, RacetrackLlc};
use rtm_util::units::Seconds;

/// A racetrack LLC behind per-bank occupancy accounting.
#[derive(Debug, Clone)]
pub struct QueuedLlc {
    inner: RacetrackLlc,
    busy_until: Vec<u64>,
    wait_cycles: u64,
    waited_accesses: u64,
}

impl QueuedLlc {
    /// Wraps an LLC; one occupancy slot per bank.
    pub fn new(inner: RacetrackLlc) -> Self {
        let banks = inner.banks() as usize;
        Self {
            inner,
            busy_until: vec![0; banks],
            wait_cycles: 0,
            waited_accesses: 0,
        }
    }

    /// The wrapped LLC.
    pub fn inner(&self) -> &RacetrackLlc {
        &self.inner
    }

    /// Total cycles requests spent waiting for a busy bank.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Accesses that found their bank busy.
    pub fn waited_accesses(&self) -> u64 {
        self.waited_accesses
    }
}

impl LlcModel for QueuedLlc {
    fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> LlcResponse {
        let bank = self.inner.group_of(addr) % self.busy_until.len();
        let start = now.max(self.busy_until[bank]);
        let wait = start - now;
        if wait > 0 {
            self.wait_cycles += wait;
            self.waited_accesses += 1;
            rtm_obs::counter_add("serve.llc_wait_cycles", wait);
        }
        let r = self.inner.access(addr, kind, start);
        self.busy_until[bank] = start + r.latency_cycles;
        LlcResponse {
            latency_cycles: wait + r.latency_cycles,
            ..r
        }
    }

    fn stats(&self) -> LlcStats {
        self.inner.stats()
    }

    fn design(&self) -> &LlcDesign {
        self.inner.design()
    }

    fn activity(&self, duration: Seconds) -> LlcActivity {
        self.inner.activity(duration)
    }
}

/// Builds the paper's platform around a queued racetrack LLC — the
/// hierarchy's queued-LLC mode. `choice` must be a racetrack preset;
/// it selects the protection scheme, shift policy and energy-model
/// label exactly as [`Hierarchy::new`] would.
///
/// # Panics
///
/// Panics if `choice` is not a racetrack configuration or `banks == 0`.
pub fn queued_hierarchy(choice: LlcChoice, banks: u32) -> Hierarchy {
    assert!(choice.is_racetrack(), "queued mode needs a racetrack LLC");
    let (kind, policy) = racetrack_parts(choice);
    let llc = QueuedLlc::new(RacetrackLlc::with_banks(kind, policy, banks));
    Hierarchy::with_llc(Box::new(llc), choice)
}

/// The (protection, shift policy) pair behind a racetrack preset,
/// mirroring [`Hierarchy::new`].
fn racetrack_parts(
    choice: LlcChoice,
) -> (
    rtm_pecc::layout::ProtectionKind,
    rtm_controller::controller::ShiftPolicy,
) {
    use rtm_controller::controller::ShiftPolicy;
    use rtm_pecc::layout::ProtectionKind;
    match choice {
        LlcChoice::RacetrackIdeal | LlcChoice::RacetrackUnprotected => {
            (ProtectionKind::None, ShiftPolicy::Unconstrained)
        }
        LlcChoice::RacetrackPeccO => (ProtectionKind::SECDED_O, ShiftPolicy::StepByStep),
        LlcChoice::RacetrackPeccSWorst => (
            ProtectionKind::SECDED,
            ShiftPolicy::FixedSafe {
                worst_intensity_hz: 83_000_000,
            },
        ),
        LlcChoice::RacetrackPeccSAdaptive => (ProtectionKind::SECDED, ShiftPolicy::Adaptive),
        LlcChoice::SramBaseline | LlcChoice::SttRam => {
            unreachable!("caller checked is_racetrack")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_trace::{TraceGenerator, WorkloadProfile};

    #[test]
    fn overlapping_requests_wait_for_the_bank() {
        let mut llc = QueuedLlc::new(RacetrackLlc::with_banks(
            rtm_pecc::layout::ProtectionKind::SECDED,
            rtm_controller::controller::ShiftPolicy::Adaptive,
            4,
        ));
        // Two back-to-back requests to the same set at the same
        // instant: the second must absorb the first one's latency.
        let stride = 131_072 * 64; // sets * line bytes
        let r1 = llc.access(0, AccessKind::Read, 0);
        let r2 = llc.access(stride, AccessKind::Read, 0);
        assert_eq!(llc.waited_accesses(), 1);
        assert_eq!(llc.wait_cycles(), r1.latency_cycles);
        assert!(r2.latency_cycles > r1.latency_cycles);
    }

    #[test]
    fn serialised_drive_degenerates_to_the_paper_model() {
        // Under the hierarchy's single-request-at-a-time drive the
        // queued mode must be cycle-identical to the plain model: the
        // clock never reaches a busy bank.
        let p = WorkloadProfile::by_name("canneal").unwrap();
        let mut plain = Hierarchy::new(LlcChoice::RacetrackPeccSAdaptive);
        let mut queued = queued_hierarchy(LlcChoice::RacetrackPeccSAdaptive, 1);
        let a = plain.run(&mut TraceGenerator::new(p, 11), 30_000);
        let b = queued.run(&mut TraceGenerator::new(p, 11), 30_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.llc, b.llc);
    }

    #[test]
    #[should_panic]
    fn non_racetrack_choice_is_rejected() {
        let _ = queued_hierarchy(LlcChoice::SramBaseline, 4);
    }
}
