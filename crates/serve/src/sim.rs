//! The discrete-event request scheduler.
//!
//! [`ServeSim`] drives an LLC-level request stream through per-stripe-
//! group queues into a banked [`RacetrackLlc`]. Time advances from
//! event to event (completions, bank frees, client think expirations);
//! at every instant the simulator reaches a fixpoint of
//! complete → admit → dispatch before moving on, so the schedule is a
//! pure function of the configuration and the trace.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::policy::SchedPolicy;
use rtm_controller::controller::ShiftPolicy;
use rtm_cost::technology::{CacheTech, SystemConfig};
use rtm_mem::cache::AccessKind;
use rtm_mem::llc::{LlcModel, LlcStats, RacetrackLlc, ScaleStats};
use rtm_obs::attrib::AttributionTable;
use rtm_obs::events::ShiftEvent;
use rtm_obs::metrics::{nearest_rank, MetricsRegistry, RegistrySnapshot};
use rtm_obs::span::ParentScope;
use rtm_pecc::layout::ProtectionKind;
use rtm_trace::MemAccess;

/// Component names of the serving layer's cycle-attribution tables,
/// in column order: where every attributed cycle of a dispatched
/// request goes. `back_shift` is always 0 under the statistical
/// controller (corrective back-shifts are an expected-value term the
/// paper shows is negligible; the column is kept so the schema matches
/// the bit-accurate injection layer's accounting).
pub const ATTRIBUTION_COMPONENTS: [&str; 6] = [
    "queue_delay",
    "sts_shift",
    "pecc_verify",
    "back_shift",
    "array_access",
    "mem_fill",
];

/// Bucket bounds for the queueing-latency histograms (cycles).
const LATENCY_BOUNDS: [f64; 12] = [
    4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
];

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Scheduling policy the banks use.
    pub policy: SchedPolicy,
    /// Protection scheme of the racetrack LLC.
    pub protection: ProtectionKind,
    /// Safe-distance policy of the shift controllers.
    pub shift_policy: ShiftPolicy,
    /// Independent banks (stripe groups are interleaved over them).
    pub banks: u32,
    /// Bounded depth of each stripe-group queue; admission stalls
    /// (backpressure) when the target queue is full.
    pub queue_depth: usize,
    /// Closed-loop clients (trace cores are mapped onto them).
    pub clients: u8,
    /// Outstanding-request budget per client.
    pub budget: usize,
    /// Starvation bound for the reordering policies: a queued request
    /// that younger requests have overtaken this many times is promoted
    /// ahead of any younger candidate (oldest first), so FR-FCFS and
    /// shift-aware cannot defer an unlucky request indefinitely while
    /// reordering stays active for everyone else. FCFS ignores it.
    pub starve_limit: u32,
    /// Whether clients honour the trace's think times (paced, the
    /// default) or issue continuously at full budget (a saturating
    /// drive, the standard device-benchmark regime where scheduling
    /// quality shows up at every latency percentile).
    pub paced: bool,
    /// Requests to serve before stopping.
    pub requests: u64,
    /// Configured LLC capacity override in bytes (`None` keeps the
    /// paper's 128 MiB preset). Large capacities are cheap: group
    /// state materialises lazily, so an idle terabyte-scale array
    /// costs its directory alone.
    pub capacity_bytes: Option<u64>,
}

impl ServeConfig {
    /// A contended default: SECDED p-ECC-S adaptive LLC, 8 banks,
    /// 4 clients with 8 outstanding requests each, queues bounded at 8.
    pub fn new(policy: SchedPolicy) -> Self {
        Self {
            policy,
            protection: ProtectionKind::SECDED,
            shift_policy: ShiftPolicy::Adaptive,
            banks: 8,
            queue_depth: 8,
            clients: 4,
            budget: 8,
            starve_limit: 4,
            paced: true,
            requests: 50_000,
            capacity_bytes: None,
        }
    }

    /// Sets the protection scheme and shift policy (builder style).
    pub fn with_scheme(mut self, protection: ProtectionKind, policy: ShiftPolicy) -> Self {
        self.protection = protection;
        self.shift_policy = policy;
        self
    }

    /// Sets the number of banks (builder style).
    pub fn with_banks(mut self, banks: u32) -> Self {
        self.banks = banks;
        self
    }

    /// Sets the per-group queue depth (builder style).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the client count and per-client budget (builder style).
    pub fn with_clients(mut self, clients: u8, budget: usize) -> Self {
        self.clients = clients;
        self.budget = budget;
        self
    }

    /// Sets the starvation bound (maximum bypasses) for reordering
    /// policies (builder style).
    pub fn with_starve_limit(mut self, starve_limit: u32) -> Self {
        self.starve_limit = starve_limit;
        self
    }

    /// Switches between paced and saturating drive (builder style).
    pub fn with_paced(mut self, paced: bool) -> Self {
        self.paced = paced;
        self
    }

    /// Sets the request count (builder style).
    pub fn with_requests(mut self, requests: u64) -> Self {
        self.requests = requests;
        self
    }

    /// Overrides the configured LLC capacity in bytes (builder style).
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity_bytes = Some(bytes);
        self
    }

    fn validate(&self) {
        assert!(self.banks > 0, "at least one bank");
        assert!(self.queue_depth > 0, "queues need capacity");
        assert!(self.clients > 0, "at least one client");
        assert!(self.budget > 0, "clients need a budget");
        if let Some(bytes) = self.capacity_bytes {
            assert!(bytes > 0, "capacity must be non-zero");
        }
    }
}

/// Exact latency quantiles over one measurement stream (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl LatencySummary {
    /// Summarises a sample vector (consumed; sorted internally).
    /// Quantiles use integer nearest-rank indexing, so results are
    /// bit-identical across platforms and thread counts.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let at = |pct: usize| nearest_rank(&samples, pct);
        Self {
            count: n as u64,
            sum: samples.iter().sum(),
            min: samples[0],
            max: samples[n - 1],
            p50: at(50),
            p95: at(95),
            p99: at(99),
        }
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Result of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Policy that produced this result.
    pub policy: SchedPolicy,
    /// Requests completed.
    pub requests: u64,
    /// Cycle at which the last request completed.
    pub cycles: u64,
    /// Enqueue-to-dispatch waiting time.
    pub queue_delay: LatencySummary,
    /// LLC service time proper (shift + array) — the part of the
    /// response the scheduler can influence through head proximity.
    pub service: LatencySummary,
    /// Enqueue-to-completion time (queue delay + service + any memory
    /// fill on a miss).
    pub total: LatencySummary,
    /// Enqueue-to-completion time of reads alone — the latency-critical
    /// slice: a serving layer answers reads while writes can be posted.
    pub read_total: LatencySummary,
    /// Enqueue-to-completion time of writes alone.
    pub write_total: LatencySummary,
    /// Admission stalls on a full stripe-group queue.
    pub backpressure_stalls: u64,
    /// Dispatches that needed no shift (head already aligned).
    pub zero_shift_dispatches: u64,
    /// Peak simultaneously queued requests (all groups).
    pub peak_queued: usize,
    /// Peak simultaneously in-service + in-fill requests.
    pub peak_in_flight: usize,
    /// LLC counters (shifts, hits, expected error mass, ...).
    pub llc: LlcStats,
    /// Memory-footprint counters of the lazily materialised LLC state
    /// (configured vs touched stripe groups, pristine-read hits,
    /// arena bytes).
    pub scale: ScaleStats,
    /// Memory-fill cycles charged to dispatched requests (misses only;
    /// summed at dispatch, so in-flight requests at run end are
    /// included, matching `queue_delay.sum` and `service.sum`).
    pub fill_cycles: u64,
    /// Cycles each bank spent servicing dispatched requests.
    pub bank_busy_cycles: Vec<u64>,
    /// Per-tenant (client) cycle attribution: one cell per client,
    /// components [`ATTRIBUTION_COMPONENTS`], each cell's total being
    /// that client's independently summed queue + service + fill
    /// cycles. Components sum to the total exactly.
    pub tenants: AttributionTable,
    /// The run's private `rtm-obs` registry: `serve.*` histograms
    /// (bucketed queue delay / service / total latency), counters and
    /// occupancy gauges.
    pub metrics: RegistrySnapshot,
}

impl ServeResult {
    /// Completed requests per thousand cycles.
    pub fn throughput_req_per_kcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.requests as f64 * 1000.0 / self.cycles as f64
        }
    }

    /// This run's cycle attribution, one value per
    /// [`ATTRIBUTION_COMPONENTS`] column. The decomposition crosses
    /// module boundaries — queue delay and fill come from the
    /// scheduler, the shift/verify split from the LLC's controller
    /// accounting — yet sums to [`Self::attributed_total`] exactly.
    pub fn attribution_components(&self) -> [u64; 6] {
        let sts = self.llc.shift_cycles - self.llc.verify_cycles;
        let array = self.service.sum - self.llc.shift_cycles;
        [
            self.queue_delay.sum,
            sts,
            self.llc.verify_cycles,
            0,
            array,
            self.fill_cycles,
        ]
    }

    /// Total attributed cycles: queue delay + LLC service + memory
    /// fill summed over every dispatched request.
    pub fn attributed_total(&self) -> u64 {
        self.queue_delay.sum + self.service.sum + self.fill_cycles
    }

    /// Records this run's summary into the global metrics registry
    /// (no-op while observability is off). Kept separate from the run
    /// itself so parallel sweeps can record after their workers join,
    /// in deterministic cell order.
    pub fn record_metrics(&self) {
        let reg = rtm_obs::global().registry();
        if reg.enabled() {
            reg.gauge_set("serve.cycles", self.cycles as f64);
            reg.gauge_set("serve.p99_service_cycles", self.service.p99 as f64);
            reg.gauge_set("serve.p99_queue_delay_cycles", self.queue_delay.p99 as f64);
            reg.gauge_set(
                "serve.throughput_req_per_kcycle",
                self.throughput_req_per_kcycle(),
            );
            reg.counter_add("serve.backpressure_stalls", self.backpressure_stalls);
            reg.counter_add("serve.completed", self.requests);
            self.scale.record(reg);
        }
    }
}

/// What a [`RequestSource`] has to offer at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourcePoll {
    /// A request ready to enter admission now.
    Ready(MemAccess),
    /// Nothing yet; nothing can become ready before this cycle. The
    /// cycle must lie strictly in the future. `u64::MAX` means "wake
    /// me on a completion" and is only legal while the simulator still
    /// has queued or in-flight work to wake on.
    NotBefore(u64),
    /// The source will never produce another request.
    Exhausted,
}

/// One retired request, echoed back to the [`RequestSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Sequential admission id (the order `RequestSource::admitted`
    /// observed).
    pub id: u64,
    /// Cycle at which the request completed.
    pub cycle: u64,
    /// Enqueue-to-dispatch waiting cycles.
    pub queue_delay: u64,
    /// LLC service cycles (shift + array).
    pub service: u64,
    /// Memory-fill cycles (0 on a hit).
    pub fill: u64,
    /// Enqueue-to-completion cycles.
    pub total: u64,
    /// Whether the request was a write.
    pub is_write: bool,
}

/// A clock-aware request feed with admission and completion callbacks.
///
/// [`ServeSim::run_source`] polls the source at every admission
/// opportunity, passing the current cycle so the source can make
/// time-dependent decisions (token buckets, deferral, load shedding)
/// *before* the bounded per-group queues exert backpressure. Admission
/// ids are sequential (0, 1, 2, ...) in admission order, so a source
/// can map completions back to its own bookkeeping with a vector.
///
/// Every plain `Iterator<Item = MemAccess>` is a `RequestSource` that
/// is always ready, keeping the original closed-loop drive unchanged.
pub trait RequestSource {
    /// Offers the next request, a wake-up time, or end-of-stream.
    fn poll(&mut self, now: u64) -> SourcePoll;

    /// Called when the most recent [`SourcePoll::Ready`] request was
    /// enqueued, with its sequential admission id.
    fn admitted(&mut self, id: u64, now: u64) {
        let _ = (id, now);
    }

    /// Called when an admitted request retires.
    fn completed(&mut self, completion: &Completion) {
        let _ = completion;
    }
}

impl<I: Iterator<Item = MemAccess>> RequestSource for I {
    fn poll(&mut self, _now: u64) -> SourcePoll {
        match self.next() {
            Some(a) => SourcePoll::Ready(a),
            None => SourcePoll::Exhausted,
        }
    }
}

/// A request waiting in a stripe-group queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    id: u64,
    addr: u64,
    is_write: bool,
    client: u8,
    arrival: u64,
    /// Times a younger request was dispatched past this one.
    bypassed: u32,
}

/// A dispatched request awaiting completion.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: u64,
    client: u8,
    complete_at: u64,
    queue_delay: u64,
    service_cycles: u64,
    fill_cycles: u64,
    total_cycles: u64,
    is_write: bool,
}

/// The discrete-event serving simulator.
#[derive(Debug)]
pub struct ServeSim {
    cfg: ServeConfig,
    llc: RacetrackLlc,
    mem_cycles: u64,
    clock: u64,
    /// Per-group bounded FIFO queues. A `BTreeMap` keeps iteration in
    /// group order, independent of insertion history.
    queues: BTreeMap<usize, VecDeque<Queued>>,
    /// Non-empty stripe groups of each bank, kept sorted ascending —
    /// the dispatch-side index. `select` and the bypass-aging walk
    /// touch only their bank's list (O(groups-with-work / bank))
    /// instead of filtering every queue in the map, while iteration
    /// order (ascending group) stays identical to the map walk it
    /// replaces, so schedules are unchanged.
    bank_groups: Vec<Vec<usize>>,
    queued_total: usize,
    bank_free_at: Vec<u64>,
    in_flight: Vec<InFlight>,
    outstanding: Vec<usize>,
    ready_at: Vec<u64>,
    pending: Option<MemAccess>,
    source_done: bool,
    /// Earliest cycle the source said it could become ready again
    /// (cleared on the next successful poll).
    source_wake: Option<u64>,
    issued: u64,
    completed: u64,
    next_id: u64,
    backpressure_stalls: u64,
    /// Dedup key so one blocked request counts one stall per instant.
    last_stall: Option<(u64, usize)>,
    zero_shift_dispatches: u64,
    peak_queued: usize,
    peak_in_flight: usize,
    queue_delays: Vec<u64>,
    services: Vec<u64>,
    totals: Vec<u64>,
    read_totals: Vec<u64>,
    write_totals: Vec<u64>,
    fill_cycles_total: u64,
    bank_busy: Vec<u64>,
    /// Per-client cycle accounting, charged at dispatch.
    tenant_requests: Vec<u64>,
    tenant_queue: Vec<u64>,
    tenant_service: Vec<u64>,
    tenant_sts: Vec<u64>,
    tenant_verify: Vec<u64>,
    tenant_fill: Vec<u64>,
    registry: MetricsRegistry,
}

impl ServeSim {
    /// Builds the simulator for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ServeConfig) -> Self {
        cfg.validate();
        let mut llc = RacetrackLlc::with_banks(cfg.protection, cfg.shift_policy, cfg.banks);
        if let Some(bytes) = cfg.capacity_bytes {
            llc = llc.with_capacity(bytes);
        }
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        Self {
            mem_cycles: SystemConfig::paper(CacheTech::Racetrack)
                .memory
                .access_cycles,
            clock: 0,
            queues: BTreeMap::new(),
            bank_groups: vec![Vec::new(); cfg.banks as usize],
            queued_total: 0,
            bank_free_at: vec![0; cfg.banks as usize],
            in_flight: Vec::new(),
            outstanding: vec![0; cfg.clients as usize],
            ready_at: vec![0; cfg.clients as usize],
            pending: None,
            source_done: false,
            source_wake: None,
            issued: 0,
            completed: 0,
            next_id: 0,
            backpressure_stalls: 0,
            last_stall: None,
            zero_shift_dispatches: 0,
            peak_queued: 0,
            peak_in_flight: 0,
            queue_delays: Vec::new(),
            services: Vec::new(),
            totals: Vec::new(),
            read_totals: Vec::new(),
            write_totals: Vec::new(),
            fill_cycles_total: 0,
            bank_busy: vec![0; cfg.banks as usize],
            tenant_requests: vec![0; cfg.clients as usize],
            tenant_queue: vec![0; cfg.clients as usize],
            tenant_service: vec![0; cfg.clients as usize],
            tenant_sts: vec![0; cfg.clients as usize],
            tenant_verify: vec![0; cfg.clients as usize],
            tenant_fill: vec![0; cfg.clients as usize],
            registry,
            llc,
            cfg,
        }
    }

    /// The underlying LLC (head positions, estimation).
    pub fn llc(&self) -> &RacetrackLlc {
        &self.llc
    }

    /// Runs the event loop until `cfg.requests` complete (or the
    /// source is exhausted) and summarises.
    pub fn run<I: Iterator<Item = MemAccess>>(self, source: &mut I) -> ServeResult {
        self.run_source(source)
    }

    /// Runs the event loop against a clock-aware [`RequestSource`],
    /// invoking its admission and completion callbacks. Semantics are
    /// identical to [`Self::run`] for always-ready sources.
    pub fn run_source<S: RequestSource + ?Sized>(mut self, source: &mut S) -> ServeResult {
        loop {
            // Fixpoint at the current instant: completions free budget,
            // which admits requests, which dispatch onto free banks.
            loop {
                let mut progress = self.complete(source);
                progress |= self.admit(source);
                progress |= self.dispatch();
                if !progress {
                    break;
                }
            }
            if self.completed >= self.cfg.requests {
                break;
            }
            let Some(next) = self.next_event_time() else {
                // Source exhausted and everything drained.
                break;
            };
            debug_assert!(next > self.clock, "event loop must advance");
            self.clock = next;
        }
        self.finish()
    }

    /// The earliest future instant at which anything can change.
    fn next_event_time(&self) -> Option<u64> {
        let mut next = u64::MAX;
        for f in &self.in_flight {
            next = next.min(f.complete_at);
        }
        if self.queued_total > 0 {
            // After the fixpoint, any still-queued request's bank is
            // busy; its free time is the next chance to dispatch.
            for &t in &self.bank_free_at {
                if t > self.clock {
                    next = next.min(t);
                }
            }
        }
        if self.pending.is_some() {
            // Head-of-line request waiting out its client's think time.
            let c = self.pending_client();
            if self.ready_at[c] > self.clock && self.outstanding[c] < self.cfg.budget {
                next = next.min(self.ready_at[c]);
            }
        } else if !self.source_done && self.issued < self.cfg.requests {
            // Source promised nothing before this cycle; honour it
            // unless an earlier completion wakes the loop first.
            if let Some(t) = self.source_wake {
                if t > self.clock {
                    next = next.min(t);
                }
            }
        }
        (next != u64::MAX).then_some(next)
    }

    fn pending_client(&self) -> usize {
        let a = self.pending.as_ref().expect("caller checked pending");
        (a.core as usize) % self.cfg.clients as usize
    }

    /// Retires every in-flight request due by now, echoing each
    /// completion back to the source. Returns whether any completed.
    fn complete<S: RequestSource + ?Sized>(&mut self, source: &mut S) -> bool {
        let mut any = false;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].complete_at <= self.clock {
                let f = self.in_flight.remove(i);
                self.outstanding[f.client as usize] -= 1;
                self.completed += 1;
                self.totals.push(f.total_cycles);
                self.registry.observe_with(
                    "serve.total_cycles",
                    f.total_cycles as f64,
                    &LATENCY_BOUNDS,
                );
                rtm_obs::record_event(
                    f.complete_at,
                    ShiftEvent::ReqCompleted {
                        id: f.id,
                        service_cycles: f.service_cycles,
                    },
                );
                source.completed(&Completion {
                    id: f.id,
                    cycle: f.complete_at,
                    queue_delay: f.queue_delay,
                    service: f.service_cycles,
                    fill: f.fill_cycles,
                    total: f.total_cycles,
                    is_write: f.is_write,
                });
                any = true;
            } else {
                i += 1;
            }
        }
        any
    }

    /// Admits head-of-line requests from the source while the client
    /// has budget, its think time has expired, and the target queue has
    /// room. Returns whether any request was enqueued.
    fn admit<S: RequestSource + ?Sized>(&mut self, source: &mut S) -> bool {
        let mut any = false;
        while self.issued < self.cfg.requests {
            if self.pending.is_none() && !self.source_done {
                match source.poll(self.clock) {
                    SourcePoll::Ready(a) => {
                        self.pending = Some(a);
                        self.source_wake = None;
                    }
                    SourcePoll::NotBefore(t) => {
                        debug_assert!(t > self.clock, "source wake-up must advance");
                        self.source_wake = Some(t);
                        break;
                    }
                    SourcePoll::Exhausted => {
                        self.source_done = true;
                        self.source_wake = None;
                    }
                }
            }
            let Some(a) = self.pending else { break };
            let c = (a.core as usize) % self.cfg.clients as usize;
            if self.outstanding[c] >= self.cfg.budget || self.clock < self.ready_at[c] {
                break;
            }
            let group = self.llc.group_of(a.addr);
            let q = self.queues.entry(group).or_default();
            if q.len() >= self.cfg.queue_depth {
                // Backpressure: the head-of-line request stalls until
                // this group drains. Count one stall per instant.
                if self.last_stall != Some((self.clock, group)) {
                    self.last_stall = Some((self.clock, group));
                    self.backpressure_stalls += 1;
                    self.registry.counter_add("serve.backpressure_stalls", 1);
                    rtm_obs::record_event(
                        self.clock,
                        ShiftEvent::ReqBackpressure {
                            group: group as u32,
                        },
                    );
                }
                break;
            }
            let id = self.next_id;
            self.next_id += 1;
            q.push_back(Queued {
                id,
                addr: a.addr,
                is_write: a.is_write,
                client: c as u8,
                arrival: self.clock,
                bypassed: 0,
            });
            if q.len() == 1 {
                // Group just became non-empty: index it for its bank.
                let bank = group % self.cfg.banks as usize;
                let list = &mut self.bank_groups[bank];
                if let Err(pos) = list.binary_search(&group) {
                    list.insert(pos, group);
                }
            }
            self.queued_total += 1;
            self.peak_queued = self.peak_queued.max(self.queued_total);
            self.outstanding[c] += 1;
            // Think time before this client's next request issues
            // (none under a saturating drive).
            if self.cfg.paced {
                self.ready_at[c] = self.clock + a.gap_instructions as u64;
            }
            self.issued += 1;
            self.pending = None;
            source.admitted(id, self.clock);
            self.registry.counter_add("serve.enqueued", 1);
            rtm_obs::record_event(
                self.clock,
                ShiftEvent::ReqEnqueued {
                    id,
                    group: group as u32,
                },
            );
            any = true;
        }
        any
    }

    /// Dispatches one request per free bank, chosen by the scheduling
    /// policy. Returns whether any dispatch happened.
    fn dispatch(&mut self) -> bool {
        let mut any = false;
        for bank in 0..self.cfg.banks as usize {
            if self.bank_free_at[bank] > self.clock {
                continue;
            }
            let Some((group, idx)) = self.select(bank) else {
                continue;
            };
            let q = self.queues.get_mut(&group).expect("selected group exists");
            let req = q.remove(idx).expect("selected index exists");
            if q.is_empty() {
                self.queues.remove(&group);
                let list = &mut self.bank_groups[bank];
                let pos = list.binary_search(&group).expect("group was indexed");
                list.remove(pos);
            }
            self.queued_total -= 1;
            // Every older request still queued on this bank was just
            // overtaken; count it towards their starvation bound.
            for &g in &self.bank_groups[bank] {
                let q = self.queues.get_mut(&g).expect("indexed group exists");
                for r in q.iter_mut() {
                    if r.id < req.id {
                        r.bypassed += 1;
                    }
                }
            }
            let kind = if req.is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if self.llc.predicted_shift_distance(req.addr) == 0 {
                self.zero_shift_dispatches += 1;
            }
            // Attribution: the controller accumulates shift/verify
            // cycles inside the access; the before/after delta is this
            // request's share (exact — the event loop is serial).
            let before = self.llc.stats();
            // The dispatch span id must exist before the access so the
            // controller's plan_shift spans nest under it; its record
            // is filled in below once the extent is known.
            let spans = rtm_obs::global().spans();
            let dispatch_span = spans.reserve();
            let resp = {
                let _parent = ParentScope::enter(dispatch_span);
                self.llc.access(req.addr, kind, self.clock)
            };
            let after = self.llc.stats();
            let shift_delta = after.shift_cycles - before.shift_cycles;
            let verify_delta = after.verify_cycles - before.verify_cycles;
            self.bank_free_at[bank] = self.clock + resp.latency_cycles;
            self.bank_busy[bank] += resp.latency_cycles;
            // Misses and writebacks go to memory off the bank: the
            // stripe group is free once the array access finishes,
            // MSHR-style, while the requester waits for the fill.
            let mut fill = 0;
            if !resp.hit {
                fill += self.mem_cycles;
                self.registry.counter_add("serve.fills", 1);
            }
            if resp.writeback {
                self.registry.counter_add("serve.writebacks", 1);
            }
            let queue_delay = self.clock - req.arrival;
            let service_cycles = resp.latency_cycles;
            let complete_at = self.clock + service_cycles + fill;
            self.fill_cycles_total += fill;
            let c = req.client as usize;
            self.tenant_requests[c] += 1;
            self.tenant_queue[c] += queue_delay;
            self.tenant_service[c] += service_cycles;
            self.tenant_sts[c] += shift_delta - verify_delta;
            self.tenant_verify[c] += verify_delta;
            self.tenant_fill[c] += fill;
            if dispatch_span != 0 {
                // The request's whole span tree is known now: queue and
                // dispatch (and any fill) tile the request exactly.
                let req_span = spans.record(0, "request", req.arrival, complete_at);
                spans.record(req_span, "queue", req.arrival, self.clock);
                spans.record_reserved(
                    dispatch_span,
                    req_span,
                    "dispatch",
                    self.clock,
                    self.clock + service_cycles,
                );
                if fill > 0 {
                    spans.record(
                        req_span,
                        "mem_fill",
                        self.clock + service_cycles,
                        complete_at,
                    );
                }
            }
            self.in_flight.push(InFlight {
                id: req.id,
                client: req.client,
                complete_at,
                queue_delay,
                service_cycles,
                fill_cycles: fill,
                total_cycles: queue_delay + service_cycles + fill,
                is_write: req.is_write,
            });
            self.peak_in_flight = self.peak_in_flight.max(self.in_flight.len());
            self.queue_delays.push(queue_delay);
            self.services.push(service_cycles);
            if req.is_write {
                self.write_totals.push(queue_delay + service_cycles + fill);
            } else {
                self.read_totals.push(queue_delay + service_cycles + fill);
            }
            self.registry.observe_with(
                "serve.queue_delay_cycles",
                queue_delay as f64,
                &LATENCY_BOUNDS,
            );
            self.registry.observe_with(
                "serve.service_cycles",
                service_cycles as f64,
                &LATENCY_BOUNDS,
            );
            self.registry.counter_add("serve.dispatched", 1);
            rtm_obs::record_event(
                self.clock,
                ShiftEvent::ReqDispatched {
                    id: req.id,
                    group: group as u32,
                    queue_delay,
                },
            );
            any = true;
        }
        any
    }

    /// Picks the best (group, queue index) for `bank` under the active
    /// policy, or `None` when the bank has no queued work. Candidates
    /// queued past the aging cap outrank every younger one (oldest
    /// first), bounding starvation under the reordering policies. Ties
    /// break on request id (arrival order), so the schedule is
    /// total-ordered.
    fn select(&self, bank: usize) -> Option<(usize, usize)> {
        // Only this bank's non-empty groups are visited (the
        // `bank_groups` index), not every queue in the simulator; the
        // list is sorted ascending so candidate order — and therefore
        // every tie-break — matches the full-map walk it replaced.
        //
        // Shift distance only matters within a stripe group — each
        // group's head is independent, so deferring one group for
        // another saves no shift work and only starves. The shift-aware
        // policy therefore picks its group FCFS (the one holding the
        // bank's oldest request) and reorders inside it alone.
        let aware_group = if self.cfg.policy == SchedPolicy::ShiftAware {
            self.bank_groups[bank]
                .iter()
                .min_by_key(|&&g| self.queues[&g].front().map_or(u64::MAX, |r| r.id))
                .copied()
        } else {
            None
        };
        let mut best: Option<(u64, u64, u64, usize, usize)> = None;
        for &group in &self.bank_groups[bank] {
            let q = &self.queues[&group];
            for (idx, req) in q.iter().enumerate() {
                let expired =
                    self.cfg.policy != SchedPolicy::Fcfs && req.bypassed >= self.cfg.starve_limit;
                if !expired && aware_group.is_some_and(|g| g != group) {
                    continue;
                }
                let cost = if expired {
                    0
                } else {
                    match self.cfg.policy {
                        SchedPolicy::Fcfs => 0,
                        SchedPolicy::FrFcfs => {
                            u64::from(self.llc.predicted_shift_distance(req.addr) != 0)
                        }
                        SchedPolicy::ShiftAware => {
                            let kind = if req.is_write {
                                AccessKind::Write
                            } else {
                                AccessKind::Read
                            };
                            self.llc.estimated_latency(req.addr, kind)
                        }
                    }
                };
                let key = (u64::from(!expired), cost, req.id, group, idx);
                if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, _, group, idx)| (group, idx))
    }

    /// Final accounting.
    fn finish(self) -> ServeResult {
        self.registry
            .gauge_set("serve.peak_queued", self.peak_queued as f64);
        self.registry
            .gauge_set("serve.peak_in_flight", self.peak_in_flight as f64);
        let scale = self.llc.scale_stats();
        scale.record(&self.registry);
        let mut tenants = AttributionTable::new(["tenant"], ATTRIBUTION_COMPONENTS);
        for c in 0..self.cfg.clients as usize {
            let service = self.tenant_service[c];
            let sts = self.tenant_sts[c];
            let verify = self.tenant_verify[c];
            tenants.push(
                [c.to_string()],
                [
                    self.tenant_queue[c],
                    sts,
                    verify,
                    0,
                    service - sts - verify,
                    self.tenant_fill[c],
                ],
                self.tenant_queue[c] + service + self.tenant_fill[c],
            );
        }
        ServeResult {
            policy: self.cfg.policy,
            requests: self.completed,
            cycles: self.clock,
            queue_delay: LatencySummary::from_samples(self.queue_delays),
            service: LatencySummary::from_samples(self.services),
            total: LatencySummary::from_samples(self.totals),
            read_total: LatencySummary::from_samples(self.read_totals),
            write_total: LatencySummary::from_samples(self.write_totals),
            backpressure_stalls: self.backpressure_stalls,
            zero_shift_dispatches: self.zero_shift_dispatches,
            peak_queued: self.peak_queued,
            peak_in_flight: self.peak_in_flight,
            fill_cycles: self.fill_cycles_total,
            bank_busy_cycles: self.bank_busy,
            tenants,
            scale,
            llc: self.llc.stats(),
            metrics: self.registry.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_trace::{TraceGenerator, WorkloadProfile};

    fn run(policy: SchedPolicy, workload: &str, n: u64) -> ServeResult {
        let p = WorkloadProfile::by_name(workload).unwrap();
        let cfg = ServeConfig::new(policy).with_requests(n);
        ServeSim::new(cfg).run(&mut TraceGenerator::new(p, 2015))
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let r = run(SchedPolicy::Fcfs, "canneal", 5_000);
        assert_eq!(r.requests, 5_000);
        assert_eq!(r.queue_delay.count, 5_000);
        assert_eq!(r.service.count, 5_000);
        assert_eq!(r.total.count, 5_000);
        assert_eq!(r.llc.cache.accesses(), 5_000);
        assert!(r.cycles > 0);
        assert!(r.throughput_req_per_kcycle() > 0.0);
    }

    #[test]
    fn runs_are_bit_identical() {
        for policy in SchedPolicy::ALL {
            let a = run(policy, "ferret", 3_000);
            let b = run(policy, "ferret", 3_000);
            assert_eq!(a, b, "{policy}");
        }
    }

    #[test]
    fn occupancy_respects_bounds() {
        let cfg = ServeConfig::new(SchedPolicy::Fcfs)
            .with_requests(4_000)
            .with_queue_depth(2)
            .with_clients(4, 4);
        let p = WorkloadProfile::by_name("canneal").unwrap();
        let r = ServeSim::new(cfg).run(&mut TraceGenerator::new(p, 7));
        // Never more outstanding work than the clients may issue
        // (peaks are taken at different instants, so each is bounded
        // by the total budget on its own).
        assert!(r.peak_queued <= 4 * 4);
        assert!(r.peak_in_flight <= 4 * 4);
        // Tight queues under a capacity-heavy workload must stall.
        assert!(r.backpressure_stalls > 0, "expected backpressure");
    }

    #[test]
    fn bank_parallelism_beats_single_bank() {
        let p = WorkloadProfile::by_name("streamcluster").unwrap();
        let one = ServeSim::new(
            ServeConfig::new(SchedPolicy::Fcfs)
                .with_requests(5_000)
                .with_banks(1),
        )
        .run(&mut TraceGenerator::new(p, 3));
        let eight = ServeSim::new(
            ServeConfig::new(SchedPolicy::Fcfs)
                .with_requests(5_000)
                .with_banks(8),
        )
        .run(&mut TraceGenerator::new(p, 3));
        assert!(
            eight.cycles < one.cycles,
            "8 banks {} vs 1 bank {}",
            eight.cycles,
            one.cycles
        );
    }

    fn run_mixed(policy: SchedPolicy, workload: &str, n: u64, limit: u32) -> ServeResult {
        // Four set-aliased tenants of the same profile: the contended
        // multi-programmed traffic the scheduler is evaluated under.
        let p = WorkloadProfile::by_name(workload).unwrap();
        let mut mix = rtm_trace::MixedTraceGenerator::new(&[p, p, p, p], 2015);
        let cfg = ServeConfig::new(policy)
            .with_requests(n)
            .with_clients(4, 4)
            .with_starve_limit(limit);
        ServeSim::new(cfg).run(&mut mix)
    }

    #[test]
    fn shift_aware_reduces_realised_shift_work() {
        // Contended queues: serving the nearest-head candidate within
        // the oldest group must lower the realised shift work and the
        // end-to-end completion time versus FCFS, without inflating
        // the service-latency tail.
        let fcfs = run_mixed(SchedPolicy::Fcfs, "canneal", 20_000, 4);
        let aware = run_mixed(SchedPolicy::ShiftAware, "canneal", 20_000, 4);
        assert!(
            aware.llc.shift_cycles < fcfs.llc.shift_cycles,
            "aware {} vs fcfs {} shift cycles",
            aware.llc.shift_cycles,
            fcfs.llc.shift_cycles
        );
        assert!(
            aware.cycles < fcfs.cycles,
            "aware {} vs fcfs {} completion cycles",
            aware.cycles,
            fcfs.cycles
        );
        assert!(
            aware.service.p99 <= fcfs.service.p99,
            "aware p99 {} vs fcfs p99 {}",
            aware.service.p99,
            fcfs.service.p99
        );
        assert!(aware.throughput_req_per_kcycle() > fcfs.throughput_req_per_kcycle());
    }

    #[test]
    fn starvation_bound_caps_queue_delay() {
        // A tight starvation bound must keep the shift-aware queueing
        // tail close to FCFS; with the bound effectively off, the
        // elevator may defer a far request indefinitely.
        let fcfs = run_mixed(SchedPolicy::Fcfs, "streamcluster", 12_000, 4);
        let tight = run_mixed(SchedPolicy::ShiftAware, "streamcluster", 12_000, 1);
        let loose = run_mixed(SchedPolicy::ShiftAware, "streamcluster", 12_000, u32::MAX);
        assert!(
            tight.queue_delay.max <= loose.queue_delay.max,
            "tight {} vs loose {}",
            tight.queue_delay.max,
            loose.queue_delay.max
        );
        // Bounded bypassing keeps the worst wait within a small factor
        // of FCFS (each victim is overtaken at most once per bound).
        assert!(
            tight.queue_delay.max <= 4 * fcfs.queue_delay.max.max(1),
            "tight max {} vs fcfs max {}",
            tight.queue_delay.max,
            fcfs.queue_delay.max
        );
    }

    #[test]
    fn read_write_split_partitions_totals() {
        let r = run_mixed(SchedPolicy::ShiftAware, "canneal", 8_000, 4);
        assert_eq!(r.read_total.count + r.write_total.count, r.total.count);
        assert!(r.read_total.count > 0 && r.write_total.count > 0);
        let lo = r.read_total.min.min(r.write_total.min);
        let hi = r.read_total.max.max(r.write_total.max);
        assert_eq!(lo, r.total.min);
        assert_eq!(hi, r.total.max);
    }

    #[test]
    fn fr_fcfs_prefers_open_rows() {
        let fcfs = run(SchedPolicy::Fcfs, "swaptions", 20_000);
        let frf = run(SchedPolicy::FrFcfs, "swaptions", 20_000);
        let rate = |r: &ServeResult| r.zero_shift_dispatches as f64 / r.requests as f64;
        assert!(
            rate(&frf) >= rate(&fcfs),
            "fr-fcfs zero-shift rate {} vs fcfs {}",
            rate(&frf),
            rate(&fcfs)
        );
    }

    #[test]
    fn capacity_override_scales_groups_without_materialising_them() {
        // A 4 GiB configured array behind the same trace: the group
        // directory grows 32x, but only the touched working set
        // materialises, and the schedule-relevant results for a trace
        // that fits either way track the same request count.
        let p = WorkloadProfile::by_name("canneal").unwrap();
        let base = ServeSim::new(ServeConfig::new(SchedPolicy::Fcfs).with_requests(2_000))
            .run(&mut TraceGenerator::new(p, 2015));
        let big = ServeSim::new(
            ServeConfig::new(SchedPolicy::Fcfs)
                .with_requests(2_000)
                .with_capacity(4 << 30),
        )
        .run(&mut TraceGenerator::new(p, 2015));
        assert_eq!(big.requests, 2_000);
        assert_eq!(
            big.scale.configured_groups,
            32 * base.scale.configured_groups
        );
        assert!(big.scale.materialised_groups <= big.scale.configured_groups);
        // The directory itself stays sparse: far fewer touched groups
        // than configured ones at GB scale.
        assert!(big.scale.materialised_groups < big.scale.configured_groups / 4);
        // Scale gauges land in the private registry.
        assert_eq!(
            big.metrics.gauge("scale.configured_groups"),
            Some(big.scale.configured_groups as f64)
        );
        assert_eq!(
            big.metrics.gauge("scale.materialised_groups"),
            Some(big.scale.materialised_groups as f64)
        );
    }

    #[test]
    fn latency_summary_quantiles_are_exact() {
        let s = LatencySummary::from_samples((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(
            LatencySummary::from_samples(vec![]),
            LatencySummary::default()
        );
    }

    #[test]
    fn private_registry_carries_queue_histograms() {
        let r = run(SchedPolicy::ShiftAware, "dedup", 2_000);
        let h = r.metrics.histogram("serve.service_cycles").unwrap();
        assert_eq!(h.count, 2_000);
        assert_eq!(r.metrics.counter("serve.dispatched"), Some(2_000));
        assert!(r.metrics.gauge("serve.peak_queued").unwrap() >= 1.0);
    }

    #[test]
    fn attribution_components_sum_exactly_to_total() {
        // The cycle-attribution decomposition is exact, not within a
        // tolerance: every dispatched cycle lands in exactly one
        // component bucket.
        for policy in SchedPolicy::ALL {
            let r = run_mixed(policy, "canneal", 8_000, 4);
            let components: u64 = r.attribution_components().iter().sum();
            assert_eq!(components, r.attributed_total(), "{policy}");
            assert!(
                r.llc.verify_cycles > 0,
                "{policy}: protected run must verify"
            );
            assert!(
                r.llc.verify_cycles < r.llc.shift_cycles,
                "{policy}: verify is a strict subset of shift work"
            );
        }
    }

    #[test]
    fn tenant_table_partitions_the_run() {
        // Per-tenant rows are an exact partition: each row's
        // components sum to its total, and summing any column across
        // tenants recovers the whole-run figure.
        let r = run_mixed(SchedPolicy::ShiftAware, "ferret", 8_000, 4);
        assert_eq!(r.tenants.cells.len(), 4);
        assert_eq!(r.tenants.max_residual(), 0);
        let whole = r.attribution_components();
        for (i, name) in ATTRIBUTION_COMPONENTS.iter().enumerate() {
            let col: u64 = r
                .tenants
                .cells
                .iter()
                .map(|c| r.tenants.component(c, name).unwrap())
                .sum();
            assert_eq!(col, whole[i], "component {name}");
        }
        let totals: u64 = r.tenants.cells.iter().map(|c| c.total).sum();
        assert_eq!(totals, r.attributed_total());
        // Bank busy cycles are exactly the access service cycles.
        assert_eq!(r.bank_busy_cycles.iter().sum::<u64>(), r.service.sum);
    }

    #[test]
    fn spans_record_the_request_tree_when_enabled() {
        let spans = rtm_obs::global().spans();
        spans.reset();
        spans.set_enabled(true);
        let r = run(SchedPolicy::Fcfs, "canneal", 200);
        let snap = spans.snapshot();
        spans.set_enabled(false);
        spans.reset();
        assert_eq!(r.requests, 200);
        let count = |name: &str| snap.spans.iter().filter(|s| s.name == name).count();
        assert_eq!(count("request"), 200);
        assert_eq!(count("queue"), 200);
        assert_eq!(count("dispatch"), 200);
        assert!(
            count("plan_shift") > 0,
            "controller spans nest under dispatch"
        );
        // Every dispatch hangs off a request, every plan_shift off a
        // dispatch, and children stay inside their parents' extents.
        for s in &snap.spans {
            if s.parent == 0 {
                assert_eq!(s.name, "request", "roots are requests");
                continue;
            }
            let p = snap.get(s.parent).expect("parent retained");
            assert!(s.start_cycle >= p.start_cycle && s.end_cycle <= p.end_cycle);
            match s.name.as_str() {
                "queue" | "dispatch" | "mem_fill" => assert_eq!(p.name, "request"),
                "plan_shift" => assert_eq!(p.name, "dispatch"),
                "sts_pulse" | "pecc_verify" => assert_eq!(p.name, "plan_shift"),
                other => panic!("unexpected span {other}"),
            }
        }
    }
}
