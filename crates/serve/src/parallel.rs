//! The lock-free per-bank throughput data path.
//!
//! [`ServeSim`](crate::ServeSim) models contention faithfully — closed
//! loops, bounded queues, a global event clock — and pays for it with
//! per-request event-loop overhead (fixpoint scans, registry lookups,
//! span bookkeeping). This module is the opposite trade: a *data path*
//! whose only job is to push shift commands through the banked LLC as
//! fast as the host allows, for wall-clock throughput measurement.
//!
//! The structure:
//!
//! * a [`GroupRouter`] maps addresses to stripe groups and banks with
//!   two integer operations — no LLC probe, no allocation;
//! * the front end walks the trace once, routing each request to its
//!   bank and *fusing* consecutive same-group requests into batched
//!   shift command streams (entries after the first are marked
//!   [`ShiftCommand::fused`]: the bank's STS driver stays armed, so a
//!   required shift skips its stage-2 settle — see
//!   `rtm_model::sts::StsTiming::continuation_shift_cycles`);
//! * one single-producer/single-consumer ring ([`rtm_par::spsc`]) per
//!   bank carries commands from the front end to the bank's worker:
//!   no mutex, no shared tail, one cache line of coordination in each
//!   direction;
//! * each worker owns its banks outright — a private [`RacetrackLlc`]
//!   clone and a per-bank lane clock — so the hot loop takes no lock
//!   and touches no shared state at all.
//!
//! # Determinism
//!
//! Banks partition the address space disjointly (a stripe group is
//! four consecutive cache sets; a bank is `group % banks`), so each
//! bank's command sequence — and every per-bank simulated timestamp —
//! is a pure function of the trace, independent of worker interleaving.
//! [`run_oracle`] executes the identical lane semantics serially on one
//! LLC; [`run_parallel`] must produce a bit-identical [`ServeStats`]
//! for any thread count, which the test-suite and the
//! `bench-serve --check` gate enforce. Floating-point counters are
//! merged per *bank* in ascending bank order (via
//! [`RacetrackLlc::controller_at`]), never per worker, reproducing the
//! oracle's exact summation order; everything else is integral and
//! commutative.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

use crate::sim::LatencySummary;
use rtm_controller::controller::ShiftPolicy;
use rtm_cost::technology::LlcDesign;
use rtm_mem::cache::AccessKind;
use rtm_mem::llc::{LlcModel, LlcStats, RacetrackLlc};
use rtm_par::spsc::{self, Producer, Recv};
use rtm_pecc::layout::ProtectionKind;
use rtm_trace::MemAccess;

/// One request on a bank's command ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftCommand {
    /// Byte address of the access.
    pub addr: u64,
    /// Write (store) versus read (load).
    pub write: bool,
    /// Continuation of the current batched shift command stream: the
    /// directly preceding command on this bank targeted the same
    /// stripe group, so the STS driver is still armed and a required
    /// shift pays no stage-2 settle.
    pub fused: bool,
}

/// Address-to-bank routing without an LLC in hand.
///
/// The racetrack LLC maps a 64-byte line to `set = (addr / 64) % sets`,
/// interleaves 16 ways over 64-domain stripe groups (so four
/// consecutive sets share one group), and spreads groups over banks
/// round-robin. The front end only needs that arithmetic — two divides
/// — to route; [`GroupRouter::group_of`] is checked against
/// [`RacetrackLlc::group_of`] by the test-suite.
#[derive(Debug, Clone, Copy)]
pub struct GroupRouter {
    sets: u64,
    banks: u32,
}

impl GroupRouter {
    /// Router for the paper's racetrack LLC design and `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn paper(banks: u32) -> Self {
        assert!(banks > 0, "at least one bank required");
        let design = LlcDesign::racetrack();
        Self {
            sets: design.capacity_bytes / (16 * 64),
            banks,
        }
    }

    /// The stripe group an access to `addr` lands in.
    pub fn group_of(&self, addr: u64) -> usize {
        (((addr >> 6) % self.sets) / 4) as usize
    }

    /// The bank serving `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        self.group_of(addr) % self.banks as usize
    }
}

/// Configuration of the throughput data path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputConfig {
    /// Protection scheme of the racetrack LLC.
    pub protection: ProtectionKind,
    /// Safe-distance policy of the shift controllers.
    pub shift_policy: ShiftPolicy,
    /// Independent banks (one command ring and one lane clock each).
    pub banks: u32,
    /// Worker threads the banks are dealt over (`bank % threads`).
    pub threads: u32,
    /// Longest batched shift command stream: at most this many
    /// consecutive same-group requests fuse into one stream before a
    /// fresh (unfused) stream starts. `1` disables fusion.
    pub batch_limit: u32,
    /// Slots per command ring.
    pub ring_capacity: usize,
}

impl ThroughputConfig {
    /// The contended default: SECDED adaptive LLC, 8 banks, fusion up
    /// to 8 commands, 1024-slot rings, single worker.
    pub fn new() -> Self {
        Self {
            protection: ProtectionKind::SECDED,
            shift_policy: ShiftPolicy::Adaptive,
            banks: 8,
            threads: 1,
            batch_limit: 8,
            ring_capacity: 1024,
        }
    }

    /// Sets the protection scheme and shift policy (builder style).
    pub fn with_scheme(mut self, protection: ProtectionKind, policy: ShiftPolicy) -> Self {
        self.protection = protection;
        self.shift_policy = policy;
        self
    }

    /// Sets the bank count (builder style).
    pub fn with_banks(mut self, banks: u32) -> Self {
        self.banks = banks;
        self
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the stream batch limit (builder style).
    pub fn with_batch_limit(mut self, limit: u32) -> Self {
        self.batch_limit = limit;
        self
    }

    /// Sets the per-bank ring capacity (builder style). Wall-clock
    /// benchmarks size rings to the whole trace so the front end never
    /// blocks on backpressure — on a box with fewer cores than workers
    /// a full ring otherwise degenerates into yield ping-pong.
    pub fn with_ring_capacity(mut self, slots: usize) -> Self {
        self.ring_capacity = slots;
        self
    }

    fn validate(&self) {
        assert!(self.banks > 0, "at least one bank");
        assert!(self.threads > 0, "at least one worker");
        assert!(self.batch_limit > 0, "streams hold at least one command");
        assert!(self.ring_capacity > 0, "rings need capacity");
    }
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of one throughput run. `PartialEq` on purpose: the parallel
/// path is gated on bit-identity with the serial oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests executed.
    pub requests: u64,
    /// Final simulated clock of each bank's lane.
    pub lane_cycles: Vec<u64>,
    /// Slowest lane — the run's simulated makespan.
    pub makespan_cycles: u64,
    /// Per-request LLC service latency (shift + array), all banks.
    pub service: LatencySummary,
    /// Requests the head was already positioned for.
    pub zero_shift_dispatches: u64,
    /// Commands executed as stream continuations (`fused`).
    pub fused_dispatches: u64,
    /// Continuation shifts the controllers actually planned (fused
    /// commands whose access still needed head movement).
    pub batched_requests: u64,
    /// Cycles the batched streams saved versus standalone planning
    /// (one STS stage-2 settle per continuation shift).
    pub batch_saved_cycles: u64,
    /// Merged LLC counters.
    pub llc: LlcStats,
}

impl ServeStats {
    /// Requests per thousand simulated cycles of the slowest lane.
    pub fn throughput_req_per_kcycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.requests as f64 * 1000.0 / self.makespan_cycles as f64
        }
    }
}

/// One bank's private execution state: a simulated clock and the
/// per-request samples. Plain accumulators only — the hot loop does no
/// registry lookup, no span bookkeeping and no stats snapshotting.
#[derive(Debug)]
struct Lane {
    bank: usize,
    clock: u64,
    samples: Vec<u64>,
    fused: u64,
}

impl Lane {
    fn new(bank: usize) -> Self {
        Self {
            bank,
            clock: 0,
            samples: Vec::new(),
            fused: 0,
        }
    }

    /// Executes one command at this lane's current simulated time.
    fn execute(&mut self, llc: &mut RacetrackLlc, cmd: ShiftCommand) {
        let kind = if cmd.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let resp = llc.access_fused(cmd.addr, kind, self.clock, cmd.fused);
        self.clock += resp.latency_cycles;
        self.samples.push(resp.latency_cycles);
        self.fused += u64::from(cmd.fused);
    }
}

/// Stream-fusion state of the front end: remembers each bank's last
/// routed group and the current stream length.
#[derive(Debug)]
struct Fuser {
    last_group: Vec<usize>,
    run: Vec<u32>,
    limit: u32,
}

impl Fuser {
    fn new(banks: usize, limit: u32) -> Self {
        Self {
            last_group: vec![usize::MAX; banks],
            run: vec![0; banks],
            limit,
        }
    }

    /// Routes one access into a command, fusing it onto the bank's
    /// current stream when it targets the same group and the stream
    /// has room.
    fn command(&mut self, bank: usize, group: usize, a: &MemAccess) -> ShiftCommand {
        let fused = self.last_group[bank] == group && self.run[bank] < self.limit;
        if fused {
            self.run[bank] += 1;
        } else {
            self.last_group[bank] = group;
            self.run[bank] = 1;
        }
        ShiftCommand {
            addr: a.addr,
            write: a.is_write,
            fused,
        }
    }
}

/// One execution shard: an LLC (all banks, but only the owned banks'
/// state is ever touched) plus the owned lanes.
struct Shard {
    llc: RacetrackLlc,
    lanes: Vec<Lane>,
}

/// Merges shards into a [`ServeStats`]. Integral counters are summed
/// per shard (exact, commutative); floating-point risk and the batch
/// counters are read per *bank* in ascending bank order so the
/// summation order — and therefore every result bit — matches the
/// serial oracle's single-LLC accounting.
fn merge(cfg: &ThroughputConfig, shards: Vec<Shard>) -> ServeStats {
    let banks = cfg.banks as usize;
    let mut owner = vec![usize::MAX; banks];
    for (s, shard) in shards.iter().enumerate() {
        for lane in &shard.lanes {
            owner[lane.bank] = s;
        }
    }
    debug_assert!(owner.iter().all(|&s| s != usize::MAX));

    let mut llc = LlcStats::default();
    for shard in &shards {
        let s = shard.llc.stats();
        llc.cache.hits += s.cache.hits;
        llc.cache.misses += s.cache.misses;
        llc.cache.writebacks += s.cache.writebacks;
        llc.cache.reads += s.cache.reads;
        llc.cache.writes += s.cache.writes;
        llc.shift_ops += s.shift_ops;
        llc.shift_steps += s.shift_steps;
        llc.shift_cycles += s.shift_cycles;
        llc.verify_cycles += s.verify_cycles;
        llc.zero_shift_accesses += s.zero_shift_accesses;
        llc.sampled_shifts += s.sampled_shifts;
        llc.observed_errors += s.observed_errors;
    }
    let mut dues = 0.0f64;
    let mut sdcs = 0.0f64;
    let mut batched = 0u64;
    let mut saved = 0u64;
    for (bank, &s) in owner.iter().enumerate() {
        let c = shards[s].llc.controller_at(bank).stats();
        dues += c.expected_dues;
        sdcs += c.expected_sdcs;
        batched += c.batched_requests;
        saved += c.batch_saved_cycles;
    }
    let stripes = RacetrackLlc::STRIPES_PER_GROUP as f64;
    llc.expected_dues = dues * stripes;
    llc.expected_sdcs = sdcs * stripes;

    let mut lanes: Vec<Lane> = shards.into_iter().flat_map(|s| s.lanes).collect();
    lanes.sort_unstable_by_key(|l| l.bank);
    let lane_cycles: Vec<u64> = lanes.iter().map(|l| l.clock).collect();
    let makespan_cycles = lane_cycles.iter().copied().max().unwrap_or(0);
    let fused_dispatches = lanes.iter().map(|l| l.fused).sum();
    let mut samples = Vec::with_capacity(lanes.iter().map(|l| l.samples.len()).sum());
    for lane in &mut lanes {
        samples.append(&mut lane.samples);
    }
    ServeStats {
        requests: samples.len() as u64,
        makespan_cycles,
        lane_cycles,
        service: LatencySummary::from_samples(samples),
        zero_shift_dispatches: llc.zero_shift_accesses,
        fused_dispatches,
        batched_requests: batched,
        batch_saved_cycles: saved,
        llc,
    }
}

/// Runs the lane semantics serially on a single LLC — the oracle the
/// parallel path is gated against.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_oracle(cfg: ThroughputConfig, trace: &[MemAccess]) -> ServeStats {
    cfg.validate();
    let banks = cfg.banks as usize;
    let router = GroupRouter::paper(cfg.banks);
    let mut fuser = Fuser::new(banks, cfg.batch_limit);
    let mut llc = RacetrackLlc::with_banks(cfg.protection, cfg.shift_policy, cfg.banks);
    let mut lanes: Vec<Lane> = (0..banks).map(Lane::new).collect();
    for a in trace {
        let group = router.group_of(a.addr);
        let bank = group % banks;
        let cmd = fuser.command(bank, group, a);
        lanes[bank].execute(&mut llc, cmd);
    }
    merge(&cfg, vec![Shard { llc, lanes }])
}

/// Runs the coarse-lock data path the rings replace: `cfg.threads`
/// workers pull commands from one shared queue and execute them on one
/// shared LLC, all behind a single [`Mutex`]. Dequeue and execution
/// share a critical section, so commands run in global FIFO order and
/// the stats are bit-identical to [`run_oracle`] — this is a correct
/// parallelisation, just a fully serialised one. It exists as the
/// benchmark baseline: the throughput gate requires [`run_parallel`]
/// to beat it by a wide margin at 8 workers.
///
/// # Panics
///
/// Panics if the configuration is invalid or a worker panics.
pub fn run_mutex(cfg: ThroughputConfig, trace: &[MemAccess]) -> ServeStats {
    cfg.validate();
    let banks = cfg.banks as usize;
    let threads = (cfg.threads as usize).min(banks);
    let router = GroupRouter::paper(cfg.banks);

    struct Shared {
        queue: VecDeque<(usize, ShiftCommand)>,
        llc: RacetrackLlc,
        lanes: Vec<Lane>,
        done: bool,
    }
    let shared = Mutex::new(Shared {
        queue: VecDeque::with_capacity(cfg.ring_capacity),
        llc: RacetrackLlc::with_banks(cfg.protection, cfg.shift_policy, cfg.banks),
        lanes: (0..banks).map(Lane::new).collect(),
        done: false,
    });

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let mut guard = shared.lock().expect("lock poisoned");
                    let s = &mut *guard;
                    match s.queue.pop_front() {
                        Some((bank, cmd)) => s.lanes[bank].execute(&mut s.llc, cmd),
                        None if s.done => break,
                        None => {
                            drop(guard);
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        let mut fuser = Fuser::new(banks, cfg.batch_limit);
        for a in trace {
            let group = router.group_of(a.addr);
            let bank = group % banks;
            let cmd = fuser.command(bank, group, a);
            loop {
                let mut s = shared.lock().expect("lock poisoned");
                if s.queue.len() < cfg.ring_capacity {
                    s.queue.push_back((bank, cmd));
                    break;
                }
                drop(s);
                thread::yield_now();
            }
        }
        shared.lock().expect("lock poisoned").done = true;
        for h in handles {
            h.join().expect("mutex worker panicked");
        }
    });

    let s = shared.into_inner().expect("lock poisoned");
    merge(
        &cfg,
        vec![Shard {
            llc: s.llc,
            lanes: s.lanes,
        }],
    )
}

/// Runs the lock-free per-bank data path: `cfg.threads` workers, one
/// SPSC command ring per bank, the front end routing and fusing the
/// trace while the workers drain. Bit-identical to [`run_oracle`] for
/// any thread count.
///
/// # Panics
///
/// Panics if the configuration is invalid or a worker panics.
pub fn run_parallel(cfg: ThroughputConfig, trace: &[MemAccess]) -> ServeStats {
    cfg.validate();
    let banks = cfg.banks as usize;
    let threads = (cfg.threads as usize).min(banks);
    let router = GroupRouter::paper(cfg.banks);

    let mut producers: Vec<Producer<ShiftCommand>> = Vec::with_capacity(banks);
    let mut worker_rings: Vec<Vec<(usize, spsc::Consumer<ShiftCommand>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for bank in 0..banks {
        let (tx, rx) = spsc::ring(cfg.ring_capacity);
        producers.push(tx);
        worker_rings[bank % threads].push((bank, rx));
    }

    let shards = thread::scope(|scope| {
        let handles: Vec<_> = worker_rings
            .into_iter()
            .map(|rings| {
                scope.spawn(move || {
                    // Each worker owns a private LLC; only its banks'
                    // cache sets, heads and controllers are ever
                    // touched, so the owned slices of state evolve
                    // exactly as the oracle's.
                    let mut llc =
                        RacetrackLlc::with_banks(cfg.protection, cfg.shift_policy, cfg.banks);
                    let mut lanes: Vec<Lane> =
                        rings.iter().map(|&(bank, _)| Lane::new(bank)).collect();
                    let mut rings: Vec<_> = rings.into_iter().map(|(_, rx)| Some(rx)).collect();
                    let mut open = rings.iter().filter(|r| r.is_some()).count();
                    while open > 0 {
                        let mut advanced = false;
                        for (i, slot) in rings.iter_mut().enumerate() {
                            let Some(rx) = slot else { continue };
                            loop {
                                match rx.try_recv() {
                                    Recv::Item(cmd) => {
                                        lanes[i].execute(&mut llc, cmd);
                                        advanced = true;
                                    }
                                    Recv::Empty => break,
                                    Recv::Closed => {
                                        *slot = None;
                                        open -= 1;
                                        break;
                                    }
                                }
                            }
                        }
                        if !advanced && open > 0 {
                            // Ring-empty means the front end is behind;
                            // wait for commands — a lane clock never
                            // advances on idleness.
                            thread::yield_now();
                        }
                    }
                    Shard { llc, lanes }
                })
            })
            .collect();

        // Front end: route, fuse and enqueue in trace order. A full
        // ring is backpressure — retry until the worker drains.
        let mut fuser = Fuser::new(banks, cfg.batch_limit);
        for a in trace {
            let group = router.group_of(a.addr);
            let bank = group % banks;
            let mut cmd = fuser.command(bank, group, a);
            while let Err(back) = producers[bank].push(cmd) {
                cmd = back;
                thread::yield_now();
            }
        }
        // Dropping the producers closes every ring.
        drop(producers);

        handles
            .into_iter()
            .map(|h| h.join().expect("bank worker panicked"))
            .collect::<Vec<_>>()
    });
    merge(&cfg, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_trace::{MixedTraceGenerator, TraceGenerator, WorkloadProfile};

    fn trace(workload: &str, n: usize) -> Vec<MemAccess> {
        let p = WorkloadProfile::by_name(workload).unwrap();
        MixedTraceGenerator::new(&[p, p, p, p], 2015)
            .take(n)
            .collect()
    }

    #[test]
    fn router_matches_the_llc_mapping() {
        let llc = RacetrackLlc::with_banks(ProtectionKind::SECDED, ShiftPolicy::Adaptive, 8);
        let router = GroupRouter::paper(8);
        let p = WorkloadProfile::by_name("canneal").unwrap();
        for a in TraceGenerator::new(p, 7).take(5_000) {
            assert_eq!(router.group_of(a.addr), llc.group_of(a.addr));
            assert_eq!(router.bank_of(a.addr), llc.group_of(a.addr) % 8);
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_the_oracle() {
        let t = trace("canneal", 20_000);
        let cfg = ThroughputConfig::new();
        let oracle = run_oracle(cfg, &t);
        assert_eq!(oracle.requests, 20_000);
        for threads in [1, 2, 4, 8] {
            let par = run_parallel(cfg.with_threads(threads), &t);
            assert_eq!(oracle, par, "threads = {threads}");
        }
    }

    #[test]
    fn oracle_equivalence_holds_across_schemes_and_workloads() {
        for (workload, protection, policy) in [
            ("ferret", ProtectionKind::SECDED, ShiftPolicy::Adaptive),
            ("dedup", ProtectionKind::SECDED_O, ShiftPolicy::StepByStep),
            (
                "streamcluster",
                ProtectionKind::None,
                ShiftPolicy::Unconstrained,
            ),
        ] {
            let t = trace(workload, 8_000);
            let cfg = ThroughputConfig::new().with_scheme(protection, policy);
            let oracle = run_oracle(cfg, &t);
            let par = run_parallel(cfg.with_threads(4), &t);
            assert_eq!(oracle, par, "{workload}");
        }
    }

    #[test]
    fn fusion_saves_exactly_the_amortised_setups() {
        // Under the timing-independent Unconstrained policy a batched
        // stream is *provably* identical physical work: same steps,
        // same sub-shift sequences, same risk — each planned
        // continuation skips one STS stage-2 settle and nothing else.
        // (Under Adaptive the faster stream timing feeds back into the
        // interval adapter, which may then choose different sequences;
        // see `fusion_under_adaptive_still_amortises`.)
        let t = trace("canneal", 20_000);
        let cfg =
            ThroughputConfig::new().with_scheme(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
        let fused = run_oracle(cfg, &t);
        let plain = run_oracle(cfg.with_batch_limit(1), &t);
        assert!(fused.fused_dispatches > 0, "workload must coalesce");
        assert!(fused.batched_requests > 0);
        let setup = rtm_model::sts::StsTiming::paper().setup_cycles().count();
        assert_eq!(fused.llc.shift_steps, plain.llc.shift_steps);
        assert_eq!(fused.llc.shift_ops, plain.llc.shift_ops);
        assert_eq!(fused.llc.verify_cycles, plain.llc.verify_cycles);
        assert_eq!(fused.llc.expected_dues, plain.llc.expected_dues);
        assert_eq!(fused.llc.expected_sdcs, plain.llc.expected_sdcs);
        assert_eq!(fused.batch_saved_cycles, fused.batched_requests * setup);
        assert_eq!(
            fused.llc.shift_cycles + fused.batch_saved_cycles,
            plain.llc.shift_cycles
        );
        assert!(fused.service.sum < plain.service.sum);
        assert_eq!(plain.fused_dispatches, 0);
        assert_eq!(plain.batch_saved_cycles, 0);
    }

    #[test]
    fn fusion_under_adaptive_still_amortises() {
        // The adaptive adapter reacts to the stream's tighter spacing,
        // so sequences may differ — but the setup accounting invariant
        // and the end-to-end win must survive the feedback.
        let t = trace("canneal", 20_000);
        let fused = run_oracle(ThroughputConfig::new(), &t);
        let plain = run_oracle(ThroughputConfig::new().with_batch_limit(1), &t);
        let setup = rtm_model::sts::StsTiming::paper().setup_cycles().count();
        assert!(fused.batched_requests > 0);
        assert_eq!(fused.batch_saved_cycles, fused.batched_requests * setup);
        assert_eq!(fused.llc.shift_steps, plain.llc.shift_steps);
        assert!(fused.service.sum < plain.service.sum);
        assert!(fused.makespan_cycles < plain.makespan_cycles);
    }

    #[test]
    fn lanes_partition_the_trace() {
        let t = trace("swaptions", 10_000);
        let r = run_oracle(ThroughputConfig::new(), &t);
        assert_eq!(r.requests, 10_000);
        assert_eq!(r.service.count, 10_000);
        assert_eq!(r.lane_cycles.len(), 8);
        assert_eq!(
            r.makespan_cycles,
            r.lane_cycles.iter().copied().max().unwrap()
        );
        assert_eq!(r.llc.cache.accesses(), 10_000);
        assert!(r.throughput_req_per_kcycle() > 0.0);
        assert!(r.llc.expected_dues > 0.0, "protected run carries risk");
    }

    #[test]
    fn mutex_baseline_is_bit_identical_to_the_oracle() {
        let t = trace("canneal", 8_000);
        let cfg = ThroughputConfig::new();
        let oracle = run_oracle(cfg, &t);
        for threads in [1, 4, 8] {
            let mux = run_mutex(cfg.with_threads(threads), &t);
            assert_eq!(oracle, mux, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_banks_is_fine() {
        let t = trace("canneal", 4_000);
        let cfg = ThroughputConfig::new().with_banks(2);
        let oracle = run_oracle(cfg, &t);
        let par = run_parallel(cfg.with_threads(8), &t);
        assert_eq!(oracle, par);
    }
}
