//! Configuration-matrix integration: every sensible (geometry ×
//! protection × policy) combination must build working components with
//! consistent invariants.

use rtm_controller::controller::ShiftPolicy;
use rtm_core::config::RtmConfig;
use rtm_pecc::layout::ProtectionKind;
use rtm_track::fault::IdealFaultModel;

fn geometries() -> Vec<(usize, usize)> {
    vec![(32, 4), (64, 8), (64, 4), (128, 8), (128, 16)]
}

fn kinds() -> Vec<ProtectionKind> {
    vec![
        ProtectionKind::None,
        ProtectionKind::Sed,
        ProtectionKind::SECDED,
        ProtectionKind::Correcting { m: 2 },
        ProtectionKind::SECDED_O,
    ]
}

fn policies() -> Vec<ShiftPolicy> {
    vec![
        ShiftPolicy::Unconstrained,
        ShiftPolicy::StepByStep,
        ShiftPolicy::FixedSafe {
            worst_intensity_hz: 83_000_000,
        },
        ShiftPolicy::Adaptive,
    ]
}

#[test]
fn every_valid_combination_builds_and_plans() {
    let mut built = 0;
    for (data, ports) in geometries() {
        for kind in kinds() {
            let config = match RtmConfig::paper_default()
                .with_geometry(data, ports)
                .and_then(|c| c.with_protection(kind))
            {
                Ok(c) => c,
                Err(_) => continue, // strength does not fit this Lseg
            };
            for policy in policies() {
                let mut ctl = config.clone().with_policy(policy).build_controller();
                let max = config.geometry().max_shift().max(1) as u32;
                for distance in [1, max / 2, max] {
                    let distance = distance.max(1);
                    let plan = ctl.plan_shift(distance, 0);
                    assert_eq!(
                        plan.distance(),
                        distance,
                        "{data}x{ports} {kind:?} {policy:?}"
                    );
                    assert!(plan.latency.count() > 0);
                    // Risk mass is a probability.
                    assert!(plan.sdc_risk >= 0.0 && plan.sdc_risk <= 1.0);
                    assert!(plan.due_risk >= 0.0 && plan.due_risk <= 1.0);
                }
                built += 1;
            }
        }
    }
    assert!(built >= 60, "only {built} combinations built");
}

#[test]
fn every_valid_combination_round_trips_data_physically() {
    for (data, ports) in geometries() {
        for kind in kinds() {
            let Ok(config) = RtmConfig::paper_default()
                .with_geometry(data, ports)
                .and_then(|c| c.with_protection(kind))
            else {
                continue;
            };
            let mut stripe = config.build_stripe();
            let mut ideal = IdealFaultModel;
            let geom = config.layout().geometry;
            // Probe three domains across the stripe.
            for d in [0, data / 2, data - 1] {
                stripe.seek_checked(geom.head_position_for(d), &mut ideal);
                stripe
                    .write_domain(d, rtm_track::bit::Bit::One)
                    .unwrap_or_else(|e| panic!("{data}x{ports} {kind:?} write {d}: {e}"));
                assert_eq!(
                    stripe.read_domain(d).expect("read"),
                    rtm_track::bit::Bit::One,
                    "{data}x{ports} {kind:?} domain {d}"
                );
            }
        }
    }
}

#[test]
fn reliability_targets_shape_safe_distances() {
    use rtm_util::units::Seconds;
    // Tighter targets must never allow longer safe distances.
    let mut prev = u32::MAX;
    for years in [0.1, 10.0, 1000.0, 100_000.0] {
        let config = RtmConfig::paper_default().with_reliability_target(Seconds::from_years(years));
        let budget = rtm_controller::safety::SafetyBudget::new(
            config.rates().clone(),
            Seconds::from_years(years),
            1,
        );
        let d = budget.safe_distance_at(83e6).unwrap_or(0);
        assert!(d <= prev, "{years} years -> distance {d}");
        prev = d;
    }
}
