//! The top-level design description and component factory.

use rtm_controller::controller::{ShiftController, ShiftPolicy};
use rtm_controller::safety::{SafetyBudget, PAPER_RELIABILITY_TARGET};
use rtm_model::params::DeviceParams;
use rtm_model::rates::OutOfStepRates;
use rtm_model::sts::StsTiming;
use rtm_pecc::layout::{LayoutError, PeccLayout, ProtectionKind};
use rtm_pecc::protected::ProtectedStripe;
use rtm_track::geometry::{GeometryError, StripeGeometry};
use rtm_util::units::Seconds;
use std::fmt;

/// Errors building a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The data/port geometry is invalid.
    Geometry(GeometryError),
    /// The protection strength does not fit the geometry.
    Layout(LayoutError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Geometry(e) => write!(f, "geometry: {e}"),
            ConfigError::Layout(e) => write!(f, "layout: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<GeometryError> for ConfigError {
    fn from(e: GeometryError) -> Self {
        ConfigError::Geometry(e)
    }
}

impl From<LayoutError> for ConfigError {
    fn from(e: LayoutError) -> Self {
        ConfigError::Layout(e)
    }
}

/// A complete description of a protected racetrack memory design.
///
/// Construct with [`RtmConfig::paper_default`] or via the builder
/// methods, then instantiate components with the `build_*` methods.
///
/// # Examples
///
/// ```
/// use rtm_core::config::RtmConfig;
/// use rtm_pecc::layout::ProtectionKind;
///
/// let config = RtmConfig::paper_default()
///     .with_geometry(128, 8)
///     .unwrap()
///     .with_protection(ProtectionKind::Correcting { m: 2 })
///     .unwrap();
/// assert_eq!(config.layout().extra_read_ports, 3);
/// ```
#[derive(Debug, Clone)]
pub struct RtmConfig {
    geometry: StripeGeometry,
    kind: ProtectionKind,
    policy: ShiftPolicy,
    device: DeviceParams,
    timing: StsTiming,
    rates: OutOfStepRates,
    reliability_target: Seconds,
    layout: PeccLayout,
}

impl RtmConfig {
    /// The paper's evaluated design: a 64-domain, 8-port stripe with
    /// SECDED p-ECC under the adaptive safe-distance policy, Table 1
    /// device physics and the Table 2 rate calibration.
    pub fn paper_default() -> Self {
        let geometry = StripeGeometry::paper_default();
        let kind = ProtectionKind::SECDED;
        Self {
            geometry,
            kind,
            policy: ShiftPolicy::Adaptive,
            device: DeviceParams::table1(),
            timing: StsTiming::paper(),
            rates: OutOfStepRates::paper_calibration(),
            reliability_target: PAPER_RELIABILITY_TARGET,
            layout: PeccLayout::new(geometry, kind).expect("paper default is valid"),
        }
    }

    /// Replaces the stripe geometry.
    ///
    /// # Errors
    ///
    /// Propagates invalid geometry or an incompatible protection
    /// strength.
    pub fn with_geometry(mut self, data_len: usize, ports: usize) -> Result<Self, ConfigError> {
        self.geometry = StripeGeometry::new(data_len, ports)?;
        self.layout = PeccLayout::new(self.geometry, self.kind)?;
        Ok(self)
    }

    /// Replaces the protection scheme.
    ///
    /// # Errors
    ///
    /// Fails if the strength does not fit the current geometry.
    pub fn with_protection(mut self, kind: ProtectionKind) -> Result<Self, ConfigError> {
        self.layout = PeccLayout::new(self.geometry, kind)?;
        self.kind = kind;
        Ok(self)
    }

    /// Replaces the shift policy.
    pub fn with_policy(mut self, policy: ShiftPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the device physics (e.g. a different drive ratio or
    /// variation scale) and regenerates the rate table from the model.
    pub fn with_device(mut self, device: DeviceParams) -> Self {
        self.device = device;
        self.rates =
            OutOfStepRates::from_noise_model(&rtm_model::shift::NoiseModel::from_params(&device));
        self
    }

    /// Overrides the rate calibration directly.
    pub fn with_rates(mut self, rates: OutOfStepRates) -> Self {
        self.rates = rates;
        self
    }

    /// Sets the reliability target used for safe-distance planning.
    pub fn with_reliability_target(mut self, target: Seconds) -> Self {
        self.reliability_target = target;
        self
    }

    /// The stripe geometry.
    pub fn geometry(&self) -> &StripeGeometry {
        &self.geometry
    }

    /// The protection scheme.
    pub fn protection(&self) -> ProtectionKind {
        self.kind
    }

    /// The shift policy.
    pub fn policy(&self) -> ShiftPolicy {
        self.policy
    }

    /// The physical budget of the protected stripe.
    pub fn layout(&self) -> &PeccLayout {
        &self.layout
    }

    /// The device physics.
    pub fn device(&self) -> &DeviceParams {
        &self.device
    }

    /// The rate calibration.
    pub fn rates(&self) -> &OutOfStepRates {
        &self.rates
    }

    /// The STS timing model.
    pub fn timing(&self) -> &StsTiming {
        &self.timing
    }

    /// Builds the error-aware shift controller for this design.
    pub fn build_controller(&self) -> ShiftController {
        ShiftController::with_parts(
            self.kind,
            self.policy,
            self.timing,
            SafetyBudget::new(
                self.rates.clone(),
                self.reliability_target,
                self.kind.strength(),
            ),
            self.geometry.max_shift().max(1) as u32,
        )
    }

    /// Builds a bit-accurate protected stripe for this design.
    pub fn build_stripe(&self) -> ProtectedStripe {
        ProtectedStripe::new(self.geometry, self.kind).expect("layout was validated")
    }
}

impl Default for RtmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for RtmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} with {:?} policy", self.layout, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_consistent() {
        let c = RtmConfig::paper_default();
        assert_eq!(c.geometry().data_len(), 64);
        assert_eq!(c.protection(), ProtectionKind::SECDED);
        assert_eq!(c.layout().extra_read_ports, 2);
    }

    #[test]
    fn builder_rejects_bad_combinations() {
        assert!(RtmConfig::paper_default().with_geometry(10, 3).is_err());
        // Lseg = 2 cannot carry SECDED.
        let narrow = RtmConfig::paper_default()
            .with_geometry(64, 32)
            .unwrap_err();
        assert!(matches!(narrow, ConfigError::Layout(_)));
    }

    #[test]
    fn built_controller_honours_policy() {
        let mut ctl = RtmConfig::paper_default()
            .with_policy(ShiftPolicy::StepByStep)
            .build_controller();
        assert_eq!(ctl.plan_shift(4, 0).sequence, vec![1; 4]);
    }

    #[test]
    fn built_stripe_matches_layout() {
        let c = RtmConfig::paper_default();
        let s = c.build_stripe();
        assert_eq!(s.layout().kind, ProtectionKind::SECDED);
    }

    #[test]
    fn with_device_regenerates_rates() {
        let hot = RtmConfig::paper_default()
            .with_device(DeviceParams::table1().with_variation_scale(2.0));
        let base = RtmConfig::paper_default();
        assert!(hot.rates().rate(7, 1) > base.rates().rate(7, 1));
    }

    #[test]
    fn display_mentions_scheme() {
        let s = RtmConfig::paper_default().to_string();
        assert!(s.contains("SECDED"));
    }
}
