//! Public API and experiment drivers for the Hi-fi Playback
//! reproduction.
//!
//! This crate ties the substrates together:
//!
//! * [`config`] — [`config::RtmConfig`], a builder describing a
//!   protected racetrack memory design (geometry, protection scheme,
//!   shift policy, calibration) and constructing its components;
//! * [`experiments`] — one driver per table and figure of the paper's
//!   evaluation. Each driver returns typed rows and renders the same
//!   series the paper plots, so the `repro` binary (in `rtm-bench`) is
//!   a thin printer.
//!
//! # Examples
//!
//! ```
//! use rtm_core::config::RtmConfig;
//!
//! let config = RtmConfig::paper_default();
//! let mut controller = config.build_controller();
//! let plan = controller.plan_shift(5, 0);
//! assert_eq!(plan.distance(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;

pub use config::RtmConfig;
