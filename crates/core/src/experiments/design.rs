//! Static design-space experiments: Fig. 7 (port area), Table 3 (safe
//! distance and sequences), Table 5 (protection overhead) and Fig. 13
//! (area sensitivity across segment configurations).

use super::render_table;
use rtm_controller::safety::SafetyBudget;
use rtm_controller::sequence::SequenceTable;
use rtm_cost::area::{config_area_per_bit, figure7_series, AreaModel};
use rtm_cost::overhead::ProtectionOverhead;
use rtm_model::sts::StsTiming;
use rtm_pecc::layout::ProtectionKind;
use rtm_util::units::SquareF;

/// The Fig. 7 experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure7 {
    /// `(rw_ports, [(added_read_ports, area_per_bit)])` series.
    pub series: Vec<(usize, Vec<(usize, SquareF)>)>,
}

/// Runs the Fig. 7 sweep (R/W ∈ {0, 2, 4, 6, 8}, up to 20 added read
/// ports, 64-bit stripe).
pub fn figure7_experiment() -> Figure7 {
    Figure7 {
        series: figure7_series(&AreaModel::paper(), &[0, 2, 4, 6, 8], 20),
    }
}

impl Figure7 {
    /// Renders one column per R/W series.
    pub fn render(&self) -> String {
        let mut header = vec!["+R ports".to_string()];
        for (rw, _) in &self.series {
            header.push(format!("R/W={rw}"));
        }
        let mut rows = vec![header];
        let max_r = self.series.first().map(|s| s.1.len()).unwrap_or(0);
        for i in 0..max_r {
            let mut row = vec![format!("{}", i + 1)];
            for (_, pts) in &self.series {
                row.push(format!("{:.2}", pts[i].1.value()));
            }
            rows.push(row);
        }
        let mut out = String::from(
            "Figure 7: average area per data bit (F^2/b) vs added read ports, 64-bit stripe\n\n",
        );
        out.push_str(&render_table(&rows));
        out
    }
}

/// The Table 3 experiment output.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// (a): per-distance residual rate and maximum safe intensity.
    pub safe_rows: Vec<(u32, f64, f64)>,
    /// (b): the Pareto frontier for a 7-step request:
    /// (interval threshold, sequence, latency cycles).
    pub sequence_rows: Vec<(u64, Vec<u32>, u64)>,
}

/// Reproduces both halves of Table 3 for the paper's SECDED design.
pub fn table3_experiment() -> Table3 {
    let budget = SafetyBudget::paper_secded();
    let safe_rows = (1..=7u32)
        .map(|d| (d, budget.residual_rate(d), budget.max_intensity_for(d)))
        .collect();
    let table = SequenceTable::build(&budget, &StsTiming::paper(), 7, 7);
    let sequence_rows = table
        .options(7)
        .iter()
        .map(|o| (o.min_interval, o.sequence.clone(), o.latency.count()))
        .collect();
    Table3 {
        safe_rows,
        sequence_rows,
    }
}

impl Table3 {
    /// Renders both halves.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "Dsafe".to_string(),
            "residual rate".to_string(),
            "max intensity (ops/s)".to_string(),
        ]];
        for &(d, rate, intensity) in &self.safe_rows {
            rows.push(vec![
                d.to_string(),
                format!("{rate:.2e}"),
                format!("{intensity:.3e}"),
            ]);
        }
        let mut out = String::from("Table 3(a): safe distance vs shift intensity\n\n");
        out.push_str(&render_table(&rows));

        let mut rows = vec![vec![
            "min interval (cycles)".to_string(),
            "sequence".to_string(),
            "latency (cycles)".to_string(),
        ]];
        for (interval, seq, lat) in &self.sequence_rows {
            let seq_s = seq.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
            rows.push(vec![interval.to_string(), seq_s, lat.to_string()]);
        }
        out.push_str("\nTable 3(b): safe shift sequences for a 7-step request\n\n");
        out.push_str(&render_table(&rows));
        out
    }
}

/// The Table 5 experiment output (published constants + our computed
/// cell overheads for cross-checking).
#[derive(Debug, Clone)]
pub struct Table5 {
    /// The five published rows.
    pub rows: Vec<ProtectionOverhead>,
    /// Our layout-computed cell overhead for SECDED p-ECC / p-ECC-O.
    pub computed_cell_overhead: [(String, f64); 2],
}

/// Reproduces Table 5.
pub fn table5_experiment() -> Table5 {
    let geom = rtm_track::geometry::StripeGeometry::paper_default();
    let pecc = rtm_pecc::layout::PeccLayout::new(geom, ProtectionKind::SECDED)
        .expect("valid")
        .storage_overhead();
    let pecc_o = rtm_pecc::layout::PeccLayout::new(geom, ProtectionKind::SECDED_O)
        .expect("valid")
        .storage_overhead();
    Table5 {
        rows: ProtectionOverhead::all(),
        computed_cell_overhead: [("p-ECC".to_string(), pecc), ("p-ECC-O".to_string(), pecc_o)],
    }
}

impl Table5 {
    /// Renders the overhead table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "approach".to_string(),
            "detect t (ns)".to_string(),
            "detect E (pJ)".to_string(),
            "correct t (ns)".to_string(),
            "correct E (pJ)".to_string(),
            "cell (%)".to_string(),
            "controller (um^2)".to_string(),
        ]];
        for r in &self.rows {
            rows.push(vec![
                r.scheme.to_string(),
                format!("{:.2}", r.detect_time.as_nanos()),
                format!("{:.2}", r.detect_energy.value()),
                format!("{:.2}", r.correct_time.as_nanos()),
                format!("{:.2}", r.correct_energy.value()),
                r.cell_area_overhead
                    .map(|v| format!("{:.1}", v * 100.0))
                    .unwrap_or_else(|| "N/A".to_string()),
                format!("{:.1}", r.controller_area_um2),
            ]);
        }
        let mut out = String::from("Table 5: design overhead of position error protection\n\n");
        out.push_str(&render_table(&rows));
        out.push_str("\nLayout-computed cell overheads (cross-check):\n");
        for (name, v) in &self.computed_cell_overhead {
            out.push_str(&format!("  {name}: {:.1}%\n", v * 100.0));
        }
        out
    }
}

/// One Fig. 13 row: a segment configuration and its area per bit under
/// three designs.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure13Row {
    /// Display label, e.g. "8x8".
    pub config: String,
    /// Total data bits.
    pub data_bits: usize,
    /// Baseline (unprotected) area per bit.
    pub baseline: SquareF,
    /// SECDED p-ECC-S area per bit (None where SECDED does not fit).
    pub pecc_s: Option<SquareF>,
    /// SECDED p-ECC-O area per bit.
    pub pecc_o: Option<SquareF>,
}

/// The segment configurations of Figs. 12/13/15:
/// `(segments, segment_len)` for 32-, 64- and 128-bit stripes.
pub const SEGMENT_CONFIGS: [(usize, usize); 15] = [
    (16, 2),
    (8, 4),
    (4, 8),
    (2, 16),
    (32, 2),
    (16, 4),
    (8, 8),
    (4, 16),
    (2, 32),
    (64, 2),
    (32, 4),
    (16, 8),
    (8, 16),
    (4, 32),
    (2, 64),
];

/// Runs the Fig. 13 sweep.
pub fn figure13_experiment() -> Vec<Figure13Row> {
    let model = AreaModel::paper();
    SEGMENT_CONFIGS
        .iter()
        .map(|&(segments, lseg)| {
            let data = segments * lseg;
            let baseline = config_area_per_bit(&model, data, segments, ProtectionKind::None)
                .expect("baseline always fits");
            Figure13Row {
                config: format!("{segments}x{lseg}"),
                data_bits: data,
                baseline,
                pecc_s: config_area_per_bit(&model, data, segments, ProtectionKind::SECDED),
                pecc_o: config_area_per_bit(&model, data, segments, ProtectionKind::SECDED_O),
            }
        })
        .collect()
}

/// Renders the Fig. 13 sweep.
pub fn render_figure13(rows: &[Figure13Row]) -> String {
    let mut table = vec![vec![
        "config".to_string(),
        "bits".to_string(),
        "baseline".to_string(),
        "p-ECC-S".to_string(),
        "p-ECC-O".to_string(),
    ]];
    for r in rows {
        let opt = |v: &Option<SquareF>| {
            v.map(|a| format!("{:.2}", a.value()))
                .unwrap_or_else(|| "-".to_string())
        };
        table.push(vec![
            r.config.clone(),
            r.data_bits.to_string(),
            format!("{:.2}", r.baseline.value()),
            opt(&r.pecc_s),
            opt(&r.pecc_o),
        ]);
    }
    let mut out = String::from(
        "Figure 13: average area per data bit (F^2/b) across segment configurations\n\n",
    );
    out.push_str(&render_table(&table));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_has_five_series_of_twenty() {
        let f = figure7_experiment();
        assert_eq!(f.series.len(), 5);
        for (_, pts) in &f.series {
            assert_eq!(pts.len(), 20);
        }
        assert!(f.render().contains("R/W=8"));
    }

    #[test]
    fn table3_reproduces_paper_anchors() {
        let t = table3_experiment();
        // 3(a): distance 1 admits ~4.5e9 ops/s.
        let (_, _, i1) = t.safe_rows[0];
        assert!((3e9..6e9).contains(&i1), "intensity {i1:.3e}");
        // 3(b): frontier from [7] @ 9 cycles to [1x7] @ 28 cycles.
        assert_eq!(t.sequence_rows.first().unwrap().2, 9);
        assert_eq!(t.sequence_rows.last().unwrap().2, 28);
        let text = t.render();
        assert!(text.contains("1,1,1,1,1,1,1"));
    }

    #[test]
    fn table5_render_has_all_schemes() {
        let text = table5_experiment().render();
        for s in ["STS", "p-ECC-O", "p-ECC-S adaptive", "N/A"] {
            assert!(text.contains(s), "missing {s}");
        }
    }

    #[test]
    fn figure13_has_fifteen_configs() {
        let rows = figure13_experiment();
        assert_eq!(rows.len(), 15);
        // Lseg = 2 cannot host SECDED: those rows have no p-ECC-S bar,
        // exactly like the paper's figure.
        let short = rows.iter().find(|r| r.config == "16x2").unwrap();
        assert!(short.pecc_s.is_none());
        // Long segments: p-ECC-O is cheaper than p-ECC-S.
        let long = rows.iter().find(|r| r.config == "2x64").unwrap();
        assert!(long.pecc_o.unwrap().value() < long.pecc_s.unwrap().value());
        assert!(render_figure13(&rows).contains("2x64"));
    }
}
