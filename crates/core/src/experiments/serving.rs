//! Serving-layer experiment: scheduling policy × workload × protection
//! scheme.
//!
//! The paper evaluates the LLC one request at a time; the `rtm-serve`
//! subsystem lifts that assumption. This driver quantifies what request
//! scheduling buys on top of each protection scheme: every cell runs a
//! four-tenant set-aliased mix of one PARSEC workload (the contended
//! multi-programmed traffic where stripe-group queues actually form)
//! through [`rtm_serve::ServeSim`] under one [`SchedPolicy`], and the
//! report compares FCFS, FR-FCFS and shift-aware on throughput,
//! realised shift work and the latency distribution.
//!
//! Cells are independent simulations fanned out over the `rtm-par`
//! pool; per-cell seeds derive from the workload name alone and each
//! result is folded into the sweep in strict grid order as it streams
//! back, so the sweep is bit-identical for any `--threads` setting.

use super::render_table;
use rtm_controller::controller::ShiftPolicy;
use rtm_obs::attrib::AttributionTable;
use rtm_pecc::layout::ProtectionKind;
use rtm_serve::{SchedPolicy, ServeConfig, ServeResult, ServeSim, ATTRIBUTION_COMPONENTS};
use rtm_trace::{MixedTraceGenerator, WorkloadProfile};

/// Tenants in every cell's workload mix (set-aliased copies of the
/// cell's profile, so conflict misses create same-group queueing).
pub const TENANTS: usize = 4;

/// The racetrack protection schemes the serving comparison runs
/// under, as `(label, protection, shift policy)` — the paper's four
/// plus the two deletion/insertion stream codecs.
pub const SCHEMES: [(&str, ProtectionKind, ShiftPolicy); 6] = [
    (
        "unprotected",
        ProtectionKind::None,
        ShiftPolicy::Unconstrained,
    ),
    ("p-ECC-O", ProtectionKind::SECDED_O, ShiftPolicy::StepByStep),
    (
        "p-ECC-S worst",
        ProtectionKind::SECDED,
        ShiftPolicy::FixedSafe {
            worst_intensity_hz: 83_000_000,
        },
    ),
    (
        "p-ECC-S adaptive",
        ProtectionKind::SECDED,
        ShiftPolicy::Adaptive,
    ),
    (
        "Chee-Kiah",
        ProtectionKind::CHEE_KIAH,
        ShiftPolicy::Unconstrained,
    ),
    (
        "Vahid 2-DI",
        ProtectionKind::VAHID_2DI,
        ShiftPolicy::Unconstrained,
    ),
];

/// Serving-sweep parameters.
#[derive(Debug, Clone)]
pub struct ServeSettings {
    /// Requests served per cell.
    pub requests: u64,
    /// RNG seed base (per-workload seeds derive from it).
    pub seed: u64,
    /// Workload subset (`None` = all twelve).
    pub workloads: Option<Vec<&'static str>>,
    /// Starvation bound handed to the reordering policies.
    pub starve_limit: u32,
}

impl ServeSettings {
    /// Full-fidelity settings for the repro binaries.
    pub fn full() -> Self {
        Self {
            requests: 60_000,
            seed: 2015,
            workloads: None,
            starve_limit: 4,
        }
    }

    /// Small settings for unit tests and `--quick` runs.
    pub fn quick() -> Self {
        Self {
            requests: 8_000,
            seed: 2015,
            workloads: Some(vec!["canneal", "streamcluster", "swaptions"]),
            starve_limit: 4,
        }
    }

    /// The workload profiles this sweep covers, in display order.
    pub fn profiles(&self) -> Vec<WorkloadProfile> {
        let all = WorkloadProfile::parsec();
        match &self.workloads {
            None => all.to_vec(),
            Some(names) => names
                .iter()
                .filter_map(|n| WorkloadProfile::by_name(n))
                .collect(),
        }
    }
}

/// One cell of the serving sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCell {
    /// Workload whose four-tenant mix drove the cell.
    pub workload: &'static str,
    /// Protection-scheme label (see [`SCHEMES`]).
    pub scheme: &'static str,
    /// Scheduling policy under test.
    pub policy: SchedPolicy,
    /// Full serving statistics.
    pub result: ServeResult,
}

/// Results of the policy × workload × scheme sweep, in grid order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeSweep {
    /// One cell per (workload, scheme, policy), workloads outermost.
    pub cells: Vec<ServeCell>,
}

impl ServeSweep {
    /// Runs the sweep on the process-wide `rtm_par` pool.
    pub fn run(settings: &ServeSettings) -> Self {
        Self::run_with_threads(settings, rtm_par::threads())
    }

    /// [`Self::run`] with an explicit worker count; results are
    /// identical for any `threads` value.
    pub fn run_with_threads(settings: &ServeSettings, threads: usize) -> Self {
        let profiles = settings.profiles();
        let cells: Vec<(WorkloadProfile, usize, SchedPolicy)> = profiles
            .iter()
            .flat_map(|&p| {
                (0..SCHEMES.len())
                    .flat_map(move |s| SchedPolicy::ALL.into_iter().map(move |pol| (p, s, pol)))
            })
            .collect();
        let progress = rtm_obs::timer::Progress::new("sweep(serve)", cells.len() as u64, "cells");
        // Streaming fold: cells land in the sweep in strict grid order
        // as soon as their predecessors have arrived, without a second
        // results Vec alongside the grid.
        let sweep = rtm_par::parallel_fold_with(
            threads,
            cells.len(),
            |i| {
                let (p, s, pol) = cells[i];
                let r = run_cell(settings, p, s, pol);
                progress.tick(1);
                r
            },
            Self::default(),
            |sweep, i, result| {
                let (p, s, pol) = cells[i];
                sweep.cells.push(ServeCell {
                    workload: p.name,
                    scheme: SCHEMES[s].0,
                    policy: pol,
                    result,
                });
            },
        );
        progress.finish();
        sweep
    }

    /// The cell for a (workload, scheme, policy) triple.
    pub fn cell(&self, workload: &str, scheme: &str, policy: SchedPolicy) -> Option<&ServeCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.scheme == scheme && c.policy == policy)
    }
}

fn run_cell(
    settings: &ServeSettings,
    p: WorkloadProfile,
    scheme: usize,
    policy: SchedPolicy,
) -> ServeResult {
    let (_, protection, shift_policy) = SCHEMES[scheme];
    let seed = rtm_util::rng::derive_seed(settings.seed, seed_of(p.name));
    let mut mix = MixedTraceGenerator::new(&vec![p; TENANTS], seed);
    let cfg = ServeConfig::new(policy)
        .with_scheme(protection, shift_policy)
        .with_starve_limit(settings.starve_limit)
        .with_requests(settings.requests);
    ServeSim::new(cfg).run(&mut mix)
}

fn seed_of(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64))
}

/// Shift-aware vs FCFS headline per (workload, scheme): relative
/// completion-time saving and realised-shift-cycle saving (positive =
/// shift-aware better).
pub fn policy_gains(sweep: &ServeSweep) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for c in &sweep.cells {
        if c.policy != SchedPolicy::ShiftAware {
            continue;
        }
        let Some(base) = sweep.cell(c.workload, c.scheme, SchedPolicy::Fcfs) else {
            continue;
        };
        let cycles = 1.0 - c.result.cycles as f64 / base.result.cycles.max(1) as f64;
        let shifts =
            1.0 - c.result.llc.shift_cycles as f64 / base.result.llc.shift_cycles.max(1) as f64;
        out.push((format!("{} / {}", c.workload, c.scheme), cycles, shifts));
    }
    out
}

/// Renders the sweep as a text report: the per-cell table plus the
/// shift-aware vs FCFS summary.
pub fn render_serving(sweep: &ServeSweep) -> String {
    let mut rows = vec![vec![
        "workload".to_string(),
        "scheme".to_string(),
        "policy".to_string(),
        "cycles".to_string(),
        "req/kcycle".to_string(),
        "qd p99".to_string(),
        "svc p50".to_string(),
        "svc p99".to_string(),
        "total p99".to_string(),
        "shift cyc".to_string(),
        "zero-shift".to_string(),
        "stalls".to_string(),
    ]];
    for c in &sweep.cells {
        let r = &c.result;
        rows.push(vec![
            c.workload.to_string(),
            c.scheme.to_string(),
            c.policy.to_string(),
            r.cycles.to_string(),
            format!("{:.2}", r.throughput_req_per_kcycle()),
            r.queue_delay.p99.to_string(),
            r.service.p50.to_string(),
            r.service.p99.to_string(),
            r.total.p99.to_string(),
            r.llc.shift_cycles.to_string(),
            r.zero_shift_dispatches.to_string(),
            r.backpressure_stalls.to_string(),
        ]);
    }
    let mut out = String::from("Serving layer: policy x workload x protection scheme\n\n");
    out.push_str(&render_table(&rows));
    out.push_str(
        "\nShift-aware vs FCFS (positive = shift-aware better; reordering\n\
         trades a bounded amount of tail fairness for service throughput):\n",
    );
    for (label, cycles, shifts) in policy_gains(sweep) {
        out.push_str(&format!(
            "  {label}: completion {:+.2}%, realised shift cycles {:+.2}%\n",
            cycles * 100.0,
            shifts * 100.0
        ));
    }
    out
}

/// Per-cell cycle attribution for the whole sweep, in grid order:
/// every dispatched cycle of every cell lands in exactly one of the
/// [`ATTRIBUTION_COMPONENTS`] buckets, so each row's components sum to
/// its total exactly (the serve decomposition is exact, not modelled).
pub fn serving_attribution(sweep: &ServeSweep) -> AttributionTable {
    let mut table = AttributionTable::new(["workload", "scheme", "policy"], ATTRIBUTION_COMPONENTS);
    for c in &sweep.cells {
        table.push(
            [
                c.workload.to_string(),
                c.scheme.to_string(),
                c.policy.to_string(),
            ],
            c.result.attribution_components(),
            c.result.attributed_total(),
        );
    }
    table
}

/// Renders the attribution table as a text report.
pub fn render_serving_attribution(table: &AttributionTable) -> String {
    let mut out = String::from(
        "Cycle attribution per (workload, scheme, policy); components\n\
         partition the dispatched cycles exactly:\n\n",
    );
    out.push_str(&render_table(&table.rows()));
    out
}

/// Publishes one labeled sample set per cell into the process-wide
/// [`rtm_obs`] labeled registry (no-op unless labels are enabled).
/// Called after the sweep so the emission order is the deterministic
/// grid order regardless of `--threads`.
pub fn record_serving_labels(sweep: &ServeSweep) {
    let labels = rtm_obs::global().labeled();
    if !labels.enabled() {
        return;
    }
    for c in &sweep.cells {
        let policy = c.policy.to_string();
        let cell = [
            ("workload", c.workload),
            ("scheme", c.scheme),
            ("policy", policy.as_str()),
        ];
        let r = &c.result;
        labels.counter_add_with("serve.requests", &cell, r.requests);
        labels.counter_add_with("serve.cycles", &cell, r.cycles);
        labels.counter_add_with("serve.shift_cycles", &cell, r.llc.shift_cycles);
        labels.counter_add_with("serve.verify_cycles", &cell, r.llc.verify_cycles);
        labels.gauge_set_with(
            "serve.throughput_req_per_kcycle",
            &cell,
            r.throughput_req_per_kcycle(),
        );
        labels.observe_labeled("serve.total_p99", &cell, r.total.p99 as f64);
        for tcell in &r.tenants.cells {
            let tenant = tcell.keys[0].as_str();
            let who = [
                ("workload", c.workload),
                ("scheme", c.scheme),
                ("policy", policy.as_str()),
                ("tenant", tenant),
            ];
            labels.counter_add_with("serve.tenant_cycles", &who, tcell.total);
        }
        for (bank, &busy) in r.bank_busy_cycles.iter().enumerate() {
            let bank = bank.to_string();
            let who = [
                ("workload", c.workload),
                ("scheme", c.scheme),
                ("policy", policy.as_str()),
                ("bank", bank.as_str()),
            ];
            labels.counter_add_with("serve.bank_busy_cycles", &who, busy);
        }
    }
}

/// Machine-readable CSV of the sweep (same columns as the table).
pub fn serving_csv(sweep: &ServeSweep) -> String {
    let mut rows = vec![vec![
        "workload".to_string(),
        "scheme".to_string(),
        "policy".to_string(),
        "cycles".to_string(),
        "throughput_req_per_kcycle".to_string(),
        "queue_delay_p99".to_string(),
        "service_p50".to_string(),
        "service_p99".to_string(),
        "total_p50".to_string(),
        "total_p99".to_string(),
        "read_total_p99".to_string(),
        "shift_cycles".to_string(),
        "zero_shift_dispatches".to_string(),
        "backpressure_stalls".to_string(),
    ]];
    for c in &sweep.cells {
        let r = &c.result;
        rows.push(vec![
            c.workload.to_string(),
            c.scheme.to_string(),
            c.policy.to_string(),
            r.cycles.to_string(),
            format!("{:.4}", r.throughput_req_per_kcycle()),
            r.queue_delay.p99.to_string(),
            r.service.p50.to_string(),
            r.service.p99.to_string(),
            r.total.p50.to_string(),
            r.total.p99.to_string(),
            r.read_total.p99.to_string(),
            r.llc.shift_cycles.to_string(),
            r.zero_shift_dispatches.to_string(),
            r.backpressure_stalls.to_string(),
        ]);
    }
    super::to_csv(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeSettings {
        ServeSettings {
            requests: 3_000,
            seed: 2015,
            workloads: Some(vec!["canneal", "streamcluster"]),
            starve_limit: 4,
        }
    }

    #[test]
    fn sweep_covers_requested_matrix() {
        let sweep = ServeSweep::run(&tiny());
        assert_eq!(
            sweep.cells.len(),
            2 * SCHEMES.len() * SchedPolicy::ALL.len()
        );
        for c in &sweep.cells {
            assert_eq!(c.result.requests, 3_000);
        }
        assert!(sweep
            .cell("canneal", "p-ECC-S adaptive", SchedPolicy::ShiftAware)
            .is_some());
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut s = tiny();
        s.workloads = Some(vec!["canneal"]);
        let base = ServeSweep::run_with_threads(&s, 1);
        for threads in [2usize, 8] {
            let alt = ServeSweep::run_with_threads(&s, threads);
            assert_eq!(base, alt, "threads={threads}");
        }
    }

    #[test]
    fn shift_aware_gains_on_capacity_sensitive_mixes() {
        let mut s = tiny();
        s.requests = 8_000;
        let sweep = ServeSweep::run(&s);
        // On the capacity-sensitive mixes the shift-aware policy must
        // save both completion time and realised shift work vs FCFS
        // under the adaptive scheme (the paper's headline config).
        for w in ["canneal", "streamcluster"] {
            let fcfs = sweep
                .cell(w, "p-ECC-S adaptive", SchedPolicy::Fcfs)
                .unwrap();
            let aware = sweep
                .cell(w, "p-ECC-S adaptive", SchedPolicy::ShiftAware)
                .unwrap();
            assert!(
                aware.result.cycles < fcfs.result.cycles,
                "{w}: aware {} vs fcfs {}",
                aware.result.cycles,
                fcfs.result.cycles
            );
            assert!(
                aware.result.llc.shift_cycles < fcfs.result.llc.shift_cycles,
                "{w}"
            );
        }
    }

    #[test]
    fn render_and_csv_agree_on_cell_count() {
        let sweep = ServeSweep::run(&tiny());
        let text = render_serving(&sweep);
        assert!(text.contains("Serving layer"));
        assert!(text.contains("shift-aware"));
        let csv = serving_csv(&sweep);
        assert_eq!(csv.lines().count(), 1 + sweep.cells.len());
    }

    #[test]
    fn attribution_rows_sum_exactly_per_cell() {
        let sweep = ServeSweep::run(&tiny());
        let table = serving_attribution(&sweep);
        assert_eq!(table.cells.len(), sweep.cells.len());
        assert_eq!(table.max_residual(), 0);
        // Protected schemes verify; the unprotected one never does.
        for (cell, row) in sweep.cells.iter().zip(&table.cells) {
            let verify = table.component(row, "pecc_verify").unwrap();
            if cell.scheme == "unprotected" {
                assert_eq!(verify, 0, "{}", cell.workload);
            } else {
                assert!(verify > 0, "{} {}", cell.workload, cell.scheme);
            }
        }
        let text = render_serving_attribution(&table);
        assert!(text.contains("pecc_verify"));
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 1 + table.cells.len());
    }

    #[test]
    fn attribution_is_thread_count_invariant() {
        let mut s = tiny();
        s.workloads = Some(vec!["streamcluster"]);
        let one = serving_attribution(&ServeSweep::run_with_threads(&s, 1));
        let eight = serving_attribution(&ServeSweep::run_with_threads(&s, 8));
        assert_eq!(one, eight);
        assert_eq!(one.to_csv(), eight.to_csv());
    }

    #[test]
    fn labeled_emission_covers_the_grid_when_enabled() {
        let mut s = tiny();
        s.workloads = Some(vec!["canneal"]);
        let sweep = ServeSweep::run(&s);
        let labels = rtm_obs::global().labeled();
        labels.reset();
        labels.set_enabled(true);
        record_serving_labels(&sweep);
        let snap = labels.snapshot();
        labels.set_enabled(false);
        labels.reset();
        assert_eq!(snap.series("serve.requests").len(), sweep.cells.len());
        let probe = sweep.cells[0].policy.to_string();
        assert_eq!(
            snap.counter(
                "serve.requests",
                // Snapshot lookups take the pairs in sorted key order.
                &[
                    ("policy", probe.as_str()),
                    ("scheme", sweep.cells[0].scheme),
                    ("workload", "canneal"),
                ],
            ),
            Some(3_000)
        );
        // Tenant rows exist for each of the four tenants per cell.
        assert_eq!(
            snap.series("serve.tenant_cycles").len(),
            sweep.cells.len() * TENANTS
        );
    }
}
