//! Beyond-paper scheme × fault-model matrix: every protection scheme
//! (the paper's five plus the two deletion/insertion position codes)
//! crossed with every selectable fault process.
//!
//! Each cell combines three views that the per-figure drivers only
//! show in isolation:
//!
//! * **analytic reliability** — SDC/DUE MTTF from
//!   [`ReliabilityReport::with_rates`] under the fault model's own rate
//!   table ([`FaultModelChoice::analytic_rates`]), with the shift mix
//!   implied by the scheme's shift policy;
//! * **cost** — the Table 5 row for the scheme (detection energy and
//!   cell overhead), including the derived rows for the stream codecs;
//! * **sampled behaviour** — one short trace-driven simulation per cell
//!   through [`Hierarchy::with_racetrack_faults`], tallying how many
//!   concrete shift outcomes the fault model drew and how many were
//!   position errors.
//!
//! Cells are independent, so the grid fans out across the `rtm-par`
//! pool; sampling seeds derive from the settings seed and the cell's
//! grid index (never the worker schedule) and results fold in strict
//! grid order, so the matrix is bit-identical for any thread count.

use rtm_controller::controller::ShiftPolicy;
use rtm_controller::safety::SafetyBudget;
use rtm_cost::overhead::{ProtectionOverhead, Scheme};
use rtm_mem::hierarchy::Hierarchy;
use rtm_model::analytic::Engine;
use rtm_pecc::layout::ProtectionKind;
use rtm_reliability::accounting::{ReliabilityReport, ShiftMix};
use rtm_trace::{TraceGenerator, WorkloadProfile};
use rtm_track::fault::FaultModelChoice;

/// The paper's reference shift intensity: a 512-stripe line group at
/// ~10M group commands/s (the Fig. 12 operating point).
pub const PAPER_INTENSITY: f64 = 1.0e7 * 512.0;

/// A protection scheme selectable on the `--scheme` axis.
///
/// This is the user-facing union of the paper's five schemes and the
/// two stream codecs: each name maps to a (protection kind, shift
/// policy) pair for simulation and a Table 5 row for cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeChoice {
    /// Sub-threshold shift alone (unprotected baseline).
    Sts,
    /// SECDED p-ECC, unconstrained distances.
    Pecc,
    /// SECDED p-ECC-O (overhead region, 1-step shift-and-write).
    PeccO,
    /// p-ECC-S with the worst-case safe distance.
    PeccSWorst,
    /// p-ECC-S with the adaptive safe distance.
    PeccSAdaptive,
    /// Chee–Kiah multi-look code (arXiv 1701.06874).
    CheeKiah,
    /// Vahid two-deletion/insertion code (arXiv 1701.06478).
    Vahid2di,
}

impl SchemeChoice {
    /// Every selectable scheme, in Table 5 row order.
    pub const ALL: [SchemeChoice; 7] = [
        SchemeChoice::Sts,
        SchemeChoice::Pecc,
        SchemeChoice::PeccO,
        SchemeChoice::PeccSWorst,
        SchemeChoice::PeccSAdaptive,
        SchemeChoice::CheeKiah,
        SchemeChoice::Vahid2di,
    ];

    /// Canonical CLI name (the `--scheme` vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            SchemeChoice::Sts => "sts",
            SchemeChoice::Pecc => "pecc",
            SchemeChoice::PeccO => "pecc-o",
            SchemeChoice::PeccSWorst => "pecc-s-worst",
            SchemeChoice::PeccSAdaptive => "pecc-s-adaptive",
            SchemeChoice::CheeKiah => "chee-kiah",
            SchemeChoice::Vahid2di => "vahid-2di",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        SchemeChoice::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The (protection, policy) pair this scheme simulates.
    pub fn parts(&self) -> (ProtectionKind, ShiftPolicy) {
        match self {
            SchemeChoice::Sts => (ProtectionKind::None, ShiftPolicy::Unconstrained),
            SchemeChoice::Pecc => (ProtectionKind::SECDED, ShiftPolicy::Unconstrained),
            SchemeChoice::PeccO => (ProtectionKind::SECDED_O, ShiftPolicy::StepByStep),
            SchemeChoice::PeccSWorst => (
                ProtectionKind::SECDED,
                ShiftPolicy::FixedSafe {
                    worst_intensity_hz: 83_000_000,
                },
            ),
            SchemeChoice::PeccSAdaptive => (ProtectionKind::SECDED, ShiftPolicy::Adaptive),
            SchemeChoice::CheeKiah => (ProtectionKind::CHEE_KIAH, ShiftPolicy::Unconstrained),
            SchemeChoice::Vahid2di => (ProtectionKind::VAHID_2DI, ShiftPolicy::Unconstrained),
        }
    }

    /// The Table 5 row describing this scheme's cost.
    pub fn cost_scheme(&self) -> Scheme {
        match self {
            SchemeChoice::Sts => Scheme::Sts,
            SchemeChoice::Pecc => Scheme::Pecc,
            SchemeChoice::PeccO => Scheme::PeccO,
            SchemeChoice::PeccSWorst => Scheme::PeccSWorst,
            SchemeChoice::PeccSAdaptive => Scheme::PeccSAdaptive,
            SchemeChoice::CheeKiah => Scheme::CheeKiah,
            SchemeChoice::Vahid2di => Scheme::Vahid2di,
        }
    }

    /// The analytic shift-distance mix the scheme's policy induces at
    /// `intensity` stripe shifts per second.
    ///
    /// Step-by-step schemes only ever shift one step; safe-distance
    /// schemes spread uniformly up to the distance the SECDED safety
    /// budget allows (worst-case at the provisioning intensity, adaptive
    /// at the actual one); unconstrained schemes spread over the full
    /// 1..=7 inter-port range.
    pub fn shift_mix(&self, intensity: f64) -> ShiftMix {
        let (_, policy) = self.parts();
        let budget = SafetyBudget::paper_secded();
        match policy {
            ShiftPolicy::StepByStep => ShiftMix::single(1),
            ShiftPolicy::FixedSafe { worst_intensity_hz } => {
                let d = budget
                    .safe_distance_at(worst_intensity_hz as f64)
                    .unwrap_or(1);
                ShiftMix::uniform(1..=d.max(1))
            }
            ShiftPolicy::Adaptive => {
                let d = budget.safe_distance_at(intensity).unwrap_or(1);
                ShiftMix::uniform(1..=d.max(1))
            }
            ShiftPolicy::Unconstrained => ShiftMix::uniform(1..=7),
        }
    }
}

impl std::fmt::Display for SchemeChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Matrix parameters.
#[derive(Debug, Clone)]
pub struct MatrixSettings {
    /// Schemes to cross (rows).
    pub schemes: Vec<SchemeChoice>,
    /// Fault models to cross (columns).
    pub fault_models: Vec<FaultModelChoice>,
    /// Accesses driven per sampled cell.
    pub accesses: u64,
    /// RNG seed base (per-cell sampling seeds derive from it).
    pub seed: u64,
    /// Stripe shift intensity for the analytic reliability columns.
    pub intensity: f64,
    /// Workload profile driving the sampled simulation.
    pub workload: &'static str,
    /// Engine behind the `engine` fault model (alias fast path under
    /// analytic).
    pub engine: Engine,
}

impl MatrixSettings {
    /// Full matrix at repro fidelity.
    pub fn full() -> Self {
        Self {
            schemes: SchemeChoice::ALL.to_vec(),
            fault_models: FaultModelChoice::ALL.to_vec(),
            accesses: 200_000,
            seed: 2015,
            intensity: PAPER_INTENSITY,
            workload: "canneal",
            engine: Engine::Analytic,
        }
    }

    /// Small settings for unit tests.
    pub fn quick() -> Self {
        Self {
            accesses: 5_000,
            ..Self::full()
        }
    }
}

/// One (scheme, fault model) cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Protection scheme (row).
    pub scheme: SchemeChoice,
    /// Fault process (column).
    pub fault_model: FaultModelChoice,
    /// Analytic SDC MTTF in seconds (infinite when the scheme never
    /// silently corrupts under this fault process).
    pub sdc_mttf_s: f64,
    /// Analytic DUE MTTF in seconds.
    pub due_mttf_s: f64,
    /// Analytic harmless corrections per second.
    pub corrections_per_s: f64,
    /// Table 5 detection energy per stripe, pJ.
    pub detect_energy_pj: f64,
    /// Table 5 cell (capacity) overhead fraction, `None` for STS.
    pub cell_overhead: Option<f64>,
    /// Concrete shift outcomes drawn by the sampled simulation.
    pub sampled_shifts: u64,
    /// Sampled outcomes that were position errors.
    pub observed_errors: u64,
    /// Execution cycles of the sampled simulation (for cross-checking
    /// determinism, not a performance claim).
    pub cycles: u64,
}

/// The full matrix: one cell per (scheme, fault model) pair in strict
/// row-major order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemeFaultMatrix {
    /// Cells in `schemes × fault_models` row-major order.
    pub cells: Vec<MatrixCell>,
}

impl SchemeFaultMatrix {
    /// Runs the matrix on the process-wide `rtm_par` pool.
    pub fn run(settings: &MatrixSettings) -> Self {
        Self::run_with_threads(settings, rtm_par::threads())
    }

    /// [`Self::run`] with an explicit worker count; results are
    /// bit-identical for any `threads` value.
    pub fn run_with_threads(settings: &MatrixSettings, threads: usize) -> Self {
        let profile = WorkloadProfile::by_name(settings.workload)
            .unwrap_or_else(|| panic!("unknown workload {:?}", settings.workload));
        let cells: Vec<(SchemeChoice, FaultModelChoice)> = settings
            .schemes
            .iter()
            .flat_map(|&s| settings.fault_models.iter().map(move |&f| (s, f)))
            .collect();
        let progress = rtm_obs::timer::Progress::new("matrix", cells.len() as u64, "cells");
        let matrix = rtm_par::parallel_fold_with(
            threads,
            cells.len(),
            |i| {
                let (scheme, fault_model) = cells[i];
                let (kind, policy) = scheme.parts();
                // Sampled view: a short trace through the hierarchy with
                // the chosen fault process drawing every shift outcome.
                // The seed is fixed by the grid index, so the cell is
                // independent of worker scheduling.
                let mut sys = Hierarchy::with_racetrack_faults(
                    kind,
                    policy,
                    fault_model,
                    settings.engine,
                    rtm_util::rng::derive_seed(settings.seed, 0x3A78_0000 + i as u64),
                );
                let mut gen = TraceGenerator::new(
                    profile,
                    rtm_util::rng::derive_seed(settings.seed, 0x3A78_8000),
                );
                let r = sys.run(&mut gen, settings.accesses);
                progress.tick(1);
                r
            },
            Self::default(),
            |matrix, i, r| {
                let (scheme, fault_model) = cells[i];
                let (kind, _) = scheme.parts();
                // Analytic view: the scheme's own shift mix against the
                // fault model's rate table.
                let mix = scheme.shift_mix(settings.intensity);
                let report = ReliabilityReport::with_rates(
                    kind,
                    &mix,
                    settings.intensity,
                    &fault_model.analytic_rates(),
                );
                // Cost view: the Table 5 row.
                let cost = ProtectionOverhead::table5(scheme.cost_scheme());
                matrix.cells.push(MatrixCell {
                    scheme,
                    fault_model,
                    sdc_mttf_s: report.sdc_mttf().as_secs(),
                    due_mttf_s: report.due_mttf().as_secs(),
                    corrections_per_s: report.correction_rate_per_second,
                    detect_energy_pj: cost.detect_energy.value(),
                    cell_overhead: cost.cell_area_overhead,
                    sampled_shifts: r.llc.sampled_shifts,
                    observed_errors: r.llc.observed_errors,
                    cycles: r.cycles,
                });
            },
        );
        progress.finish();
        matrix
    }

    /// Tabular rows (header first) for rendering and CSV export.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![vec![
            "scheme".to_string(),
            "fault model".to_string(),
            "SDC MTTF".to_string(),
            "DUE MTTF".to_string(),
            "corrections/s".to_string(),
            "detect pJ".to_string(),
            "cell ovh".to_string(),
            "sampled shifts".to_string(),
            "observed errors".to_string(),
        ]];
        for c in &self.cells {
            rows.push(vec![
                c.scheme.name().to_string(),
                c.fault_model.name().to_string(),
                fmt_mttf(c.sdc_mttf_s),
                fmt_mttf(c.due_mttf_s),
                format!("{:.3e}", c.corrections_per_s),
                format!("{:.2}", c.detect_energy_pj),
                c.cell_overhead
                    .map_or_else(|| "n/a".to_string(), |o| format!("{:.1}%", o * 100.0)),
                c.sampled_shifts.to_string(),
                c.observed_errors.to_string(),
            ]);
        }
        rows
    }

    /// Renders the matrix as an aligned text table.
    pub fn render(&self) -> String {
        super::render_table(&self.rows())
    }
}

/// Formats an MTTF in seconds at human scale (years above one year,
/// seconds in scientific notation below, `inf` when the failure mode
/// never fires).
fn fmt_mttf(secs: f64) -> String {
    const YEAR: f64 = rtm_util::units::SECONDS_PER_YEAR;
    if secs.is_infinite() {
        "inf".to_string()
    } else if secs >= YEAR {
        format!("{:.2e} y", secs / YEAR)
    } else {
        format!("{:.2e} s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MatrixSettings {
        let mut s = MatrixSettings::quick();
        s.accesses = 2_000;
        s
    }

    #[test]
    fn matrix_covers_every_cell_in_order() {
        let s = tiny();
        let m = SchemeFaultMatrix::run(&s);
        assert_eq!(m.cells.len(), 7 * 3);
        // Row-major order: the first three cells are STS under each
        // fault model, in FaultModelChoice::ALL order.
        assert_eq!(m.cells[0].scheme, SchemeChoice::Sts);
        assert_eq!(m.cells[0].fault_model, FaultModelChoice::Engine);
        assert_eq!(m.cells[2].fault_model, FaultModelChoice::Pinning);
        assert_eq!(m.cells[3].scheme, SchemeChoice::Pecc);
        // Every sampled cell actually drew outcomes.
        for c in &m.cells {
            assert!(
                c.sampled_shifts > 0,
                "{}/{} sampled nothing",
                c.scheme,
                c.fault_model.name()
            );
        }
    }

    #[test]
    fn matrix_is_thread_count_invariant() {
        let mut s = tiny();
        s.schemes = vec![
            SchemeChoice::Sts,
            SchemeChoice::Pecc,
            SchemeChoice::Vahid2di,
        ];
        let base = SchemeFaultMatrix::run_with_threads(&s, 1);
        for threads in [2usize, 8] {
            let alt = SchemeFaultMatrix::run_with_threads(&s, threads);
            assert_eq!(base, alt, "threads={threads}");
        }
    }

    #[test]
    fn stream_codecs_never_silently_corrupt() {
        // The deletion/insertion codes classify every |e| <= 2 as a
        // correction and everything beyond as detected — no aliasing, so
        // the analytic SDC MTTF is infinite under every fault model.
        let mut s = tiny();
        s.schemes = vec![SchemeChoice::CheeKiah, SchemeChoice::Vahid2di];
        let m = SchemeFaultMatrix::run(&s);
        for c in &m.cells {
            assert!(c.sdc_mttf_s.is_infinite(), "{} aliased", c.scheme);
            assert!(c.corrections_per_s > 0.0);
        }
    }

    #[test]
    fn pinning_faults_are_single_step_only() {
        // The pinning rate table concentrates all mass at k = 1, which
        // SECDED corrects — both failure modes vanish — while the
        // unprotected STS row turns that same mass into pure SDC.
        let mut s = tiny();
        s.schemes = vec![SchemeChoice::Sts, SchemeChoice::Pecc];
        s.fault_models = vec![FaultModelChoice::Pinning];
        let m = SchemeFaultMatrix::run(&s);
        let sts = &m.cells[0];
        let pecc = &m.cells[1];
        assert!(sts.sdc_mttf_s.is_finite());
        assert!(pecc.sdc_mttf_s.is_infinite());
        assert!(pecc.due_mttf_s.is_infinite());
        assert!(pecc.corrections_per_s > 0.0);
    }

    #[test]
    fn scheme_names_round_trip() {
        for s in SchemeChoice::ALL {
            assert_eq!(SchemeChoice::parse(s.name()), Some(s));
            let (_, _) = s.parts();
            let _ = s.cost_scheme();
        }
        assert_eq!(SchemeChoice::parse("nope"), None);
    }

    #[test]
    fn shift_mixes_follow_policies() {
        let i = PAPER_INTENSITY;
        assert_eq!(SchemeChoice::PeccO.shift_mix(i), ShiftMix::single(1));
        // Unconstrained spans the inter-port range.
        assert!((SchemeChoice::Sts.shift_mix(i).mean_distance() - 4.0).abs() < 1e-12);
        // Safe-distance mixes never exceed the unconstrained mean.
        assert!(SchemeChoice::PeccSWorst.shift_mix(i).mean_distance() <= 4.0);
        assert!(SchemeChoice::PeccSAdaptive.shift_mix(i).mean_distance() <= 4.0);
    }

    #[test]
    fn render_has_header_and_all_cells() {
        let mut s = tiny();
        s.schemes = vec![SchemeChoice::Sts];
        s.fault_models = vec![FaultModelChoice::Calibrated];
        let m = SchemeFaultMatrix::run(&s);
        let text = m.render();
        assert!(text.contains("scheme"));
        assert!(text.contains("sts"));
        assert!(text.contains("calibrated"));
        assert_eq!(text.lines().count(), 3);
    }
}
