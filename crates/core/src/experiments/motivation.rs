//! Fig. 1 — MTTF of a racetrack LLC against the per-stripe position
//! error rate.

use super::render_table;
use rtm_reliability::figure1::{
    figure1_curve, paper_effective_intensity, required_rate, Figure1Point, REFERENCE_LINES,
};
use rtm_util::units::{format_mttf, Seconds};

/// The Fig. 1 experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1 {
    /// The curve points (log-spaced rates).
    pub points: Vec<Figure1Point>,
    /// Error rate required for the 10-year DUE target.
    pub ten_year_rate: f64,
    /// Error rate required for the 1000-year SDC target.
    pub thousand_year_rate: f64,
}

/// Runs the Fig. 1 sweep over the paper's plotted rate range.
pub fn figure1() -> Figure1 {
    Figure1 {
        points: figure1_curve(1e-24, 1e-2, 2, paper_effective_intensity()),
        ten_year_rate: required_rate(Seconds::from_years(10.0)),
        thousand_year_rate: required_rate(Seconds::from_years(1000.0)),
    }
}

impl Figure1 {
    /// Renders the curve as a text table with the paper's reference
    /// lines marked.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "error rate / stripe".to_string(),
            "MTTF".to_string(),
            "crosses".to_string(),
        ]];
        let mut prev_mttf = f64::INFINITY;
        for p in &self.points {
            let mut crossed = Vec::new();
            for (name, line) in REFERENCE_LINES {
                if p.mttf.as_secs() <= line && prev_mttf > line {
                    crossed.push(name);
                }
            }
            prev_mttf = p.mttf.as_secs();
            rows.push(vec![
                format!("{:.1e}", p.error_rate),
                format_mttf(p.mttf),
                crossed.join(", "),
            ]);
        }
        let mut out = String::from("Figure 1: MTTF of a racetrack LLC vs position error rate\n\n");
        out.push_str(&render_table(&rows));
        out.push_str(&format!(
            "\n10-year MTTF requires rate <= {:.1e} (paper: ~1e-19)\n",
            self.ten_year_rate
        ));
        out.push_str(&format!(
            "1000-year MTTF requires rate <= {:.1e}\n",
            self.thousand_year_rate
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_year_anchor_matches_paper() {
        let f = figure1();
        assert!((1e-20..1e-18).contains(&f.ten_year_rate));
        assert!(f.thousand_year_rate < f.ten_year_rate);
    }

    #[test]
    fn render_contains_reference_crossings() {
        let text = figure1().render();
        for (name, _) in REFERENCE_LINES {
            assert!(text.contains(name), "missing reference {name}");
        }
        assert!(text.contains("Figure 1"));
    }
}
