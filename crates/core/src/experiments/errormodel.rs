//! Fig. 4 (position-error PDFs) and Table 2 (out-of-step rates).

use super::render_table;
use rtm_model::analytic::Engine;
use rtm_model::montecarlo::{figure4_with_engine, PositionPdf};
use rtm_model::params::DeviceParams;
use rtm_model::rates::{OutOfStepRates, MAX_TABULATED_DISTANCE};
use rtm_model::shift::NoiseModel;

/// The Fig. 4 experiment output: three position-error PDFs.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4 {
    /// Panels for 1-, 4- and 7-step shifts.
    pub panels: [PositionPdf; 3],
}

/// Runs the Fig. 4 Monte-Carlo (`trials` samples per panel).
pub fn figure4_experiment(trials: u64, seed: u64) -> Figure4 {
    figure4_experiment_with_engine(trials, seed, Engine::MonteCarlo)
}

/// [`figure4_experiment`] from the requested engine: Monte-Carlo
/// sampling, or the exact closed form (for which `trials`/`seed` are
/// irrelevant and the panels carry `trials == 0`).
pub fn figure4_experiment_with_engine(trials: u64, seed: u64, engine: Engine) -> Figure4 {
    Figure4 {
        panels: figure4_with_engine(&DeviceParams::table1(), trials, seed, engine),
    }
}

impl Figure4 {
    /// Renders the three panels side by side (probability per bin,
    /// using the analytic tail extension where sampling saw nothing —
    /// the same fitting-curve treatment the paper applies).
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "bin".to_string(),
            "1-step".to_string(),
            "4-step".to_string(),
            "7-step".to_string(),
        ]];
        for (i, bin) in rtm_model::montecarlo::PositionBin::FIG4.iter().enumerate() {
            rows.push(vec![
                bin.label(),
                format!("{:.2e}", self.panels[0].bins[i].probability()),
                format!("{:.2e}", self.panels[1].bins[i].probability()),
                format!("{:.2e}", self.panels[2].bins[i].probability()),
            ]);
        }
        let mut out = String::from(
            "Figure 4: probability distribution of position errors (raw shift, before STS)\n\n",
        );
        out.push_str(&render_table(&rows));
        if self.panels[0].trials == 0 {
            out.push_str("\nclosed form (analytic engine): exact erf bands, no sampling\n");
        } else {
            out.push_str(&format!(
                "\ntrials per panel: {} (tail bins analytic, as in the paper's fit)\n",
                self.panels[0].trials
            ));
        }
        out
    }
}

/// One Table 2 row: paper calibration next to the regenerated model
/// value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Shift distance.
    pub distance: u32,
    /// ±1 rate, paper calibration.
    pub paper_k1: f64,
    /// ±1 rate, regenerated from the displacement model.
    pub model_k1: f64,
    /// ±2 rate, paper calibration.
    pub paper_k2: f64,
    /// ±3 rate (derived; the paper lists "too small").
    pub k3: f64,
}

/// The Table 2 experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// One row per tabulated distance.
    pub rows: Vec<Table2Row>,
}

/// Regenerates Table 2 from both the calibration and the physics model.
pub fn table2_experiment() -> Table2 {
    let paper = OutOfStepRates::paper_calibration();
    let model = OutOfStepRates::from_noise_model(&NoiseModel::from_params(&DeviceParams::table1()));
    let rows = (1..=MAX_TABULATED_DISTANCE)
        .map(|d| Table2Row {
            distance: d,
            paper_k1: paper.rate(d, 1),
            model_k1: model.rate(d, 1),
            paper_k2: paper.rate(d, 2),
            k3: paper.rate(d, 3),
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// Renders the table with the model-agreement column.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "distance".to_string(),
            "k=1 (paper)".to_string(),
            "k=1 (model)".to_string(),
            "ratio".to_string(),
            "k=2".to_string(),
            "k>=3".to_string(),
        ]];
        for r in &self.rows {
            rows.push(vec![
                r.distance.to_string(),
                format!("{:.2e}", r.paper_k1),
                format!("{:.2e}", r.model_k1),
                format!("{:.2}", r.model_k1 / r.paper_k1),
                format!("{:.2e}", r.paper_k2),
                if r.k3 < 1e-30 {
                    "too small".to_string()
                } else {
                    format!("{:.2e}", r.k3)
                },
            ]);
        }
        let mut out =
            String::from("Table 2: probability of out-of-step position errors (after STS)\n\n");
        out.push_str(&render_table(&rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_cover_all_distances() {
        let t = table2_experiment();
        assert_eq!(t.rows.len(), 7);
        for r in &t.rows {
            let ratio = r.model_k1 / r.paper_k1;
            assert!(
                (0.4..2.5).contains(&ratio),
                "d={}: ratio {ratio}",
                r.distance
            );
            assert!(r.k3 < r.paper_k2);
        }
    }

    #[test]
    fn table2_render_mentions_too_small() {
        let text = table2_experiment().render();
        assert!(text.contains("too small"));
        assert!(text.contains("Table 2"));
    }

    #[test]
    fn figure4_render_has_all_bins() {
        let f = figure4_experiment(50_000, 3);
        let text = f.render();
        for label in ["(-2,-1)", "-1", "(-1,+0)", "+0", "(+0,+1)", "+1", "(+1,+2)"] {
            assert!(text.contains(label), "missing bin {label}");
        }
    }

    #[test]
    fn figure4_success_mass_dominates() {
        let f = figure4_experiment(50_000, 3);
        for p in &f.panels {
            assert!(p.success_probability() > 0.99);
        }
    }

    #[test]
    fn figure4_analytic_engine_matches_mc_and_renders() {
        let mc = figure4_experiment(200_000, 3);
        let an = figure4_experiment_with_engine(0, 0, Engine::Analytic);
        for (m, a) in mc.panels.iter().zip(an.panels.iter()) {
            assert_eq!(a.trials, 0);
            assert_eq!(m.distance, a.distance);
            for (mb, ab) in m.bins.iter().zip(a.bins.iter()) {
                if mb.samples >= 100 {
                    let ratio = ab.probability() / mb.probability();
                    assert!(
                        (0.8..1.25).contains(&ratio),
                        "d={} bin {}: analytic {:.3e} vs mc {:.3e}",
                        m.distance,
                        mb.bin.label(),
                        ab.probability(),
                        mb.probability()
                    );
                }
            }
        }
        let text = an.render();
        assert!(text.contains("closed form"), "{text}");
        assert!(!text.contains("trials per panel"));
    }
}
