//! Figs. 14-16 — shift latency and execution time.

use super::sweep::{RtVariant, SimSweep, SweepSettings};
use super::{design::SEGMENT_CONFIGS, render_table};
use rtm_controller::controller::{ShiftController, ShiftPolicy};
use rtm_controller::safety::SafetyBudget;
use rtm_mem::hierarchy::LlcChoice;
use rtm_model::rates::OutOfStepRates;
use rtm_model::sts::StsTiming;
use rtm_obs::attrib::AttributionTable;
use rtm_pecc::layout::ProtectionKind;
use std::collections::BTreeMap;

/// Normalised per-workload series for a bar figure.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalisedFigure {
    /// Figure title.
    pub title: String,
    /// Baseline label every series is normalised to.
    pub baseline: String,
    /// Series labels in display order.
    pub labels: Vec<String>,
    /// `(workload, values-per-label)` rows.
    pub rows: Vec<(&'static str, Vec<f64>)>,
}

impl NormalisedFigure {
    /// Arithmetic-mean row across workloads.
    pub fn mean(&self) -> Vec<f64> {
        if self.rows.is_empty() {
            return Vec::new();
        }
        let n = self.labels.len();
        let mut acc = vec![0.0; n];
        for (_, vals) in &self.rows {
            for (a, v) in acc.iter_mut().zip(vals) {
                *a += v;
            }
        }
        acc.iter().map(|a| a / self.rows.len() as f64).collect()
    }

    /// Renders workloads × series with a mean row.
    pub fn render(&self) -> String {
        let mut table = vec![{
            let mut h = vec!["workload".to_string()];
            h.extend(self.labels.clone());
            h
        }];
        for (w, vals) in &self.rows {
            let mut row = vec![w.to_string()];
            row.extend(vals.iter().map(|v| format!("{v:.3}")));
            table.push(row);
        }
        let mut row = vec!["mean".to_string()];
        row.extend(self.mean().iter().map(|v| format!("{v:.3}")));
        table.push(row);
        let mut out = format!("{}\n(normalised to {})\n\n", self.title, self.baseline);
        out.push_str(&render_table(&table));
        out
    }

    /// The mean value for one series label.
    pub fn mean_of(&self, label: &str) -> Option<f64> {
        let idx = self.labels.iter().position(|l| l == label)?;
        Some(self.mean()[idx])
    }

    /// The figure as structured rows (header + per-workload + mean),
    /// e.g. for CSV export.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut table = vec![{
            let mut h = vec!["workload".to_string()];
            h.extend(self.labels.clone());
            h
        }];
        for (w, vals) in &self.rows {
            let mut row = vec![w.to_string()];
            row.extend(vals.iter().map(|v| format!("{v:.6}")));
            table.push(row);
        }
        let mut row = vec!["mean".to_string()];
        row.extend(self.mean().iter().map(|v| format!("{v:.6}")));
        table.push(row);
        table
    }

    /// The figure as CSV.
    pub fn csv(&self) -> String {
        super::to_csv(&self.rows())
    }
}

/// Runs Fig. 14: total LLC shift latency per workload, normalised to
/// the unprotected baseline.
pub fn figure14_experiment(settings: &SweepSettings) -> NormalisedFigure {
    let sweep = SimSweep::run_variants(settings, &fig14_variants());
    figure14_from(&sweep, settings)
}

fn fig14_variants() -> [RtVariant; 4] {
    [
        RtVariant::Baseline,
        RtVariant::SecdedO,
        RtVariant::SecdedSafeAdaptive,
        RtVariant::SecdedSafeWorst,
    ]
}

/// Fig. 14 from a precomputed variant sweep (must include the baseline
/// and the three protected variants).
pub fn figure14_from(sweep: &SimSweep, settings: &SweepSettings) -> NormalisedFigure {
    let variants = fig14_variants();
    let labels: Vec<String> = variants[1..]
        .iter()
        .map(|v| v.label().to_string())
        .collect();
    let rows = settings
        .profiles()
        .iter()
        .map(|p| {
            let per = &sweep.by_variant[p.name];
            let base = per[RtVariant::Baseline.label()].llc.shift_cycles.max(1) as f64;
            let vals = variants[1..]
                .iter()
                .map(|v| per[v.label()].llc.shift_cycles as f64 / base)
                .collect();
            (p.name, vals)
        })
        .collect();
    NormalisedFigure {
        title: "Figure 14: relative total shift latency of racetrack memory".to_string(),
        baseline: RtVariant::Baseline.label().to_string(),
        labels,
        rows,
    }
}

/// One Fig. 15 row: average per-request shift latency (cycles) under
/// each design for a segment configuration, normalised to the
/// configuration's unconstrained single-shift latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure15Row {
    /// Display label, e.g. "8x8".
    pub config: String,
    /// p-ECC-S adaptive normalised latency.
    pub pecc_s_adaptive: Option<f64>,
    /// p-ECC-O normalised latency.
    pub pecc_o: Option<f64>,
}

/// Runs the Fig. 15 sensitivity sweep analytically: uniform request
/// distances over `[1, Lseg − 1]`, a moderately busy request interval,
/// and the per-scheme planning rules.
pub fn figure15_experiment(interval_cycles: u64) -> Vec<Figure15Row> {
    let timing = StsTiming::paper();
    SEGMENT_CONFIGS
        .iter()
        .map(|&(segments, lseg)| {
            let fits = lseg > 2;
            let max_d = (lseg - 1) as u32;
            let baseline_mean = |ctl: &ShiftController| -> f64 {
                // Average over the uniform distance mix.
                (1..=max_d)
                    .map(|d| ctl.cost_sequence(&[d]).latency.count() as f64)
                    .sum::<f64>()
                    / max_d as f64
            };
            let row = |policy: ShiftPolicy, kind: ProtectionKind| -> f64 {
                let budget = SafetyBudget::new(
                    OutOfStepRates::paper_calibration(),
                    rtm_controller::safety::PAPER_RELIABILITY_TARGET,
                    kind.strength(),
                );
                let mut ctl = ShiftController::with_parts(kind, policy, timing, budget, max_d);
                let base = {
                    let bare = ShiftController::with_parts(
                        ProtectionKind::None,
                        ShiftPolicy::Unconstrained,
                        timing,
                        SafetyBudget::new(
                            OutOfStepRates::paper_calibration(),
                            rtm_controller::safety::PAPER_RELIABILITY_TARGET,
                            0,
                        ),
                        max_d,
                    );
                    baseline_mean(&bare)
                };
                let mut total = 0.0;
                for d in 1..=max_d {
                    let plan = ctl.plan_shift(d, (d as u64) * interval_cycles);
                    total += plan.latency.count() as f64;
                }
                (total / max_d as f64) / base
            };
            Figure15Row {
                config: format!("{segments}x{lseg}"),
                pecc_s_adaptive: fits.then(|| row(ShiftPolicy::Adaptive, ProtectionKind::SECDED)),
                pecc_o: fits.then(|| row(ShiftPolicy::StepByStep, ProtectionKind::SECDED_O)),
            }
        })
        .collect()
}

/// Renders the Fig. 15 sweep.
pub fn render_figure15(rows: &[Figure15Row]) -> String {
    let mut table = vec![vec![
        "config".to_string(),
        "p-ECC-S adaptive".to_string(),
        "p-ECC-O".to_string(),
    ]];
    for r in rows {
        let opt = |v: &Option<f64>| {
            v.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".to_string())
        };
        table.push(vec![
            r.config.clone(),
            opt(&r.pecc_s_adaptive),
            opt(&r.pecc_o),
        ]);
    }
    let mut out = String::from(
        "Figure 15: normalised average shift latency across segment configurations\n\n",
    );
    out.push_str(&render_table(&table));
    out
}

/// Runs Fig. 16: overall execution time across the seven LLC designs,
/// normalised to SRAM.
pub fn figure16_experiment(settings: &SweepSettings) -> NormalisedFigure {
    let sweep = SimSweep::run_choices(settings, &LlcChoice::ALL);
    figure16_from(&sweep, settings)
}

/// Fig. 16 from a precomputed choice sweep over [`LlcChoice::ALL`].
pub fn figure16_from(sweep: &SimSweep, settings: &SweepSettings) -> NormalisedFigure {
    let choices = LlcChoice::ALL;
    let labels: Vec<String> = choices.iter().map(|c| c.to_string()).collect();
    let rows = settings
        .profiles()
        .iter()
        .map(|p| {
            let per = &sweep.by_choice[p.name];
            let base = per["SRAM"].cycles.max(1) as f64;
            let vals = choices
                .iter()
                .map(|c| per[&c.to_string()].cycles as f64 / base)
                .collect();
            (p.name, vals)
        })
        .collect();
    NormalisedFigure {
        title: "Figure 16: overall execution time".to_string(),
        baseline: "SRAM".to_string(),
        labels,
        rows,
    }
}

/// Component names of the Fig. 14 cycle-attribution table.
///
/// Per (workload, variant) cell the execution cycles decompose exactly
/// into raw STS pulse time (`sts_shift`), the in-line p-ECC check
/// cycles folded into every protected sub-shift (`pecc_verify`),
/// explicit back-shifts (`back_shift`, always 0 here: the statistical
/// controller folds correction cost into the plan latency), and
/// everything the core pipeline does outside LLC shifting
/// (`core_other` — compute, cache hits, DRAM).
pub const FIG14_COMPONENTS: [&str; 4] = ["sts_shift", "pecc_verify", "back_shift", "core_other"];

/// Cycle attribution per (workload, variant) for the Fig. 14 sweep:
/// every execution cycle lands in exactly one [`FIG14_COMPONENTS`]
/// bucket, so each row's components sum to its `cycles` total exactly.
pub fn figure14_attribution(sweep: &SimSweep, settings: &SweepSettings) -> AttributionTable {
    let mut table = AttributionTable::new(["workload", "scheme"], FIG14_COMPONENTS);
    for p in settings.profiles() {
        let per = &sweep.by_variant[p.name];
        for v in fig14_variants() {
            let Some(r) = per.get(v.label()) else {
                continue;
            };
            let sts = r.llc.shift_cycles - r.llc.verify_cycles;
            table.push(
                [p.name.to_string(), v.label().to_string()],
                [sts, r.llc.verify_cycles, 0, r.cycles - r.llc.shift_cycles],
                r.cycles,
            );
        }
    }
    table
}

/// Renders the Fig. 14 attribution table as a text report.
pub fn render_figure14_attribution(table: &AttributionTable) -> String {
    let mut out = String::from(
        "Figure 14 cycle attribution per (workload, scheme); components\n\
         partition the execution cycles exactly:\n\n",
    );
    out.push_str(&render_table(&table.rows()));
    out
}

/// Headline overhead summary (abstract anchor: ~0.2 % for adaptive):
/// execution-time overhead of each protected design over the
/// unprotected racetrack memory.
pub fn protection_overhead_summary(fig16: &NormalisedFigure) -> BTreeMap<String, f64> {
    let base = fig16
        .mean_of("RM w/o p-ECC")
        .expect("baseline series present");
    ["RM p-ECC-O", "RM p-ECC-S worst", "RM p-ECC-S adaptive"]
        .iter()
        .filter_map(|l| fig16.mean_of(l).map(|v| ((*l).to_string(), v / base - 1.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepSettings {
        let mut s = SweepSettings::quick();
        s.accesses = 20_000;
        s
    }

    #[test]
    fn figure14_pecc_o_costs_most() {
        let f = figure14_experiment(&quick());
        let o = f.mean_of("SECDED p-ECC-O").unwrap();
        let adaptive = f.mean_of("SECDED p-ECC-S adaptive").unwrap();
        let worst = f.mean_of("SECDED p-ECC-S worst").unwrap();
        // Fig. 14 shape: p-ECC-O ≈ 2× baseline; safe-distance variants
        // land well below it.
        assert!(o > 1.5, "p-ECC-O ratio {o}");
        assert!(adaptive < o, "adaptive {adaptive} vs O {o}");
        assert!(worst < o);
        assert!(adaptive >= 1.0 && worst >= 1.0);
        assert!(f.render().contains("Figure 14"));
    }

    #[test]
    fn figure15_adaptive_wins_at_long_segments() {
        let rows = figure15_experiment(200);
        let long = rows.iter().find(|r| r.config == "2x64").unwrap();
        let (a, o) = (long.pecc_s_adaptive.unwrap(), long.pecc_o.unwrap());
        assert!(a < o, "adaptive {a} vs O {o} at Lseg=64");
        // Short segments: both are close to the baseline.
        let short = rows.iter().find(|r| r.config == "8x4").unwrap();
        assert!(short.pecc_o.unwrap() < 3.0);
        assert!(render_figure15(&rows).contains("2x64"));
    }

    #[test]
    fn figure16_capacity_sensitivity_split() {
        let mut s = quick();
        s.workloads = Some(vec!["canneal", "swaptions"]);
        s.accesses = 60_000;
        let f = figure16_experiment(&s);
        let canneal = f.rows.iter().find(|(w, _)| *w == "canneal").unwrap();
        let swaptions = f.rows.iter().find(|(w, _)| *w == "swaptions").unwrap();
        let idx_ideal = f.labels.iter().position(|l| l == "RM-Ideal").unwrap();
        // Capacity-sensitive canneal gains from the big LLC; swaptions
        // is indifferent.
        assert!(
            canneal.1[idx_ideal] < swaptions.1[idx_ideal] + 0.05,
            "canneal {} vs swaptions {}",
            canneal.1[idx_ideal],
            swaptions.1[idx_ideal]
        );
        assert!((swaptions.1[idx_ideal] - 1.0).abs() < 0.2);
    }

    #[test]
    fn figure14_attribution_partitions_execution_cycles() {
        let s = quick();
        let sweep = SimSweep::run_variants(&s, &fig14_variants());
        let table = figure14_attribution(&sweep, &s);
        assert_eq!(
            table.cells.len(),
            s.profiles().len() * fig14_variants().len()
        );
        assert_eq!(table.max_residual(), 0);
        for cell in &table.cells {
            let verify = table.component(cell, "pecc_verify").unwrap();
            let sts = table.component(cell, "sts_shift").unwrap();
            if cell.keys[1] == "Baseline" {
                assert_eq!(verify, 0, "{:?}", cell.keys);
            } else {
                assert!(verify > 0, "{:?}", cell.keys);
            }
            assert!(sts > 0, "{:?}", cell.keys);
            // Shifting never dominates the whole pipeline.
            assert!(
                table.component(cell, "core_other").unwrap() > 0,
                "{:?}",
                cell.keys
            );
        }
        assert!(render_figure14_attribution(&table).contains("core_other"));
    }

    #[test]
    fn protection_overhead_is_small() {
        let mut s = quick();
        s.accesses = 40_000;
        let f = figure16_experiment(&s);
        let overheads = protection_overhead_summary(&f);
        // Abstract anchors: adaptive ≈ 0.2 %, worst ≈ 0.5 %, p-ECC-O ≈ 2 %.
        let adaptive = overheads["RM p-ECC-S adaptive"];
        let o = overheads["RM p-ECC-O"];
        assert!(
            (0.0..0.05).contains(&adaptive),
            "adaptive overhead {adaptive}"
        );
        assert!(o >= adaptive, "O {o} vs adaptive {adaptive}");
        assert!(o < 0.20, "p-ECC-O overhead {o}");
    }
}
