//! Figs. 17-18 — LLC dynamic energy and total energy benefits.

use super::performance::NormalisedFigure;
use super::sweep::{SimSweep, SweepSettings};
use rtm_mem::hierarchy::LlcChoice;
use std::collections::BTreeMap;

/// Runs Fig. 17: LLC dynamic energy across the seven designs,
/// normalised to SRAM.
pub fn figure17_experiment(settings: &SweepSettings) -> NormalisedFigure {
    let sweep = SimSweep::run_choices(settings, &LlcChoice::ALL);
    figure17_from(&sweep, settings)
}

/// Fig. 17 from a precomputed choice sweep over [`LlcChoice::ALL`].
pub fn figure17_from(sweep: &SimSweep, settings: &SweepSettings) -> NormalisedFigure {
    energy_figure(
        sweep,
        settings,
        "Figure 17: LLC dynamic energy (incl. shift and p-ECC checks)",
        |r| r.llc_dynamic_energy().value(),
    )
}

/// Runs Fig. 18: total energy (LLC dynamic + leakage + DRAM dynamic),
/// normalised to SRAM.
pub fn figure18_experiment(settings: &SweepSettings) -> NormalisedFigure {
    let sweep = SimSweep::run_choices(settings, &LlcChoice::ALL);
    figure18_from(&sweep, settings)
}

/// Fig. 18 from a precomputed choice sweep over [`LlcChoice::ALL`].
pub fn figure18_from(sweep: &SimSweep, settings: &SweepSettings) -> NormalisedFigure {
    energy_figure(
        sweep,
        settings,
        "Figure 18: total energy consumption benefits",
        |r| r.system_energy().value(),
    )
}

fn energy_figure(
    sweep: &SimSweep,
    settings: &SweepSettings,
    title: &str,
    metric: impl Fn(&rtm_mem::hierarchy::SimResult) -> f64,
) -> NormalisedFigure {
    let choices = LlcChoice::ALL;
    let labels: Vec<String> = choices.iter().map(|c| c.to_string()).collect();
    let rows = settings
        .profiles()
        .iter()
        .map(|p| {
            let per = &sweep.by_choice[p.name];
            let base = metric(&per["SRAM"]).max(f64::MIN_POSITIVE);
            let vals = choices
                .iter()
                .map(|c| metric(&per[&c.to_string()]) / base)
                .collect();
            (p.name, vals)
        })
        .collect();
    NormalisedFigure {
        title: title.to_string(),
        baseline: "SRAM".to_string(),
        labels,
        rows,
    }
}

/// The paper's Fig. 17/18 headline deltas: dynamic-energy overhead of
/// each protected design relative to the unprotected racetrack LLC,
/// and total-energy reduction versus SRAM.
pub fn energy_summary(fig17: &NormalisedFigure, fig18: &NormalisedFigure) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(base) = fig17.mean_of("RM w/o p-ECC") {
        for label in ["RM p-ECC-O", "RM p-ECC-S worst", "RM p-ECC-S adaptive"] {
            if let Some(v) = fig17.mean_of(label) {
                out.insert(format!("{label} dynamic overhead"), v / base - 1.0);
            }
        }
    }
    for label in ["STT-RAM", "RM p-ECC-O", "RM p-ECC-S adaptive"] {
        if let Some(v) = fig18.mean_of(label) {
            out.insert(format!("{label} total-energy reduction vs SRAM"), 1.0 - v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepSettings {
        let mut s = SweepSettings::quick();
        s.accesses = 30_000;
        s
    }

    #[test]
    fn figure17_protection_costs_dynamic_energy() {
        let f = figure17_experiment(&quick());
        let bare = f.mean_of("RM w/o p-ECC").unwrap();
        let o = f.mean_of("RM p-ECC-O").unwrap();
        let adaptive = f.mean_of("RM p-ECC-S adaptive").unwrap();
        // Fig. 17: p-ECC-O pays the most (checks on every 1-step shift);
        // the safe-distance designs pay less.
        assert!(o > bare, "O {o} vs bare {bare}");
        assert!(adaptive > bare);
        assert!(o > adaptive);
        assert!(f.render().contains("Figure 17"));
    }

    #[test]
    fn figure18_racetrack_retains_benefit_over_sram() {
        let f = figure18_experiment(&quick());
        // Fig. 18: STT-RAM and RM cut total energy substantially versus
        // the leaky SRAM LLC even after protection overhead.
        let stt = f.mean_of("STT-RAM").unwrap();
        let adaptive = f.mean_of("RM p-ECC-S adaptive").unwrap();
        assert!(stt < 0.9, "STT-RAM ratio {stt}");
        assert!(adaptive < 0.9, "RM adaptive ratio {adaptive}");
    }

    #[test]
    fn summary_reports_expected_keys() {
        let s = quick();
        let f17 = figure17_experiment(&s);
        let f18 = figure18_experiment(&s);
        let sum = energy_summary(&f17, &f18);
        assert!(sum.contains_key("RM p-ECC-O dynamic overhead"));
        assert!(sum.contains_key("STT-RAM total-energy reduction vs SRAM"));
        // Protected designs cost more dynamic energy, not less.
        assert!(sum["RM p-ECC-O dynamic overhead"] > 0.0);
    }
}
