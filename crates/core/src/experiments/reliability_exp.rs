//! Figs. 10-12 — MTTF under the protection schemes.
//!
//! Figs. 10 and 11 run the full hierarchy simulation per workload and
//! convert the accumulated SDC/DUE probability mass into MTTFs; Fig. 12
//! sweeps segment configurations analytically (the per-configuration
//! shift mix under the scheme's distance discipline at a fixed
//! intensity), mirroring the paper's fixed-error-rate sensitivity
//! study.

use super::sweep::{RtVariant, SimSweep, SweepSettings};
use super::{design::SEGMENT_CONFIGS, render_table};
use rtm_controller::safety::SafetyBudget;
use rtm_pecc::layout::ProtectionKind;
use rtm_reliability::accounting::{ReliabilityReport, ShiftMix};
use rtm_util::units::{format_mttf, Seconds};
use std::collections::BTreeMap;

/// Per-workload MTTFs for one protection variant.
#[derive(Debug, Clone, PartialEq)]
pub struct MttfSeries {
    /// Variant label (paper legend).
    pub label: String,
    /// `(workload, mttf)` pairs in display order.
    pub per_workload: Vec<(&'static str, Seconds)>,
}

impl MttfSeries {
    /// Geometric mean across workloads (the paper reports averages of
    /// log-scale MTTFs).
    pub fn geomean(&self) -> Seconds {
        let finite: Vec<f64> = self
            .per_workload
            .iter()
            .map(|(_, m)| m.as_secs())
            .filter(|s| s.is_finite() && *s > 0.0)
            .collect();
        if finite.is_empty() {
            return Seconds(f64::INFINITY);
        }
        let ln_mean = finite.iter().map(|s| s.ln()).sum::<f64>() / finite.len() as f64;
        Seconds(ln_mean.exp())
    }
}

/// The Fig. 10 / Fig. 11 experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct MttfFigure {
    /// Which failure class is reported ("SDC" or "DUE").
    pub metric: &'static str,
    /// One series per protection variant.
    pub series: Vec<MttfSeries>,
}

/// Runs Fig. 10: SDC MTTF for baseline / SED / SECDED.
pub fn figure10_experiment(settings: &SweepSettings) -> MttfFigure {
    let variants = [RtVariant::Baseline, RtVariant::Sed, RtVariant::Secded];
    let sweep = SimSweep::run_variants(settings, &variants);
    figure10_from(&sweep, settings)
}

/// Fig. 10 from a precomputed variant sweep (must include baseline,
/// SED and SECDED).
pub fn figure10_from(sweep: &SimSweep, settings: &SweepSettings) -> MttfFigure {
    let variants = [RtVariant::Baseline, RtVariant::Sed, RtVariant::Secded];
    mttf_figure(sweep, settings, &variants, "SDC")
}

/// Runs Fig. 11: DUE MTTF for the five protected configurations.
pub fn figure11_experiment(settings: &SweepSettings) -> MttfFigure {
    let variants = fig11_variants();
    let sweep = SimSweep::run_variants(settings, &variants);
    figure11_from(&sweep, settings)
}

/// Fig. 11 from a precomputed variant sweep (must include the five
/// protected variants).
pub fn figure11_from(sweep: &SimSweep, settings: &SweepSettings) -> MttfFigure {
    mttf_figure(sweep, settings, &fig11_variants(), "DUE")
}

fn fig11_variants() -> [RtVariant; 5] {
    [
        RtVariant::Sed,
        RtVariant::Secded,
        RtVariant::SecdedO,
        RtVariant::SecdedSafeWorst,
        RtVariant::SecdedSafeAdaptive,
    ]
}

fn mttf_figure(
    sweep: &SimSweep,
    settings: &SweepSettings,
    variants: &[RtVariant],
    metric: &'static str,
) -> MttfFigure {
    let workloads: Vec<&'static str> = settings.profiles().iter().map(|p| p.name).collect();
    let series = variants
        .iter()
        .map(|v| {
            let per_workload = workloads
                .iter()
                .map(|&w| {
                    let r = &sweep.by_variant[w][v.label()];
                    let mttf = if metric == "SDC" {
                        r.sdc_mttf()
                    } else {
                        r.due_mttf()
                    };
                    (w, mttf)
                })
                .collect();
            MttfSeries {
                label: v.label().to_string(),
                per_workload,
            }
        })
        .collect();
    MttfFigure { metric, series }
}

impl MttfFigure {
    /// Renders workloads × variants.
    pub fn render(&self) -> String {
        let mut rows = vec![{
            let mut h = vec!["workload".to_string()];
            h.extend(self.series.iter().map(|s| s.label.clone()));
            h
        }];
        if let Some(first) = self.series.first() {
            for (i, (w, _)) in first.per_workload.iter().enumerate() {
                let mut row = vec![w.to_string()];
                for s in &self.series {
                    row.push(format_mttf(s.per_workload[i].1));
                }
                rows.push(row);
            }
        }
        let mut row = vec!["geomean".to_string()];
        for s in &self.series {
            row.push(format_mttf(s.geomean()));
        }
        rows.push(row);
        let fig = if self.metric == "SDC" { "10" } else { "11" };
        let mut out = format!(
            "Figure {fig}: {} MTTF under different protection\n\n",
            self.metric
        );
        out.push_str(&render_table(&rows));
        out
    }

    /// The figure as structured rows (MTTFs in seconds), e.g. for CSV.
    pub fn rows_seconds(&self) -> Vec<Vec<String>> {
        let mut rows = vec![{
            let mut h = vec!["workload".to_string()];
            h.extend(self.series.iter().map(|s| s.label.clone()));
            h
        }];
        if let Some(first) = self.series.first() {
            for (i, (w, _)) in first.per_workload.iter().enumerate() {
                let mut row = vec![w.to_string()];
                for s in &self.series {
                    row.push(format!("{:.6e}", s.per_workload[i].1.as_secs()));
                }
                rows.push(row);
            }
        }
        let mut row = vec!["geomean".to_string()];
        for s in &self.series {
            row.push(format!("{:.6e}", s.geomean().as_secs()));
        }
        rows.push(row);
        rows
    }

    /// The figure as CSV (MTTFs in seconds).
    pub fn csv(&self) -> String {
        super::to_csv(&self.rows_seconds())
    }
}

/// One Fig. 12 row: a segment configuration and the DUE MTTFs of the
/// adaptive and overhead-region designs.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure12Row {
    /// Display label, e.g. "8x8".
    pub config: String,
    /// p-ECC-S adaptive DUE MTTF.
    pub pecc_s_adaptive: Option<Seconds>,
    /// p-ECC-O DUE MTTF.
    pub pecc_o: Option<Seconds>,
}

/// Runs the Fig. 12 sensitivity sweep at a fixed stripe-operation
/// intensity (the paper holds the error rate constant and varies the
/// configuration).
pub fn figure12_experiment(stripe_intensity: f64) -> Vec<Figure12Row> {
    let budget = SafetyBudget::paper_secded();
    SEGMENT_CONFIGS
        .iter()
        .map(|&(segments, lseg)| {
            let max_shift = lseg - 1;
            // SECDED requires m + 1 < Lseg.
            let fits = lseg > 2;
            let pecc_s_adaptive = fits.then(|| {
                // The adaptive policy caps distances at the safe distance
                // for the running intensity (never above the geometry).
                let dsafe = budget
                    .safe_distance_at(stripe_intensity)
                    .unwrap_or(1)
                    .min(max_shift as u32)
                    .max(1);
                let mix = ShiftMix::uniform(1..=dsafe);
                ReliabilityReport::analytic(ProtectionKind::SECDED, &mix, stripe_intensity)
                    .due_mttf()
            });
            let pecc_o = fits.then(|| {
                ReliabilityReport::analytic(
                    ProtectionKind::SECDED_O,
                    &ShiftMix::single(1),
                    stripe_intensity,
                )
                .due_mttf()
            });
            Figure12Row {
                config: format!("{segments}x{lseg}"),
                pecc_s_adaptive,
                pecc_o,
            }
        })
        .collect()
}

/// Renders the Fig. 12 sweep.
pub fn render_figure12(rows: &[Figure12Row]) -> String {
    let mut table = vec![vec![
        "config".to_string(),
        "p-ECC-S adaptive".to_string(),
        "p-ECC-O".to_string(),
    ]];
    for r in rows {
        let opt = |v: &Option<Seconds>| v.map(format_mttf).unwrap_or_else(|| "-".to_string());
        table.push(vec![
            r.config.clone(),
            opt(&r.pecc_s_adaptive),
            opt(&r.pecc_o),
        ]);
    }
    let mut out = String::from("Figure 12: DUE MTTF sensitivity across segment configurations\n\n");
    out.push_str(&render_table(&table));
    out
}

/// Convenience summary used by EXPERIMENTS.md: the headline MTTFs for
/// the paper's abstract (baseline vs adaptive).
pub fn headline_mttfs(settings: &SweepSettings) -> BTreeMap<String, Seconds> {
    let sweep = SimSweep::run_variants(
        settings,
        &[RtVariant::Baseline, RtVariant::SecdedSafeAdaptive],
    );
    let mut out = BTreeMap::new();
    let collect = |label: &str, sdc: bool| -> Seconds {
        let vals: Vec<f64> = sweep
            .by_variant
            .values()
            .map(|per| {
                let r = &per[label];
                if sdc { r.sdc_mttf() } else { r.due_mttf() }.as_secs()
            })
            .filter(|v| v.is_finite())
            .collect();
        if vals.is_empty() {
            Seconds(f64::INFINITY)
        } else {
            Seconds((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
        }
    };
    out.insert(
        "baseline SDC".to_string(),
        collect(RtVariant::Baseline.label(), true),
    );
    out.insert(
        "adaptive DUE".to_string(),
        collect(RtVariant::SecdedSafeAdaptive.label(), false),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepSettings {
        let mut s = SweepSettings::quick();
        s.accesses = 20_000;
        s
    }

    #[test]
    fn figure10_ordering_matches_paper() {
        let f = figure10_experiment(&quick());
        assert_eq!(f.metric, "SDC");
        let by_label: BTreeMap<&str, Seconds> = f
            .series
            .iter()
            .map(|s| (s.label.as_str(), s.geomean()))
            .collect();
        // Baseline is microsecond-scale; SED hours; SECDED > 1000 years.
        let base = by_label["Baseline"].as_secs();
        let sed = by_label["SED p-ECC"].as_secs();
        let secded = by_label["SECDED p-ECC"].as_secs();
        assert!(base < 1.0, "baseline {base}");
        assert!(sed > base * 1e3, "sed {sed}");
        assert!(
            secded > 1000.0 * rtm_util::units::SECONDS_PER_YEAR,
            "secded {secded}"
        );
    }

    #[test]
    fn figure11_safe_distance_wins() {
        let f = figure11_experiment(&quick());
        let by_label: BTreeMap<&str, Seconds> = f
            .series
            .iter()
            .map(|s| (s.label.as_str(), s.geomean()))
            .collect();
        let sed = by_label["SED p-ECC"].as_secs();
        let secded = by_label["SECDED p-ECC"].as_secs();
        let adaptive = by_label["SECDED p-ECC-S adaptive"].as_secs();
        let o = by_label["SECDED p-ECC-O"].as_secs();
        assert!(sed < secded);
        assert!(secded < adaptive);
        // Fig. 11/12: p-ECC-O achieves the highest DUE MTTF.
        assert!(o >= adaptive);
        // The 10-year target is met by the adaptive design.
        assert!(adaptive > 10.0 * rtm_util::units::SECONDS_PER_YEAR);
        assert!(f.render().contains("geomean"));
    }

    #[test]
    fn figure12_pecc_o_is_flat_and_high() {
        let rows = figure12_experiment(5.12e9);
        let o_vals: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.pecc_o.map(|m| m.as_secs()))
            .collect();
        // All p-ECC-O configurations share the 1-step discipline.
        for v in &o_vals {
            assert!((v / o_vals[0] - 1.0).abs() < 1e-9);
        }
        // Lseg = 2 rows are blank (SECDED does not fit).
        assert!(rows.iter().any(|r| r.pecc_s_adaptive.is_none()));
        assert!(render_figure12(&rows).contains("Figure 12"));
    }

    #[test]
    fn headline_numbers_have_paper_shape() {
        let h = headline_mttfs(&quick());
        assert!(h["baseline SDC"].as_secs() < 1e-2);
        assert!(h["adaptive DUE"].as_years() > 10.0);
    }
}
