//! Front-door experiment: multi-tenant admission control at the scale
//! the paper motivates ("heavy traffic from millions of users").
//!
//! Each cell replays one ≥10k-tenant open-loop arrival sequence from
//! [`rtm_front`] through the serving simulator under one
//! [`SchedPolicy`], with per-tenant token-bucket admission deciding
//! admit / defer / shed *before* the bounded per-group queues can
//! backpressure. The report compares policies on per-class latency
//! percentiles, shed/deferral behaviour and cross-class fairness.
//!
//! Cells are independent simulations fanned out over the `rtm-par`
//! pool and folded back in strict policy order, so the sweep is
//! bit-identical for any `--threads` setting — the admission decision
//! stream itself is a pure function of the [`FrontConfig`].

use super::render_table;
use rtm_front::{run_front, ClassSpec, FrontConfig, FrontResult};
use rtm_serve::SchedPolicy;

/// Front-door sweep parameters.
#[derive(Debug, Clone)]
pub struct FrontSettings {
    /// Simulated tenant sessions.
    pub tenants: u32,
    /// SLO class mix (weighted round-robin over tenants).
    pub classes: ClassSpec,
    /// Total requests offered across all tenants.
    pub offered: u64,
    /// RNG seed base.
    pub seed: u64,
}

impl FrontSettings {
    /// Full-fidelity settings: 10k tenants, 12 requests per tenant.
    pub fn full() -> Self {
        Self::for_tenants(10_000, false)
    }

    /// Reduced offered load for unit tests and `--quick` runs (the
    /// tenant count stays at 10k so the scale claim is still tested).
    pub fn quick() -> Self {
        Self::for_tenants(10_000, true)
    }

    /// Settings for an explicit tenant count; `quick` trims the
    /// offered load to 4 requests per tenant (vs 12 at full fidelity).
    pub fn for_tenants(tenants: u32, quick: bool) -> Self {
        let per_tenant = if quick { 4 } else { 12 };
        Self {
            tenants,
            classes: ClassSpec::balanced(),
            offered: (tenants as u64).saturating_mul(per_tenant).max(24_000),
            seed: 2015,
        }
    }

    /// The [`FrontConfig`] these settings describe.
    pub fn config(&self) -> FrontConfig {
        FrontConfig::new(self.tenants)
            .with_classes(self.classes.clone())
            .with_seed(self.seed)
            .with_offered(self.offered)
    }
}

/// One cell of the front-door sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontCell {
    /// Scheduling policy under test.
    pub policy: SchedPolicy,
    /// Full admission + serving statistics.
    pub result: FrontResult,
}

/// Results of the policy sweep, in [`SchedPolicy::ALL`] order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrontSweep {
    /// One cell per scheduling policy.
    pub cells: Vec<FrontCell>,
}

impl FrontSweep {
    /// Runs the sweep on the process-wide `rtm_par` pool.
    pub fn run(settings: &FrontSettings) -> Self {
        Self::run_with_threads(settings, rtm_par::threads())
    }

    /// [`Self::run`] with an explicit worker count; results are
    /// identical for any `threads` value.
    pub fn run_with_threads(settings: &FrontSettings, threads: usize) -> Self {
        let cfg = settings.config();
        let policies = SchedPolicy::ALL;
        let progress =
            rtm_obs::timer::Progress::new("sweep(front)", policies.len() as u64, "cells");
        let sweep = rtm_par::parallel_fold_with(
            threads,
            policies.len(),
            |i| {
                let r = run_front(&cfg, policies[i]);
                progress.tick(1);
                r
            },
            Self::default(),
            |sweep, i, result| {
                sweep.cells.push(FrontCell {
                    policy: policies[i],
                    result,
                });
            },
        );
        progress.finish();
        sweep
    }

    /// The cell for one scheduling policy.
    pub fn cell(&self, policy: SchedPolicy) -> Option<&FrontCell> {
        self.cells.iter().find(|c| c.policy == policy)
    }
}

fn grid_rows(sweep: &FrontSweep, precise: bool) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "policy".to_string(),
        "class".to_string(),
        "tenants".to_string(),
        "admitted".to_string(),
        "shed".to_string(),
        "deferrals".to_string(),
        "completed".to_string(),
        "total_p50".to_string(),
        "total_p95".to_string(),
        "total_p99".to_string(),
    ]];
    for c in &sweep.cells {
        for s in &c.result.classes {
            rows.push(vec![
                c.policy.to_string(),
                s.class.label().to_string(),
                s.tenants.to_string(),
                s.admitted.to_string(),
                s.shed.to_string(),
                s.deferred.to_string(),
                s.completed.to_string(),
                s.latency.p50.to_string(),
                s.latency.p95.to_string(),
                s.latency.p99.to_string(),
            ]);
        }
    }
    if precise {
        // CSV keeps the per-policy roll-up as explicit columns instead
        // of the prose footer the text report uses.
        rows[0].extend(["cycles".to_string(), "fairness_ratio".to_string()]);
        let mut i = 1;
        for c in &sweep.cells {
            for _ in &c.result.classes {
                rows[i].extend([
                    c.result.serve.cycles.to_string(),
                    format!("{:.4}", c.result.fairness_ratio()),
                ]);
                i += 1;
            }
        }
    }
    rows
}

/// Renders the sweep as a text report: the per-(policy, class) table
/// plus a per-policy totals footer.
pub fn render_front(sweep: &FrontSweep) -> String {
    let mut out = String::from("Front door: admission control x scheduling policy\n");
    if let Some(c) = sweep.cells.first() {
        out.push_str(&format!(
            "{} tenants ({}), {} requests offered\n\n",
            c.result.tenants,
            c.result
                .classes
                .iter()
                .map(|s| format!("{} {}", s.tenants, s.class.label()))
                .collect::<Vec<_>>()
                .join(", "),
            c.result.admitted() + c.result.shed(),
        ));
    }
    out.push_str(&render_table(&grid_rows(sweep, false)));
    out.push_str(
        "\nPer-policy totals (fairness = max/min per-tenant completions across classes):\n",
    );
    for c in &sweep.cells {
        let r = &c.result;
        out.push_str(&format!(
            "  {}: {} admitted, {} shed, {} deferrals, {} completed in {} cycles, fairness {:.2}\n",
            c.policy,
            r.admitted(),
            r.shed(),
            r.deferred(),
            r.completed(),
            r.serve.cycles,
            r.fairness_ratio()
        ));
    }
    out
}

/// Machine-readable CSV of the sweep (one row per policy × class).
pub fn front_csv(sweep: &FrontSweep) -> String {
    super::to_csv(&grid_rows(sweep, true))
}

/// Publishes each cell's labeled admission counters into the
/// process-wide [`rtm_obs`] registry (no-op unless labels are
/// enabled). Called after the sweep so the emission order is the
/// deterministic policy order regardless of `--threads`.
pub fn record_front_labels(sweep: &FrontSweep) {
    for c in &sweep.cells {
        c.result.record_labels(c.policy.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_front::SloClass;

    fn tiny() -> FrontSettings {
        let mut s = FrontSettings::for_tenants(400, true);
        s.offered = 6_000;
        s
    }

    #[test]
    fn sweep_covers_every_policy_and_class() {
        let sweep = FrontSweep::run(&tiny());
        assert_eq!(sweep.cells.len(), SchedPolicy::ALL.len());
        for c in &sweep.cells {
            assert_eq!(c.result.classes.len(), SloClass::ALL.len());
            assert_eq!(c.result.admitted() + c.result.shed(), 6_000);
            assert_eq!(c.result.completed(), c.result.admitted());
            assert!(c.result.fairness_ratio() >= 1.0);
        }
        assert!(sweep.cell(SchedPolicy::ShiftAware).is_some());
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let s = tiny();
        let base = FrontSweep::run_with_threads(&s, 1);
        for threads in [2usize, 8] {
            let alt = FrontSweep::run_with_threads(&s, threads);
            assert_eq!(base, alt, "threads={threads}");
        }
    }

    #[test]
    fn admission_is_worker_count_independent_for_random_configs() {
        use rtm_front::SloClass;
        use rtm_util::check::{run_cases, Gen};
        // Property: the admitted/shed/deferred decision stream is a
        // pure function of the config — fanning the policy sweep over
        // 1, 2 or 8 workers must reproduce every per-class count and
        // latency percentile exactly, for arbitrary tenant counts,
        // class mixes and offered loads.
        run_cases(3, |g: &mut Gen| {
            let entries: Vec<(SloClass, u32)> = SloClass::ALL
                .into_iter()
                .map(|c| (c, g.u32_in(1, 3)))
                .collect();
            let classes = ClassSpec::new(&entries);
            let s = FrontSettings {
                tenants: g.u32_in(50, 250),
                classes,
                offered: g.u64_in(800, 2_000),
                seed: g.u64(),
            };
            let base = FrontSweep::run_with_threads(&s, 1);
            for threads in [2usize, 8] {
                let alt = FrontSweep::run_with_threads(&s, threads);
                assert_eq!(base, alt, "threads={threads} settings={s:?}");
            }
        });
    }

    #[test]
    fn render_and_csv_agree_on_row_count() {
        let sweep = FrontSweep::run(&tiny());
        let text = render_front(&sweep);
        assert!(text.contains("Front door"));
        assert!(text.contains("fairness"));
        let csv = front_csv(&sweep);
        assert_eq!(
            csv.lines().count(),
            1 + sweep.cells.len() * SloClass::ALL.len()
        );
        assert!(csv.lines().next().unwrap().contains("fairness_ratio"));
    }

    #[test]
    fn labeled_emission_covers_the_grid_when_enabled() {
        let sweep = FrontSweep::run(&tiny());
        let labels = rtm_obs::global().labeled();
        labels.reset();
        labels.set_enabled(true);
        record_front_labels(&sweep);
        let snap = labels.snapshot();
        labels.set_enabled(false);
        labels.reset();
        assert_eq!(
            snap.series("front.admitted").len(),
            sweep.cells.len() * SloClass::ALL.len()
        );
    }
}
