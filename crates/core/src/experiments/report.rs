//! A self-contained paper-vs-measured markdown report — the live
//! counterpart of the repository's EXPERIMENTS.md.

use super::energy_exp::{energy_summary, figure17_from, figure18_from};
use super::performance::{figure14_from, figure16_from, protection_overhead_summary};
use super::reliability_exp::{figure10_from, figure11_from};
use super::sweep::{RtVariant, SimSweep, SweepSettings};
use rtm_mem::hierarchy::LlcChoice;
use rtm_util::units::format_mttf;

/// One checked claim: the paper's number next to ours.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// What is being compared.
    pub what: String,
    /// The paper's figure (as prose).
    pub paper: String,
    /// Our measured figure.
    pub measured: String,
    /// Whether the measured value keeps the paper's qualitative claim.
    pub holds: bool,
}

/// The full live report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Individual claims, in presentation order.
    pub claims: Vec<Claim>,
}

impl Report {
    /// Fraction of claims that hold.
    pub fn pass_rate(&self) -> f64 {
        if self.claims.is_empty() {
            return 1.0;
        }
        self.claims.iter().filter(|c| c.holds).count() as f64 / self.claims.len() as f64
    }

    /// Renders the report as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "# Live reproduction report\n\n\
             | claim | paper | measured | holds |\n|---|---|---|---|\n",
        );
        for c in &self.claims {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                c.what,
                c.paper,
                c.measured,
                if c.holds { "yes" } else { "NO" }
            ));
        }
        out.push_str(&format!(
            "\n{} of {} claims hold ({:.0}%).\n",
            self.claims.iter().filter(|c| c.holds).count(),
            self.claims.len(),
            self.pass_rate() * 100.0
        ));
        out
    }
}

/// Runs both simulation sweeps and distils the paper's headline claims.
pub fn live_report(settings: &SweepSettings) -> Report {
    let variant_sweep = SimSweep::run_variants(settings, &RtVariant::ALL);
    let choice_sweep = SimSweep::run_choices(settings, &LlcChoice::ALL);

    let fig10 = figure10_from(&variant_sweep, settings);
    let fig11 = figure11_from(&variant_sweep, settings);
    let fig14 = figure14_from(&variant_sweep, settings);
    let fig16 = figure16_from(&choice_sweep, settings);
    let fig17 = figure17_from(&choice_sweep, settings);
    let fig18 = figure18_from(&choice_sweep, settings);

    let geo = |fig: &super::reliability_exp::MttfFigure, label: &str| {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.geomean())
            .expect("series present")
    };

    let mut claims = Vec::new();
    let baseline_sdc = geo(&fig10, "Baseline");
    claims.push(Claim {
        what: "unprotected SDC MTTF is microseconds".into(),
        paper: "1.33 µs".into(),
        measured: format_mttf(baseline_sdc),
        holds: baseline_sdc.as_secs() < 1e-3,
    });
    let secded_sdc = geo(&fig10, "SECDED p-ECC");
    claims.push(Claim {
        what: "SECDED p-ECC SDC MTTF exceeds 1000 years".into(),
        paper: "> 1000 years".into(),
        measured: format_mttf(secded_sdc),
        holds: secded_sdc.as_years() > 1000.0,
    });
    let adaptive_due = geo(&fig11, "SECDED p-ECC-S adaptive");
    claims.push(Claim {
        what: "adaptive p-ECC-S DUE MTTF exceeds the 10-year target".into(),
        paper: "69 years".into(),
        measured: format_mttf(adaptive_due),
        holds: adaptive_due.as_years() > 10.0,
    });
    let worst_due = geo(&fig11, "SECDED p-ECC-S worst");
    claims.push(Claim {
        what: "worst-case policy is more reliable than adaptive".into(),
        paper: "532 vs 69 years".into(),
        measured: format!(
            "{} vs {}",
            format_mttf(worst_due),
            format_mttf(adaptive_due)
        ),
        holds: worst_due.as_secs() > adaptive_due.as_secs(),
    });
    let o_latency = fig14.mean_of("SECDED p-ECC-O").unwrap_or(f64::NAN);
    claims.push(Claim {
        what: "p-ECC-O costs about 2x shift latency".into(),
        paper: "~2x".into(),
        measured: format!("{o_latency:.2}x"),
        holds: (1.5..4.0).contains(&o_latency),
    });
    let overheads = protection_overhead_summary(&fig16);
    let adaptive_exec = overheads
        .get("RM p-ECC-S adaptive")
        .copied()
        .unwrap_or(f64::NAN);
    claims.push(Claim {
        what: "adaptive execution-time overhead is well under 2%".into(),
        paper: "0.2%".into(),
        measured: format!("{:+.2}%", adaptive_exec * 100.0),
        holds: adaptive_exec < 0.02,
    });
    let energy = energy_summary(&fig17, &fig18);
    let stt_total = energy
        .get("STT-RAM total-energy reduction vs SRAM")
        .copied()
        .unwrap_or(f64::NAN);
    claims.push(Claim {
        what: "NVM LLCs halve total energy vs SRAM".into(),
        paper: "53.1% (STT-RAM)".into(),
        measured: format!("{:.1}%", stt_total * 100.0),
        holds: stt_total > 0.4,
    });
    let adaptive_dyn = energy
        .get("RM p-ECC-S adaptive dynamic overhead")
        .copied()
        .unwrap_or(f64::NAN);
    claims.push(Claim {
        what: "protection costs significant LLC dynamic energy".into(),
        paper: "+20% (adaptive)".into(),
        measured: format!("{:+.1}%", adaptive_dyn * 100.0),
        holds: adaptive_dyn > 0.05,
    });
    Report { claims }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_holds_every_claim() {
        let mut s = SweepSettings::quick();
        s.accesses = 40_000;
        let report = live_report(&s);
        assert_eq!(report.claims.len(), 8);
        for c in &report.claims {
            assert!(
                c.holds,
                "claim failed: {} (measured {})",
                c.what, c.measured
            );
        }
        assert_eq!(report.pass_rate(), 1.0);
        let md = report.to_markdown();
        assert!(md.contains("| claim |"));
        assert!(md.contains("8 of 8"));
    }
}
