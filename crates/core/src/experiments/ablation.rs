//! Ablation studies on the design choices the paper calls out in
//! prose but does not plot:
//!
//! * **drive ratio** — Section 3.1: driving below 2·J₀ raises
//!   under-shift errors, above it over-shift errors; 2·J₀ minimises
//!   the total. [`drive_ratio_sweep`] quantifies that U-curve.
//! * **process variation** — Section 3.1's "our model uses a
//!   conservative estimation ... the error rate can be even higher in
//!   real cases". [`variation_sweep`] scales every σ and watches the
//!   rates and the unprotected MTTF collapse.
//! * **protection strength** — Section 4.2.3 derives costs for
//!   arbitrary m; [`strength_sweep`] trades DUE MTTF against storage
//!   and port overhead for m = 1…4.
//! * **STS on/off** — Section 4.1 converts stop-in-middle errors into
//!   out-of-step errors; [`sts_conversion`] shows both distributions
//!   side by side.

use super::render_table;
use rtm_cost::area::AreaModel;
use rtm_model::analytic::Engine;
use rtm_model::params::DeviceParams;
use rtm_model::pdfcache::position_pdf_cached_engine;
use rtm_model::rates::OutOfStepRates;
use rtm_model::shift::NoiseModel;
use rtm_pecc::layout::{PeccLayout, ProtectionKind};
use rtm_reliability::accounting::{ReliabilityReport, ShiftMix};
use rtm_track::geometry::StripeGeometry;
use rtm_util::units::format_mttf;

/// One row of the drive-ratio ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveRow {
    /// Drive ratio J/J₀.
    pub ratio: f64,
    /// Raw (stage-1 only) stop-in-middle rate for a 4-step shift —
    /// the repair burden STS carries.
    pub raw_stop_in_middle: f64,
    /// Post-STS ±1 out-of-step rate for a 4-step shift.
    pub k1_rate: f64,
    /// Fraction of post-STS errors that over-shift.
    pub plus_fraction: f64,
}

/// Sweeps the stage-1 drive current ratio. Under-driving leaves walls
/// short of their notch (a huge raw stop-in-middle rate that positive
/// STS repairs, at a latency/energy burden); over-driving pushes walls
/// past the notch (post-STS +1 out-of-step errors STS cannot repair) —
/// the two failure directions behind the paper's choice of 2·J₀.
pub fn drive_ratio_sweep() -> Vec<DriveRow> {
    [1.3, 1.6, 2.0, 2.5, 3.0]
        .iter()
        .map(|&ratio| {
            let params = DeviceParams::table1().with_drive_ratio(ratio);
            let noise = NoiseModel::from_params(&params);
            let rates = OutOfStepRates::from_noise_model(&noise);
            DriveRow {
                ratio,
                raw_stop_in_middle: noise.raw_stop_in_middle_rate(4),
                k1_rate: rates.rate(4, 1),
                plus_fraction: rates.plus_fraction(),
            }
        })
        .collect()
}

/// One row of the variation-scale ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationRow {
    /// Multiplier applied to every σ in Table 1.
    pub scale: f64,
    /// ±1 rate for a 7-step shift.
    pub k1_rate_7: f64,
    /// Unprotected SDC MTTF at the reference intensity.
    pub unprotected_mttf_secs: f64,
}

/// Sweeps the process/environment variation scale.
pub fn variation_sweep(stripe_intensity: f64) -> Vec<VariationRow> {
    [0.5, 0.75, 1.0, 1.5, 2.0]
        .iter()
        .map(|&scale| {
            let params = DeviceParams::table1().with_variation_scale(scale);
            let rates = OutOfStepRates::from_noise_model(&NoiseModel::from_params(&params));
            let report = ReliabilityReport::with_rates(
                ProtectionKind::None,
                &ShiftMix::uniform(1..=7),
                stripe_intensity,
                &rates,
            );
            VariationRow {
                scale,
                k1_rate_7: rates.rate(7, 1),
                unprotected_mttf_secs: report.sdc_mttf().as_secs(),
            }
        })
        .collect()
}

/// One row of the protection-strength ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrengthRow {
    /// Correction strength m.
    pub m: u32,
    /// DUE MTTF at the reference intensity (uniform 1..7 mix).
    pub due_mttf_secs: f64,
    /// Storage overhead fraction.
    pub storage_overhead: f64,
    /// Extra read ports.
    pub extra_read_ports: usize,
    /// Area per data bit (F²).
    pub area_per_bit: f64,
}

/// Sweeps the p-ECC correction strength on a 64-domain, 4-port stripe
/// (Lseg = 16 admits strengths well past SECDED).
pub fn strength_sweep(stripe_intensity: f64) -> Vec<StrengthRow> {
    let geometry = StripeGeometry::new(64, 4).expect("valid geometry");
    let area = AreaModel::paper();
    (1..=4u32)
        .map(|m| {
            let kind = ProtectionKind::Correcting { m };
            let layout = PeccLayout::new(geometry, kind).expect("strength fits Lseg 16");
            let report =
                ReliabilityReport::analytic(kind, &ShiftMix::uniform(1..=7), stripe_intensity);
            StrengthRow {
                m,
                due_mttf_secs: report.due_mttf().as_secs(),
                storage_overhead: layout.storage_overhead(),
                extra_read_ports: layout.extra_read_ports,
                area_per_bit: area.protected_area_per_bit(&layout).value(),
            }
        })
        .collect()
}

/// One row of the STS conversion study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StsRow {
    /// Shift distance.
    pub distance: u32,
    /// Raw (stage-1 only) stop-in-middle probability.
    pub raw_stop_in_middle: f64,
    /// Raw out-of-step probability.
    pub raw_out_of_step: f64,
    /// Out-of-step probability after STS (stop-in-middle mass folded
    /// in; the calibrated Table 2 value shown for reference).
    pub sts_out_of_step: f64,
}

/// Quantifies the STS error-class conversion for 1-, 4- and 7-step
/// shifts via Monte-Carlo plus analytic tails.
pub fn sts_conversion(trials: u64, seed: u64) -> Vec<StsRow> {
    sts_conversion_with_engine(trials, seed, Engine::MonteCarlo)
}

/// [`sts_conversion`] from the requested position-error engine. With
/// [`Engine::Analytic`] the bin masses come from exact erf bands and
/// `trials`/`seed` are ignored.
pub fn sts_conversion_with_engine(trials: u64, seed: u64, engine: Engine) -> Vec<StsRow> {
    let params = DeviceParams::table1();
    let rates = OutOfStepRates::paper_calibration();
    [1u32, 4, 7]
        .iter()
        .map(|&d| {
            let pdf = position_pdf_cached_engine(&params, d, trials, seed + d as u64, engine);
            StsRow {
                distance: d,
                raw_stop_in_middle: pdf.stop_in_middle_probability(),
                raw_out_of_step: pdf.out_of_step_probability(),
                sts_out_of_step: rates.any_error_rate(d),
            }
        })
        .collect()
}

/// One row of the material comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaterialRow {
    /// Material name.
    pub name: &'static str,
    /// Notch pitch in nm (density proxy — smaller is denser).
    pub pitch_nm: f64,
    /// ±1 rate for a 4-step shift.
    pub k1_rate_4: f64,
}

/// Compares in-plane (Table 1) against perpendicular (PMA) material,
/// per Section 3.1's closing remark: PMA shrinks domains but raises
/// the error rate.
pub fn material_comparison() -> [MaterialRow; 2] {
    let row = |name, params: DeviceParams| {
        let rates = OutOfStepRates::from_noise_model(&NoiseModel::from_params(&params));
        MaterialRow {
            name,
            pitch_nm: params.pitch_nm(),
            k1_rate_4: rates.rate(4, 1),
        }
    };
    [
        row("in-plane (Table 1)", DeviceParams::table1()),
        row("perpendicular (PMA)", DeviceParams::perpendicular()),
    ]
}

/// One row of the head-management ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadPolicyRow {
    /// Policy name.
    pub policy: &'static str,
    /// Critical-path shift cycles over the probe pattern.
    pub shift_cycles: u64,
    /// Total shift steps (including idle repositioning).
    pub total_steps: u64,
}

/// Compares the paper's stay-in-place head policy against idle
/// return-to-centre (the head-management direction of the prior work
/// the paper cites) on a way-scanning probe pattern.
pub fn head_policy_comparison(accesses: u64) -> [HeadPolicyRow; 2] {
    use rtm_controller::controller::ShiftPolicy;
    use rtm_mem::cache::AccessKind;
    use rtm_mem::llc::{HeadPolicy, LlcModel, RacetrackLlc};

    let run = |policy: HeadPolicy, name: &'static str| {
        let mut llc = RacetrackLlc::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive)
            .with_head_policy(policy);
        let sets = 131_072u64; // the 128 MB LLC's set count
        let stride = sets * 64;
        let mut rng = rtm_util::rng::SmallRng64::new(7);
        let mut t = 0u64;
        for _ in 0..accesses {
            let way = rng.next_below(16);
            t += 200;
            llc.access(way * stride, AccessKind::Read, t);
        }
        let s = llc.stats();
        HeadPolicyRow {
            policy: name,
            shift_cycles: s.shift_cycles,
            total_steps: s.shift_steps,
        }
    };
    [
        run(HeadPolicy::Stay, "stay (paper)"),
        run(HeadPolicy::ReturnToCentre, "return-to-centre"),
    ]
}

/// Renders all four ablations as one report.
pub fn render_ablations(trials: u64, seed: u64, stripe_intensity: f64) -> String {
    render_ablations_with_engine(trials, seed, stripe_intensity, Engine::MonteCarlo)
}

/// [`render_ablations`] with the STS-conversion study driven by the
/// requested position-error engine.
pub fn render_ablations_with_engine(
    trials: u64,
    seed: u64,
    stripe_intensity: f64,
    engine: Engine,
) -> String {
    let mut out = String::from("Ablation 1: drive current ratio (4-step shift)\n\n");
    let mut rows = vec![vec![
        "J/J0".to_string(),
        "raw stop-in-middle".to_string(),
        "±1 rate (post-STS)".to_string(),
        "over-shift share".to_string(),
    ]];
    for r in drive_ratio_sweep() {
        rows.push(vec![
            format!("{:.1}", r.ratio),
            format!("{:.2e}", r.raw_stop_in_middle),
            format!("{:.2e}", r.k1_rate),
            format!("{:.2}", r.plus_fraction),
        ]);
    }
    out.push_str(&render_table(&rows));

    out.push_str("\nAblation 2: process-variation scale\n\n");
    let mut rows = vec![vec![
        "scale".to_string(),
        "±1 rate (7-step)".to_string(),
        "unprotected MTTF".to_string(),
    ]];
    for r in variation_sweep(stripe_intensity) {
        rows.push(vec![
            format!("{:.2}", r.scale),
            format!("{:.2e}", r.k1_rate_7),
            format_mttf(rtm_util::units::Seconds(r.unprotected_mttf_secs)),
        ]);
    }
    out.push_str(&render_table(&rows));

    out.push_str("\nAblation 3: p-ECC correction strength (64x4 stripe)\n\n");
    let mut rows = vec![vec![
        "m".to_string(),
        "DUE MTTF".to_string(),
        "storage overhead".to_string(),
        "extra read ports".to_string(),
        "area/bit (F^2)".to_string(),
    ]];
    for r in strength_sweep(stripe_intensity) {
        rows.push(vec![
            r.m.to_string(),
            format_mttf(rtm_util::units::Seconds(r.due_mttf_secs)),
            format!("{:.1}%", r.storage_overhead * 100.0),
            r.extra_read_ports.to_string(),
            format!("{:.2}", r.area_per_bit),
        ]);
    }
    out.push_str(&render_table(&rows));

    out.push_str("\nAblation 4: STS error-class conversion\n\n");
    let mut rows = vec![vec![
        "distance".to_string(),
        "raw stop-in-middle".to_string(),
        "raw out-of-step".to_string(),
        "after STS (out-of-step)".to_string(),
    ]];
    for r in sts_conversion_with_engine(trials, seed, engine) {
        rows.push(vec![
            r.distance.to_string(),
            format!("{:.2e}", r.raw_stop_in_middle),
            format!("{:.2e}", r.raw_out_of_step),
            format!("{:.2e}", r.sts_out_of_step),
        ]);
    }
    out.push_str(&render_table(&rows));

    out.push_str("\nAblation 5: material comparison (Section 3.1 remark)\n\n");
    let mut rows = vec![vec![
        "material".to_string(),
        "pitch (nm)".to_string(),
        "±1 rate (4-step)".to_string(),
    ]];
    for r in material_comparison() {
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.pitch_nm),
            format!("{:.2e}", r.k1_rate_4),
        ]);
    }
    out.push_str(&render_table(&rows));

    out.push_str("\nAblation 6: conventional bit-ECC vs p-ECC (Section 3.2)\n\n");
    let becc = rtm_reliability::becc::BitEccScenario::paper_example(1.0e7);
    let pecc = ReliabilityReport::analytic(
        ProtectionKind::SECDED,
        &ShiftMix::uniform(1..=3),
        1.0e7 * 512.0,
    );
    out.push_str(&format!(
        "  word-per-stripe b-ECC detects {:.0}% of position errors (aliasing)\n",
        rtm_reliability::becc::word_per_stripe_detection_fraction() * 100.0
    ));
    out.push_str(&format!(
        "  bit-interleaved b-ECC: second-error probability during refresh {:.2} (paper: 0.17)\n",
        becc.second_error_probability()
    ));
    out.push_str(&format!(
        "  bit-interleaved b-ECC MTTF: {}\n",
        format_mttf(becc.mttf())
    ));
    out.push_str(&format!(
        "  SECDED p-ECC (safe distance 3) DUE MTTF: {}\n",
        format_mttf(pecc.due_mttf())
    ));

    out.push_str("\nAblation 7: idle head management (way-scan probe)\n\n");
    let mut rows = vec![vec![
        "policy".to_string(),
        "critical-path shift cycles".to_string(),
        "total steps".to_string(),
    ]];
    for r in head_policy_comparison(2_000) {
        rows.push(vec![
            r.policy.to_string(),
            r.shift_cycles.to_string(),
            r.total_steps.to_string(),
        ]);
    }
    out.push_str(&render_table(&rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_sweep_shows_both_failure_directions() {
        let rows = drive_ratio_sweep();
        let at = |r: f64| rows.iter().find(|x| x.ratio == r).unwrap();
        // 2.0 minimises the raw stop-in-middle (repair) burden: the
        // U-curve behind the paper's drive choice.
        assert!(at(2.0).raw_stop_in_middle < at(1.3).raw_stop_in_middle / 10.0);
        assert!(at(2.0).raw_stop_in_middle < at(3.0).raw_stop_in_middle / 10.0);
        // Over-driving creates out-of-step errors STS cannot repair...
        assert!(at(3.0).k1_rate > at(2.0).k1_rate * 10.0);
        assert!(at(3.0).plus_fraction > 0.9, "over-drive errors over-shift");
        // ...while under-shoot middles are swept back by positive STS,
        // so the under-driven post-STS rate stays low (the burden shows
        // up as repair latency, not residual errors).
        assert!(at(1.3).k1_rate < at(3.0).k1_rate);
    }

    #[test]
    fn variation_sweep_is_monotone() {
        let rows = variation_sweep(5.12e9);
        for w in rows.windows(2) {
            assert!(w[1].k1_rate_7 >= w[0].k1_rate_7);
            assert!(w[1].unprotected_mttf_secs <= w[0].unprotected_mttf_secs);
        }
        // Doubling variation costs orders of magnitude of MTTF.
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(last.k1_rate_7 > first.k1_rate_7 * 10.0);
    }

    #[test]
    fn strength_sweep_trades_reliability_for_area() {
        let rows = strength_sweep(5.12e9);
        for w in rows.windows(2) {
            assert!(w[1].due_mttf_secs > w[0].due_mttf_secs, "MTTF grows with m");
            assert!(w[1].storage_overhead > w[0].storage_overhead);
            assert!(w[1].extra_read_ports > w[0].extra_read_ports);
            assert!(w[1].area_per_bit > w[0].area_per_bit);
        }
        // m = 2 already pushes DUE MTTF beyond any practical horizon.
        assert!(rows[1].due_mttf_secs > 1e12);
    }

    #[test]
    fn sts_conversion_moves_mass() {
        let rows = sts_conversion(300_000, 11);
        for r in &rows {
            // Raw shifts are dominated by stop-in-middle...
            assert!(
                r.raw_stop_in_middle > r.raw_out_of_step,
                "distance {}",
                r.distance
            );
            // ...and the post-STS out-of-step rate absorbs that mass
            // (same order of magnitude as the raw total error rate).
            let raw_total = r.raw_stop_in_middle + r.raw_out_of_step;
            assert!(
                r.sts_out_of_step > raw_total * 0.1 && r.sts_out_of_step < raw_total * 10.0,
                "distance {}: raw {raw_total:.2e} vs sts {:.2e}",
                r.distance,
                r.sts_out_of_step
            );
        }
    }

    #[test]
    fn material_comparison_trades_density_for_errors() {
        let [inplane, pma] = material_comparison();
        assert!(pma.pitch_nm < inplane.pitch_nm / 2.5, "PMA is denser");
        assert!(pma.k1_rate_4 > inplane.k1_rate_4, "PMA errs more");
    }

    #[test]
    fn head_policy_trade_is_visible() {
        let [stay, centre] = head_policy_comparison(1_500);
        assert!(centre.shift_cycles < stay.shift_cycles);
        assert!(centre.total_steps > stay.total_steps);
    }

    #[test]
    fn sts_conversion_analytic_matches_mc() {
        let mc = sts_conversion(400_000, 11);
        let an = sts_conversion_with_engine(0, 0, Engine::Analytic);
        for (m, a) in mc.iter().zip(an.iter()) {
            assert_eq!(m.distance, a.distance);
            // The shared Table 2 reference column is engine-independent.
            assert_eq!(m.sts_out_of_step, a.sts_out_of_step);
            // Raw stop-in-middle is the dominant class — plenty of MC
            // samples, so the engines must agree tightly.
            let ratio = a.raw_stop_in_middle / m.raw_stop_in_middle;
            assert!(
                (0.9..1.1).contains(&ratio),
                "distance {}: analytic {:.3e} vs mc {:.3e}",
                m.distance,
                a.raw_stop_in_middle,
                m.raw_stop_in_middle
            );
        }
    }

    #[test]
    fn render_contains_all_seven_sections() {
        let text = render_ablations(50_000, 3, 5.12e9);
        for i in 1..=7 {
            assert!(
                text.contains(&format!("Ablation {i}")),
                "missing section {i}"
            );
        }
        assert!(text.contains("paper: 0.17"));
    }
}
