//! Experiment drivers — one per table/figure of the paper's evaluation.
//!
//! | module | reproduces |
//! |---|---|
//! | [`motivation`] | Fig. 1 (MTTF vs error rate) |
//! | [`errormodel`] | Fig. 4 (position-error PDFs), Table 2 (rates) |
//! | [`design`] | Fig. 7 (port area), Table 3 (safe distance/sequences), Table 5 (overhead), Fig. 13 (area sensitivity) |
//! | [`reliability_exp`] | Fig. 10 (SDC MTTF), Fig. 11 (DUE MTTF), Fig. 12 (MTTF sensitivity) |
//! | [`performance`] | Fig. 14 (shift latency), Fig. 15 (latency sensitivity), Fig. 16 (execution time) |
//! | [`energy_exp`] | Fig. 17 (LLC dynamic energy), Fig. 18 (total energy) |
//! | [`ablation`] | drive-ratio, variation-scale, strength and STS ablations the paper discusses in prose |
//! | [`serving`] | beyond-paper serving-layer study: scheduling policy × workload × protection scheme |
//! | [`frontdoor`] | beyond-paper front-door study: ≥10k-tenant admission control × scheduling policy |
//! | [`matrix`] | beyond-paper scheme × fault-model matrix: reliability, cost and sampled behaviour per cell |
//!
//! Every driver returns typed rows plus a rendered text table so the
//! `repro` binary and EXPERIMENTS.md stay in lock-step with the code.

pub mod ablation;
pub mod design;
pub mod energy_exp;
pub mod errormodel;
pub mod frontdoor;
pub mod matrix;
pub mod motivation;
pub mod performance;
pub mod reliability_exp;
pub mod report;
pub mod serving;

mod sweep;

pub use sweep::{RtVariant, SimSweep, SweepSettings};

// The CSV serialiser lives in rtm-obs (its exporters need it too);
// re-exported here so every experiment driver keeps one call site.
pub use rtm_obs::export::to_csv;

/// Renders rows of pre-formatted cells as an aligned text table.
///
/// The first row is treated as the header and separated by a rule.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, r) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = r.get(i).map(String::as_str).unwrap_or("");
            let pad = w - cell.chars().count();
            line.push_str(cell);
            line.push_str(&" ".repeat(pad));
            if i + 1 < widths.len() {
                line.push_str("  ");
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render_table(&[
            vec!["a".into(), "long header".into()],
            vec!["wide cell".into(), "x".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("wide cell"));
    }

    #[test]
    fn render_empty_is_empty() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let rows = vec![
            vec!["a".into(), "b,c".into()],
            vec!["say \"hi\"".into(), "plain".into()],
        ];
        let csv = to_csv(&rows);
        assert_eq!(csv, "a,\"b,c\"\n\"say \"\"hi\"\"\",plain\n");
    }
}
