//! Shared simulation sweep machinery: run every (workload × LLC
//! configuration) pair once and let the figure drivers slice the
//! results.
//!
//! Cells of the grid are independent simulations, so the sweep fans
//! them out across the `rtm-par` pool. Each cell's trace seed derives
//! from the workload name alone (never the worker count or schedule),
//! and results are folded into the sweep in strict grid order as they
//! stream back — per-run gauges record at fold time, never from a
//! worker thread — so sweep output and metrics are identical for any
//! `--threads` setting and the collected-results Vec of earlier
//! revisions is gone.

use rtm_controller::controller::ShiftPolicy;
use rtm_mem::hierarchy::{Hierarchy, LlcChoice, SimResult};
use rtm_pecc::layout::ProtectionKind;
use rtm_trace::{TraceGenerator, WorkloadProfile};
use rtm_track::fault::FaultModelChoice;
use std::collections::BTreeMap;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepSettings {
    /// Accesses driven per (workload, configuration) pair.
    pub accesses: u64,
    /// RNG seed base (per-workload seeds derive from it).
    pub seed: u64,
    /// Workload subset (`None` = all twelve).
    pub workloads: Option<Vec<&'static str>>,
    /// When set, racetrack variant cells additionally sample one
    /// concrete outcome per planned sub-shift through the engine's
    /// fault model (alias fast path for
    /// [`rtm_model::analytic::Engine::Analytic`]). Sampling seeds
    /// derive from `seed` and the cell's grid index, never the worker
    /// schedule, so sweep output stays bit-identical for any thread
    /// count.
    pub sample_engine: Option<rtm_model::analytic::Engine>,
    /// Which fault process drives the sampled outcomes (the
    /// `--fault-model` axis). Only observed when `sample_engine` is
    /// set; the statistical accounting always uses the calibrated
    /// rates.
    pub fault_model: FaultModelChoice,
}

impl SweepSettings {
    /// Full-fidelity settings for the repro binaries: traces long
    /// enough that capacity-sensitive working sets overflow the smaller
    /// LLCs (the effect Figs. 16-18 hinge on).
    pub fn full() -> Self {
        Self {
            accesses: 2_000_000,
            seed: 2015,
            workloads: None,
            sample_engine: None,
            fault_model: FaultModelChoice::Engine,
        }
    }

    /// Small settings for unit tests.
    pub fn quick() -> Self {
        Self {
            accesses: 25_000,
            seed: 2015,
            workloads: Some(vec!["canneal", "swaptions", "streamcluster"]),
            sample_engine: None,
            fault_model: FaultModelChoice::Engine,
        }
    }

    /// The workload profiles this sweep covers, in display order.
    pub fn profiles(&self) -> Vec<WorkloadProfile> {
        let all = WorkloadProfile::parsec();
        match &self.workloads {
            None => all.to_vec(),
            Some(names) => names
                .iter()
                .filter_map(|n| WorkloadProfile::by_name(n))
                .collect(),
        }
    }
}

/// A racetrack LLC variant beyond the named presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RtVariant {
    /// Unprotected, unconstrained distances (the baseline).
    Baseline,
    /// SED p-ECC (detect-only), unconstrained distances.
    Sed,
    /// SECDED p-ECC, unconstrained distances.
    Secded,
    /// SECDED p-ECC-O (1-step shift-and-write).
    SecdedO,
    /// SECDED p-ECC with the worst-case safe distance.
    SecdedSafeWorst,
    /// SECDED p-ECC with the adaptive safe distance.
    SecdedSafeAdaptive,
    /// Chee–Kiah multi-look code, unconstrained distances.
    CheeKiah,
    /// Vahid two-deletion/insertion code, unconstrained distances.
    Vahid2di,
}

impl RtVariant {
    /// All variants in the paper's legend order.
    pub const ALL: [RtVariant; 8] = [
        RtVariant::Baseline,
        RtVariant::Sed,
        RtVariant::Secded,
        RtVariant::SecdedO,
        RtVariant::SecdedSafeWorst,
        RtVariant::SecdedSafeAdaptive,
        RtVariant::CheeKiah,
        RtVariant::Vahid2di,
    ];

    /// The (protection, policy) pair this variant simulates.
    pub fn parts(&self) -> (ProtectionKind, ShiftPolicy) {
        match self {
            RtVariant::Baseline => (ProtectionKind::None, ShiftPolicy::Unconstrained),
            RtVariant::Sed => (ProtectionKind::Sed, ShiftPolicy::Unconstrained),
            RtVariant::Secded => (ProtectionKind::SECDED, ShiftPolicy::Unconstrained),
            RtVariant::SecdedO => (ProtectionKind::SECDED_O, ShiftPolicy::StepByStep),
            RtVariant::SecdedSafeWorst => (
                ProtectionKind::SECDED,
                ShiftPolicy::FixedSafe {
                    worst_intensity_hz: 83_000_000,
                },
            ),
            RtVariant::SecdedSafeAdaptive => (ProtectionKind::SECDED, ShiftPolicy::Adaptive),
            RtVariant::CheeKiah => (ProtectionKind::CHEE_KIAH, ShiftPolicy::Unconstrained),
            RtVariant::Vahid2di => (ProtectionKind::VAHID_2DI, ShiftPolicy::Unconstrained),
        }
    }

    /// Paper legend label.
    pub fn label(&self) -> &'static str {
        match self {
            RtVariant::Baseline => "Baseline",
            RtVariant::Sed => "SED p-ECC",
            RtVariant::Secded => "SECDED p-ECC",
            RtVariant::SecdedO => "SECDED p-ECC-O",
            RtVariant::SecdedSafeWorst => "SECDED p-ECC-S worst",
            RtVariant::SecdedSafeAdaptive => "SECDED p-ECC-S adaptive",
            RtVariant::CheeKiah => "Chee-Kiah",
            RtVariant::Vahid2di => "Vahid 2-DI",
        }
    }
}

/// Results of a sweep, keyed by workload name.
#[derive(Debug, Clone, Default)]
pub struct SimSweep {
    /// Per-workload results for named LLC choices (Figs. 16-18).
    pub by_choice: BTreeMap<&'static str, BTreeMap<String, SimResult>>,
    /// Per-workload results for racetrack variants (Figs. 10/11/14).
    pub by_variant: BTreeMap<&'static str, BTreeMap<String, SimResult>>,
    /// Copy of the global metrics registry taken when the sweep
    /// finished (empty unless observability was switched on).
    pub obs: rtm_obs::metrics::RegistrySnapshot,
}

impl SimSweep {
    /// Runs every workload against the named LLC choices on the
    /// process-wide `rtm_par` pool.
    pub fn run_choices(settings: &SweepSettings, choices: &[LlcChoice]) -> Self {
        Self::run_choices_with_threads(settings, choices, rtm_par::threads())
    }

    /// [`Self::run_choices`] with an explicit worker count; results
    /// are identical for any `threads` value.
    pub fn run_choices_with_threads(
        settings: &SweepSettings,
        choices: &[LlcChoice],
        threads: usize,
    ) -> Self {
        let profiles = settings.profiles();
        let cells: Vec<(WorkloadProfile, LlcChoice)> = profiles
            .iter()
            .flat_map(|&p| choices.iter().map(move |&c| (p, c)))
            .collect();
        let progress = rtm_obs::timer::Progress::new("sweep(choices)", cells.len() as u64, "cells");
        // Streaming fold: each cell's result is folded into the sweep in
        // strict grid order as soon as its predecessors have arrived, so
        // no worker-count-sized Vec of results accumulates and gauges
        // stay deterministic for any `threads` value.
        let mut sweep = rtm_par::parallel_fold_with(
            threads,
            cells.len(),
            |i| {
                let (p, c) = cells[i];
                let mut sys = Hierarchy::new(c);
                let mut gen = TraceGenerator::new(
                    p,
                    rtm_util::rng::derive_seed(settings.seed, seed_of(p.name)),
                );
                let r = sys.run(&mut gen, settings.accesses);
                progress.tick(1);
                r
            },
            Self::default(),
            |sweep, i, r| {
                let (p, c) = cells[i];
                r.record_metrics();
                sweep
                    .by_choice
                    .entry(p.name)
                    .or_default()
                    .insert(c.to_string(), r);
            },
        );
        progress.finish();
        sweep.obs = rtm_obs::global().registry().snapshot();
        sweep
    }

    /// Runs every workload against racetrack protection variants on
    /// the process-wide `rtm_par` pool.
    pub fn run_variants(settings: &SweepSettings, variants: &[RtVariant]) -> Self {
        Self::run_variants_with_threads(settings, variants, rtm_par::threads())
    }

    /// [`Self::run_variants`] with an explicit worker count; results
    /// are identical for any `threads` value.
    pub fn run_variants_with_threads(
        settings: &SweepSettings,
        variants: &[RtVariant],
        threads: usize,
    ) -> Self {
        let profiles = settings.profiles();
        let cells: Vec<(WorkloadProfile, RtVariant)> = profiles
            .iter()
            .flat_map(|&p| variants.iter().map(move |&v| (p, v)))
            .collect();
        let progress =
            rtm_obs::timer::Progress::new("sweep(variants)", cells.len() as u64, "cells");
        let mut sweep = rtm_par::parallel_fold_with(
            threads,
            cells.len(),
            |i| {
                let (p, v) = cells[i];
                let (kind, policy) = v.parts();
                let mut sys = match settings.sample_engine {
                    // Sampling seed from (sweep seed, grid index): fixed by
                    // the cell layout, independent of worker scheduling.
                    Some(engine) => Hierarchy::with_racetrack_faults(
                        kind,
                        policy,
                        settings.fault_model,
                        engine,
                        rtm_util::rng::derive_seed(settings.seed, 0x5EED_0000 + i as u64),
                    ),
                    None => Hierarchy::with_racetrack(kind, policy),
                };
                let mut gen = TraceGenerator::new(
                    p,
                    rtm_util::rng::derive_seed(settings.seed, seed_of(p.name)),
                );
                let r = sys.run(&mut gen, settings.accesses);
                progress.tick(1);
                r
            },
            Self::default(),
            |sweep, i, r| {
                let (p, v) = cells[i];
                r.record_metrics();
                sweep
                    .by_variant
                    .entry(p.name)
                    .or_default()
                    .insert(v.label().to_string(), r);
            },
        );
        progress.finish();
        sweep.obs = rtm_obs::global().registry().snapshot();
        sweep
    }
}

fn seed_of(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_requested_matrix() {
        let s = SweepSettings::quick();
        let sweep =
            SimSweep::run_choices(&s, &[LlcChoice::SramBaseline, LlcChoice::RacetrackIdeal]);
        assert_eq!(sweep.by_choice.len(), 3);
        for per in sweep.by_choice.values() {
            assert_eq!(per.len(), 2);
            for r in per.values() {
                assert_eq!(r.accesses, s.accesses);
            }
        }
    }

    #[test]
    fn variant_sweep_runs_custom_racetracks() {
        let mut s = SweepSettings::quick();
        s.workloads = Some(vec!["x264"]);
        let sweep = SimSweep::run_variants(&s, &[RtVariant::Baseline, RtVariant::Sed]);
        let per = &sweep.by_variant["x264"];
        assert!(per.contains_key("Baseline"));
        assert!(per.contains_key("SED p-ECC"));
        // SED detects (DUE mass); baseline does not.
        assert!(per["SED p-ECC"].llc.expected_dues > 0.0);
        assert_eq!(per["Baseline"].llc.expected_dues, 0.0);
    }

    #[test]
    fn same_settings_same_results() {
        let mut s = SweepSettings::quick();
        s.workloads = Some(vec!["vips"]);
        s.accesses = 5_000;
        let a = SimSweep::run_choices(&s, &[LlcChoice::SttRam]);
        let b = SimSweep::run_choices(&s, &[LlcChoice::SttRam]);
        assert_eq!(
            a.by_choice["vips"]["STT-RAM"].cycles,
            b.by_choice["vips"]["STT-RAM"].cycles
        );
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        let mut s = SweepSettings::quick();
        s.accesses = 4_000;
        let choices = [LlcChoice::SramBaseline, LlcChoice::RacetrackIdeal];
        let base = SimSweep::run_choices_with_threads(&s, &choices, 1);
        for threads in [2usize, 8] {
            let alt = SimSweep::run_choices_with_threads(&s, &choices, threads);
            assert_eq!(base.by_choice, alt.by_choice, "threads={threads}");
        }
        let variants = [RtVariant::Baseline, RtVariant::SecdedSafeAdaptive];
        let vbase = SimSweep::run_variants_with_threads(&s, &variants, 1);
        let valt = SimSweep::run_variants_with_threads(&s, &variants, 8);
        assert_eq!(vbase.by_variant, valt.by_variant);
    }

    #[test]
    fn streamed_sweep_matches_collected_reference() {
        // The streaming fold must reproduce the old collect-then-merge
        // pipeline bit-for-bit: run the same grid through
        // `parallel_map_with` + sequential merge and compare against
        // the streamed sweep at several worker counts.
        let mut s = SweepSettings::quick();
        s.accesses = 4_000;
        s.workloads = Some(vec!["canneal", "x264"]);
        let choices = [LlcChoice::SramBaseline, LlcChoice::RacetrackIdeal];
        let profiles = s.profiles();
        let cells: Vec<(WorkloadProfile, LlcChoice)> = profiles
            .iter()
            .flat_map(|&p| choices.iter().map(move |&c| (p, c)))
            .collect();
        let results = rtm_par::parallel_map_with(4, cells.len(), |i| {
            let (p, c) = cells[i];
            let mut sys = Hierarchy::new(c);
            let mut gen =
                TraceGenerator::new(p, rtm_util::rng::derive_seed(s.seed, seed_of(p.name)));
            sys.run(&mut gen, s.accesses)
        });
        let mut collected: BTreeMap<&'static str, BTreeMap<String, SimResult>> = BTreeMap::new();
        for ((p, c), r) in cells.into_iter().zip(results) {
            collected
                .entry(p.name)
                .or_default()
                .insert(c.to_string(), r);
        }
        for threads in [1usize, 2, 8] {
            let streamed = SimSweep::run_choices_with_threads(&s, &choices, threads);
            assert_eq!(streamed.by_choice, collected, "threads={threads}");
        }
    }

    #[test]
    fn sampled_sweeps_are_thread_count_invariant() {
        // PR 3 extension of the determinism matrix: engine-sampled
        // variant sweeps must stay bit-identical across 1/2/8 workers.
        let mut s = SweepSettings::quick();
        s.accesses = 4_000;
        s.workloads = Some(vec!["canneal", "x264"]);
        s.sample_engine = Some(rtm_model::analytic::Engine::Analytic);
        let variants = [RtVariant::Baseline, RtVariant::SecdedSafeAdaptive];
        let base = SimSweep::run_variants_with_threads(&s, &variants, 1);
        for threads in [2usize, 8] {
            let alt = SimSweep::run_variants_with_threads(&s, &variants, threads);
            assert_eq!(base.by_variant, alt.by_variant, "threads={threads}");
        }
        // Sampling actually happened on racetrack cells.
        let sampled: u64 = base
            .by_variant
            .values()
            .flat_map(|per| per.values())
            .map(|r| r.llc.sampled_shifts)
            .sum();
        assert!(sampled > 0, "engine sampling produced no draws");
    }

    #[test]
    fn variant_parts_cover_paper_matrix() {
        assert_eq!(RtVariant::ALL.len(), 8);
        for v in RtVariant::ALL {
            let (_, _) = v.parts();
            assert!(!v.label().is_empty());
        }
    }
}
