//! Trace-driven cache hierarchy simulator with a racetrack-memory LLC
//! backend.
//!
//! This crate replaces the paper's gem5 full-system setup with a
//! trace-driven model of the same Table 4 platform: private L1 data
//! caches, a shared L2, a last-level cache built from SRAM, STT-RAM or
//! racetrack memory, and DDR3 main memory. The racetrack LLC carries
//! per-group head-position registers and routes every shift through the
//! position-error-aware controller, so shift counts, latencies and
//! residual error probabilities come out of the same machinery the
//! paper evaluates.
//!
//! The hierarchy defaults to the paper's single-request-at-a-time LLC
//! access model, but does not require it: [`Hierarchy::with_llc`]
//! accepts any [`llc::LlcModel`], and the `rtm-serve` crate uses that
//! hook to mount a queued serving layer with per-stripe-group request
//! queues, bank-level parallelism and pluggable scheduling policies.
//!
//! * [`cache`] — generic set-associative LRU cache bookkeeping;
//! * [`llc`] — the three LLC backends behind one interface;
//! * [`hierarchy`] — the full system: trace in, statistics out.
//!
//! # Examples
//!
//! ```
//! use rtm_mem::hierarchy::{Hierarchy, LlcChoice};
//! use rtm_trace::{TraceGenerator, WorkloadProfile};
//!
//! let profile = WorkloadProfile::by_name("swaptions").unwrap();
//! let mut sys = Hierarchy::new(LlcChoice::SramBaseline);
//! let result = sys.run(&mut TraceGenerator::new(profile, 1), 20_000);
//! assert_eq!(result.accesses, 20_000);
//! assert!(result.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod llc;
pub mod physical;

pub use cache::{AccessKind, Cache, CacheStats};
pub use hierarchy::{Hierarchy, LlcChoice, SimResult};
pub use llc::{LlcStats, RacetrackLlc, SimpleLlc};
