//! A bit-level physically-backed cache: every line lives in a
//! [`ProtectedGroup`] of real stripes, every shift physically moves
//! domain walls, and every read senses actual cells.
//!
//! This is the validation layer for the statistical
//! [`RacetrackLlc`](crate::llc::RacetrackLlc): far too slow for the
//! 128 MB evaluation configuration, but ideal for demonstrating — on a
//! scaled-down cache — that the statistical head-position arithmetic,
//! shift-distance accounting and protection semantics match what the
//! physics actually does (see `physical_matches_statistical` below and
//! the cross-check in `tests/`).

use crate::cache::{AccessKind, AccessResult, Cache};
use rtm_pecc::code::Verdict;
use rtm_pecc::group::ProtectedGroup;
use rtm_pecc::layout::ProtectionKind;
use rtm_track::bit::Bit;
use rtm_track::fault::FaultModel;
use rtm_track::geometry::StripeGeometry;

/// Outcome of one physical access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalResponse {
    /// Cache hit or miss.
    pub hit: bool,
    /// Steps the group's head moved for this access.
    pub shift_steps: u64,
    /// Whether a position-error DUE occurred while seeking.
    pub due: bool,
}

/// A small, fully physical racetrack cache.
pub struct PhysicalCache {
    cache: Cache,
    groups: Vec<ProtectedGroup>,
    geometry: StripeGeometry,
    bits_per_line: usize,
    faults: Box<dyn FaultModel>,
    shift_steps: u64,
    dues: u64,
}

impl PhysicalCache {
    /// Builds a physical cache of `capacity_bytes` with 64 B lines and
    /// `ways` associativity; each line spans `bits_per_line` stripes
    /// (use small values — 8 or 16 — for test-speed; the real design
    /// uses 512).
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (capacity not divisible, zero sizes)
    /// or when the line count does not fill whole groups.
    pub fn new(
        capacity_bytes: u64,
        ways: u32,
        kind: ProtectionKind,
        bits_per_line: usize,
        faults: Box<dyn FaultModel>,
    ) -> Self {
        let geometry = StripeGeometry::paper_default();
        let cache = Cache::new(capacity_bytes, ways, 64);
        let lines = capacity_bytes / 64;
        assert!(
            lines.is_multiple_of(geometry.data_len() as u64),
            "line count must fill whole stripe groups"
        );
        let groups = (0..lines / geometry.data_len() as u64)
            .map(|_| {
                ProtectedGroup::new(geometry, kind, bits_per_line).expect("valid group layout")
            })
            .collect();
        Self {
            cache,
            groups,
            geometry,
            bits_per_line,
            faults,
            shift_steps: 0,
            dues: 0,
        }
    }

    /// Total steps physically moved.
    pub fn shift_steps(&self) -> u64 {
        self.shift_steps
    }

    /// DUEs raised so far.
    pub fn dues(&self) -> u64 {
        self.dues
    }

    /// The stripe-group geometry.
    pub fn geometry(&self) -> &StripeGeometry {
        &self.geometry
    }

    fn slot_to_group_domain(&self, set: u64, way: u32) -> (usize, usize) {
        let line_index = set * self.cache.ways() as u64 + way as u64;
        let d = self.geometry.data_len() as u64;
        ((line_index / d) as usize, (line_index % d) as usize)
    }

    /// Performs one access carrying `data` (for writes): physically
    /// seeks the group head and reads or writes the domain across all
    /// stripes. Returns the response plus, for reads, the sensed bits.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != bits_per_line` on a write.
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        data: Option<&[Bit]>,
    ) -> (PhysicalResponse, Option<Vec<Bit>>) {
        let set = self.cache.set_of(addr);
        let r = self.cache.access(addr, kind);
        let (group_idx, domain) = self.slot_to_group_domain(set, r.way());
        let target = self.geometry.head_position_for(domain);
        let group = &mut self.groups[group_idx];
        let before = group.believed_head();
        let verdict = group.seek_checked(target, self.faults.as_mut(), 3);
        let moved = (target as i64 - before).unsigned_abs();
        self.shift_steps += moved;
        let due = verdict == Verdict::Uncorrectable;
        if due {
            self.dues += 1;
        }

        let read_back = match kind {
            AccessKind::Write => {
                let bits = data.expect("writes must carry data");
                assert_eq!(bits.len(), self.bits_per_line, "one bit per stripe");
                if !due {
                    for (i, &b) in bits.iter().enumerate() {
                        // Group stripes share a head; write each stripe's
                        // domain at the current position.
                        let stripe = group_stripe_mut(group, i);
                        stripe.write_domain(domain, b).expect("head positioned");
                    }
                }
                None
            }
            AccessKind::Read => {
                if due {
                    Some(vec![Bit::Unknown; self.bits_per_line])
                } else {
                    let mut out = Vec::with_capacity(self.bits_per_line);
                    for i in 0..self.bits_per_line {
                        out.push(
                            group_stripe(group, i)
                                .read_domain(domain)
                                .unwrap_or(Bit::Unknown),
                        );
                    }
                    Some(out)
                }
            }
        };
        (
            PhysicalResponse {
                hit: matches!(r, AccessResult::Hit { .. }),
                shift_steps: moved,
                due,
            },
            read_back,
        )
    }
}

// ProtectedGroup exposes stripes immutably; these helpers centralise the
// index plumbing (kept as free functions so the borrow of `group` stays
// narrow).
fn group_stripe(group: &ProtectedGroup, i: usize) -> &rtm_pecc::protected::ProtectedStripe {
    group.stripe(i)
}

fn group_stripe_mut(
    group: &mut ProtectedGroup,
    i: usize,
) -> &mut rtm_pecc::protected::ProtectedStripe {
    group.stripe_mut(i)
}

impl std::fmt::Debug for PhysicalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalCache")
            .field("groups", &self.groups.len())
            .field("bits_per_line", &self.bits_per_line)
            .field("shift_steps", &self.shift_steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_track::fault::{IdealFaultModel, ScriptedFaultModel};

    fn small(kind: ProtectionKind, faults: Box<dyn FaultModel>) -> PhysicalCache {
        // 64 lines = exactly one 64-domain group; 8 bits per line.
        PhysicalCache::new(64 * 64, 4, kind, 8, faults)
    }

    fn bits(pattern: u8) -> Vec<Bit> {
        (0..8).map(|i| Bit::from(pattern & (1 << i) != 0)).collect()
    }

    #[test]
    fn write_then_read_round_trips_physically() {
        let mut c = small(ProtectionKind::SECDED, Box::new(IdealFaultModel));
        let (w, _) = c.access(0x40, AccessKind::Write, Some(&bits(0b1010_0110)));
        assert!(!w.hit);
        let (r, data) = c.access(0x40, AccessKind::Read, None);
        assert!(r.hit);
        assert_eq!(r.shift_steps, 0, "head already positioned");
        assert_eq!(data.unwrap(), bits(0b1010_0110));
    }

    #[test]
    fn distinct_lines_cost_physical_shifts() {
        let mut c = small(ProtectionKind::SECDED, Box::new(IdealFaultModel));
        c.access(0x0, AccessKind::Write, Some(&bits(1)));
        let before = c.shift_steps();
        // A line in a different way of the same set maps to an adjacent
        // domain -> nonzero head movement.
        let stride = 16 * 64; // sets * line
        c.access(stride, AccessKind::Write, Some(&bits(2)));
        assert!(c.shift_steps() > before);
    }

    #[test]
    fn injected_slip_is_repaired_and_data_survives() {
        let mut c = small(
            ProtectionKind::SECDED,
            Box::new(ScriptedFaultModel::new([
                rtm_model::shift::ShiftOutcome::Pinned { offset: 0 },
                rtm_model::shift::ShiftOutcome::Pinned { offset: 1 },
            ])),
        );
        c.access(0x40, AccessKind::Write, Some(&bits(0xA5)));
        let stride = 16 * 64;
        c.access(0x40 + stride, AccessKind::Write, Some(&bits(0x5A)));
        // Return to the first line: despite the slip on the way, SECDED
        // repaired it and the data is intact.
        let (_, data) = c.access(0x40, AccessKind::Read, None);
        assert_eq!(data.unwrap(), bits(0xA5));
        assert_eq!(c.dues(), 0);
    }

    #[test]
    fn uncorrectable_slip_raises_due() {
        let mut c = small(
            ProtectionKind::SECDED,
            Box::new(ScriptedFaultModel::new([
                rtm_model::shift::ShiftOutcome::Pinned { offset: 2 },
            ])),
        );
        c.access(0x0, AccessKind::Write, Some(&bits(1)));
        // First access seeks from head 0; a ±2 slip on the very first
        // shift is detected but uncorrectable.
        assert_eq!(c.dues(), 1);
        let (r, data) = c.access(0x0, AccessKind::Read, None);
        let _ = r;
        // Post-DUE state returns indeterminate data until recovery.
        assert!(data.is_some());
    }

    #[test]
    fn unprotected_physical_cache_corrupts_silently() {
        // Each group shift consumes one fault sample per stripe: eight
        // clean samples cover the first access, then stripe 0 slips on
        // the second access's shift.
        let mut outcomes = vec![rtm_model::shift::ShiftOutcome::Pinned { offset: 0 }; 8];
        outcomes.push(rtm_model::shift::ShiftOutcome::Pinned { offset: 1 });
        let mut c = small(
            ProtectionKind::None,
            Box::new(ScriptedFaultModel::new(outcomes)),
        );
        c.access(0x40, AccessKind::Write, Some(&bits(0xFF)));
        let stride = 16 * 64;
        c.access(0x40 + stride, AccessKind::Write, Some(&bits(0x00)));
        let (_, data) = c.access(0x40, AccessKind::Read, None);
        // Stripe 0 is silently desynchronised: it reads a neighbouring
        // domain's (zero) value instead of its 0xFF bit, and nothing
        // reported it.
        assert_eq!(c.dues(), 0);
        let data = data.unwrap();
        assert_eq!(data[0], Bit::Zero, "slipped stripe reads the wrong domain");
        assert_eq!(data[1], Bit::One, "clean stripes read correctly");
    }
}
