//! A bit-level physically-backed cache: every line lives in a
//! [`ProtectedGroup`] of real stripes, every shift physically moves
//! domain walls, and every read senses actual cells.
//!
//! This is the validation layer for the statistical
//! [`RacetrackLlc`](crate::llc::RacetrackLlc): far too slow for the
//! 128 MB evaluation configuration, but ideal for demonstrating — on a
//! scaled-down cache — that the statistical head-position arithmetic,
//! shift-distance accounting and protection semantics match what the
//! physics actually does (see `physical_matches_statistical` below and
//! the cross-check in `tests/`).

use crate::cache::{AccessKind, AccessResult, Cache};
use rtm_pecc::code::Verdict;
use rtm_pecc::group::ProtectedGroup;
use rtm_pecc::layout::ProtectionKind;
use rtm_track::bit::Bit;
use rtm_track::fault::FaultModel;
use rtm_track::geometry::StripeGeometry;
use rtm_util::arena::{Arena, NO_HANDLE};

/// Outcome of one physical access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalResponse {
    /// Cache hit or miss.
    pub hit: bool,
    /// Steps the group's head moved for this access.
    pub shift_steps: u64,
    /// Whether a position-error DUE occurred while seeking.
    pub due: bool,
}

/// A small, fully physical racetrack cache.
///
/// Group state is materialised lazily: each group costs a 4-byte arena
/// handle until the first access touches it, at which point a prototype-
/// only [`ProtectedGroup`] is faulted in from the arena pool (the group
/// itself defers per-stripe allocation further until a real shift or
/// write). Building a group consumes no randomness, so the fault-model
/// sampling stream is bit-identical to the historical eager layout
/// regardless of when — or whether — groups materialise.
pub struct PhysicalCache {
    cache: Cache,
    /// Group index → arena handle; [`NO_HANDLE`] until first touch.
    handles: Vec<u32>,
    arena: Arena<ProtectedGroup>,
    geometry: StripeGeometry,
    kind: ProtectionKind,
    ways: u32,
    capacity_bytes: u64,
    bits_per_line: usize,
    faults: Box<dyn FaultModel>,
    shift_steps: u64,
    dues: u64,
    pristine_reads: u64,
}

impl PhysicalCache {
    /// Builds a physical cache of `capacity_bytes` with 64 B lines and
    /// `ways` associativity; each line spans `bits_per_line` stripes
    /// (use small values — 8 or 16 — for test-speed; the real design
    /// uses 512).
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (capacity not divisible, zero sizes,
    /// an invalid protection layout) or when the line count does not
    /// fill whole groups.
    pub fn new(
        capacity_bytes: u64,
        ways: u32,
        kind: ProtectionKind,
        bits_per_line: usize,
        faults: Box<dyn FaultModel>,
    ) -> Self {
        let geometry = StripeGeometry::paper_default();
        let cache = Cache::new(capacity_bytes, ways, 64);
        let lines = capacity_bytes / 64;
        assert!(
            lines.is_multiple_of(geometry.data_len() as u64),
            "line count must fill whole stripe groups"
        );
        // Validate the layout up front so invalid configurations fail at
        // construction exactly like the eager implementation did.
        ProtectedGroup::new(geometry, kind, bits_per_line).expect("valid group layout");
        let group_count = (lines / geometry.data_len() as u64) as usize;
        Self {
            cache,
            handles: vec![NO_HANDLE; group_count],
            arena: Arena::new(),
            geometry,
            kind,
            ways,
            capacity_bytes,
            bits_per_line,
            faults,
            shift_steps: 0,
            dues: 0,
            pristine_reads: 0,
        }
    }

    /// Total steps physically moved.
    pub fn shift_steps(&self) -> u64 {
        self.shift_steps
    }

    /// DUEs raised so far.
    pub fn dues(&self) -> u64 {
        self.dues
    }

    /// The stripe-group geometry.
    pub fn geometry(&self) -> &StripeGeometry {
        &self.geometry
    }

    /// Number of stripe groups the configured capacity spans.
    pub fn configured_groups(&self) -> usize {
        self.handles.len()
    }

    /// Number of groups faulted in from the arena so far.
    pub fn materialised_groups(&self) -> usize {
        self.arena.live()
    }

    /// Reads answered while the owning group was still in its pristine
    /// (prototype-only) state.
    pub fn pristine_reads(&self) -> u64 {
        self.pristine_reads
    }

    /// Approximate heap bytes held by group state: the handle table plus
    /// every live group's stripe storage.
    pub fn approx_state_bytes(&self) -> usize {
        let mut bytes = self.handles.len() * std::mem::size_of::<u32>() + self.arena.slot_bytes();
        for &h in &self.handles {
            if h != NO_HANDLE {
                bytes += self.arena.get(h).approx_bytes();
            }
        }
        bytes
    }

    /// Forces every configured group into existence (the historical
    /// eager layout; equivalence tests compare lazy runs against this).
    pub fn materialise_all(&mut self) {
        for i in 0..self.handles.len() {
            if self.handles[i] == NO_HANDLE {
                let group = ProtectedGroup::new(self.geometry, self.kind, self.bits_per_line)
                    .expect("valid group layout");
                self.handles[i] = self.arena.alloc(group);
            }
        }
    }

    /// Returns every group to the arena free list and resets the
    /// directory and counters to their initial state — a medium power
    /// cycle. The arena keeps its slots, so a subsequent run of the same
    /// working set reuses them instead of growing the heap.
    pub fn reset(&mut self) {
        self.cache = Cache::new(self.capacity_bytes, self.ways, 64);
        for h in &mut self.handles {
            if *h != NO_HANDLE {
                self.arena.free(*h);
                *h = NO_HANDLE;
            }
        }
        self.shift_steps = 0;
        self.dues = 0;
        self.pristine_reads = 0;
    }

    /// High-water number of arena slots ever allocated (diagnostic for
    /// the free-list reuse guarantee).
    pub fn arena_slots(&self) -> usize {
        self.arena.slots()
    }

    /// Faults the group in from the arena if needed and returns its
    /// handle.
    fn ensure_group(&mut self, group_idx: usize) -> u32 {
        let h = self.handles[group_idx];
        if h != NO_HANDLE {
            return h;
        }
        let group = ProtectedGroup::new(self.geometry, self.kind, self.bits_per_line)
            .expect("valid group layout");
        let h = self.arena.alloc(group);
        self.handles[group_idx] = h;
        h
    }

    fn slot_to_group_domain(&self, set: u64, way: u32) -> (usize, usize) {
        let line_index = set * self.cache.ways() as u64 + way as u64;
        let d = self.geometry.data_len() as u64;
        ((line_index / d) as usize, (line_index % d) as usize)
    }

    /// Performs one access carrying `data` (for writes): physically
    /// seeks the group head and reads or writes the domain across all
    /// stripes. Returns the response plus, for reads, the sensed bits.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != bits_per_line` on a write.
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        data: Option<&[Bit]>,
    ) -> (PhysicalResponse, Option<Vec<Bit>>) {
        let set = self.cache.set_of(addr);
        let r = self.cache.access(addr, kind);
        let (group_idx, domain) = self.slot_to_group_domain(set, r.way());
        let target = self.geometry.head_position_for(domain);
        let handle = self.ensure_group(group_idx);
        let group = self.arena.get_mut(handle);
        let before = group.believed_head();
        let verdict = group.seek_checked(target, self.faults.as_mut(), 3);
        let moved = (target as i64 - before).unsigned_abs();
        self.shift_steps += moved;
        let due = verdict == Verdict::Uncorrectable;
        if due {
            self.dues += 1;
        }

        let read_back = match kind {
            AccessKind::Write => {
                let bits = data.expect("writes must carry data");
                assert_eq!(bits.len(), self.bits_per_line, "one bit per stripe");
                if !due {
                    for (i, &b) in bits.iter().enumerate() {
                        // Group stripes share a head; write each stripe's
                        // domain at the current position.
                        let stripe = group_stripe_mut(group, i);
                        stripe.write_domain(domain, b).expect("head positioned");
                    }
                }
                None
            }
            AccessKind::Read => {
                if due {
                    Some(vec![Bit::Unknown; self.bits_per_line])
                } else {
                    if group.is_pristine() {
                        // Served straight from the group prototype: no
                        // per-stripe state was ever allocated.
                        self.pristine_reads += 1;
                    }
                    let mut out = Vec::with_capacity(self.bits_per_line);
                    for i in 0..self.bits_per_line {
                        out.push(
                            group_stripe(group, i)
                                .read_domain(domain)
                                .unwrap_or(Bit::Unknown),
                        );
                    }
                    Some(out)
                }
            }
        };
        (
            PhysicalResponse {
                hit: matches!(r, AccessResult::Hit { .. }),
                shift_steps: moved,
                due,
            },
            read_back,
        )
    }
}

// ProtectedGroup exposes stripes immutably; these helpers centralise the
// index plumbing (kept as free functions so the borrow of `group` stays
// narrow).
fn group_stripe(group: &ProtectedGroup, i: usize) -> &rtm_pecc::protected::ProtectedStripe {
    group.stripe(i)
}

fn group_stripe_mut(
    group: &mut ProtectedGroup,
    i: usize,
) -> &mut rtm_pecc::protected::ProtectedStripe {
    group.stripe_mut(i)
}

impl std::fmt::Debug for PhysicalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalCache")
            .field("groups", &self.handles.len())
            .field("materialised", &self.arena.live())
            .field("bits_per_line", &self.bits_per_line)
            .field("shift_steps", &self.shift_steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_track::fault::{IdealFaultModel, ScriptedFaultModel};

    fn small(kind: ProtectionKind, faults: Box<dyn FaultModel>) -> PhysicalCache {
        // 64 lines = exactly one 64-domain group; 8 bits per line.
        PhysicalCache::new(64 * 64, 4, kind, 8, faults)
    }

    fn bits(pattern: u8) -> Vec<Bit> {
        (0..8).map(|i| Bit::from(pattern & (1 << i) != 0)).collect()
    }

    #[test]
    fn write_then_read_round_trips_physically() {
        let mut c = small(ProtectionKind::SECDED, Box::new(IdealFaultModel));
        let (w, _) = c.access(0x40, AccessKind::Write, Some(&bits(0b1010_0110)));
        assert!(!w.hit);
        let (r, data) = c.access(0x40, AccessKind::Read, None);
        assert!(r.hit);
        assert_eq!(r.shift_steps, 0, "head already positioned");
        assert_eq!(data.unwrap(), bits(0b1010_0110));
    }

    #[test]
    fn distinct_lines_cost_physical_shifts() {
        let mut c = small(ProtectionKind::SECDED, Box::new(IdealFaultModel));
        c.access(0x0, AccessKind::Write, Some(&bits(1)));
        let before = c.shift_steps();
        // A line in a different way of the same set maps to an adjacent
        // domain -> nonzero head movement.
        let stride = 16 * 64; // sets * line
        c.access(stride, AccessKind::Write, Some(&bits(2)));
        assert!(c.shift_steps() > before);
    }

    #[test]
    fn injected_slip_is_repaired_and_data_survives() {
        let mut c = small(
            ProtectionKind::SECDED,
            Box::new(ScriptedFaultModel::new([
                rtm_model::shift::ShiftOutcome::Pinned { offset: 0 },
                rtm_model::shift::ShiftOutcome::Pinned { offset: 1 },
            ])),
        );
        c.access(0x40, AccessKind::Write, Some(&bits(0xA5)));
        let stride = 16 * 64;
        c.access(0x40 + stride, AccessKind::Write, Some(&bits(0x5A)));
        // Return to the first line: despite the slip on the way, SECDED
        // repaired it and the data is intact.
        let (_, data) = c.access(0x40, AccessKind::Read, None);
        assert_eq!(data.unwrap(), bits(0xA5));
        assert_eq!(c.dues(), 0);
    }

    #[test]
    fn uncorrectable_slip_raises_due() {
        let mut c = small(
            ProtectionKind::SECDED,
            Box::new(ScriptedFaultModel::new([
                rtm_model::shift::ShiftOutcome::Pinned { offset: 2 },
            ])),
        );
        c.access(0x0, AccessKind::Write, Some(&bits(1)));
        // First access seeks from head 0; a ±2 slip on the very first
        // shift is detected but uncorrectable.
        assert_eq!(c.dues(), 1);
        let (r, data) = c.access(0x0, AccessKind::Read, None);
        let _ = r;
        // Post-DUE state returns indeterminate data until recovery.
        assert!(data.is_some());
    }

    #[test]
    fn groups_materialise_lazily_and_reads_can_stay_pristine() {
        // Direct-mapped, 4 groups; set == line index == data domain % 64.
        let mut c = PhysicalCache::new(
            4 * 64 * 64,
            1,
            ProtectionKind::SECDED,
            8,
            Box::new(IdealFaultModel),
        );
        assert_eq!(c.configured_groups(), 4);
        assert_eq!(c.materialised_groups(), 0);
        // Domain 7 sits under a port at head position 0
        // (segment_len - 1 - 7 % 8), so reading line 7 of an untouched
        // group needs no seek and serves zeroed fabrication data from the
        // group prototype.
        assert_eq!(c.geometry().head_position_for(7), 0);
        let addr = 7 * 64;
        let (_, data) = c.access(addr, AccessKind::Read, None);
        assert_eq!(data.unwrap(), vec![Bit::Zero; 8]);
        assert_eq!(c.materialised_groups(), 1, "group object faulted in");
        assert_eq!(c.pristine_reads(), 1, "served without stripe state");
        // A write materialises the group's stripes for real.
        c.access(addr, AccessKind::Write, Some(&bits(0xA5)));
        let before = c.approx_state_bytes();
        let (_, data) = c.access(addr, AccessKind::Read, None);
        assert_eq!(data.unwrap(), bits(0xA5));
        assert_eq!(c.pristine_reads(), 1, "no longer pristine");
        assert_eq!(c.approx_state_bytes(), before);
        // The other three groups still cost nothing but their handles.
        assert_eq!(c.materialised_groups(), 1);
    }

    #[test]
    fn reset_reuses_arena_slots() {
        let mut c = small(ProtectionKind::SECDED, Box::new(IdealFaultModel));
        c.access(0x40, AccessKind::Write, Some(&bits(0x12)));
        assert_eq!(c.materialised_groups(), 1);
        let slots = c.arena_slots();
        c.reset();
        assert_eq!(c.materialised_groups(), 0);
        assert_eq!(c.shift_steps(), 0);
        // Rerunning the same working set reuses the freed slot.
        c.access(0x40, AccessKind::Write, Some(&bits(0x12)));
        let (_, data) = c.access(0x40, AccessKind::Read, None);
        assert_eq!(data.unwrap(), bits(0x12));
        assert_eq!(c.arena_slots(), slots, "free list prevented growth");
    }

    /// Lazy and eager layouts produce identical responses, data and
    /// counters for the same access + fault script.
    #[test]
    fn lazy_matches_materialise_all_with_faults() {
        let script = || {
            let mut outcomes = Vec::new();
            let mut rng = rtm_util::rng::seeded_rng(42);
            for _ in 0..4096 {
                outcomes.push(if rng.chance(0.02) {
                    rtm_model::shift::ShiftOutcome::Pinned {
                        offset: if rng.chance(0.5) { 1 } else { -1 },
                    }
                } else {
                    rtm_model::shift::ShiftOutcome::Pinned { offset: 0 }
                });
            }
            Box::new(ScriptedFaultModel::new(outcomes))
        };
        let mut lazy = small(ProtectionKind::SECDED, script());
        let mut eager = small(ProtectionKind::SECDED, script());
        eager.materialise_all();
        let mut rng = rtm_util::rng::seeded_rng(9);
        for step in 0..300 {
            let addr = (rng.next_u64() % 64) * 64;
            if rng.chance(0.4) {
                let pattern = (step % 251) as u8;
                let (a, _) = lazy.access(addr, AccessKind::Write, Some(&bits(pattern)));
                let (b, _) = eager.access(addr, AccessKind::Write, Some(&bits(pattern)));
                assert_eq!(a, b, "write response diverged at step {step}");
            } else {
                let (a, da) = lazy.access(addr, AccessKind::Read, None);
                let (b, db) = eager.access(addr, AccessKind::Read, None);
                assert_eq!(a, b, "read response diverged at step {step}");
                assert_eq!(da, db, "read data diverged at step {step}");
            }
        }
        assert_eq!(lazy.shift_steps(), eager.shift_steps());
        assert_eq!(lazy.dues(), eager.dues());
    }

    #[test]
    fn lazy_matches_eager_over_20k_sampled_operations() {
        // The headline equivalence suite: 20k mixed read/write
        // operations (each seeking, shifting and sampling the Gaussian
        // fault physics) on the lazy arena-backed cache and on a fully
        // materialised one built from the same seed. Lazy
        // materialisation draws every outcome in stripe order before
        // deciding whether a group stays pristine, so the RNG streams
        // — and therefore every response, every sensed bit and every
        // counter — must be bit-identical.
        let model = || {
            Box::new(rtm_track::fault::GaussianFaultModel::new(
                &rtm_model::DeviceParams::table1(),
                0xFEED,
            ))
        };
        let mut lazy = small(ProtectionKind::SECDED, model());
        let mut eager = small(ProtectionKind::SECDED, model());
        eager.materialise_all();
        let mut rng = rtm_util::rng::seeded_rng(77);
        for step in 0..20_000 {
            let addr = (rng.next_u64() % 64) * 64;
            if rng.chance(0.35) {
                let pattern = (step % 251) as u8;
                let (a, _) = lazy.access(addr, AccessKind::Write, Some(&bits(pattern)));
                let (b, _) = eager.access(addr, AccessKind::Write, Some(&bits(pattern)));
                assert_eq!(a, b, "write response diverged at step {step}");
            } else {
                let (a, da) = lazy.access(addr, AccessKind::Read, None);
                let (b, db) = eager.access(addr, AccessKind::Read, None);
                assert_eq!(a, b, "read response diverged at step {step}");
                assert_eq!(da, db, "read data diverged at step {step}");
            }
        }
        assert_eq!(lazy.shift_steps(), eager.shift_steps());
        assert_eq!(lazy.dues(), eager.dues());
        // The workload really exercised the sampled fault path.
        assert!(lazy.shift_steps() > 0);
    }

    #[test]
    fn unprotected_physical_cache_corrupts_silently() {
        // Each group shift consumes one fault sample per stripe: eight
        // clean samples cover the first access, then stripe 0 slips on
        // the second access's shift.
        let mut outcomes = vec![rtm_model::shift::ShiftOutcome::Pinned { offset: 0 }; 8];
        outcomes.push(rtm_model::shift::ShiftOutcome::Pinned { offset: 1 });
        let mut c = small(
            ProtectionKind::None,
            Box::new(ScriptedFaultModel::new(outcomes)),
        );
        c.access(0x40, AccessKind::Write, Some(&bits(0xFF)));
        let stride = 16 * 64;
        c.access(0x40 + stride, AccessKind::Write, Some(&bits(0x00)));
        let (_, data) = c.access(0x40, AccessKind::Read, None);
        // Stripe 0 is silently desynchronised: it reads a neighbouring
        // domain's (zero) value instead of its 0xFF bit, and nothing
        // reported it.
        assert_eq!(c.dues(), 0);
        let data = data.unwrap();
        assert_eq!(data[0], Bit::Zero, "slipped stripe reads the wrong domain");
        assert_eq!(data[1], Bit::One, "clean stripes read correctly");
    }
}
