//! The full memory hierarchy: trace in, statistics out.
//!
//! An in-order, unit-IPC core model serialises the merged four-core
//! access stream (matching the paper's single-request-at-a-time
//! assumption for the adaptive shift controller): each access advances
//! the clock by its gap instructions plus the latency of the deepest
//! level it had to reach.
//!
//! The single-request assumption is *not* baked in: a hierarchy can be
//! built around any [`LlcModel`] via [`Hierarchy::with_llc`], which is
//! how `rtm-serve` substitutes its queued, bank-parallel serving layer
//! (per-stripe-group queues, multiple in-flight requests) while reusing
//! the L1/L2 front end unchanged.

use crate::cache::{AccessKind, Cache};
use crate::llc::{LlcModel, RacetrackLlc, SimpleLlc};
use rtm_controller::controller::ShiftPolicy;
use rtm_cost::energy::{LlcActivity, LlcEnergyModel};
use rtm_cost::overhead::Scheme;
use rtm_cost::technology::{CacheTech, LlcDesign, SystemConfig};
use rtm_pecc::layout::ProtectionKind;
use rtm_trace::{MemAccess, TraceGenerator};
use rtm_util::units::{Picojoules, Seconds};

/// The LLC configurations the paper's Figs. 16-18 compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcChoice {
    /// 4 MB SRAM LLC.
    SramBaseline,
    /// 32 MB STT-RAM LLC.
    SttRam,
    /// 128 MB racetrack LLC with zero-cost, error-free shifts
    /// ("RM-Ideal").
    RacetrackIdeal,
    /// Racetrack LLC without any position-error protection.
    RacetrackUnprotected,
    /// Racetrack LLC with SECDED p-ECC-O (1-step shift-and-write).
    RacetrackPeccO,
    /// Racetrack LLC with SECDED p-ECC and the worst-case safe
    /// distance.
    RacetrackPeccSWorst,
    /// Racetrack LLC with SECDED p-ECC and the adaptive safe distance.
    RacetrackPeccSAdaptive,
}

impl LlcChoice {
    /// All seven configurations in the paper's legend order.
    pub const ALL: [LlcChoice; 7] = [
        LlcChoice::SramBaseline,
        LlcChoice::SttRam,
        LlcChoice::RacetrackIdeal,
        LlcChoice::RacetrackUnprotected,
        LlcChoice::RacetrackPeccO,
        LlcChoice::RacetrackPeccSAdaptive,
        LlcChoice::RacetrackPeccSWorst,
    ];

    /// The Table 5 scheme whose check energy applies, if any.
    pub fn scheme(&self) -> Option<Scheme> {
        match self {
            LlcChoice::RacetrackPeccO => Some(Scheme::PeccO),
            LlcChoice::RacetrackPeccSWorst => Some(Scheme::PeccSWorst),
            LlcChoice::RacetrackPeccSAdaptive => Some(Scheme::PeccSAdaptive),
            _ => None,
        }
    }

    /// Whether this is a racetrack design.
    pub fn is_racetrack(&self) -> bool {
        !matches!(self, LlcChoice::SramBaseline | LlcChoice::SttRam)
    }
}

impl std::fmt::Display for LlcChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlcChoice::SramBaseline => write!(f, "SRAM"),
            LlcChoice::SttRam => write!(f, "STT-RAM"),
            LlcChoice::RacetrackIdeal => write!(f, "RM-Ideal"),
            LlcChoice::RacetrackUnprotected => write!(f, "RM w/o p-ECC"),
            LlcChoice::RacetrackPeccO => write!(f, "RM p-ECC-O"),
            LlcChoice::RacetrackPeccSWorst => write!(f, "RM p-ECC-S worst"),
            LlcChoice::RacetrackPeccSAdaptive => write!(f, "RM p-ECC-S adaptive"),
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Configuration simulated.
    pub choice: LlcChoice,
    /// Memory accesses driven.
    pub accesses: u64,
    /// Instructions retired (memory + gap).
    pub instructions: u64,
    /// Total execution cycles.
    pub cycles: u64,
    /// Wall-clock duration at the core clock.
    pub duration: Seconds,
    /// L1 miss count (summed over cores).
    pub l1_misses: u64,
    /// L2 miss count.
    pub l2_misses: u64,
    /// LLC statistics.
    pub llc: crate::llc::LlcStats,
    /// LLC activity for energy accounting.
    pub activity: LlcActivity,
    /// Main-memory accesses (LLC misses + writebacks).
    pub dram_accesses: u64,
    /// Cycles spent on LLC shifts (0 for SRAM/STT-RAM).
    pub shift_cycles: u64,
    /// Lazily-materialised state occupancy (all zero for flat models).
    pub scale: crate::llc::ScaleStats,
}

impl SimResult {
    /// Records this run's summary gauges into the global metrics
    /// registry (no-op while observability is off).
    ///
    /// Kept separate from [`Hierarchy::result`] so parallel sweeps can
    /// record results *after* their workers join, in deterministic
    /// cell order — concurrent `gauge_set`s from inside workers would
    /// leave whichever cell finished last in the snapshot.
    pub fn record_metrics(&self) {
        let reg = rtm_obs::global().registry();
        if reg.enabled() {
            reg.gauge_set("hier.cycles", self.cycles as f64);
            reg.gauge_set("energy.llc_dynamic_pj", self.llc_dynamic_energy().value());
            reg.gauge_set("energy.llc_total_pj", self.llc_total_energy().value());
            reg.gauge_set("energy.system_pj", self.system_energy().value());
            self.scale.record(reg);
        }
    }

    /// Average shift intensity over the run (shift operations per
    /// second of simulated time).
    pub fn shift_intensity(&self) -> f64 {
        if self.duration.as_secs() == 0.0 {
            0.0
        } else {
            self.llc.shift_ops as f64 / self.duration.as_secs()
        }
    }

    /// MTTF implied by the accumulated DUE probability mass:
    /// `duration / expected_dues`.
    pub fn due_mttf(&self) -> Seconds {
        if self.llc.expected_dues <= 0.0 {
            Seconds(f64::INFINITY)
        } else {
            Seconds(self.duration.as_secs() / self.llc.expected_dues)
        }
    }

    /// MTTF implied by the accumulated SDC probability mass.
    pub fn sdc_mttf(&self) -> Seconds {
        if self.llc.expected_sdcs <= 0.0 {
            Seconds(f64::INFINITY)
        } else {
            Seconds(self.duration.as_secs() / self.llc.expected_sdcs)
        }
    }

    /// LLC dynamic energy under the configuration's energy model.
    pub fn llc_dynamic_energy(&self) -> Picojoules {
        self.energy_model().dynamic_energy(&self.activity)
    }

    /// LLC total (dynamic + leakage) energy.
    pub fn llc_total_energy(&self) -> Picojoules {
        self.energy_model().total_energy(&self.activity)
    }

    /// System energy proxy for Fig. 18: LLC total energy plus DRAM
    /// dynamic energy (L1/L2 are identical across configurations and
    /// cancel in the comparison; we include them as a constant via the
    /// hierarchy's counters anyway).
    pub fn system_energy(&self) -> Picojoules {
        let sys = SystemConfig::paper(CacheTech::Racetrack);
        let dram = sys.memory.access_energy * self.dram_accesses as f64;
        self.llc_total_energy() + dram
    }

    fn energy_model(&self) -> LlcEnergyModel {
        let design = match self.choice {
            LlcChoice::SramBaseline => LlcDesign::sram(),
            LlcChoice::SttRam => LlcDesign::stt_ram(),
            _ => LlcDesign::racetrack(),
        };
        LlcEnergyModel::new(
            design,
            self.choice.scheme(),
            RacetrackLlc::STRIPES_PER_GROUP,
        )
    }
}

/// The simulated platform.
pub struct Hierarchy {
    config: SystemConfig,
    choice: LlcChoice,
    l1: Vec<Cache>,
    l2: Cache,
    llc: Box<dyn LlcModel>,
    cycles: u64,
    instructions: u64,
    accesses: u64,
    dram_accesses: u64,
}

impl Hierarchy {
    /// Builds the paper's Table 4 platform with the chosen LLC.
    pub fn new(choice: LlcChoice) -> Self {
        let tech = match choice {
            LlcChoice::SramBaseline => CacheTech::Sram,
            LlcChoice::SttRam => CacheTech::SttRam,
            _ => CacheTech::Racetrack,
        };
        let config = SystemConfig::paper(tech);
        let llc: Box<dyn LlcModel> = match choice {
            LlcChoice::SramBaseline => Box::new(SimpleLlc::new(LlcDesign::sram())),
            LlcChoice::SttRam => Box::new(SimpleLlc::new(LlcDesign::stt_ram())),
            LlcChoice::RacetrackIdeal => Box::new(RacetrackLlc::ideal()),
            LlcChoice::RacetrackUnprotected => Box::new(RacetrackLlc::new(
                ProtectionKind::None,
                ShiftPolicy::Unconstrained,
            )),
            LlcChoice::RacetrackPeccO => Box::new(RacetrackLlc::new(
                ProtectionKind::SECDED_O,
                ShiftPolicy::StepByStep,
            )),
            LlcChoice::RacetrackPeccSWorst => Box::new(RacetrackLlc::new(
                ProtectionKind::SECDED,
                ShiftPolicy::FixedSafe {
                    worst_intensity_hz: 83_000_000,
                },
            )),
            LlcChoice::RacetrackPeccSAdaptive => Box::new(RacetrackLlc::new(
                ProtectionKind::SECDED,
                ShiftPolicy::Adaptive,
            )),
        };
        Self {
            l1: (0..config.cores)
                .map(|_| Cache::new(config.l1.capacity_bytes, config.l1.ways, config.line_bytes))
                .collect(),
            l2: Cache::new(config.l2.capacity_bytes, config.l2.ways, config.line_bytes),
            llc,
            config,
            choice,
            cycles: 0,
            instructions: 0,
            accesses: 0,
            dram_accesses: 0,
        }
    }

    /// Builds the platform with a *custom* racetrack LLC configuration
    /// (protection kind × policy combinations beyond the named
    /// [`LlcChoice`] presets, e.g. the SED and plain-SECDED variants of
    /// Figs. 10-11). Results are labelled with the closest preset for
    /// energy-model purposes: `RacetrackUnprotected`.
    pub fn with_racetrack(kind: ProtectionKind, policy: ShiftPolicy) -> Self {
        Self::from_racetrack_llc(RacetrackLlc::new(kind, policy))
    }

    /// [`Hierarchy::with_racetrack`] with per-shift outcome sampling
    /// enabled through the chosen engine's fault model (see
    /// [`RacetrackLlc::with_fault_sampling`]). Latency, risk and cache
    /// behaviour are identical to the unsampled hierarchy; the run
    /// additionally tallies observed sampled errors in
    /// [`crate::llc::LlcStats::sampled_shifts`] /
    /// [`crate::llc::LlcStats::observed_errors`].
    pub fn with_racetrack_sampled(
        kind: ProtectionKind,
        policy: ShiftPolicy,
        engine: rtm_model::analytic::Engine,
        seed: u64,
    ) -> Self {
        Self::from_racetrack_llc(RacetrackLlc::new(kind, policy).with_fault_sampling(engine, seed))
    }

    /// [`Hierarchy::with_racetrack_sampled`] with an explicit
    /// fault-process choice — the full scheme × fault-model matrix
    /// entry point.
    pub fn with_racetrack_faults(
        kind: ProtectionKind,
        policy: ShiftPolicy,
        fault_model: rtm_track::fault::FaultModelChoice,
        engine: rtm_model::analytic::Engine,
        seed: u64,
    ) -> Self {
        Self::from_racetrack_llc(RacetrackLlc::new(kind, policy).with_fault_model(
            fault_model,
            engine,
            seed,
        ))
    }

    fn from_racetrack_llc(llc: RacetrackLlc) -> Self {
        Self::with_llc(Box::new(llc), LlcChoice::RacetrackUnprotected)
    }

    /// Builds the platform around an arbitrary LLC backend — the
    /// queued-LLC mode: `rtm-serve` wraps a [`RacetrackLlc`] in its
    /// scheduling layer and mounts it here, so the L1/L2 front end and
    /// all accounting stay identical to the paper's configuration.
    /// `choice` labels the result for energy-model purposes.
    pub fn with_llc(llc: Box<dyn LlcModel>, choice: LlcChoice) -> Self {
        let tech = match choice {
            LlcChoice::SramBaseline => CacheTech::Sram,
            LlcChoice::SttRam => CacheTech::SttRam,
            _ => CacheTech::Racetrack,
        };
        let config = SystemConfig::paper(tech);
        Self {
            l1: (0..config.cores)
                .map(|_| Cache::new(config.l1.capacity_bytes, config.l1.ways, config.line_bytes))
                .collect(),
            l2: Cache::new(config.l2.capacity_bytes, config.l2.ways, config.line_bytes),
            llc,
            config,
            choice,
            cycles: 0,
            instructions: 0,
            accesses: 0,
            dram_accesses: 0,
        }
    }

    /// The configuration being simulated.
    pub fn choice(&self) -> LlcChoice {
        self.choice
    }

    /// Drives one access through the hierarchy, returning its latency.
    pub fn access(&mut self, a: &MemAccess) -> u64 {
        let kind = if a.is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.accesses += 1;
        self.instructions += 1 + a.gap_instructions as u64;
        // Gap instructions retire at 1 IPC before the access issues.
        self.cycles += a.gap_instructions as u64;

        let core = (a.core as usize) % self.l1.len();
        let mut latency = self.config.l1.access_cycles;
        let l1r = self.l1[core].access(a.addr, kind);
        if !l1r.is_hit() {
            rtm_obs::counter_add("hier.l1_misses", 1);
            latency += self.config.l2.access_cycles;
            let l2r = self.l2.access(a.addr, kind);
            if !l2r.is_hit() {
                rtm_obs::counter_add("hier.l2_misses", 1);
                let llc_resp = self.llc.access(a.addr, kind, self.cycles);
                latency += llc_resp.latency_cycles;
                if !llc_resp.hit {
                    latency += self.config.memory.access_cycles;
                    self.dram_accesses += 1;
                    rtm_obs::counter_add("hier.dram_accesses", 1);
                }
                if llc_resp.writeback {
                    self.dram_accesses += 1;
                    rtm_obs::counter_add("hier.dram_accesses", 1);
                }
            }
        }
        self.cycles += latency;
        rtm_obs::counter_add("hier.accesses", 1);
        rtm_obs::observe("hier.access_latency_cycles", latency as f64);
        latency
    }

    /// Runs `n` accesses from the generator and summarises.
    pub fn run(&mut self, gen: &mut TraceGenerator, n: u64) -> SimResult {
        for _ in 0..n {
            let a = gen.next_access();
            self.access(&a);
        }
        self.result()
    }

    /// Replays a pre-recorded access stream (see
    /// [`rtm_trace::replay`]) and summarises.
    pub fn run_trace(&mut self, accesses: &[MemAccess]) -> SimResult {
        for a in accesses {
            self.access(a);
        }
        self.result()
    }

    /// Snapshot of the current state as a result record.
    pub fn result(&self) -> SimResult {
        let duration = Seconds(self.cycles as f64 / self.config.clock_hz);
        let llc = self.llc.stats();
        let result = SimResult {
            choice: self.choice,
            accesses: self.accesses,
            instructions: self.instructions,
            cycles: self.cycles,
            duration,
            l1_misses: self.l1.iter().map(|c| c.stats().misses).sum(),
            l2_misses: self.l2.stats().misses,
            llc,
            activity: self.llc.activity(duration),
            dram_accesses: self.dram_accesses,
            shift_cycles: llc.shift_cycles,
            scale: self.llc.scale_stats(),
        };
        // Per-run gauges are NOT recorded here: `result()` runs inside
        // parallel sweep workers, where concurrent last-writer-wins
        // `gauge_set`s would make the registry depend on scheduling.
        // Callers that want the gauges invoke
        // [`SimResult::record_metrics`] after their parallel section.
        result
    }
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("choice", &self.choice)
            .field("cycles", &self.cycles)
            .field("accesses", &self.accesses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_trace::WorkloadProfile;

    fn run(choice: LlcChoice, workload: &str, n: u64) -> SimResult {
        let p = WorkloadProfile::by_name(workload).unwrap();
        let mut sys = Hierarchy::new(choice);
        sys.run(&mut TraceGenerator::new(p, 42), n)
    }

    #[test]
    fn counters_balance() {
        let r = run(LlcChoice::SramBaseline, "swaptions", 50_000);
        assert_eq!(r.accesses, 50_000);
        assert!(r.instructions >= r.accesses);
        assert!(r.cycles >= r.instructions / 2);
        assert!(r.l1_misses <= r.accesses);
        assert!(r.l2_misses <= r.l1_misses);
        assert!(r.llc.cache.accesses() == r.l2_misses);
    }

    #[test]
    fn hot_workload_mostly_hits_l1() {
        let r = run(LlcChoice::SramBaseline, "swaptions", 100_000);
        assert!(
            (r.l1_misses as f64) < 0.5 * r.accesses as f64,
            "l1 misses {} of {}",
            r.l1_misses,
            r.accesses
        );
    }

    #[test]
    fn capacity_sensitive_workload_prefers_bigger_llc() {
        // canneal's 100 MB working set thrashes a 4 MB SRAM LLC but
        // largely fits the 128 MB racetrack LLC.
        let sram = run(LlcChoice::SramBaseline, "canneal", 300_000);
        let rm = run(LlcChoice::RacetrackIdeal, "canneal", 300_000);
        assert!(
            rm.dram_accesses * 2 < sram.dram_accesses * 3,
            "rm {} vs sram {}",
            rm.dram_accesses,
            sram.dram_accesses
        );
        // Note: cold-start compulsory misses dominate short runs, so the
        // execution-time gap grows with run length (exercised in the
        // experiment drivers with longer traces).
    }

    #[test]
    fn insensitive_workload_sees_little_gain() {
        let sram = run(LlcChoice::SramBaseline, "blackscholes", 200_000);
        let rm = run(LlcChoice::RacetrackIdeal, "blackscholes", 200_000);
        let ratio = rm.cycles as f64 / sram.cycles as f64;
        assert!((0.8..1.2).contains(&ratio), "cycle ratio {ratio}");
    }

    #[test]
    fn protection_adds_bounded_slowdown() {
        let ideal = run(LlcChoice::RacetrackUnprotected, "streamcluster", 200_000);
        let adaptive = run(LlcChoice::RacetrackPeccSAdaptive, "streamcluster", 200_000);
        let pecc_o = run(LlcChoice::RacetrackPeccO, "streamcluster", 200_000);
        assert!(adaptive.cycles >= ideal.cycles);
        assert!(pecc_o.cycles >= adaptive.cycles);
        // Fig. 16: even p-ECC-O costs only a few percent of execution
        // time on average.
        let worst_ratio = pecc_o.cycles as f64 / ideal.cycles as f64;
        assert!(worst_ratio < 1.30, "p-ECC-O slowdown {worst_ratio}");
    }

    #[test]
    fn due_risk_orders_match_fig11() {
        let unprot = run(LlcChoice::RacetrackUnprotected, "canneal", 150_000);
        let adaptive = run(LlcChoice::RacetrackPeccSAdaptive, "canneal", 150_000);
        // Unprotected: everything is silent corruption, no DUEs.
        assert_eq!(unprot.llc.expected_dues, 0.0);
        assert!(unprot.llc.expected_sdcs > 0.0);
        // Adaptive p-ECC-S: SDCs essentially eliminated, DUEs tiny.
        assert!(adaptive.llc.expected_sdcs < unprot.llc.expected_sdcs * 1e-9);
        assert!(adaptive.due_mttf().as_secs() > unprot.sdc_mttf().as_secs());
    }

    #[test]
    fn shift_intensity_is_positive_for_racetrack() {
        let r = run(LlcChoice::RacetrackPeccSAdaptive, "canneal", 100_000);
        assert!(r.shift_intensity() > 0.0);
        assert!(r.llc.shift_steps > 0);
        assert!(r.llc.zero_shift_accesses > 0);
    }

    #[test]
    fn energy_accounting_runs() {
        let r = run(LlcChoice::RacetrackPeccSAdaptive, "vips", 100_000);
        let dyn_e = r.llc_dynamic_energy();
        let tot = r.llc_total_energy();
        assert!(dyn_e.value() > 0.0);
        assert!(tot.value() > dyn_e.value());
        assert!(r.system_energy().value() > tot.value());
    }

    #[test]
    fn sram_has_no_shifts() {
        let r = run(LlcChoice::SramBaseline, "canneal", 100_000);
        assert_eq!(r.llc.shift_ops, 0);
        assert_eq!(r.shift_cycles, 0);
        assert_eq!(r.llc.expected_sdcs, 0.0);
    }

    #[test]
    fn all_seven_choices_run() {
        for c in LlcChoice::ALL {
            let r = run(c, "x264", 30_000);
            assert_eq!(r.accesses, 30_000, "{c}");
        }
    }
}
