//! Last-level-cache backends: flat-latency SRAM / STT-RAM models and
//! the racetrack model with head-position tracking and the error-aware
//! shift controller.

use crate::cache::{AccessKind, AccessResult, Cache, CacheStats};
use rtm_controller::controller::{ShiftController, ShiftPolicy};
use rtm_cost::energy::LlcActivity;
use rtm_cost::technology::LlcDesign;
use rtm_model::analytic::Engine;
use rtm_model::params::DeviceParams;
use rtm_pecc::layout::ProtectionKind;
use rtm_track::fault::{FaultModel, FaultModelChoice, SelectedFaultModel};
use rtm_track::geometry::StripeGeometry;
use rtm_util::arena::PagedBytes;
use rtm_util::units::Seconds;

/// Counters common to all LLC backends.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LlcStats {
    /// Cache-level counters.
    pub cache: CacheStats,
    /// Shift operations issued (racetrack only).
    pub shift_ops: u64,
    /// Total shift steps (racetrack only).
    pub shift_steps: u64,
    /// Cycles spent shifting (STS pulses plus the p-ECC checks on the
    /// critical path — [`Self::verify_cycles`] is the check portion).
    pub shift_cycles: u64,
    /// Critical-path cycles spent in p-ECC position checks (a subset
    /// of [`Self::shift_cycles`]). Off-critical-path parking shifts
    /// contribute neither here nor to `shift_cycles`.
    pub verify_cycles: u64,
    /// Accesses that required no shift (head already aligned).
    pub zero_shift_accesses: u64,
    /// Expected detected-uncorrectable position errors (probability
    /// mass accumulated over the run, all stripes).
    pub expected_dues: f64,
    /// Expected silent corruptions.
    pub expected_sdcs: f64,
    /// Per-shift outcomes drawn by the optional fault-sampling engine
    /// (0 when sampling is off).
    pub sampled_shifts: u64,
    /// Sampled outcomes that were position errors.
    pub observed_errors: u64,
}

impl LlcStats {
    /// This stats block as an [`rtm_obs`] registry snapshot, under
    /// `llc.*` metric names (counts as counters, accumulated
    /// probabilities as gauges).
    pub fn to_metrics(&self) -> rtm_obs::metrics::RegistrySnapshot {
        let reg = rtm_obs::metrics::MetricsRegistry::new();
        reg.set_enabled(true);
        reg.counter_add("llc.hits", self.cache.hits);
        reg.counter_add("llc.misses", self.cache.misses);
        reg.counter_add("llc.writebacks", self.cache.writebacks);
        reg.counter_add("llc.reads", self.cache.reads);
        reg.counter_add("llc.writes", self.cache.writes);
        reg.counter_add("llc.shift_ops", self.shift_ops);
        reg.counter_add("llc.shift_steps", self.shift_steps);
        reg.counter_add("llc.shift_cycles", self.shift_cycles);
        reg.counter_add("llc.verify_cycles", self.verify_cycles);
        reg.counter_add("llc.zero_shift_accesses", self.zero_shift_accesses);
        reg.gauge_set("llc.expected_dues", self.expected_dues);
        reg.gauge_set("llc.expected_sdcs", self.expected_sdcs);
        reg.counter_add("engine.sample.shifts", self.sampled_shifts);
        reg.counter_add("engine.sample.errors", self.observed_errors);
        reg.snapshot()
    }
}

/// What an LLC access cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcResponse {
    /// Whether the line was present.
    pub hit: bool,
    /// Total LLC service latency in cycles (shift + array access),
    /// excluding any DRAM time on a miss (the hierarchy adds that).
    pub latency_cycles: u64,
    /// Whether a dirty victim had to be written back to memory.
    pub writeback: bool,
}

/// Occupancy of the lazily materialised per-group state, kept separate
/// from [`LlcStats`] so the lane-path oracle-equality gates (which merge
/// and compare `LlcStats` per bank) are untouched by scale accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleStats {
    /// Stripe groups the configured capacity spans.
    pub configured_groups: u64,
    /// Groups whose state has been touched (head register written).
    pub materialised_groups: u64,
    /// Zero-shift accesses answered while the group's state was still
    /// untouched (the pristine fast path).
    pub pristine_hits: u64,
    /// Approximate heap bytes held by per-group state (head store pages
    /// plus arena slots where applicable).
    pub arena_bytes: u64,
}

impl ScaleStats {
    /// Records the occupancy gauges into the given registry.
    pub fn record(&self, reg: &rtm_obs::metrics::MetricsRegistry) {
        reg.gauge_set("scale.configured_groups", self.configured_groups as f64);
        reg.gauge_set("scale.materialised_groups", self.materialised_groups as f64);
        reg.gauge_set("scale.pristine_hits", self.pristine_hits as f64);
        reg.gauge_set("scale.arena_bytes", self.arena_bytes as f64);
    }
}

/// Interface the hierarchy drives.
pub trait LlcModel {
    /// Performs an access at absolute time `now_cycles`.
    fn access(&mut self, addr: u64, kind: AccessKind, now_cycles: u64) -> LlcResponse;

    /// Counters so far.
    fn stats(&self) -> LlcStats;

    /// The design point (latency/energy constants).
    fn design(&self) -> &LlcDesign;

    /// Activity record for energy accounting; `duration` is filled by
    /// the caller that knows wall-clock time.
    fn activity(&self, duration: Seconds) -> LlcActivity;

    /// Occupancy of lazily materialised state. Backends without lazy
    /// state (flat-latency models) report the default all-zero record.
    fn scale_stats(&self) -> ScaleStats {
        ScaleStats::default()
    }
}

/// A flat-latency LLC (SRAM or STT-RAM).
#[derive(Debug, Clone)]
pub struct SimpleLlc {
    cache: Cache,
    design: LlcDesign,
}

impl SimpleLlc {
    /// Builds the LLC for a design point with 64 B lines, 16 ways.
    pub fn new(design: LlcDesign) -> Self {
        Self {
            cache: Cache::new(design.capacity_bytes, 16, 64),
            design,
        }
    }
}

impl LlcModel for SimpleLlc {
    fn access(&mut self, addr: u64, kind: AccessKind, _now: u64) -> LlcResponse {
        let r = self.cache.access(addr, kind);
        let latency = match kind {
            AccessKind::Read => self.design.read_cycles,
            AccessKind::Write => self.design.write_cycles,
        };
        LlcResponse {
            hit: r.is_hit(),
            latency_cycles: latency,
            writeback: matches!(
                r,
                AccessResult::Miss {
                    writeback: Some(_),
                    ..
                }
            ),
        }
    }

    fn stats(&self) -> LlcStats {
        LlcStats {
            cache: *self.cache.stats(),
            ..LlcStats::default()
        }
    }

    fn design(&self) -> &LlcDesign {
        &self.design
    }

    fn activity(&self, duration: Seconds) -> LlcActivity {
        let s = self.cache.stats();
        LlcActivity {
            reads: s.reads,
            writes: s.writes + s.writebacks,
            shift_steps: 0,
            shift_ops: 0,
            pecc_checks: 0,
            pecc_corrections: 0,
            duration,
        }
    }
}

/// Idle head management policy, in the spirit of the head-management
/// prior work the paper builds on (TapeCache / cross-layer design):
/// what a stripe group's head does between requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HeadPolicy {
    /// Leave the head where the last access put it (the paper's
    /// configuration).
    #[default]
    Stay,
    /// During idle time, drift the head back to the centre of its
    /// range, halving the expected on-demand distance for random
    /// access at the cost of extra (off-critical-path) shift energy
    /// and risk.
    ReturnToCentre,
}

/// The racetrack LLC: cache bookkeeping plus physical head positions
/// and the position-error-aware shift controller.
///
/// Data mapping follows the paper (and STAG): each 64-byte line is
/// interleaved bit-by-bit over a group of 512 stripes sharing one shift
/// command; a group of 64-domain stripes therefore holds 64 lines, and
/// consecutive physical lines sit in adjacent domains. Every group has
/// its own head-position register.
#[derive(Debug, Clone)]
pub struct RacetrackLlc {
    cache: Cache,
    design: LlcDesign,
    /// One shift controller per bank (Section 5.3: interleaved banks
    /// service requests independently, so each adapter measures its own
    /// inter-shift interval).
    controllers: Vec<ShiftController>,
    geometry: StripeGeometry,
    /// Current head position of each stripe group, stored sparsely:
    /// untouched groups cost nothing and read as head 0 (the
    /// fabrication state), so a GB-scale LLC only pays for the groups a
    /// trace actually visits.
    heads: PagedBytes,
    stripes_per_group: u32,
    stats_shift_ops: u64,
    stats_shift_steps: u64,
    stats_shift_cycles: u64,
    stats_verify_cycles: u64,
    zero_shift: u64,
    /// Whether the controller models an idealised zero-latency shift
    /// (the paper's "RM-Ideal" series in Fig. 16).
    ideal_shifts: bool,
    /// Idle head management.
    head_policy: HeadPolicy,
    /// Steps spent on idle (off-critical-path) repositioning.
    idle_steps: u64,
    /// Optional per-shift outcome sampler: when set, every planned
    /// sub-shift draws a concrete outcome from the engine's fault
    /// model (alias tables for analytic, Gaussian for mc), giving the
    /// sweep an *observed* error count alongside the controller's
    /// expected-value risk accounting.
    sampler: Option<SelectedFaultModel>,
    sampled_shifts: u64,
    observed_errors: u64,
    /// Zero-shift accesses served while the group's head register was
    /// still untouched (lazy fast path; subset of `zero_shift`).
    pristine_hits: u64,
}

impl RacetrackLlc {
    /// Number of stripes a line spans (512 bits = 64 B).
    pub const STRIPES_PER_GROUP: u32 = 512;

    /// Builds the racetrack LLC with the given protection scheme and
    /// safe-distance policy, serviced by a single shift controller (the
    /// paper's default "one request at a time" assumption; see
    /// `rtm-serve` for the queued, bank-parallel serving mode that
    /// lifts it).
    pub fn new(kind: ProtectionKind, policy: ShiftPolicy) -> Self {
        Self::with_banks(kind, policy, 1)
    }

    /// Builds a banked racetrack LLC: stripe groups are interleaved
    /// over `banks` independent controllers, each tracking its own
    /// inter-shift interval (Section 5.3's interleaving note — the
    /// per-bank intensity drops by the bank count, so the adapter can
    /// afford longer shifts at the same reliability target).
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn with_banks(kind: ProtectionKind, policy: ShiftPolicy, banks: u32) -> Self {
        assert!(banks > 0, "at least one bank required");
        let design = LlcDesign::racetrack();
        let geometry = StripeGeometry::paper_default();
        // Bank-major directory storage: each bank's (4-set-per-group,
        // round-robin-interleaved) sets become one contiguous slice, so
        // a per-bank serving worker touches — and faults in — only its
        // own banks' share of the arrays.
        let sets_per_group = geometry.data_len() as u32 / 16;
        let cache =
            Cache::new(design.capacity_bytes, 16, 64).with_bank_layout(banks, sets_per_group);
        let lines = design.capacity_bytes / 64;
        let groups = lines / geometry.data_len() as u64;
        Self {
            cache,
            design,
            controllers: (0..banks)
                .map(|_| ShiftController::new(kind, policy))
                .collect(),
            geometry,
            heads: PagedBytes::new(groups as usize),
            stripes_per_group: Self::STRIPES_PER_GROUP,
            stats_shift_ops: 0,
            stats_shift_steps: 0,
            stats_shift_cycles: 0,
            stats_verify_cycles: 0,
            zero_shift: 0,
            ideal_shifts: false,
            head_policy: HeadPolicy::Stay,
            idle_steps: 0,
            sampler: None,
            sampled_shifts: 0,
            observed_errors: 0,
            pristine_hits: 0,
        }
    }

    /// Rebuilds the LLC at a different capacity (builder style), keeping
    /// the bank layout, protection scheme and policies. The paper's
    /// preset stays at 128 MB; GB-scale serving experiments override it
    /// here. Must be called before any traffic.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` does not divide into whole 64-line
    /// stripe groups and banks, or if traffic has already been issued.
    pub fn with_capacity(mut self, capacity_bytes: u64) -> Self {
        assert!(
            self.cache.stats().reads + self.cache.stats().writes == 0,
            "capacity override must precede traffic"
        );
        let banks = self.controllers.len() as u32;
        let sets_per_group = self.geometry.data_len() as u32 / 16;
        self.design.capacity_bytes = capacity_bytes;
        self.cache = Cache::new(capacity_bytes, 16, 64).with_bank_layout(banks, sets_per_group);
        let lines = capacity_bytes / 64;
        let groups = lines / self.geometry.data_len() as u64;
        self.heads = PagedBytes::new(groups as usize);
        self
    }

    /// Occupancy of the sparse head store.
    pub fn scale_stats_racetrack(&self) -> ScaleStats {
        ScaleStats {
            configured_groups: self.heads.len() as u64,
            materialised_groups: self.heads.touched() as u64,
            pristine_hits: self.pristine_hits,
            arena_bytes: self.heads.approx_bytes() as u64,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.controllers.len() as u32
    }

    /// Sets the idle head-management policy (builder style).
    pub fn with_head_policy(mut self, policy: HeadPolicy) -> Self {
        self.head_policy = policy;
        self
    }

    /// Enables per-shift outcome sampling through the chosen engine's
    /// fault model (builder style). Sampling never changes latency or
    /// risk accounting — it adds the observed error tallies
    /// ([`LlcStats::sampled_shifts`] / [`LlcStats::observed_errors`])
    /// on top of the statistical model, with Table 1 device parameters.
    pub fn with_fault_sampling(self, engine: Engine, seed: u64) -> Self {
        self.with_fault_model(FaultModelChoice::Engine, engine, seed)
    }

    /// Enables per-shift outcome sampling through an explicit
    /// [`FaultModelChoice`] (builder style) — the `--fault-model` axis.
    /// Like [`with_fault_sampling`](Self::with_fault_sampling), sampling
    /// only adds observed-error tallies; the statistical accounting is
    /// untouched.
    pub fn with_fault_model(mut self, choice: FaultModelChoice, engine: Engine, seed: u64) -> Self {
        self.sampler = Some(choice.build(engine, &DeviceParams::table1(), seed));
        self
    }

    /// Draws one outcome per planned sub-shift when sampling is on.
    fn sample_sequence(&mut self, sequence: &[u32]) {
        if let Some(model) = &mut self.sampler {
            let mut errors = 0u64;
            for &d in sequence {
                if !model.sample(d).is_success() {
                    errors += 1;
                }
            }
            self.sampled_shifts += sequence.len() as u64;
            self.observed_errors += errors;
            rtm_obs::counter_add("engine.sample.shifts", sequence.len() as u64);
            if errors > 0 {
                rtm_obs::counter_add("engine.sample.errors", errors);
            }
        }
    }

    /// Steps spent repositioning heads off the critical path.
    pub fn idle_steps(&self) -> u64 {
        self.idle_steps
    }

    /// An idealised racetrack LLC whose shifts are free (Fig. 16's
    /// "RM-Ideal" upper bound). Protection risk is still accounted as
    /// zero — the ideal memory has no position errors either.
    pub fn ideal() -> Self {
        let mut llc = Self::new(ProtectionKind::None, ShiftPolicy::Unconstrained);
        llc.ideal_shifts = true;
        llc
    }

    /// The stripe-group geometry.
    pub fn geometry(&self) -> &StripeGeometry {
        &self.geometry
    }

    /// The shift controller of bank 0 (diagnostics).
    pub fn controller(&self) -> &ShiftController {
        &self.controllers[0]
    }

    /// The shift controller of a specific bank. The per-bank serving
    /// path reads these directly so bank-sharded results can be merged
    /// in bank order, reproducing the aggregated controller totals'
    /// exact floating-point summation order.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= self.banks()`.
    pub fn controller_at(&self, bank: usize) -> &ShiftController {
        &self.controllers[bank]
    }

    /// Aggregated controller statistics across all banks.
    fn controller_totals(&self) -> rtm_controller::controller::ControllerStats {
        let mut total = rtm_controller::controller::ControllerStats::default();
        for c in &self.controllers {
            let s = c.stats();
            total.requests += s.requests;
            total.operations += s.operations;
            total.steps += s.steps;
            total.shift_cycles += s.shift_cycles;
            total.checks += s.checks;
            total.batched_requests += s.batched_requests;
            total.batch_saved_cycles += s.batch_saved_cycles;
            total.expected_dues += s.expected_dues;
            total.expected_sdcs += s.expected_sdcs;
        }
        total
    }

    /// Maps a (set, way) slot to its stripe group and domain index.
    fn slot_to_group_domain(&self, set: u64, way: u32) -> (usize, usize) {
        let line_index = set * self.cache.ways() as u64 + way as u64;
        let d = self.geometry.data_len() as u64;
        ((line_index / d) as usize, (line_index % d) as usize)
    }

    /// The stripe group an access to `addr` lands in. With 16 ways and
    /// 64 domains per group this depends only on the set (four
    /// consecutive sets share a group), so it is exact regardless of
    /// which way the line occupies — schedulers use it to route
    /// requests to per-group queues.
    pub fn group_of(&self, addr: u64) -> usize {
        let set = self.cache.set_of(addr);
        self.slot_to_group_domain(set, 0).0
    }

    /// Number of stripe groups.
    pub fn groups(&self) -> usize {
        self.heads.len()
    }

    /// Current head position of a stripe group.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn head_position(&self, group: usize) -> u8 {
        self.heads.get(group)
    }

    /// Predicts the shift distance an access to `addr` would need right
    /// now, without touching any state: the way is resolved by a
    /// non-mutating cache probe (falling back to the LRU victim the
    /// allocation would pick on a miss), mapped to its domain, and
    /// compared against the group's head position. Exact as long as no
    /// other access intervenes — which is what a scheduler comparing
    /// queued candidates wants.
    pub fn predicted_shift_distance(&self, addr: u64) -> u32 {
        let set = self.cache.set_of(addr);
        let way = self
            .cache
            .probe(addr)
            .unwrap_or_else(|| self.cache.victim_way(set));
        let (group, domain) = self.slot_to_group_domain(set, way);
        let target = self.geometry.head_position_for(domain) as u8;
        self.heads.get(group).abs_diff(target) as u32
    }

    /// Estimated service latency in cycles for an access to `addr`
    /// (shift under the bank's current plan costing plus array access),
    /// using [`RacetrackLlc::predicted_shift_distance`]. Non-mutating.
    pub fn estimated_latency(&self, addr: u64, kind: AccessKind) -> u64 {
        let array = match kind {
            AccessKind::Read => self.design.read_cycles,
            AccessKind::Write => self.design.write_cycles,
        };
        let shift = if self.ideal_shifts {
            0
        } else {
            match self.predicted_shift_distance(addr) {
                0 => 0,
                d => {
                    let group = self.group_of(addr);
                    let bank = group % self.controllers.len();
                    self.controllers[bank].cost_sequence(&[d]).latency.count()
                }
            }
        };
        shift + array
    }

    /// Positions the group's head for `domain`, issuing a shift through
    /// the controller if needed. Returns the shift latency in cycles.
    /// `fused` marks a batched-stream continuation: the bank's STS
    /// driver is still armed from the directly preceding request, so
    /// the shift is planned via
    /// [`ShiftController::plan_shift_continuation`].
    fn position_head(&mut self, group: usize, domain: usize, now: u64, fused: bool) -> u64 {
        let target = self.geometry.head_position_for(domain) as u8;
        let current = self.heads.get(group);
        let latency = if target == current {
            self.zero_shift += 1;
            if !self.heads.is_touched(group) {
                // The group's head register has never been written: the
                // access was answered entirely from fabrication-state
                // defaults without materialising anything.
                self.pristine_hits += 1;
            }
            rtm_obs::counter_add("llc.zero_shift_accesses", 1);
            0
        } else {
            let distance = current.abs_diff(target) as u32;
            let bank = group % self.controllers.len();
            let plan = if fused {
                self.controllers[bank].plan_shift_continuation(distance, now)
            } else {
                self.controllers[bank].plan_shift(distance, now)
            };
            self.stats_shift_ops += plan.sequence.len() as u64;
            self.stats_shift_steps += distance as u64;
            let latency = if self.ideal_shifts {
                0
            } else {
                plan.latency.count()
            };
            self.stats_shift_cycles += latency;
            if !self.ideal_shifts {
                self.stats_verify_cycles +=
                    plan.checks as u64 * rtm_controller::sequence::PECC_CHECK_CYCLES;
            }
            self.sample_sequence(&plan.sequence);
            latency
        };
        if target != current {
            self.heads.set(group, target);
        }
        // Idle management: after servicing, drift the head back to the
        // centre of its range off the critical path.
        if self.head_policy == HeadPolicy::ReturnToCentre {
            self.park_group(group, now + latency);
        }
        latency
    }

    /// Drifts a group's head back to the centre of its range off the
    /// critical path, so the next access finds it at most half the
    /// stripe away. The steps (and their error risk) are charged
    /// through the bank controller, the latency is not — parking is
    /// meant for idle periods. Shift-aware schedulers call this when a
    /// group's queue drains; [`HeadPolicy::ReturnToCentre`] calls it
    /// after every access.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn park_group(&mut self, group: usize, now: u64) {
        let rest = (self.geometry.max_shift() / 2) as u8;
        if self.heads.get(group) != rest {
            let distance = self.heads.get(group).abs_diff(rest) as u32;
            let bank = group % self.controllers.len();
            let plan = self.controllers[bank].plan_shift(distance, now);
            self.stats_shift_ops += plan.sequence.len() as u64;
            self.stats_shift_steps += distance as u64;
            self.idle_steps += distance as u64;
            rtm_obs::counter_add("llc.idle_steps", distance as u64);
            self.sample_sequence(&plan.sequence);
            self.heads.set(group, rest);
        }
    }

    /// [`LlcModel::access`] with explicit stream fusion: `fused = true`
    /// marks this access as a continuation of a batched shift command
    /// stream on its bank (the directly preceding access kept the STS
    /// driver armed), so a required shift skips its stage-2 settle.
    /// `access_fused(addr, kind, now, false)` is exactly
    /// [`LlcModel::access`].
    pub fn access_fused(
        &mut self,
        addr: u64,
        kind: AccessKind,
        now: u64,
        fused: bool,
    ) -> LlcResponse {
        let set = self.cache.set_of(addr);
        let r = self.cache.access(addr, kind);
        let (group, domain) = self.slot_to_group_domain(set, r.way());
        let shift_latency = self.position_head(group, domain, now, fused);
        let array = match kind {
            AccessKind::Read => self.design.read_cycles,
            AccessKind::Write => self.design.write_cycles,
        };
        let resp = LlcResponse {
            hit: r.is_hit(),
            latency_cycles: shift_latency + array,
            writeback: matches!(
                r,
                AccessResult::Miss {
                    writeback: Some(_),
                    ..
                }
            ),
        };
        let reg = rtm_obs::global().registry();
        if reg.enabled() {
            reg.counter_add("llc.accesses", 1);
            if !resp.hit {
                reg.counter_add("llc.misses", 1);
            }
            if resp.writeback {
                reg.counter_add("llc.writebacks", 1);
            }
            reg.observe("llc.access_latency_cycles", resp.latency_cycles as f64);
        }
        resp
    }
}

impl LlcModel for RacetrackLlc {
    fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> LlcResponse {
        self.access_fused(addr, kind, now, false)
    }

    fn stats(&self) -> LlcStats {
        let c = self.controller_totals();
        LlcStats {
            cache: *self.cache.stats(),
            shift_ops: self.stats_shift_ops,
            shift_steps: self.stats_shift_steps,
            shift_cycles: self.stats_shift_cycles,
            verify_cycles: self.stats_verify_cycles,
            zero_shift_accesses: self.zero_shift,
            // Each commanded sequence runs on every stripe of the group;
            // any stripe failing fails the group.
            expected_dues: c.expected_dues * self.stripes_per_group as f64,
            expected_sdcs: c.expected_sdcs * self.stripes_per_group as f64,
            sampled_shifts: self.sampled_shifts,
            observed_errors: self.observed_errors,
        }
    }

    fn design(&self) -> &LlcDesign {
        &self.design
    }

    fn scale_stats(&self) -> ScaleStats {
        self.scale_stats_racetrack()
    }

    fn activity(&self, duration: Seconds) -> LlcActivity {
        let s = self.cache.stats();
        let c = self.controller_totals();
        LlcActivity {
            reads: s.reads,
            writes: s.writes + s.writebacks,
            shift_steps: self.stats_shift_steps,
            shift_ops: self.stats_shift_ops,
            pecc_checks: c.checks,
            pecc_corrections: 0,
            duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(kind: ProtectionKind, policy: ShiftPolicy) -> RacetrackLlc {
        RacetrackLlc::new(kind, policy)
    }

    #[test]
    fn group_mapping_is_contiguous() {
        let llc = rm(ProtectionKind::None, ShiftPolicy::Unconstrained);
        // Lines 0..63 share group 0, domains 0..63.
        assert_eq!(llc.slot_to_group_domain(0, 0), (0, 0));
        assert_eq!(llc.slot_to_group_domain(0, 15), (0, 15));
        assert_eq!(llc.slot_to_group_domain(3, 15), (0, 63));
        assert_eq!(llc.slot_to_group_domain(4, 0), (1, 0));
    }

    #[test]
    fn repeated_access_to_same_line_shifts_once() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let r1 = llc.access(0x40, AccessKind::Read, 0);
        let r2 = llc.access(0x40, AccessKind::Read, 100);
        assert!(!r1.hit && r2.hit);
        // Second access needs no shift: head already positioned.
        assert_eq!(r2.latency_cycles, llc.design().read_cycles);
        assert_eq!(llc.stats().zero_shift_accesses, 1);
    }

    #[test]
    fn heads_stay_sparse_and_scale_stats_track_occupancy() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let s0 = llc.scale_stats_racetrack();
        assert_eq!(s0.configured_groups, llc.groups() as u64);
        assert_eq!(s0.materialised_groups, 0);
        assert_eq!(s0.pristine_hits, 0);
        // An access that needs a shift materialises exactly one group's
        // head register.
        llc.access(0x40, AccessKind::Read, 0);
        assert_eq!(llc.scale_stats_racetrack().materialised_groups, 1);
        // Re-access: zero-shift on an already-touched head is not a
        // pristine hit.
        llc.access(0x40, AccessKind::Read, 10);
        let s1 = llc.scale_stats_racetrack();
        assert_eq!(s1.materialised_groups, 1);
        assert_eq!(s1.pristine_hits, 0);
        // Untouched groups still read the fabrication default.
        assert_eq!(llc.head_position(llc.groups() - 1), 0);
        assert!(s1.arena_bytes > 0);
    }

    #[test]
    fn with_capacity_scales_group_count() {
        let llc = RacetrackLlc::with_banks(ProtectionKind::SECDED, ShiftPolicy::Adaptive, 8)
            .with_capacity(1 << 30);
        assert_eq!(llc.design().capacity_bytes, 1 << 30);
        assert_eq!(llc.groups(), (1 << 30) / 64 / 64);
        assert_eq!(llc.banks(), 8);
        // A 16 GB configuration spans ≥ 4 Mi groups ≥ 2 Gi stripes, and
        // costs only the page directory until touched.
        let big = RacetrackLlc::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive)
            .with_capacity(16 << 30);
        assert_eq!(big.groups(), (16u64 << 30) as usize / 64 / 64);
        assert_eq!(big.scale_stats_racetrack().materialised_groups, 0);
        assert!(
            big.scale_stats_racetrack().arena_bytes < 64 << 20,
            "untouched 16 GB head store stays under 64 MB of directory"
        );
    }

    #[test]
    fn different_domains_force_shifts() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        // Same group, different ways → different domains: line 0 then
        // line 1 (set 0 way 1 after allocating a second line).
        llc.access(0x40, AccessKind::Read, 0);
        let before = llc.stats().shift_steps;
        // A second address in set 0: 0x40 + sets*64.
        let stride = llc.cache.sets() * 64;
        llc.access(0x40 + stride, AccessKind::Read, 10);
        assert!(llc.stats().shift_steps > before);
    }

    #[test]
    fn fused_access_saves_exactly_the_sts_setup() {
        let mut plain = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut fused = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let stride = plain.cache.sets() * 64;
        plain.access(0x40, AccessKind::Read, 0);
        fused.access(0x40, AccessKind::Read, 0);
        // Same shifting access on both, one as a stream continuation:
        // only the stage-2 settle differs, nothing else.
        let a = plain.access_fused(0x40 + stride, AccessKind::Read, 10, false);
        let b = fused.access_fused(0x40 + stride, AccessKind::Read, 10, true);
        let setup = rtm_model::sts::StsTiming::paper().setup_cycles().count();
        assert_eq!(a.hit, b.hit);
        assert_eq!(a.latency_cycles, b.latency_cycles + setup);
        let (sa, sb) = (plain.stats(), fused.stats());
        assert_eq!(sa.shift_steps, sb.shift_steps);
        assert_eq!(sa.shift_ops, sb.shift_ops);
        assert_eq!(sa.verify_cycles, sb.verify_cycles);
        assert_eq!(sa.expected_dues, sb.expected_dues);
        assert_eq!(sa.shift_cycles, sb.shift_cycles + setup);
        // A fused access that needs no shift is identical to a plain
        // hit (nothing to fuse).
        let c = fused.access_fused(0x40 + stride, AccessKind::Read, 50, true);
        assert_eq!(c.latency_cycles, fused.design().read_cycles);
    }

    #[test]
    fn predicted_distance_matches_realised_shift() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let stride = llc.cache.sets() * 64;
        llc.access(0x40, AccessKind::Read, 0);
        // A hit on the resident line: prediction must see distance 0.
        assert_eq!(llc.predicted_shift_distance(0x40), 0);
        // A second line in the same set lands in the predicted victim
        // way; the predicted distance must equal the steps the access
        // then actually performs.
        let addr = 0x40 + stride;
        let predicted = llc.predicted_shift_distance(addr);
        let before = llc.stats().shift_steps;
        llc.access(addr, AccessKind::Read, 10);
        assert_eq!(llc.stats().shift_steps - before, predicted as u64);
    }

    #[test]
    fn estimated_latency_matches_realised_response() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
        let stride = llc.cache.sets() * 64;
        llc.access(0, AccessKind::Read, 0);
        for i in 1..8u64 {
            let addr = i * stride;
            let est = llc.estimated_latency(addr, AccessKind::Read);
            let r = llc.access(addr, AccessKind::Read, i * 1000);
            // Unconstrained plans are exactly one sub-shift, so the
            // cost_sequence estimate is exact.
            assert_eq!(est, r.latency_cycles, "access {i}");
        }
    }

    #[test]
    fn group_of_depends_only_on_set() {
        let llc = rm(ProtectionKind::None, ShiftPolicy::Unconstrained);
        assert_eq!(llc.group_of(0x40), 0);
        // Sets 0..3 share group 0; set 4 starts group 1.
        assert_eq!(llc.group_of(3 * 64), 0);
        assert_eq!(llc.group_of(4 * 64), 1);
        assert!(llc.groups() > 0);
        assert_eq!(llc.head_position(0), 0);
    }

    #[test]
    fn protected_llc_accumulates_risk_over_all_stripes() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Unconstrained);
        let stride = llc.cache.sets() * 64;
        for i in 0..100u64 {
            llc.access(i * stride, AccessKind::Read, i * 50);
        }
        let s = llc.stats();
        assert!(s.expected_dues > 0.0);
        // Risk is per stripe × 512.
        let c = llc.controller().stats();
        assert!((s.expected_dues / c.expected_dues - 512.0).abs() < 1e-6);
    }

    #[test]
    fn verify_cycles_are_the_check_portion_of_shift_cycles() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let stride = llc.cache.sets() * 64;
        let mut t = 0u64;
        for i in 0..200u64 {
            t += 500;
            llc.access((i % 16) * stride, AccessKind::Read, t);
        }
        let s = llc.stats();
        assert!(s.verify_cycles > 0);
        assert!(s.verify_cycles < s.shift_cycles);
        // Without parking, every controller check is on the critical
        // path, so the subset is exactly checks × the check latency.
        let c = llc.controller_totals();
        assert_eq!(
            s.verify_cycles,
            c.checks * rtm_controller::sequence::PECC_CHECK_CYCLES
        );
        // Unprotected memory performs no checks at all.
        let mut bare = rm(ProtectionKind::None, ShiftPolicy::Unconstrained);
        bare.access(0, AccessKind::Read, 0);
        bare.access(stride, AccessKind::Read, 10);
        assert_eq!(bare.stats().verify_cycles, 0);
        assert!(bare.stats().shift_cycles > 0);
    }

    #[test]
    fn ideal_llc_has_free_shifts() {
        let mut llc = RacetrackLlc::ideal();
        let stride = llc.cache.sets() * 64;
        llc.access(0, AccessKind::Read, 0);
        let r = llc.access(stride, AccessKind::Read, 10);
        assert_eq!(r.latency_cycles, llc.design().read_cycles);
        assert!(llc.stats().shift_steps > 0, "shifts counted but free");
        assert_eq!(llc.stats().shift_cycles, 0);
    }

    #[test]
    fn simple_llc_flat_latency() {
        let mut llc = SimpleLlc::new(LlcDesign::sram());
        let r = llc.access(0x1234, AccessKind::Read, 0);
        assert_eq!(r.latency_cycles, 24);
        let w = llc.access(0x1234, AccessKind::Write, 1);
        assert_eq!(w.latency_cycles, 22);
        assert!(w.hit);
    }

    #[test]
    fn step_by_step_policy_costs_more_cycles() {
        let mut adaptive = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut stepwise = rm(ProtectionKind::SECDED_O, ShiftPolicy::StepByStep);
        let stride = adaptive.cache.sets() * 64;
        let mut t = 0;
        for i in 0..200u64 {
            // Jump between distant ways to force long shifts; generous
            // intervals let the adaptive policy use long single shifts.
            let addr = (i % 16) * stride;
            t += 10_000;
            adaptive.access(addr, AccessKind::Read, t);
            stepwise.access(addr, AccessKind::Read, t);
        }
        let a = adaptive.stats().shift_cycles;
        let s = stepwise.stats().shift_cycles;
        assert!(s > a, "step-by-step {s} vs adaptive {a}");
    }

    #[test]
    fn return_to_centre_halves_critical_path_distance() {
        // Random-access pattern over many ways: centring the head
        // between requests cuts the on-demand distance (latency) while
        // paying more total steps (energy) — the head-management trade.
        let mut stay = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut centre = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive)
            .with_head_policy(HeadPolicy::ReturnToCentre);
        let stride = stay.cache.sets() * 64;
        let mut rng = rtm_util::rng::SmallRng64::new(11);
        let mut t = 0u64;
        for _ in 0..1500 {
            let way = rng.next_below(16);
            let addr = way * stride; // same set, 16 ways -> domains 0..15
            t += 200;
            stay.access(addr, AccessKind::Read, t);
            centre.access(addr, AccessKind::Read, t);
        }
        let s = stay.stats();
        let c = centre.stats();
        assert!(
            c.shift_cycles < s.shift_cycles,
            "centre {} vs stay {} critical-path cycles",
            c.shift_cycles,
            s.shift_cycles
        );
        assert!(
            c.shift_steps > s.shift_steps,
            "centring must cost extra total steps"
        );
        assert!(centre.idle_steps() > 0);
        assert_eq!(stay.idle_steps(), 0);
    }

    #[test]
    fn banked_adaptive_sees_longer_intervals() {
        // Interleaved traffic over many groups: a single adapter sees
        // back-to-back shifts (short intervals, conservative sequences)
        // while per-bank adapters each see 1/N of the traffic and can
        // afford faster sequences at the same reliability target.
        let mut single = RacetrackLlc::with_banks(ProtectionKind::SECDED, ShiftPolicy::Adaptive, 1);
        let mut banked = RacetrackLlc::with_banks(ProtectionKind::SECDED, ShiftPolicy::Adaptive, 8);
        assert_eq!(banked.banks(), 8);
        let stride = single.cache.sets() * 64;
        let mut t = 0u64;
        for i in 0..2000u64 {
            // Rotate across 32 groups (addresses in different sets) and
            // across ways to force long shifts on each group.
            let group = i % 32;
            let way_jump = (i / 32) % 8;
            let addr = group * 4 * 64 + way_jump * stride;
            t += 40;
            single.access(addr, AccessKind::Read, t);
            banked.access(addr, AccessKind::Read, t);
        }
        let s = single.stats();
        let b = banked.stats();
        assert_eq!(s.shift_steps, b.shift_steps, "same physical work");
        assert!(
            b.shift_cycles <= s.shift_cycles,
            "banked {} vs single {}",
            b.shift_cycles,
            s.shift_cycles
        );
        assert!(b.shift_ops <= s.shift_ops);
    }

    #[test]
    fn fault_sampling_observes_without_changing_timing() {
        let mut plain = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let mut sampled = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive)
            .with_fault_sampling(Engine::Analytic, 9);
        let stride = plain.cache.sets() * 64;
        let mut t = 0u64;
        for i in 0..2000u64 {
            let addr = (i % 16) * stride;
            t += 500;
            let a = plain.access(addr, AccessKind::Read, t);
            let b = sampled.access(addr, AccessKind::Read, t);
            assert_eq!(a, b, "sampling must not perturb responses");
        }
        let p = plain.stats();
        let s = sampled.stats();
        assert_eq!(p.shift_cycles, s.shift_cycles);
        assert_eq!(p.expected_dues, s.expected_dues);
        assert_eq!(p.sampled_shifts, 0);
        // One drawn outcome per planned sub-shift.
        assert_eq!(s.sampled_shifts, s.shift_ops);
        assert!(s.observed_errors <= s.sampled_shifts);
    }

    #[test]
    fn fault_sampling_is_deterministic_per_seed() {
        let run = |engine: Engine, seed: u64| {
            let mut llc =
                rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive).with_fault_sampling(engine, seed);
            let stride = llc.cache.sets() * 64;
            let mut t = 0u64;
            for i in 0..3000u64 {
                t += 200;
                llc.access((i % 16) * stride, AccessKind::Read, t);
            }
            let s = llc.stats();
            (s.sampled_shifts, s.observed_errors)
        };
        for engine in [Engine::Analytic, Engine::MonteCarlo] {
            assert_eq!(run(engine, 77), run(engine, 77), "{engine}");
        }
    }

    #[test]
    fn activity_reflects_counters() {
        let mut llc = rm(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let stride = llc.cache.sets() * 64;
        llc.access(0, AccessKind::Read, 0);
        llc.access(stride, AccessKind::Write, 10);
        let a = llc.activity(Seconds(1e-6));
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 1);
        assert!(a.shift_steps > 0);
        assert!(a.pecc_checks > 0);
        assert_eq!(a.duration, Seconds(1e-6));
    }
}
