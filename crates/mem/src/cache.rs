//! Generic set-associative LRU cache bookkeeping.

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Outcome of a cache lookup-with-allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present. Carries its way index.
    Hit {
        /// Way within the set where the line was found.
        way: u32,
    },
    /// The line was absent and has been allocated. Carries the way it
    /// landed in and, if a dirty line was displaced, that victim's
    /// address.
    Miss {
        /// Way the new line was installed into.
        way: u32,
        /// Dirty victim written back, if any.
        writeback: Option<u64>,
    },
}

impl AccessResult {
    /// True for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit { .. })
    }

    /// The way touched by this access.
    pub fn way(&self) -> u32 {
        match self {
            AccessResult::Hit { way } | AccessResult::Miss { way, .. } => *way,
        }
    }
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic LRU stamp; larger = more recent.
    stamp: u64,
}

/// A set-associative write-back, write-allocate cache.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    sets: u64,
    ways: u32,
    line_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless capacity divides evenly into sets of power-of-two
    /// lines.
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(ways > 0, "need at least one way");
        let total_lines = capacity_bytes / line_bytes as u64;
        assert!(
            total_lines.is_multiple_of(ways as u64) && total_lines > 0,
            "capacity {capacity_bytes} does not divide into {ways}-way sets"
        );
        let sets = total_lines / ways as u64;
        Self {
            lines: vec![Line::default(); total_lines as usize],
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        1 << self.line_shift
    }

    /// Counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The set index of `addr`.
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) % self.sets
    }

    /// Looks up `addr` without touching LRU state or counters.
    /// Returns the way holding the line, if present.
    pub fn probe(&self, addr: u64) -> Option<u32> {
        let line_addr = addr >> self.line_shift;
        let tag = line_addr / self.sets;
        let set = (line_addr % self.sets) as usize;
        let base = set * self.ways as usize;
        self.lines[base..base + self.ways as usize]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|w| w as u32)
    }

    /// The way a miss on `set` would allocate into right now (invalid
    /// way first, else LRU victim), without changing any state. This is
    /// exactly the way [`Cache::access`] would pick if called next.
    pub fn victim_way(&self, set: u64) -> u32 {
        let base = set as usize * self.ways as usize;
        self.lines[base..base + self.ways as usize]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.stamp } else { 0 })
            .map(|(w, _)| w as u32)
            .expect("sets are never empty")
    }

    /// Looks up `addr`, allocating on miss (write-allocate) and
    /// evicting LRU. Returns what happened.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        self.tick += 1;
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        let line_addr = addr >> self.line_shift;
        let tag = line_addr / self.sets;
        let set = (line_addr % self.sets) as usize;
        let base = set * self.ways as usize;
        let set_lines = &mut self.lines[base..base + self.ways as usize];

        // Hit path.
        for (w, line) in set_lines.iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.stamp = self.tick;
                if kind == AccessKind::Write {
                    line.dirty = true;
                }
                self.stats.hits += 1;
                return AccessResult::Hit { way: w as u32 };
            }
        }
        // Miss: pick invalid way or LRU victim.
        self.stats.misses += 1;
        let victim_way = set_lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.stamp } else { 0 })
            .map(|(w, _)| w)
            .expect("sets are never empty");
        let victim = &mut set_lines[victim_way];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            let victim_line = victim.tag * self.sets + set as u64;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        *victim = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            stamp: self.tick,
        };
        AccessResult::Miss {
            way: victim_way as u32,
            writeback,
        }
    }

    /// Invalidates everything (e.g. between workload runs).
    pub fn clear(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(512, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = small();
        assert!(!c.access(0x1000, AccessKind::Read).is_hit());
        assert!(c.access(0x1000, AccessKind::Read).is_hit());
        assert!(c.access(0x103F, AccessKind::Read).is_hit(), "same line");
        assert!(!c.access(0x1040, AccessKind::Read).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 * 64).
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        c.access(a, AccessKind::Read); // a is now MRU
        c.access(d, AccessKind::Read); // evicts b
        assert!(c.access(a, AccessKind::Read).is_hit());
        assert!(!c.access(b, AccessKind::Read).is_hit());
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, AccessKind::Write);
        c.access(b, AccessKind::Read);
        match c.access(d, AccessKind::Read) {
            AccessResult::Miss {
                writeback: Some(wb),
                ..
            } => assert_eq!(wb, a),
            other => panic!("expected writeback of {a:#x}, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        for i in 0..3u64 {
            let r = c.access(i * 4 * 64, AccessKind::Read);
            if let AccessResult::Miss { writeback, .. } = r {
                assert_eq!(writeback, None);
            }
        }
    }

    #[test]
    fn stats_balance() {
        let mut c = small();
        for i in 0..1000u64 {
            c.access((i * 67) % 4096, AccessKind::Read);
        }
        let s = *c.stats();
        assert_eq!(s.hits + s.misses, 1000);
        assert_eq!(s.accesses(), 1000);
        assert!(s.miss_rate() > 0.0 && s.miss_rate() <= 1.0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write);
        // Force eviction of line 0's set with two more lines.
        c.access(4 * 64, AccessKind::Read);
        match c.access(8 * 64, AccessKind::Read) {
            AccessResult::Miss { writeback, .. } => assert_eq!(writeback, Some(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.clear();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0, AccessKind::Read).is_hit());
    }

    #[test]
    fn probe_predicts_access_without_perturbing() {
        let mut c = small();
        c.access(0x1000, AccessKind::Read);
        assert_eq!(c.probe(0x1000), Some(0));
        assert_eq!(c.probe(0x2000), None);
        let before = *c.stats();
        let _ = c.probe(0x1000);
        assert_eq!(*c.stats(), before, "probe must not count");
        // Probe does not refresh LRU: fill the set, then check the
        // victim prediction matches what access actually evicts.
        c.access(4 * 64, AccessKind::Read); // second line of set 0
        let set = c.set_of(0x1000);
        let predicted = c.victim_way(set);
        match c.access(0x1000 + 16 * 4 * 64, AccessKind::Read) {
            AccessResult::Miss { way, .. } => assert_eq!(way, predicted),
            AccessResult::Hit { .. } => panic!("expected a miss"),
        }
    }

    #[test]
    fn victim_way_matches_lru_choice() {
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        c.access(a, AccessKind::Read); // way 0
        c.access(b, AccessKind::Read); // way 1
        c.access(a, AccessKind::Read); // a is MRU, b is LRU
        assert_eq!(c.victim_way(c.set_of(a)), 1);
        match c.access(8 * 64, AccessKind::Read) {
            AccessResult::Miss { way, .. } => assert_eq!(way, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn large_llc_dimensions() {
        // The paper's 128 MB LLC: 2 Mi lines, 16-way, 128 Ki sets.
        let c = Cache::new(128 << 20, 16, 64);
        assert_eq!(c.sets(), 131_072);
    }

    #[test]
    #[should_panic]
    fn bad_line_size_rejected() {
        let _ = Cache::new(1024, 2, 48);
    }
}
