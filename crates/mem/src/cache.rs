//! Generic set-associative LRU cache bookkeeping.

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Outcome of a cache lookup-with-allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present. Carries its way index.
    Hit {
        /// Way within the set where the line was found.
        way: u32,
    },
    /// The line was absent and has been allocated. Carries the way it
    /// landed in and, if a dirty line was displaced, that victim's
    /// address.
    Miss {
        /// Way the new line was installed into.
        way: u32,
        /// Dirty victim written back, if any.
        writeback: Option<u64>,
    },
}

impl AccessResult {
    /// True for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit { .. })
    }

    /// The way touched by this access.
    pub fn way(&self) -> u32 {
        match self {
            AccessResult::Hit { way } | AccessResult::Miss { way, .. } => *way,
        }
    }
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// Line state flag bits (structure-of-arrays storage).
const VALID: u8 = 1;
const DIRTY: u8 = 2;

/// Bank-major storage permutation (see [`Cache::with_bank_layout`]).
#[derive(Debug, Clone, Copy)]
struct BankLayout {
    banks: u64,
    group_sets: u64,
    groups_per_bank: u64,
}

/// A set-associative write-back, write-allocate cache.
///
/// Line state is held as parallel arrays (tags and LRU stamps as the
/// two halves of one block, flag bytes alongside) rather than an array
/// of structs. Two things follow:
///
/// * **construction is O(1) in touched memory** — all three arrays
///   are all-zero, so `vec![0; n]` takes the allocator's zeroed-page
///   path and a 128 MB LLC's 2 Mi-line directory costs microseconds
///   to build instead of a ~50 MB write. Pages fault in only for the
///   sets a run actually touches, which is what lets the per-bank
///   serving workers each own a private cache without paying for the
///   whole directory up front;
/// * **probes touch less memory** — a 16-way tag scan reads two cache
///   lines of tags instead of six of interleaved struct fields.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Tags then LRU stamps (larger = more recent, 0 = never touched),
    /// back to back in one backing allocation: `meta[i]` is line `i`'s
    /// tag, `meta[lines + i]` its stamp. One big block instead of two
    /// halves matters beyond locality: glibc caps its dynamic mmap
    /// threshold at 32 MiB, so a 128 MB LLC's combined directory
    /// (> 32 MiB, padded) always comes from fresh zeroed pages, while
    /// two 16 MiB halves fall back to recycled heap memory — which
    /// `calloc` must then memset — as soon as the process has ever
    /// freed a directory. The serving benchmarks build per-worker
    /// caches in a loop and would pay that memset on every build.
    meta: Vec<u64>,
    flags: Vec<u8>,
    sets: u64,
    ways: u32,
    line_shift: u32,
    tick: u64,
    stats: CacheStats,
    /// Optional bank-major relocation of set storage. `None` = sets
    /// stored in index order.
    layout: Option<BankLayout>,
}

impl Cache {
    /// Builds a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless capacity divides evenly into sets of power-of-two
    /// lines.
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(ways > 0, "need at least one way");
        let total_lines = capacity_bytes / line_bytes as u64;
        assert!(
            total_lines.is_multiple_of(ways as u64) && total_lines > 0,
            "capacity {capacity_bytes} does not divide into {ways}-way sets"
        );
        let sets = total_lines / ways as u64;
        // Pad the tag+stamp block past glibc's 32 MiB mmap-threshold
        // cap (see the field doc); the pad pages are never touched.
        let pad = 64 * 1024;
        Self {
            meta: vec![0; 2 * total_lines as usize + pad],
            flags: vec![0; total_lines as usize],
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
            layout: None,
        }
    }

    /// Relocates set storage bank-major (builder style): with groups of
    /// `group_sets` consecutive sets interleaved round-robin over
    /// `banks`, each bank's directory becomes one contiguous run of the
    /// tag/stamp/flag arrays instead of a 4-set comb strided across
    /// every page.
    ///
    /// This is a pure storage permutation — lookups, LRU, eviction and
    /// every counter are bit-for-bit unchanged (each logical set keeps
    /// its own ways; only *where* they live moves). What changes is
    /// locality: a worker that services one bank faults in and walks
    /// only that bank's slice of the directory, which is what keeps the
    /// per-bank serving path's page-fault footprint proportional to the
    /// banks it owns rather than to the whole LLC.
    ///
    /// No-op when the geometry does not divide evenly (or `banks < 2`).
    pub fn with_bank_layout(mut self, banks: u32, group_sets: u32) -> Self {
        let (banks, group_sets) = (banks as u64, group_sets as u64);
        if banks >= 2 && group_sets >= 1 && self.sets.is_multiple_of(group_sets) {
            let groups = self.sets / group_sets;
            if groups.is_multiple_of(banks) {
                self.layout = Some(BankLayout {
                    banks,
                    group_sets,
                    groups_per_bank: groups / banks,
                });
            }
        }
        self
    }

    /// Total line slots (the stamp half of `meta` starts here).
    fn lines(&self) -> usize {
        (self.sets * self.ways as u64) as usize
    }

    /// Where `set`'s ways live in the parallel arrays.
    fn storage_set(&self, set: u64) -> u64 {
        match self.layout {
            None => set,
            Some(l) => {
                let group = set / l.group_sets;
                let storage_group = (group % l.banks) * l.groups_per_bank + group / l.banks;
                storage_group * l.group_sets + set % l.group_sets
            }
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        1 << self.line_shift
    }

    /// Counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The set index of `addr`.
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) % self.sets
    }

    /// Looks up `addr` without touching LRU state or counters.
    /// Returns the way holding the line, if present.
    pub fn probe(&self, addr: u64) -> Option<u32> {
        let line_addr = addr >> self.line_shift;
        let tag = line_addr / self.sets;
        let base = self.storage_set(line_addr % self.sets) as usize * self.ways as usize;
        (0..self.ways as usize)
            .position(|w| self.flags[base + w] & VALID != 0 && self.meta[base + w] == tag)
            .map(|w| w as u32)
    }

    /// The way a miss on `set` would allocate into right now (invalid
    /// way first, else LRU victim), without changing any state. This is
    /// exactly the way [`Cache::access`] would pick if called next.
    pub fn victim_way(&self, set: u64) -> u32 {
        let base = self.storage_set(set) as usize * self.ways as usize;
        let sb = self.lines();
        (0..self.ways as usize)
            .min_by_key(|&w| {
                if self.flags[base + w] & VALID != 0 {
                    self.meta[sb + base + w]
                } else {
                    0
                }
            })
            .expect("sets are never empty") as u32
    }

    /// Looks up `addr`, allocating on miss (write-allocate) and
    /// evicting LRU. Returns what happened.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        self.tick += 1;
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        let line_addr = addr >> self.line_shift;
        let tag = line_addr / self.sets;
        let set = (line_addr % self.sets) as usize;
        let base = self.storage_set(set as u64) as usize * self.ways as usize;
        let ways = self.ways as usize;
        let sb = self.lines();

        // Hit path: a contiguous tag scan.
        for w in 0..ways {
            let i = base + w;
            if self.flags[i] & VALID != 0 && self.meta[i] == tag {
                self.meta[sb + i] = self.tick;
                if kind == AccessKind::Write {
                    self.flags[i] |= DIRTY;
                }
                self.stats.hits += 1;
                return AccessResult::Hit { way: w as u32 };
            }
        }
        // Miss: pick invalid way or LRU victim.
        self.stats.misses += 1;
        let victim_way = (0..ways)
            .min_by_key(|&w| {
                if self.flags[base + w] & VALID != 0 {
                    self.meta[sb + base + w]
                } else {
                    0
                }
            })
            .expect("sets are never empty");
        let i = base + victim_way;
        let writeback = if self.flags[i] & (VALID | DIRTY) == VALID | DIRTY {
            self.stats.writebacks += 1;
            let victim_line = self.meta[i] * self.sets + set as u64;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        self.meta[i] = tag;
        self.meta[sb + i] = self.tick;
        self.flags[i] = if kind == AccessKind::Write {
            VALID | DIRTY
        } else {
            VALID
        };
        AccessResult::Miss {
            way: victim_way as u32,
            writeback,
        }
    }

    /// Invalidates everything (e.g. between workload runs).
    pub fn clear(&mut self) {
        let sb = self.lines();
        self.flags.fill(0);
        self.meta[sb..2 * sb].fill(0);
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(512, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = small();
        assert!(!c.access(0x1000, AccessKind::Read).is_hit());
        assert!(c.access(0x1000, AccessKind::Read).is_hit());
        assert!(c.access(0x103F, AccessKind::Read).is_hit(), "same line");
        assert!(!c.access(0x1040, AccessKind::Read).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 * 64).
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        c.access(a, AccessKind::Read); // a is now MRU
        c.access(d, AccessKind::Read); // evicts b
        assert!(c.access(a, AccessKind::Read).is_hit());
        assert!(!c.access(b, AccessKind::Read).is_hit());
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, AccessKind::Write);
        c.access(b, AccessKind::Read);
        match c.access(d, AccessKind::Read) {
            AccessResult::Miss {
                writeback: Some(wb),
                ..
            } => assert_eq!(wb, a),
            other => panic!("expected writeback of {a:#x}, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        for i in 0..3u64 {
            let r = c.access(i * 4 * 64, AccessKind::Read);
            if let AccessResult::Miss { writeback, .. } = r {
                assert_eq!(writeback, None);
            }
        }
    }

    #[test]
    fn stats_balance() {
        let mut c = small();
        for i in 0..1000u64 {
            c.access((i * 67) % 4096, AccessKind::Read);
        }
        let s = *c.stats();
        assert_eq!(s.hits + s.misses, 1000);
        assert_eq!(s.accesses(), 1000);
        assert!(s.miss_rate() > 0.0 && s.miss_rate() <= 1.0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write);
        // Force eviction of line 0's set with two more lines.
        c.access(4 * 64, AccessKind::Read);
        match c.access(8 * 64, AccessKind::Read) {
            AccessResult::Miss { writeback, .. } => assert_eq!(writeback, Some(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.clear();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0, AccessKind::Read).is_hit());
    }

    #[test]
    fn probe_predicts_access_without_perturbing() {
        let mut c = small();
        c.access(0x1000, AccessKind::Read);
        assert_eq!(c.probe(0x1000), Some(0));
        assert_eq!(c.probe(0x2000), None);
        let before = *c.stats();
        let _ = c.probe(0x1000);
        assert_eq!(*c.stats(), before, "probe must not count");
        // Probe does not refresh LRU: fill the set, then check the
        // victim prediction matches what access actually evicts.
        c.access(4 * 64, AccessKind::Read); // second line of set 0
        let set = c.set_of(0x1000);
        let predicted = c.victim_way(set);
        match c.access(0x1000 + 16 * 4 * 64, AccessKind::Read) {
            AccessResult::Miss { way, .. } => assert_eq!(way, predicted),
            AccessResult::Hit { .. } => panic!("expected a miss"),
        }
    }

    #[test]
    fn victim_way_matches_lru_choice() {
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        c.access(a, AccessKind::Read); // way 0
        c.access(b, AccessKind::Read); // way 1
        c.access(a, AccessKind::Read); // a is MRU, b is LRU
        assert_eq!(c.victim_way(c.set_of(a)), 1);
        match c.access(8 * 64, AccessKind::Read) {
            AccessResult::Miss { way, .. } => assert_eq!(way, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bank_layout_is_a_pure_storage_permutation() {
        // 64 sets, 2 ways; 4-set groups over 4 banks. Every access must
        // report the identical result with and without the relocation.
        let mut plain = Cache::new(64 * 2 * 64, 2, 64);
        let mut banked = Cache::new(64 * 2 * 64, 2, 64).with_bank_layout(4, 4);
        let mut x = 0x2015_u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 16) % (1 << 20);
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            assert_eq!(plain.probe(addr), banked.probe(addr));
            assert_eq!(
                plain.victim_way(plain.set_of(addr)),
                banked.victim_way(banked.set_of(addr))
            );
            assert_eq!(
                plain.access(addr, kind),
                banked.access(addr, kind),
                "access {i}"
            );
        }
        assert_eq!(plain.stats(), banked.stats());
    }

    #[test]
    fn bank_layout_rejects_uneven_geometry() {
        // 6 groups over 4 banks does not divide: stays identity (and
        // still behaves) rather than permuting unevenly.
        let mut c = Cache::new(24 * 2 * 64, 2, 64).with_bank_layout(4, 4);
        assert!(!c.access(0, AccessKind::Read).is_hit());
        assert!(c.access(0, AccessKind::Read).is_hit());
    }

    #[test]
    fn large_llc_dimensions() {
        // The paper's 128 MB LLC: 2 Mi lines, 16-way, 128 Ki sets.
        let c = Cache::new(128 << 20, 16, 64);
        assert_eq!(c.sets(), 131_072);
    }

    #[test]
    #[should_panic]
    fn bad_line_size_rejected() {
        let _ = Cache::new(1024, 2, 48);
    }
}
