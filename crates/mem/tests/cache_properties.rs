//! Property tests for the cache simulator and racetrack LLC.

use proptest::prelude::*;
use rtm_controller::controller::ShiftPolicy;
use rtm_mem::cache::{AccessKind, Cache};
use rtm_mem::llc::{LlcModel, RacetrackLlc};
use rtm_pecc::layout::ProtectionKind;

proptest! {
    // Each racetrack case allocates the full 128 MB LLC's metadata;
    // keep the case count modest so the suite stays fast in debug.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache never evicts anything it could avoid: the working set
    /// fits -> every re-access hits (no phantom invalidations).
    #[test]
    fn small_working_set_never_misses_twice(
        lines in proptest::collection::vec(0u64..8, 2..64),
    ) {
        // 8 distinct lines fit the 8-line fully-covered region of a
        // 4-set x 2-way cache only if conflict-free; use a 2 KiB cache
        // with 8 sets x 4 ways so 8 lines always fit.
        let mut c = Cache::new(2048, 4, 64);
        let mut seen = std::collections::HashSet::new();
        for &l in &lines {
            let addr = l * 64;
            let hit = c.access(addr, AccessKind::Read).is_hit();
            if seen.contains(&l) {
                prop_assert!(hit, "line {l} evicted despite fitting");
            }
            seen.insert(l);
        }
    }

    /// Writeback addresses always refer to previously written lines.
    #[test]
    fn writebacks_are_real_dirty_lines(
        ops in proptest::collection::vec((0u64..256, any::<bool>()), 1..200),
    ) {
        let mut c = Cache::new(1024, 2, 64);
        let mut dirty = std::collections::HashSet::new();
        for &(l, w) in &ops {
            let addr = l * 64;
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            if let rtm_mem::cache::AccessResult::Miss { writeback: Some(wb), .. } =
                c.access(addr, kind)
            {
                prop_assert!(dirty.remove(&wb), "writeback of clean line {wb:#x}");
            }
            if w {
                dirty.insert(addr & !63);
            } else if !dirty.contains(&(addr & !63)) {
                // read of a clean line leaves it clean
            }
        }
    }

    /// Racetrack head positions always stay within the geometry.
    #[test]
    fn heads_stay_in_range(
        lines in proptest::collection::vec(0u64..100_000, 1..200),
    ) {
        let mut llc = RacetrackLlc::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let max = llc.geometry().max_shift() as u64;
        let mut t = 0;
        for &l in &lines {
            t += 50;
            llc.access(l * 64, AccessKind::Read, t);
        }
        // Every group's believed head must be a legal position; verify
        // via stats consistency (steps are bounded by ops x max shift).
        let s = llc.stats();
        prop_assert!(s.shift_steps <= s.shift_ops.max(1) * max.max(1) * 8);
        prop_assert!(s.zero_shift_accesses + s.shift_ops >= 1);
    }

    /// LLC latency is deterministic per state: re-running the same
    /// trace yields identical statistics.
    #[test]
    fn llc_is_deterministic(lines in proptest::collection::vec(0u64..10_000, 1..100)) {
        let run = || {
            let mut llc = RacetrackLlc::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
            let mut t = 0;
            let mut total = 0u64;
            for &l in &lines {
                t += 37;
                total += llc.access(l * 64, AccessKind::Read, t).latency_cycles;
            }
            (total, llc.stats())
        };
        let (a_lat, a_stats) = run();
        let (b_lat, b_stats) = run();
        prop_assert_eq!(a_lat, b_lat);
        prop_assert_eq!(a_stats, b_stats);
    }
}
