//! Property tests for the cache simulator and racetrack LLC.
//!
//! Each racetrack case allocates the full 128 MB LLC's metadata; the
//! case counts are kept modest so the suite stays fast in debug.

use rtm_controller::controller::ShiftPolicy;
use rtm_mem::cache::{AccessKind, Cache};
use rtm_mem::llc::{LlcModel, RacetrackLlc};
use rtm_pecc::layout::ProtectionKind;
use rtm_util::check::{run_cases, Gen};

/// A cache never evicts anything it could avoid: the working set
/// fits -> every re-access hits (no phantom invalidations).
#[test]
fn small_working_set_never_misses_twice() {
    run_cases(24, |g: &mut Gen| {
        let lines = g.vec_of(2, 63, |g| g.u64_in(0, 7));
        // 8 distinct lines fit the 8-line fully-covered region of a
        // 4-set x 2-way cache only if conflict-free; use a 2 KiB cache
        // with 8 sets x 4 ways so 8 lines always fit.
        let mut c = Cache::new(2048, 4, 64);
        let mut seen = std::collections::HashSet::new();
        for &l in &lines {
            let addr = l * 64;
            let hit = c.access(addr, AccessKind::Read).is_hit();
            if seen.contains(&l) {
                assert!(hit, "line {l} evicted despite fitting");
            }
            seen.insert(l);
        }
    });
}

/// Writeback addresses always refer to previously written lines.
#[test]
fn writebacks_are_real_dirty_lines() {
    run_cases(24, |g: &mut Gen| {
        let ops = g.vec_of(1, 199, |g| (g.u64_in(0, 255), g.bool()));
        let mut c = Cache::new(1024, 2, 64);
        let mut dirty = std::collections::HashSet::new();
        for &(l, w) in &ops {
            let addr = l * 64;
            let kind = if w {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if let rtm_mem::cache::AccessResult::Miss {
                writeback: Some(wb),
                ..
            } = c.access(addr, kind)
            {
                assert!(dirty.remove(&wb), "writeback of clean line {wb:#x}");
            }
            if w {
                dirty.insert(addr & !63);
            } else if !dirty.contains(&(addr & !63)) {
                // read of a clean line leaves it clean
            }
        }
    });
}

/// Racetrack head positions always stay within the geometry.
#[test]
fn heads_stay_in_range() {
    run_cases(24, |g: &mut Gen| {
        let lines = g.vec_of(1, 199, |g| g.u64_in(0, 99_999));
        let mut llc = RacetrackLlc::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
        let max = llc.geometry().max_shift() as u64;
        let mut t = 0;
        for &l in &lines {
            t += 50;
            llc.access(l * 64, AccessKind::Read, t);
        }
        // Every group's believed head must be a legal position; verify
        // via stats consistency (steps are bounded by ops x max shift).
        let s = llc.stats();
        assert!(s.shift_steps <= s.shift_ops.max(1) * max.max(1) * 8);
        assert!(s.zero_shift_accesses + s.shift_ops >= 1);
    });
}

/// LLC latency is deterministic per state: re-running the same
/// trace yields identical statistics.
#[test]
fn llc_is_deterministic() {
    run_cases(24, |g: &mut Gen| {
        let lines = g.vec_of(1, 99, |g| g.u64_in(0, 9_999));
        let run = || {
            let mut llc = RacetrackLlc::new(ProtectionKind::SECDED, ShiftPolicy::Adaptive);
            let mut t = 0;
            let mut total = 0u64;
            for &l in &lines {
                t += 37;
                total += llc.access(l * 64, AccessKind::Read, t).latency_cycles;
            }
            (total, llc.stats())
        };
        let (a_lat, a_stats) = run();
        let (b_lat, b_stats) = run();
        assert_eq!(a_lat, b_lat);
        assert_eq!(a_stats, b_stats);
    });
}
