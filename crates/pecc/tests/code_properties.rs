//! Property tests for the cyclic p-ECC code.

use rtm_pecc::code::{PeccCode, Verdict};
use rtm_util::check::{run_cases, Gen};

/// Windows are unique within a period for every strength.
#[test]
fn windows_unique() {
    run_cases(16, |g: &mut Gen| {
        let m = g.u32_in(0, 7);
        let code = PeccCode::new(m);
        let p = code.period();
        for i in 0..p {
            for j in (i + 1)..p {
                assert_ne!(
                    code.expected_window(i as i64),
                    code.expected_window(j as i64),
                    "m={m} phases {i} and {j} collide"
                );
            }
        }
    });
}

/// decode(expected, window(expected - e)) recovers e (mod P) with
/// the documented correctable/uncorrectable split.
#[test]
fn decode_round_trip() {
    run_cases(256, |g: &mut Gen| {
        let m = g.u32_in(0, 5);
        let expected = g.i64_in(-100, 99);
        let e = g.i64_in(-15, 14);
        let code = PeccCode::new(m);
        let observed = code.expected_window(expected - e);
        let verdict = code.decode(expected, &observed);
        // decode can only see e modulo the period.
        let p = code.period() as i64;
        let d = e.rem_euclid(p);
        let want = if d == 0 {
            Verdict::Clean
        } else if d <= m as i64 {
            Verdict::Correctable(d as i32)
        } else if d == m as i64 + 1 {
            Verdict::Uncorrectable
        } else {
            Verdict::Correctable((d - p) as i32)
        };
        assert_eq!(verdict, want);
    });
}

/// The code pattern is periodic and balanced: exactly half ones in
/// any whole number of periods.
#[test]
fn pattern_periodic_and_balanced() {
    run_cases(64, |g: &mut Gen| {
        let m = g.u32_in(0, 5);
        let periods = g.usize_in(1, 4);
        let code = PeccCode::new(m);
        let p = code.period() as usize;
        let pat = code.pattern(0, p * periods);
        for (i, &b) in pat.iter().enumerate() {
            assert_eq!(b, pat[i % p]);
        }
        let ones = pat.iter().filter(|b| b.to_bool() == Some(true)).count();
        assert_eq!(ones, p * periods / 2);
    });
}

/// classify_offset is periodic with period P.
#[test]
fn classification_is_periodic() {
    run_cases(256, |g: &mut Gen| {
        let m = g.u32_in(0, 4);
        let e = g.i32_in(-20, 19);
        let code = PeccCode::new(m);
        let p = code.period() as i32;
        assert_eq!(code.classify_offset(e), code.classify_offset(e + p));
        assert_eq!(code.classify_offset(e), code.classify_offset(e - p));
    });
}

/// A corrected verdict, applied as a back-shift, always lands on a
/// clean verdict (single-error closure).
#[test]
fn correction_closes() {
    run_cases(256, |g: &mut Gen| {
        let m = g.u32_in(1, 4);
        let e = g.i32_in(-4, 4);
        let code = PeccCode::new(m);
        if let Verdict::Correctable(k) = code.classify_offset(e) {
            // The residual offset after shifting back by k.
            let residual = e - k;
            // Aliased corrections leave a multiple of the period.
            assert_eq!(code.classify_offset(residual), Verdict::Clean);
        }
    });
}
