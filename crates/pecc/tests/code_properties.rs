//! Property tests for the cyclic p-ECC code.

use proptest::prelude::*;
use rtm_pecc::code::{PeccCode, Verdict};

proptest! {
    /// Windows are unique within a period for every strength.
    #[test]
    fn windows_unique(m in 0u32..8) {
        let code = PeccCode::new(m);
        let p = code.period();
        for i in 0..p {
            for j in (i + 1)..p {
                prop_assert_ne!(
                    code.expected_window(i as i64),
                    code.expected_window(j as i64),
                    "m={} phases {} and {} collide", m, i, j
                );
            }
        }
    }

    /// decode(expected, window(expected - e)) recovers e (mod P) with
    /// the documented correctable/uncorrectable split.
    #[test]
    fn decode_round_trip(m in 0u32..6, expected in -100i64..100, e in -15i64..15) {
        let code = PeccCode::new(m);
        let observed = code.expected_window(expected - e);
        let verdict = code.decode(expected, &observed);
        // decode can only see e modulo the period.
        let p = code.period() as i64;
        let d = e.rem_euclid(p);
        let want = if d == 0 {
            Verdict::Clean
        } else if d <= m as i64 {
            Verdict::Correctable(d as i32)
        } else if d == m as i64 + 1 {
            Verdict::Uncorrectable
        } else {
            Verdict::Correctable((d - p) as i32)
        };
        prop_assert_eq!(verdict, want);
    }

    /// The code pattern is periodic and balanced: exactly half ones in
    /// any whole number of periods.
    #[test]
    fn pattern_periodic_and_balanced(m in 0u32..6, periods in 1usize..5) {
        let code = PeccCode::new(m);
        let p = code.period() as usize;
        let pat = code.pattern(0, p * periods);
        for (i, &b) in pat.iter().enumerate() {
            prop_assert_eq!(b, pat[i % p]);
        }
        let ones = pat.iter().filter(|b| b.to_bool() == Some(true)).count();
        prop_assert_eq!(ones, p * periods / 2);
    }

    /// classify_offset is periodic with period P.
    #[test]
    fn classification_is_periodic(m in 0u32..5, e in -20i32..20) {
        let code = PeccCode::new(m);
        let p = code.period() as i32;
        prop_assert_eq!(code.classify_offset(e), code.classify_offset(e + p));
        prop_assert_eq!(code.classify_offset(e), code.classify_offset(e - p));
    }

    /// A corrected verdict, applied as a back-shift, always lands on a
    /// clean verdict (single-error closure).
    #[test]
    fn correction_closes(m in 1u32..5, e in -4i32..=4) {
        let code = PeccCode::new(m);
        if let Verdict::Correctable(k) = code.classify_offset(e) {
            // The residual offset after shifting back by k.
            let residual = e - k;
            // Aliased corrections leave a multiple of the period.
            prop_assert_eq!(code.classify_offset(residual), Verdict::Clean);
        }
    }
}
