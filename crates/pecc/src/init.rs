//! p-ECC initialization — the program-and-test protocol of Section 4.3.
//!
//! The code pattern must itself be written through shift operations,
//! which can suffer position errors. The paper's remedy is iterative:
//! program the code bits from the end port, walk them across the stripe
//! reading them back at every port, walk them back, and repeat until the
//! confidence target is met. For a 64-domain, 8-port stripe one round
//! already pushes the residual error probability below 10⁻¹⁰⁰, with an
//! expected latency around 1200 cycles; a 128 MB memory initialises in
//! under 20 ms.

use crate::layout::PeccLayout;
use rtm_model::rates::OutOfStepRates;
use rtm_model::shift::ShiftOutcome;
use rtm_track::bit::Bit;
use rtm_track::fault::FaultModel;
use rtm_track::stripe::Stripe;
use rtm_util::units::{Cycles, Seconds};

/// Plan and cost estimate for initialising one stripe's p-ECC.
#[derive(Debug, Clone, PartialEq)]
pub struct InitPlan {
    /// Number of program-and-test rounds.
    pub rounds: u32,
    /// Shift steps taken per round (forward + backward sweep).
    pub steps_per_round: u64,
    /// Latency of the full initialisation for one stripe.
    pub cycles: Cycles,
    /// Residual probability (natural log) that an undetected position
    /// error survives initialisation.
    pub ln_residual_error: f64,
}

impl InitPlan {
    /// Residual error probability in linear space (may underflow to 0).
    pub fn residual_error(&self) -> f64 {
        self.ln_residual_error.exp()
    }

    /// Wall-clock duration at `clock_hz`.
    pub fn duration(&self, clock_hz: f64) -> Seconds {
        self.cycles.to_seconds(clock_hz)
    }
}

/// Builds the program-and-test plan for a protected stripe.
///
/// Every code bit is written at an end port and stepped across the
/// stripe one notch at a time; each step is verified by every port it
/// passes, so an undetected error requires *all* observing ports to
/// miss it in *every* round. With per-step error rate `p₁` (1-step
/// shifts only during init) and `c` independent checks per code bit per
/// round, the residual is `(p₁ᶜ)ʳ` per bit — astronomically small after
/// one round already.
///
/// `rounds` must be at least 1.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn plan_initialisation(layout: &PeccLayout, rates: &OutOfStepRates, rounds: u32) -> InitPlan {
    assert!(rounds > 0, "at least one program-and-test round required");
    let total_len = layout.total_domains() as u64;
    let code_bits = layout.code_domains.max(1) as u64;
    // One round: walk the pattern right across the stripe, then back.
    let steps_per_round = 2 * total_len;
    // Per 1-step shift: shift latency 3 cycles (STS) + ~1 cycle test at
    // the ports (reads proceed in parallel across ports).
    let cycles_per_step = 4u64;
    let cycles = Cycles(rounds as u64 * steps_per_round * cycles_per_step);

    // Residual: a code bit passes under every data port plus the p-ECC
    // taps on the forward sweep and again on the backward sweep; each
    // passage re-checks it, and surviving undetected requires an
    // (independent) compensating position error at every check.
    let checks_per_round = 2.0 * (layout.geometry.num_ports() + layout.extra_read_ports) as f64;
    let p1 = rates.rate(1, 1).max(1e-300);
    let ln_per_bit = checks_per_round * p1.ln() * rounds as f64;
    let ln_residual = ln_per_bit + (code_bits as f64).ln();
    InitPlan {
        rounds,
        steps_per_round,
        cycles,
        ln_residual_error: ln_residual,
    }
}

/// Outcome of a *physical* program-and-test campaign on one stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitOutcome {
    /// Restarts triggered by a detected mismatch during verification.
    pub restarts: u32,
    /// Total 1-step shift operations issued, across restarts.
    pub total_steps: u64,
    /// Whether the final verification sweep passed with the code bits
    /// exactly in place.
    pub success: bool,
}

/// Physically simulates the Section 4.3 protocol on a bare code tape:
///
/// 1. code bits are written at the left end port and stepped right,
///    one notch at a time, until the full pattern is laid out;
/// 2. a verification sweep walks the pattern right and back left,
///    checking the expected bit under every port at every step;
/// 3. any mismatch restarts the whole procedure (up to `max_restarts`).
///
/// Position errors during programming shift the *entire* laid-out
/// pattern, which the verification sweep catches as a phase mismatch —
/// the property that makes one round sufficient in practice.
///
/// # Panics
///
/// Panics if the layout carries no code (`ProtectionKind::None`).
pub fn simulate_initialisation(
    layout: &PeccLayout,
    faults: &mut dyn FaultModel,
    max_restarts: u32,
) -> InitOutcome {
    let checker = layout
        .kind
        .checker()
        .expect("initialisation needs a coded layout");
    let code_len = layout.code_domains.max(checker.window() as usize + 1);
    // The tape: code region plus travel margin on the right for the
    // verification sweep (one full code length).
    let tape_len = 2 * code_len + 2;
    let window = checker.window() as usize;
    // Verification taps sit over the last `window` slots of the
    // laid-out pattern (slots 1..=code_len hold bits 0..code_len-1
    // after a clean programming phase).
    let tap_base = code_len - window + 1;

    let mut restarts = 0u32;
    let mut total_steps = 0u64;
    'attempt: loop {
        let mut tape = Stripe::new(tape_len);
        // Phase 1: program. Write a bit at slot 0, shift right by one,
        // repeat — after k bits the oldest sits at slot k-1. Write the
        // bits in reverse so bit 0 ends leftmost.
        for i in (0..code_len).rev() {
            tape.write_slot(0, checker.bit_at(i as i64))
                .expect("slot 0 in range");
            let outcome = faults.sample(1);
            tape.apply_shift(1, outcome);
            total_steps += 1;
            if !tape.is_aligned() {
                // A stop-in-middle during programming is detected
                // immediately (the next write would fail) — restart.
                restarts += 1;
                if restarts > max_restarts {
                    return InitOutcome {
                        restarts,
                        total_steps,
                        success: false,
                    };
                }
                continue 'attempt;
            }
        }
        // After programming, code bit i sits at slot i + 1 (each write
        // happened at slot 0 and was pushed right by the later shifts).

        // Phase 2: verify. Walk the laid-out pattern right and back
        // left; stop-in-middle states are caught on the spot, while
        // out-of-step slips survive to the final phase comparison.
        let sweep = code_len;
        for dir in [1i64, -1] {
            for _ in 0..sweep {
                let outcome = faults.sample(1);
                tape.apply_shift(dir, outcome);
                total_steps += 1;
                if !tape.is_aligned() {
                    restarts += 1;
                    if restarts > max_restarts {
                        return InitOutcome {
                            restarts,
                            total_steps,
                            success: false,
                        };
                    }
                    continue 'attempt;
                }
            }
        }
        // Final check: after a clean campaign, code bit i sits at slot
        // i + 1. Read the window under the taps and decode against that
        // expected phase — any accumulated slip shows up here.
        let observed: Vec<Bit> = (0..window)
            .map(|t| tape.read_slot(tap_base + t).unwrap_or(Bit::Unknown))
            .collect();
        // Clean run: slot s holds code bit (s - 1).
        let expected_index = (tap_base as i64) - 1;
        let verdict = checker.decode(expected_index, &observed);
        let success =
            verdict == crate::code::Verdict::Clean && tape.actual_offset() == code_len as i64;
        if success {
            return InitOutcome {
                restarts,
                total_steps,
                success: true,
            };
        }
        restarts += 1;
        if restarts > max_restarts {
            return InitOutcome {
                restarts,
                total_steps,
                success: false,
            };
        }
    }
}

/// Convenience: a scripted single-error campaign used by tests and the
/// playground example — injects `error_at_step` as a +1 out-of-step
/// error and lets the protocol recover.
pub fn scripted_single_error(layout: &PeccLayout, error_at_step: usize) -> InitOutcome {
    let mut outcomes = vec![ShiftOutcome::Pinned { offset: 0 }; error_at_step];
    outcomes.push(ShiftOutcome::Pinned { offset: 1 });
    let mut faults = rtm_track::fault::ScriptedFaultModel::new(outcomes);
    simulate_initialisation(layout, &mut faults, 4)
}

/// Total initialisation time for a memory of `stripes` stripes,
/// initialised `parallelism` stripes at a time (per-bank init engines).
pub fn memory_init_time(plan: &InitPlan, stripes: u64, parallelism: u64, clock_hz: f64) -> Seconds {
    assert!(parallelism > 0, "parallelism must be positive");
    let waves = stripes.div_ceil(parallelism);
    Seconds(plan.duration(clock_hz).as_secs() * waves as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ProtectionKind;
    use rtm_track::geometry::StripeGeometry;

    fn default_plan(rounds: u32) -> InitPlan {
        let layout =
            PeccLayout::new(StripeGeometry::paper_default(), ProtectionKind::SECDED).unwrap();
        plan_initialisation(&layout, &OutOfStepRates::paper_calibration(), rounds)
    }

    #[test]
    fn one_round_latency_matches_paper_scale() {
        // Paper: "expected latency ... about 1200 cycles" for the
        // 64-domain 8-port stripe.
        let plan = default_plan(1);
        let c = plan.cycles.count();
        assert!((600..2400).contains(&c), "init cycles {c}");
    }

    #[test]
    fn residual_error_is_astronomically_small() {
        // Paper quotes below 1e-100 after one iteration; our slightly
        // more conservative check-count model lands below 1e-80, far
        // past any reliability requirement either way.
        let plan = default_plan(1);
        assert!(plan.ln_residual_error < -80.0 * std::f64::consts::LN_10);
        assert!(plan.residual_error() < 1e-80);
    }

    #[test]
    fn more_rounds_reduce_residual_and_raise_latency() {
        let one = default_plan(1);
        let three = default_plan(3);
        assert!(three.ln_residual_error < one.ln_residual_error);
        assert_eq!(three.cycles.count(), 3 * one.cycles.count());
        assert_eq!(three.steps_per_round, one.steps_per_round);
    }

    #[test]
    fn full_memory_under_20ms() {
        // Paper: a 128 MB racetrack memory initialises in < 20 ms.
        // 128 MB data / 64 bits per stripe = 16 Mi stripes; per-bank
        // engines initialise whole rows of 512-stripe groups at once
        // (the paper's data mapping), i.e. ~32768-way parallelism.
        let plan = default_plan(1);
        let stripes = 128u64 * 1024 * 1024 * 8 / 64;
        let t = memory_init_time(&plan, stripes, 512 * 64, 2.0e9);
        assert!(t.as_secs() < 20e-3, "init time {} too slow", t.as_secs());
    }

    #[test]
    fn physical_init_succeeds_without_faults() {
        let layout =
            PeccLayout::new(StripeGeometry::paper_default(), ProtectionKind::SECDED).unwrap();
        let mut faults = rtm_track::fault::IdealFaultModel;
        let out = simulate_initialisation(&layout, &mut faults, 2);
        assert!(out.success, "{out:?}");
        assert_eq!(out.restarts, 0);
        // One programming pass + one round-trip sweep.
        assert_eq!(out.total_steps, 3 * layout.code_domains as u64);
    }

    #[test]
    fn physical_init_detects_and_recovers_from_slip() {
        let layout =
            PeccLayout::new(StripeGeometry::paper_default(), ProtectionKind::SECDED).unwrap();
        for step in [0usize, 3, 12, 25] {
            let out = scripted_single_error(&layout, step);
            assert!(out.success, "error at step {step}: {out:?}");
            assert_eq!(out.restarts, 1, "error at step {step}");
        }
    }

    #[test]
    fn physical_init_detects_stop_in_middle() {
        let layout =
            PeccLayout::new(StripeGeometry::paper_default(), ProtectionKind::SECDED).unwrap();
        let mut faults = rtm_track::fault::ScriptedFaultModel::new([
            ShiftOutcome::Pinned { offset: 0 },
            ShiftOutcome::StopInMiddle {
                lower: 0,
                frac: 0.5,
            },
        ]);
        let out = simulate_initialisation(&layout, &mut faults, 3);
        assert!(out.success);
        assert_eq!(out.restarts, 1);
    }

    #[test]
    fn physical_init_gives_up_under_persistent_faults() {
        let layout =
            PeccLayout::new(StripeGeometry::paper_default(), ProtectionKind::SECDED).unwrap();
        // Every shift over-steps: no attempt can ever verify.
        struct Always1;
        impl rtm_track::fault::FaultModel for Always1 {
            fn sample(&mut self, _d: u32) -> ShiftOutcome {
                ShiftOutcome::Pinned { offset: 1 }
            }
        }
        let out = simulate_initialisation(&layout, &mut Always1, 3);
        assert!(!out.success);
        assert_eq!(out.restarts, 4, "max_restarts + 1 attempts");
    }

    #[test]
    fn physical_init_works_for_sed_and_stronger_codes() {
        for kind in [
            ProtectionKind::Sed,
            ProtectionKind::Correcting { m: 2 },
            ProtectionKind::SECDED_O,
        ] {
            let geom = StripeGeometry::new(64, 4).unwrap();
            let layout = PeccLayout::new(geom, kind).unwrap();
            let mut faults = rtm_track::fault::IdealFaultModel;
            let out = simulate_initialisation(&layout, &mut faults, 2);
            assert!(out.success, "{kind:?}: {out:?}");
        }
    }

    #[test]
    fn calibrated_faults_rarely_disturb_init() {
        // At the real Table 2 rates a campaign virtually never restarts.
        let layout =
            PeccLayout::new(StripeGeometry::paper_default(), ProtectionKind::SECDED).unwrap();
        let mut faults = rtm_track::fault::CalibratedFaultModel::paper(99);
        let mut restarts = 0;
        for _ in 0..200 {
            let out = simulate_initialisation(&layout, &mut faults, 5);
            assert!(out.success);
            restarts += out.restarts;
        }
        assert!(restarts <= 1, "restarts {restarts}");
    }

    #[test]
    #[should_panic]
    fn physical_init_rejects_uncoded_layout() {
        let layout =
            PeccLayout::new(StripeGeometry::paper_default(), ProtectionKind::None).unwrap();
        let _ = simulate_initialisation(&layout, &mut rtm_track::fault::IdealFaultModel, 1);
    }

    #[test]
    #[should_panic]
    fn zero_rounds_rejected() {
        let _ = default_plan(0);
    }

    #[test]
    #[should_panic]
    fn zero_parallelism_rejected() {
        let plan = default_plan(1);
        let _ = memory_init_time(&plan, 100, 0, 2.0e9);
    }
}
