//! The cyclic p-ECC code — re-exported from `rtm-codes` — plus the
//! [`StripeChecker`] bridge that lets a [`crate::protected`] stripe run
//! its bit-accurate tap check against either pattern family.
//!
//! The square-wave code and its phase-difference decoder moved to
//! [`rtm_codes::cyclic`] so the deletion/insertion codecs can reuse the
//! same [`Verdict`] vocabulary; the `rtm_pecc::code::{PeccCode,
//! Verdict}` paths stay valid through these re-exports.
//!
//! A stripe protected by one of the stream codecs (Chee–Kiah multi-look
//! or Vahid 2-DI) does not carry a cyclic pattern at all: its in-track
//! check pattern is the aperiodic [`MarkerCode`], whose windows are
//! globally unique within ±(period/2) and therefore never alias short
//! of a full period — the structural property that trades the cyclic
//! SDC floor for detected DUEs.

pub use rtm_codes::{MarkerCode, PeccCode, Verdict};

use rtm_track::bit::Bit;

/// The tap pattern a protected stripe checks after each shift: the
/// cyclic square wave for the paper's p-ECC family, or the aperiodic
/// marker that backs the deletion/insertion codecs.
///
/// Both variants expose the same phase-decode shape (`bit_at`,
/// `window`, `decode(expected_index, observed)`), so the physical
/// simulation in [`crate::protected`] is pattern-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StripeChecker {
    /// Cyclic p-ECC phase code (aliases at multiples of its period).
    Cyclic(PeccCode),
    /// Aperiodic marker with shift-unique windows (never aliases short
    /// of a full period of 64 steps).
    Marker(MarkerCode),
}

impl StripeChecker {
    /// Correction strength in steps.
    pub fn strength(&self) -> u32 {
        match self {
            StripeChecker::Cyclic(c) => c.strength(),
            StripeChecker::Marker(m) => m.strength(),
        }
    }

    /// Number of taps the checker reads per check.
    pub fn window(&self) -> u32 {
        match self {
            StripeChecker::Cyclic(c) => c.window(),
            StripeChecker::Marker(m) => m.window(),
        }
    }

    /// Pattern bit at (possibly negative) index `i`.
    pub fn bit_at(&self, i: i64) -> Bit {
        match self {
            StripeChecker::Cyclic(c) => c.bit_at(i),
            StripeChecker::Marker(m) => m.bit_at(i),
        }
    }

    /// Decodes an observed tap window against the window expected at
    /// pattern index `expected_index`.
    pub fn decode(&self, expected_index: i64, observed: &[Bit]) -> Verdict {
        match self {
            StripeChecker::Cyclic(c) => c.decode(expected_index, observed),
            StripeChecker::Marker(m) => m.decode(expected_index, observed),
        }
    }

    /// Ideal-channel verdict for a true offset of `e` steps.
    pub fn classify_offset(&self, e: i32) -> Verdict {
        match self {
            StripeChecker::Cyclic(c) => c.classify_offset(e),
            StripeChecker::Marker(m) => m.classify_offset(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_paths_stay_valid() {
        // Consumers name these as rtm_pecc::code::{PeccCode, Verdict}.
        let code = PeccCode::secded();
        assert_eq!(code.classify_offset(0), Verdict::Clean);
        assert_eq!(code.classify_offset(1), Verdict::Correctable(1));
    }

    #[test]
    fn checker_variants_share_the_decode_shape() {
        let cyc = StripeChecker::Cyclic(PeccCode::secded());
        let mrk = StripeChecker::Marker(MarkerCode::new(2));
        for chk in [cyc, mrk] {
            let w = chk.window() as usize;
            let clean: Vec<Bit> = (0..w).map(|i| chk.bit_at(10 + i as i64)).collect();
            assert_eq!(chk.decode(10, &clean), Verdict::Clean);
            // An over-shift by 1 leaves the taps reading index
            // expected − 1.
            let slipped: Vec<Bit> = (0..w).map(|i| chk.bit_at(9 + i as i64)).collect();
            assert_eq!(chk.decode(10, &slipped), Verdict::Correctable(1));
        }
    }

    #[test]
    fn marker_checker_does_not_alias_where_cyclic_does() {
        let cyc = StripeChecker::Cyclic(PeccCode::secded());
        let mrk = StripeChecker::Marker(MarkerCode::new(2));
        // A full cyclic period (4 steps for m = 1) is invisible to the
        // square wave but detected by the marker.
        assert_eq!(cyc.classify_offset(4), Verdict::Clean);
        assert_eq!(mrk.classify_offset(4), Verdict::Uncorrectable);
    }
}
