//! Position error correction codes (p-ECC) — Section 4.2 of the Hi-fi
//! Playback paper.
//!
//! Bit-error ECC cannot see a shift that moved *every* bit by the same
//! amount; p-ECC can, by storing a known cyclic pattern in dedicated
//! domains read through extra ports. After each shift the controller
//! compares the observed pattern window against the window expected at
//! the believed head position: any phase difference *is* the position
//! error.
//!
//! * [`code`] — the cyclic square-wave code, window extraction, and the
//!   phase-difference decoder;
//! * [`layout`] — domain/port/guard budgets for SED, SECDED, the general
//!   m-step construction, and the overhead-region variant p-ECC-O;
//! * [`protected`] — a bit-accurate protected stripe that runs
//!   detection/correction against physically simulated shifts;
//! * [`init`] — the program-and-test initialization protocol of
//!   Section 4.3.
//!
//! # Examples
//!
//! ```
//! use rtm_pecc::code::{PeccCode, Verdict};
//!
//! // SECDED p-ECC (corrects ±1, detects ±2).
//! let code = PeccCode::secded();
//! assert_eq!(code.classify_offset(0), Verdict::Clean);
//! assert_eq!(code.classify_offset(1), Verdict::Correctable(1));
//! assert_eq!(code.classify_offset(-1), Verdict::Correctable(-1));
//! assert_eq!(code.classify_offset(2), Verdict::Uncorrectable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod group;
pub mod init;
pub mod layout;
pub mod protected;

pub use code::{PeccCode, Verdict};
pub use layout::{PeccLayout, ProtectionKind};
pub use protected::ProtectedStripe;
