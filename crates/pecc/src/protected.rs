//! A bit-accurate stripe carrying p-ECC, with physical detection and
//! correction of simulated position errors.
//!
//! Physical layout (left → right), following Figs. 5, 6 and 8:
//!
//! ```text
//! [left guard m] [data D] [overhead Lseg-1] [right guard m] [code region]
//! ```
//!
//! The code region holds the cyclic pattern and is read by `m + 1`
//! fixed taps. Its length `Lseg + 3m + 2` keeps every tap over a valid
//! code bit for any head position in `[0, Lseg − 1]` even when walls are
//! off by up to `±(m + 1)` steps — the paper's worst cases of
//! Fig. 6(c)/(d). For p-ECC-O the same decoding runs against code kept
//! in the end/overhead regions (refreshed by shift-and-write); this
//! simulation models that as a mirrored code region at each end, while
//! the *cost* accounting of the reuse lives in [`crate::layout`].
//!
//! The believed head position advances by the intended distance of every
//! shift; the physical cells move by the realised distance. `check()`
//! reads the taps and decodes; `correct()` issues the corrective
//! back-shift (which may itself suffer an error — callers re-check, as
//! the paper's controller does).

use crate::code::{StripeChecker, Verdict};
use crate::layout::{LayoutError, PeccLayout, ProtectionKind};
use rtm_obs::events::{PeccOutcome, ShiftEvent};
use rtm_track::bit::Bit;
use rtm_track::fault::FaultModel;
use rtm_track::geometry::StripeGeometry;
use rtm_track::stripe::{Stripe, StripeError};

/// A stripe with physical p-ECC protection.
#[derive(Debug, Clone)]
pub struct ProtectedStripe {
    layout: PeccLayout,
    checker: Option<StripeChecker>,
    stripe: Stripe,
    believed_head: i64,
    data_start: usize,
    code_start: usize,
    /// Slot of the leading p-ECC tap (taps occupy consecutive slots).
    tap_base: usize,
    shift_ops: u64,
    corrections: u64,
}

impl ProtectedStripe {
    /// Builds a protected stripe with all data domains zeroed and the
    /// p-ECC region initialised (error-free initialisation; the
    /// program-and-test protocol lives in [`crate::init`]).
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] for invalid strength/geometry combos.
    pub fn new(geometry: StripeGeometry, kind: ProtectionKind) -> Result<Self, LayoutError> {
        let layout = PeccLayout::new(geometry, kind)?;
        let checker = kind.checker();
        let m = kind.strength() as usize;
        let lseg = geometry.segment_len();
        let d = geometry.data_len();
        let guards = match kind {
            ProtectionKind::None | ProtectionKind::Sed => 0,
            _ => m,
        };
        // Code region length as used by the physical simulation. The
        // general formula keeps every tap over a valid pattern bit for
        // any head position in [0, Lseg − 1] even when walls are off by
        // up to ±(m + 1): (Lseg − 1) + 2(m + 1) + window. For the
        // cyclic family (window = m + 1) this is the paper's
        // Lseg + 3m + 2; for the marker kinds the wider aperiodic
        // window stretches it. For p-ECC-O a mirrored region also sits
        // at the left end.
        let window = checker.map_or(0, |c| c.window() as usize);
        let sim_code_len = match kind {
            ProtectionKind::None => 0,
            ProtectionKind::Sed => lseg + 1,
            _ => lseg - 1 + 2 * (m + 1) + window,
        };
        let left_code = match kind {
            ProtectionKind::OverheadRegion { .. } => sim_code_len,
            _ => 0,
        };
        let data_start = left_code + guards;
        let code_start = data_start + d + geometry.overhead_len() + guards;
        // The code region needs its own travel margin at the stripe end:
        // at head position s its bits sit s slots to the right of their
        // initial slots (plus up to m+1 more under an error), and bits
        // pushed off the wire are physically destroyed.
        let tail = if sim_code_len == 0 {
            0
        } else {
            geometry.max_shift() + m + 1
        };
        let total = code_start + sim_code_len + tail;

        let mut cells = vec![Bit::Unknown; total];
        for c in cells.iter_mut().skip(data_start).take(d) {
            *c = Bit::Zero;
        }
        if let Some(checker) = checker {
            for i in 0..sim_code_len {
                cells[code_start + i] = checker.bit_at(i as i64);
                if left_code > 0 {
                    cells[i] = checker.bit_at(i as i64 - (left_code as i64 - sim_code_len as i64));
                }
            }
        }
        let tap_base = match kind {
            ProtectionKind::None => 0,
            ProtectionKind::Sed => code_start + lseg,
            _ => code_start + lseg + m,
        };
        Ok(Self {
            layout,
            checker,
            stripe: Stripe::with_cells(cells),
            believed_head: 0,
            data_start,
            code_start,
            tap_base,
            shift_ops: 0,
            corrections: 0,
        })
    }

    /// The physical budget of this stripe.
    pub fn layout(&self) -> &PeccLayout {
        &self.layout
    }

    /// The believed head position.
    pub fn believed_head(&self) -> i64 {
        self.believed_head
    }

    /// Ground-truth actual head position (believed + latent error);
    /// diagnostic only.
    pub fn actual_head(&self) -> i64 {
        self.stripe.actual_offset()
    }

    /// True when no latent position error exists.
    pub fn is_synchronised(&self) -> bool {
        self.believed_head == self.stripe.actual_offset() && self.stripe.is_aligned()
    }

    /// Number of shift operations issued (including corrective ones).
    pub fn shift_ops(&self) -> u64 {
        self.shift_ops
    }

    /// Number of corrective back-shifts issued.
    pub fn corrections(&self) -> u64 {
        self.corrections
    }

    /// Shifts by `delta` steps (positive = right) with outcomes drawn
    /// from `faults`. The believed head advances by `delta` regardless
    /// of what physically happened.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0` or `|delta|` exceeds the scheme's
    /// `max_shift_per_op`.
    pub fn shift(&mut self, delta: i64, faults: &mut dyn FaultModel) {
        assert!(delta != 0, "zero-distance shift is a no-op");
        assert!(
            delta.unsigned_abs() as usize <= self.layout.max_shift_per_op,
            "shift of {delta} exceeds max {} for {}",
            self.layout.max_shift_per_op,
            self.layout.kind
        );
        let outcome = faults.sample(delta.unsigned_abs() as u32);
        self.stripe.apply_shift(delta, outcome);
        self.believed_head += delta;
        self.shift_ops += 1;
    }

    /// Reads the p-ECC taps at the current physical state.
    ///
    /// Returns an empty vector for an unprotected stripe.
    pub fn read_taps(&self) -> Vec<Bit> {
        let Some(checker) = self.checker else {
            return Vec::new();
        };
        (0..checker.window() as usize)
            .map(|t| {
                self.stripe
                    .read_slot(self.tap_base + t)
                    .unwrap_or(Bit::Unknown)
            })
            .collect()
    }

    /// Runs p-ECC detection: compares the observed tap window against
    /// the window expected at the believed head position.
    ///
    /// Unprotected stripes always report [`Verdict::Clean`] (they cannot
    /// see anything).
    pub fn check(&self) -> Verdict {
        let Some(checker) = self.checker else {
            return Verdict::Clean;
        };
        let expected_index = (self.tap_base - self.code_start) as i64 - self.believed_head;
        checker.decode(expected_index, &self.read_taps())
    }

    /// Applies the corrective back-shift for a `Correctable(k)` verdict:
    /// the walls over-shifted by `k`, so shift `−k` *without* advancing
    /// the believed head. The corrective shift itself runs under
    /// `faults` and can fail — callers must re-[`check`](Self::check).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn correct(&mut self, k: i32, faults: &mut dyn FaultModel) {
        assert!(k != 0, "correcting a zero offset is meaningless");
        let outcome = faults.sample(k.unsigned_abs());
        self.stripe.apply_shift(-(k as i64), outcome);
        self.shift_ops += 1;
        self.corrections += 1;
        rtm_obs::counter_add("pecc.back_shifts", 1);
        rtm_obs::counter_add("pecc.back_shift_steps", k.unsigned_abs() as u64);
        rtm_obs::record_event(
            self.shift_ops,
            ShiftEvent::BackShift {
                steps: k.unsigned_abs(),
            },
        );
    }

    /// Full protected shift transaction: shift, check, correct (retrying
    /// up to `max_retries` corrective rounds), as the error-aware
    /// controller of Section 5 does. Returns the final verdict —
    /// [`Verdict::Clean`] when the data is known-aligned,
    /// [`Verdict::Uncorrectable`] when a DUE must be raised.
    pub fn shift_checked(
        &mut self,
        delta: i64,
        faults: &mut dyn FaultModel,
        max_retries: u32,
    ) -> Verdict {
        self.shift(delta, faults);
        let mut verdict = self.check();
        self.record_verdict(verdict);
        let mut rounds = 0;
        while let Verdict::Correctable(k) = verdict {
            if rounds >= max_retries {
                self.record_verdict(Verdict::Uncorrectable);
                return Verdict::Uncorrectable;
            }
            self.correct(k, faults);
            verdict = self.check();
            self.record_verdict(verdict);
            rounds += 1;
        }
        verdict
    }

    /// Emits a sampled (bit-accurate) p-ECC verdict into the global
    /// observer, timestamped with the stripe's operation count (this
    /// layer has no cycle clock). No-op when observability is off.
    fn record_verdict(&self, verdict: Verdict) {
        let outcome = match verdict {
            Verdict::Clean => {
                rtm_obs::counter_add("pecc.verdict.clean", 1);
                PeccOutcome::Clean
            }
            Verdict::Correctable(k) => {
                rtm_obs::counter_add("pecc.verdict.corrected", 1);
                PeccOutcome::Corrected(k.unsigned_abs())
            }
            Verdict::Uncorrectable => {
                rtm_obs::counter_add("pecc.verdict.due", 1);
                PeccOutcome::DetectedUncorrectable
            }
        };
        rtm_obs::record_event(self.shift_ops, ShiftEvent::PeccVerdict { outcome });
    }

    /// Reads data domain `d` at the current head position.
    ///
    /// # Errors
    ///
    /// Returns [`StripeError::HeadOutOfRange`] when the believed head
    /// does not match `d`'s required position.
    pub fn read_domain(&self, d: usize) -> Result<Bit, StripeError> {
        let want = self.layout.geometry.head_position_for(d) as i64;
        if self.believed_head != want {
            return Err(StripeError::HeadOutOfRange {
                head: self.believed_head,
                max: self.layout.geometry.max_shift(),
            });
        }
        let port = self.layout.geometry.port_of_domain(d);
        let slot = self.data_start + self.layout.geometry.port_slot(port);
        self.stripe.read_slot(slot)
    }

    /// Writes data domain `d` at the current head position.
    ///
    /// # Errors
    ///
    /// Like [`ProtectedStripe::read_domain`], plus
    /// [`StripeError::Misaligned`] in a stop-in-middle state.
    pub fn write_domain(&mut self, d: usize, bit: Bit) -> Result<(), StripeError> {
        let want = self.layout.geometry.head_position_for(d) as i64;
        if self.believed_head != want {
            return Err(StripeError::HeadOutOfRange {
                head: self.believed_head,
                max: self.layout.geometry.max_shift(),
            });
        }
        let port = self.layout.geometry.port_of_domain(d);
        let slot = self.data_start + self.layout.geometry.port_slot(port);
        self.stripe.write_slot(slot, bit)
    }

    /// Moves the believed head to `target` via checked shifts bounded by
    /// the scheme's maximum per-operation distance. Returns the worst
    /// verdict encountered.
    ///
    /// # Panics
    ///
    /// Panics if `target` exceeds the geometry's head range.
    pub fn seek_checked(&mut self, target: usize, faults: &mut dyn FaultModel) -> Verdict {
        assert!(
            target <= self.layout.geometry.max_shift(),
            "head target {target} out of range"
        );
        let mut worst = Verdict::Clean;
        while self.believed_head != target as i64 {
            let remaining = target as i64 - self.believed_head;
            let step = remaining.clamp(
                -(self.layout.max_shift_per_op as i64),
                self.layout.max_shift_per_op as i64,
            );
            let v = self.shift_checked(step, faults, 3);
            if v == Verdict::Uncorrectable {
                return v;
            }
            if worst == Verdict::Clean {
                worst = v;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_model::shift::ShiftOutcome;
    use rtm_track::fault::{IdealFaultModel, ScriptedFaultModel};

    fn secded_stripe() -> ProtectedStripe {
        ProtectedStripe::new(StripeGeometry::paper_default(), ProtectionKind::SECDED).unwrap()
    }

    #[test]
    fn clean_shifts_check_clean_everywhere() {
        let mut s = secded_stripe();
        let mut ideal = IdealFaultModel;
        for target in [7usize, 0, 3, 6, 1, 5, 2, 4, 0] {
            assert_eq!(s.seek_checked(target, &mut ideal), Verdict::Clean);
            assert_eq!(s.check(), Verdict::Clean, "at head {target}");
            assert!(s.is_synchronised());
        }
    }

    #[test]
    fn sed_detects_single_step_error() {
        let mut s =
            ProtectedStripe::new(StripeGeometry::paper_default(), ProtectionKind::Sed).unwrap();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 1 }]);
        s.shift(3, &mut faults);
        assert_eq!(
            s.check(),
            Verdict::Uncorrectable,
            "SED detects but cannot correct"
        );
    }

    #[test]
    fn secded_corrects_plus_one_everywhere() {
        for start in 0..=6i64 {
            let mut s = secded_stripe();
            let mut ideal = IdealFaultModel;
            if start > 0 {
                s.seek_checked(start as usize, &mut ideal);
            }
            let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 1 }]);
            s.shift(1, &mut faults);
            assert_eq!(s.check(), Verdict::Correctable(1), "start {start}");
            s.correct(1, &mut IdealFaultModel);
            assert_eq!(s.check(), Verdict::Clean);
            assert!(s.is_synchronised());
        }
    }

    #[test]
    fn secded_corrects_minus_one() {
        let mut s = secded_stripe();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: -1 }]);
        s.shift(3, &mut faults);
        assert_eq!(s.check(), Verdict::Correctable(-1));
        s.correct(-1, &mut IdealFaultModel);
        assert_eq!(s.check(), Verdict::Clean);
        assert!(s.is_synchronised());
    }

    #[test]
    fn secded_flags_two_step_as_due() {
        let mut s = secded_stripe();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 2 }]);
        s.shift(2, &mut faults);
        assert_eq!(s.check(), Verdict::Uncorrectable);
    }

    #[test]
    fn stop_in_middle_reads_garble_the_taps() {
        let mut s = secded_stripe();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::StopInMiddle {
            lower: 0,
            frac: 0.5,
        }]);
        s.shift(2, &mut faults);
        assert_eq!(s.check(), Verdict::Uncorrectable);
    }

    #[test]
    fn shift_checked_repairs_in_one_transaction() {
        let mut s = secded_stripe();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 1 }]);
        let v = s.shift_checked(3, &mut faults, 3);
        assert_eq!(v, Verdict::Clean);
        assert!(s.is_synchronised());
        assert_eq!(s.corrections(), 1);
        assert_eq!(s.shift_ops(), 2);
    }

    #[test]
    fn shift_checked_survives_error_during_correction() {
        let mut s = secded_stripe();
        // First shift over-shoots; the corrective −1 shift *also*
        // over-shoots (offset +1 in its own direction = no net fix);
        // the second corrective attempt succeeds.
        let mut faults = ScriptedFaultModel::new([
            ShiftOutcome::Pinned { offset: 1 },
            ShiftOutcome::Pinned { offset: 1 },
            ShiftOutcome::Pinned { offset: 0 },
        ]);
        let v = s.shift_checked(3, &mut faults, 3);
        assert_eq!(v, Verdict::Clean);
        assert!(s.is_synchronised());
        assert!(s.corrections() >= 1);
    }

    #[test]
    fn shift_checked_gives_up_after_retry_budget() {
        let mut s = secded_stripe();
        // Every correction attempt keeps failing by +1 — after the retry
        // budget the transaction must surface a DUE rather than loop.
        let outcomes: Vec<ShiftOutcome> =
            std::iter::repeat_n(ShiftOutcome::Pinned { offset: 1 }, 10).collect();
        let mut faults = ScriptedFaultModel::new(outcomes);
        let v = s.shift_checked(3, &mut faults, 2);
        assert_eq!(v, Verdict::Uncorrectable);
    }

    #[test]
    fn data_round_trip_with_protection() {
        let mut s = secded_stripe();
        let mut ideal = IdealFaultModel;
        let geom = s.layout().geometry;
        // Write a pattern across all domains using checked seeks.
        for d in 0..geom.data_len() {
            let bit = Bit::from(d % 5 == 0);
            s.seek_checked(geom.head_position_for(d), &mut ideal);
            s.write_domain(d, bit).unwrap();
        }
        for d in 0..geom.data_len() {
            s.seek_checked(geom.head_position_for(d), &mut ideal);
            assert_eq!(
                s.read_domain(d).unwrap(),
                Bit::from(d % 5 == 0),
                "domain {d}"
            );
        }
    }

    #[test]
    fn data_survives_error_and_correction() {
        let mut s = secded_stripe();
        let mut ideal = IdealFaultModel;
        let geom = s.layout().geometry;
        s.seek_checked(geom.head_position_for(20), &mut ideal);
        s.write_domain(20, Bit::One).unwrap();
        // An over-shift error on the way to another domain, repaired by
        // the checked transaction.
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 1 }]);
        let target = geom.head_position_for(33);
        let cur = s.believed_head();
        let delta = target as i64 - cur;
        let v = s.shift_checked(delta.clamp(-3, 3), &mut faults, 3);
        assert_eq!(v, Verdict::Clean);
        // Return and verify the datum survived (guard domains absorbed
        // the transient over-shift).
        s.seek_checked(geom.head_position_for(20), &mut ideal);
        assert_eq!(s.read_domain(20).unwrap(), Bit::One);
    }

    #[test]
    fn pecc_o_variant_corrects_with_single_step_shifts() {
        let mut s = ProtectedStripe::new(StripeGeometry::paper_default(), ProtectionKind::SECDED_O)
            .unwrap();
        assert_eq!(s.layout().max_shift_per_op, 1);
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 1 }]);
        let v = s.shift_checked(1, &mut faults, 3);
        assert_eq!(v, Verdict::Clean);
        assert!(s.is_synchronised());
    }

    #[test]
    fn pecc_o_rejects_multi_step_shift() {
        let mut s = ProtectedStripe::new(StripeGeometry::paper_default(), ProtectionKind::SECDED_O)
            .unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.shift(2, &mut IdealFaultModel)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn unprotected_stripe_is_blind() {
        let mut s =
            ProtectedStripe::new(StripeGeometry::paper_default(), ProtectionKind::None).unwrap();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 1 }]);
        s.shift(3, &mut faults);
        assert_eq!(s.check(), Verdict::Clean, "no code, no detection");
        assert!(!s.is_synchronised(), "...but the data is silently corrupt");
        assert!(s.read_taps().is_empty());
    }

    #[test]
    fn marker_protected_stripe_corrects_two_step_errors() {
        // The stream-codec kinds carry the aperiodic marker pattern;
        // bit-accurate checks behave like a strength-2 code.
        for kind in [ProtectionKind::CHEE_KIAH, ProtectionKind::VAHID_2DI] {
            let mut s = ProtectedStripe::new(StripeGeometry::paper_default(), kind).unwrap();
            for e in [-2i32, -1, 1, 2] {
                let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: e }]);
                let v = s.shift_checked(3, &mut faults, 3);
                assert_eq!(v, Verdict::Clean, "{kind} e={e}");
                assert!(s.is_synchronised());
                s.seek_checked(0, &mut IdealFaultModel);
            }
        }
    }

    #[test]
    fn marker_protected_stripe_never_aliases_at_the_cyclic_period() {
        // A +4 slip aliases to Clean under cyclic SECDED (period 4) but
        // is an honest DUE under the marker kinds.
        let mut cyc = secded_stripe();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 4 }]);
        cyc.shift(3, &mut faults);
        assert_eq!(cyc.check(), Verdict::Clean, "cyclic aliases silently");
        assert!(!cyc.is_synchronised());

        for kind in [ProtectionKind::CHEE_KIAH, ProtectionKind::VAHID_2DI] {
            let mut s = ProtectedStripe::new(StripeGeometry::paper_default(), kind).unwrap();
            let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 4 }]);
            s.shift(3, &mut faults);
            assert_eq!(s.check(), Verdict::Uncorrectable, "{kind}");
        }
    }

    #[test]
    fn marker_protected_data_round_trip() {
        let mut s =
            ProtectedStripe::new(StripeGeometry::paper_default(), ProtectionKind::CHEE_KIAH)
                .unwrap();
        let mut ideal = IdealFaultModel;
        let geom = s.layout().geometry;
        for d in [0usize, 17, 40, 63] {
            s.seek_checked(geom.head_position_for(d), &mut ideal);
            s.write_domain(d, Bit::One).unwrap();
        }
        for d in [0usize, 17, 40, 63] {
            s.seek_checked(geom.head_position_for(d), &mut ideal);
            assert_eq!(s.read_domain(d).unwrap(), Bit::One, "domain {d}");
        }
    }

    #[test]
    fn stronger_code_corrects_deeper_errors() {
        let geom = StripeGeometry::new(64, 4).unwrap(); // Lseg = 16
        let mut s = ProtectedStripe::new(geom, ProtectionKind::Correcting { m: 3 }).unwrap();
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 3 }]);
        s.shift(5, &mut faults);
        assert_eq!(s.check(), Verdict::Correctable(3));
        s.correct(3, &mut IdealFaultModel);
        assert!(s.is_synchronised());
        // ±4 is detected, not corrected.
        let mut faults = ScriptedFaultModel::new([ShiftOutcome::Pinned { offset: 4 }]);
        s.shift(5, &mut faults);
        assert_eq!(s.check(), Verdict::Uncorrectable);
    }
}
