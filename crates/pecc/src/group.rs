//! Group-level protection: a lockstep set of protected stripes holding
//! one cache line (the paper's 512-stripe interleaving), each carrying
//! its own p-ECC taps.
//!
//! A group shift commands every stripe simultaneously; each stripe's
//! walls move under their own physics, so error detection and
//! correction are *per stripe*: after the shared pulse the controller
//! reads every stripe's taps in parallel, and only the slipped stripes
//! receive corrective back-shifts (their neighbours are idle during
//! the repair). The group raises a DUE if any stripe's verdict is
//! uncorrectable after the retry budget.

use crate::code::Verdict;
use crate::layout::{LayoutError, ProtectionKind};
use crate::protected::ProtectedStripe;
use rtm_track::fault::FaultModel;
use rtm_track::geometry::StripeGeometry;

/// Statistics of a group's protected operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Group shift transactions issued.
    pub transactions: u64,
    /// Per-stripe corrective shifts issued.
    pub corrections: u64,
    /// Transactions that ended in a DUE.
    pub dues: u64,
}

/// A lockstep group of protected stripes.
///
/// Per-stripe state is materialised lazily: until the group is shifted
/// or a stripe is mutably accessed, every member stripe is provably
/// identical to the deterministic fabrication-state prototype (head 0,
/// zeroed data, freshly derived code taps), so only the prototype is
/// stored. Materialisation clones the prototype `count` times — it
/// consumes no randomness, so fault-model sampling streams are
/// unaffected by *when* it happens.
#[derive(Debug, Clone)]
pub struct ProtectedGroup {
    /// The fabrication-state stripe every member equals while pristine.
    prototype: ProtectedStripe,
    /// Materialised per-stripe state; empty while the group is pristine.
    stripes: Vec<ProtectedStripe>,
    count: usize,
    stats: GroupStats,
}

impl ProtectedGroup {
    /// Creates a group of `count` stripes with the given geometry and
    /// protection. Only a single prototype stripe is allocated until the
    /// group is first shifted or mutably accessed.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] for invalid combinations.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn new(
        geometry: StripeGeometry,
        kind: ProtectionKind,
        count: usize,
    ) -> Result<Self, LayoutError> {
        assert!(count > 0, "a group needs at least one stripe");
        let prototype = ProtectedStripe::new(geometry, kind)?;
        Ok(Self {
            prototype,
            stripes: Vec::new(),
            count,
            stats: GroupStats::default(),
        })
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the group has zero stripes (never true for a constructed
    /// group, but derived honestly rather than hardcoded).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True while only the prototype stripe is allocated.
    pub fn is_pristine(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Forces per-stripe state into existence (`count` prototype
    /// clones). Draws nothing from any fault model.
    pub fn materialise(&mut self) {
        if self.stripes.is_empty() {
            self.stripes = vec![self.prototype.clone(); self.count];
        }
    }

    /// Approximate heap bytes held by the group's stripe state
    /// (prototype plus materialised stripes; one byte per cell).
    pub fn approx_bytes(&self) -> usize {
        let per =
            std::mem::size_of::<ProtectedStripe>() + self.prototype.layout().geometry.total_len();
        std::mem::size_of::<Self>() + (1 + self.stripes.len()) * per
    }

    /// Group statistics.
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// A member stripe (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stripe(&self, i: usize) -> &ProtectedStripe {
        if self.stripes.is_empty() {
            assert!(i < self.count, "stripe index {i} out of range");
            &self.prototype
        } else {
            &self.stripes[i]
        }
    }

    /// Mutable access to a member stripe, for port-level data reads and
    /// writes at the group's current head position (materialises the
    /// group).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stripe_mut(&mut self, i: usize) -> &mut ProtectedStripe {
        self.materialise();
        &mut self.stripes[i]
    }

    /// The shared believed head position.
    pub fn believed_head(&self) -> i64 {
        self.stripe(0).believed_head()
    }

    /// True when every stripe is physically synchronised with the
    /// believed head.
    pub fn is_synchronised(&self) -> bool {
        // A pristine group is synchronised by construction.
        self.stripes.iter().all(|s| s.is_synchronised())
    }

    /// One protected group transaction: shift every stripe by `delta`,
    /// check all taps, repair slipped stripes individually (up to
    /// `max_retries` rounds each). Returns the worst per-stripe verdict.
    ///
    /// # Panics
    ///
    /// Panics like [`ProtectedStripe::shift`] on a zero or over-long
    /// delta.
    pub fn shift_checked(
        &mut self,
        delta: i64,
        faults: &mut dyn FaultModel,
        max_retries: u32,
    ) -> Verdict {
        self.materialise();
        self.stats.transactions += 1;
        let mut worst = Verdict::Clean;
        for stripe in &mut self.stripes {
            let before = stripe.corrections();
            // The per-stripe transaction repairs correctable slips
            // internally, so its final verdict is Clean or
            // Uncorrectable.
            let v = stripe.shift_checked(delta, faults, max_retries);
            self.stats.corrections += stripe.corrections() - before;
            if v == Verdict::Uncorrectable {
                worst = Verdict::Uncorrectable;
            }
        }
        if worst == Verdict::Uncorrectable {
            self.stats.dues += 1;
        }
        worst
    }

    /// Seeks the whole group to head position `target` with checked
    /// shifts bounded by the scheme's per-operation limit.
    ///
    /// # Panics
    ///
    /// Panics if `target` is outside the head range.
    pub fn seek_checked(
        &mut self,
        target: usize,
        faults: &mut dyn FaultModel,
        max_retries: u32,
    ) -> Verdict {
        let geometry = self.prototype.layout().geometry;
        assert!(
            target <= geometry.max_shift(),
            "head target {target} out of range"
        );
        let max_step = self.prototype.layout().max_shift_per_op as i64;
        let mut worst = Verdict::Clean;
        while self.believed_head() != target as i64 {
            let delta = (target as i64 - self.believed_head()).clamp(-max_step, max_step);
            let v = self.shift_checked(delta, faults, max_retries);
            if v == Verdict::Uncorrectable {
                return v;
            }
            if worst == Verdict::Clean {
                worst = v;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_model::shift::ShiftOutcome;
    use rtm_track::fault::{IdealFaultModel, ScriptedFaultModel};

    fn group(count: usize) -> ProtectedGroup {
        ProtectedGroup::new(
            StripeGeometry::paper_default(),
            ProtectionKind::SECDED,
            count,
        )
        .expect("valid layout")
    }

    #[test]
    fn clean_group_transactions() {
        let mut g = group(8);
        let mut ideal = IdealFaultModel;
        for target in [3usize, 7, 0, 5] {
            assert_eq!(g.seek_checked(target, &mut ideal, 3), Verdict::Clean);
            assert!(g.is_synchronised());
        }
        assert_eq!(g.stats().corrections, 0);
        assert_eq!(g.stats().dues, 0);
    }

    #[test]
    fn single_slipped_stripe_is_repaired_alone() {
        let mut g = group(4);
        // The fault model is consumed stripe-by-stripe in order: stripe
        // 1 of 4 slips by +1, the rest are clean; the corrective shift
        // (sampled next) succeeds.
        let mut faults = ScriptedFaultModel::new([
            ShiftOutcome::Pinned { offset: 0 }, // stripe 0 shift
            ShiftOutcome::Pinned { offset: 1 }, // stripe 1 shift (slip!)
            ShiftOutcome::Pinned { offset: 0 }, // stripe 1 correction
            ShiftOutcome::Pinned { offset: 0 }, // stripe 2 shift
            ShiftOutcome::Pinned { offset: 0 }, // stripe 3 shift
        ]);
        let v = g.shift_checked(3, &mut faults, 3);
        assert_eq!(v, Verdict::Clean, "the slip was repaired in-transaction");
        assert!(g.is_synchronised(), "repair must fully resynchronise");
        assert_eq!(g.stats().corrections, 1, "only the slipped stripe moved");
    }

    #[test]
    fn group_due_when_any_stripe_is_uncorrectable() {
        let mut g = group(3);
        let mut faults = ScriptedFaultModel::new([
            ShiftOutcome::Pinned { offset: 0 },
            ShiftOutcome::Pinned { offset: 2 }, // ±2: uncorrectable
            ShiftOutcome::Pinned { offset: 0 },
        ]);
        let v = g.shift_checked(2, &mut faults, 3);
        assert_eq!(v, Verdict::Uncorrectable);
        assert_eq!(g.stats().dues, 1);
        assert!(!g.is_synchronised());
    }

    #[test]
    fn group_size_512_round_trips() {
        // The paper's full line group: everything stays in lockstep
        // across a seek schedule.
        let mut g = group(512);
        let mut ideal = IdealFaultModel;
        for target in [7usize, 2, 6, 0] {
            g.seek_checked(target, &mut ideal, 3);
        }
        assert!(g.is_synchronised());
        assert_eq!(g.len(), 512);
        assert_eq!(g.believed_head(), 0);
    }

    #[test]
    fn calibrated_faults_on_group_scale() {
        // With inflated rates, a 512-stripe group sees frequent
        // per-stripe repairs but stays synchronised (only ±1 injected).
        let mut g = group(64);
        let mut faults = rtm_reliability_stub::InflatedOneStep::new(0.01, 5);
        let mut due = false;
        for target in [3usize, 6, 1, 7, 0, 4] {
            if g.seek_checked(target, &mut faults, 4) == Verdict::Uncorrectable {
                due = true;
                break;
            }
        }
        assert!(!due, "±1 errors must all be repaired");
        assert!(g.is_synchronised());
        assert!(g.stats().corrections > 0, "repairs must have happened");
    }

    /// A minimal ±1-only inflated fault model (avoiding a dev-dependency
    /// cycle on rtm-reliability).
    mod rtm_reliability_stub {
        use rtm_model::shift::ShiftOutcome;
        use rtm_track::fault::FaultModel;
        use rtm_util::rng::SmallRng64;

        pub struct InflatedOneStep {
            p1: f64,
            rng: SmallRng64,
        }

        impl InflatedOneStep {
            pub fn new(p1: f64, seed: u64) -> Self {
                Self {
                    p1,
                    rng: SmallRng64::new(seed),
                }
            }
        }

        impl FaultModel for InflatedOneStep {
            fn sample(&mut self, _d: u32) -> ShiftOutcome {
                if self.rng.chance(self.p1) {
                    let sign = if self.rng.chance(0.9) { 1 } else { -1 };
                    ShiftOutcome::Pinned { offset: sign }
                } else {
                    ShiftOutcome::Pinned { offset: 0 }
                }
            }
        }
    }

    #[test]
    fn pristine_group_defers_stripe_allocation() {
        let mut g = group(512);
        assert!(g.is_pristine());
        assert_eq!(g.len(), 512);
        assert!(!g.is_empty());
        assert_eq!(g.believed_head(), 0);
        assert!(g.is_synchronised());
        let pristine_bytes = g.approx_bytes();
        // Seeking to the position it is already at touches nothing.
        let mut ideal = IdealFaultModel;
        assert_eq!(g.seek_checked(0, &mut ideal, 3), Verdict::Clean);
        assert!(g.is_pristine());
        // A real shift materialises; state matches an eagerly built group.
        g.seek_checked(3, &mut ideal, 3);
        assert!(!g.is_pristine());
        assert!(g.approx_bytes() > 100 * pristine_bytes);
        let mut eager = group(512);
        eager.materialise();
        eager.seek_checked(3, &mut ideal, 3);
        for i in [0usize, 100, 511] {
            assert_eq!(g.stripe(i).believed_head(), eager.stripe(i).believed_head());
            assert_eq!(
                g.stripe(i).is_synchronised(),
                eager.stripe(i).is_synchronised()
            );
        }
    }

    #[test]
    #[should_panic]
    fn empty_group_rejected() {
        let _ = ProtectedGroup::new(StripeGeometry::paper_default(), ProtectionKind::SECDED, 0);
    }
}
