//! Domain/port/guard budgets for each protection scheme — the design
//! cost analysis of Section 4.2.3 and the overhead-region variant of
//! Section 4.2.4.
//!
//! For a segment length `Lseg` and correction strength `m`:
//!
//! | scheme | extra domains | guard domains | extra read ports | extra write ports | max shift |
//! |---|---|---|---|---|---|
//! | SED | `Lseg + 1` | 0 | 1 | 0 | `Lseg − 1` |
//! | p-ECC(m) | `Lseg + 3m + 2` | `2m` | `m + 1` | 0 | `Lseg − 1` |
//! | p-ECC-O(m) | `2·2(m+1)` (reuses overhead) | `2m` | `2(m + 1)` | 2 | 1 |
//!
//! The p-ECC(m) code region must keep `m + 1` taps over valid code bits
//! at every head position `s ∈ [0, Lseg − 1]` even when walls are off by
//! up to `±(m + 1)`; spanning those extremes takes
//! `(Lseg − 1 + 2(m + 1)) + m = Lseg + 3m + 2` domains — which is the
//! paper's example count of 9 for `Lseg = 4, m = 1` ("9 = 4 + 5").
//! p-ECC-O stores the code in the (already paid-for) overhead regions at
//! both stripe ends instead, shrinking the domain bill at the price of
//! 1-step shift-and-write operation (Section 4.2.4).

use crate::code::{MarkerCode, PeccCode, StripeChecker, Verdict};
use rtm_codes::{CheeKiahCodec, PositionCodec, Vahid2diCodec};
use rtm_track::geometry::StripeGeometry;
use std::fmt;

/// Which protection mechanism a stripe carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionKind {
    /// No p-ECC at all (the baseline).
    None,
    /// Single-step error detection (Fig. 5).
    Sed,
    /// Dedicated-region p-ECC correcting up to `m` steps (Fig. 6,
    /// Section 4.2.3). `m = 1` is SECDED.
    Correcting {
        /// Correction strength in steps.
        m: u32,
    },
    /// Overhead-region p-ECC-O correcting up to `m` steps (Fig. 8).
    OverheadRegion {
        /// Correction strength in steps.
        m: u32,
    },
    /// Multi-look Chee–Kiah–Vardy–Vu–Yaakobi code (arXiv 1701.06874):
    /// `heads` read ports per data port, offset by `delta` domains,
    /// merge their looks to pin a ≤2-step slip against the data itself.
    /// Redundancy lives mostly in ports and read energy, not domains.
    CheeKiah {
        /// Read ports per data port (≥ 2).
        heads: u32,
        /// Domain offset between consecutive looks (≥ 2).
        delta: u32,
    },
    /// Two-deletion/insertion code of Vahid et al. (arXiv 1701.06478):
    /// interleaved Varshamov–Tenengolts syndromes stored in-track,
    /// decoded from one serial stream through the existing data ports.
    Vahid2di,
}

impl ProtectionKind {
    /// The paper's SECDED p-ECC (`m = 1`).
    pub const SECDED: ProtectionKind = ProtectionKind::Correcting { m: 1 };

    /// The paper's SECDED p-ECC-O (`m = 1`).
    pub const SECDED_O: ProtectionKind = ProtectionKind::OverheadRegion { m: 1 };

    /// The default two-look Chee–Kiah configuration (h = 2, δ = 2).
    pub const CHEE_KIAH: ProtectionKind = ProtectionKind::CheeKiah { heads: 2, delta: 2 };

    /// The default Vahid two-deletion/insertion configuration.
    pub const VAHID_2DI: ProtectionKind = ProtectionKind::Vahid2di;

    /// The cyclic code used by this protection, if any. The stream
    /// codecs carry no cyclic pattern — see
    /// [`checker`](Self::checker) for the pattern they do carry.
    pub fn code(&self) -> Option<PeccCode> {
        match self {
            ProtectionKind::None | ProtectionKind::CheeKiah { .. } | ProtectionKind::Vahid2di => {
                None
            }
            ProtectionKind::Sed => Some(PeccCode::sed()),
            ProtectionKind::Correcting { m } | ProtectionKind::OverheadRegion { m } => {
                Some(PeccCode::new(*m))
            }
        }
    }

    /// The in-track tap pattern this protection checks after each
    /// shift, if any: the cyclic square wave for the p-ECC family, the
    /// aperiodic marker for the stream codecs.
    pub fn checker(&self) -> Option<StripeChecker> {
        match self {
            ProtectionKind::None => None,
            ProtectionKind::Sed
            | ProtectionKind::Correcting { .. }
            | ProtectionKind::OverheadRegion { .. } => self.code().map(StripeChecker::Cyclic),
            ProtectionKind::CheeKiah { .. } | ProtectionKind::Vahid2di => {
                Some(StripeChecker::Marker(MarkerCode::new(self.strength())))
            }
        }
    }

    /// Correction strength in steps (0 for none/SED).
    pub fn strength(&self) -> u32 {
        match self {
            ProtectionKind::None | ProtectionKind::Sed => 0,
            ProtectionKind::Correcting { m } | ProtectionKind::OverheadRegion { m } => *m,
            ProtectionKind::CheeKiah { .. } | ProtectionKind::Vahid2di => {
                rtm_codes::cheekiah::STRENGTH
            }
        }
    }

    /// Ideal-channel verdict for a true position offset of `e` steps
    /// under this protection.
    ///
    /// This is the kind-level risk classifier the analytic reliability
    /// and controller paths use: the cyclic family keeps its
    /// period-aliasing behaviour (an offset of a full period classifies
    /// [`Verdict::Clean`] — the SDC floor), while the stream codecs
    /// never alias — anything beyond their strength is a detected DUE.
    pub fn classify_offset(&self, e: i32) -> Verdict {
        match self {
            // Unprotected: every error is silent.
            ProtectionKind::None => Verdict::Clean,
            ProtectionKind::Sed
            | ProtectionKind::Correcting { .. }
            | ProtectionKind::OverheadRegion { .. } => self
                .code()
                .expect("cyclic kinds carry a code")
                .classify_offset(e),
            ProtectionKind::CheeKiah { .. } | ProtectionKind::Vahid2di => {
                let s = self.strength() as i32;
                if e == 0 {
                    Verdict::Clean
                } else if e.abs() <= s {
                    Verdict::Correctable(e)
                } else {
                    Verdict::Uncorrectable
                }
            }
        }
    }
}

impl fmt::Display for ProtectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionKind::None => write!(f, "unprotected"),
            ProtectionKind::Sed => write!(f, "SED p-ECC"),
            ProtectionKind::Correcting { m: 1 } => write!(f, "SECDED p-ECC"),
            ProtectionKind::Correcting { m } => write!(f, "p-ECC(m={m})"),
            ProtectionKind::OverheadRegion { m: 1 } => write!(f, "SECDED p-ECC-O"),
            ProtectionKind::OverheadRegion { m } => write!(f, "p-ECC-O(m={m})"),
            ProtectionKind::CheeKiah { heads, delta } => {
                write!(f, "Chee-Kiah multi-look (h={heads}, d={delta})")
            }
            ProtectionKind::Vahid2di => write!(f, "Vahid 2-DI"),
        }
    }
}

/// Errors constructing a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// Correction strength must satisfy `m < Lseg − 1` (Section 4.2.3).
    StrengthTooHigh {
        /// Requested strength.
        m: u32,
        /// Segment length of the geometry.
        lseg: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::StrengthTooHigh { m, lseg } => write!(
                f,
                "correction strength {m} requires segment length > {}, got {lseg}",
                m + 1
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// The complete physical budget of a protected stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeccLayout {
    /// Base data geometry.
    pub geometry: StripeGeometry,
    /// Protection scheme.
    pub kind: ProtectionKind,
    /// Domains dedicated to p-ECC code storage.
    pub code_domains: usize,
    /// Guard domains protecting data from over-shift loss.
    pub guard_domains: usize,
    /// Extra read-only ports for p-ECC taps.
    pub extra_read_ports: usize,
    /// Extra write ports (p-ECC-O shift-and-write).
    pub extra_write_ports: usize,
    /// Maximum steps a single shift operation may take under this
    /// scheme (p-ECC-O forces 1).
    pub max_shift_per_op: usize,
}

impl PeccLayout {
    /// Computes the budget for `kind` over `geometry`.
    ///
    /// # Errors
    ///
    /// [`LayoutError::StrengthTooHigh`] when `m ≥ Lseg − 1`.
    pub fn new(geometry: StripeGeometry, kind: ProtectionKind) -> Result<Self, LayoutError> {
        let lseg = geometry.segment_len();
        let m = kind.strength() as usize;
        if matches!(
            kind,
            ProtectionKind::Correcting { .. }
                | ProtectionKind::OverheadRegion { .. }
                | ProtectionKind::CheeKiah { .. }
                | ProtectionKind::Vahid2di
        ) && m + 1 >= lseg
        {
            return Err(LayoutError::StrengthTooHigh { m: m as u32, lseg });
        }
        let (code_domains, guard_domains, extra_read_ports, extra_write_ports, max_shift) =
            match kind {
                ProtectionKind::None => (0, 0, 0, 0, geometry.max_shift().max(1)),
                ProtectionKind::Sed => (lseg + 1, 0, 1, 0, geometry.max_shift().max(1)),
                ProtectionKind::Correcting { .. } => (
                    lseg + 3 * m + 2,
                    2 * m,
                    m + 1,
                    0,
                    geometry.max_shift().max(1),
                ),
                ProtectionKind::OverheadRegion { .. } => {
                    // 2(m+1) code domains at each end; the right-end ones
                    // overlay the existing overhead region, so only the
                    // portion beyond it plus the left region are "extra".
                    let per_end = 2 * (m + 1);
                    let reused = geometry.overhead_len().min(per_end);
                    let extra = 2 * per_end - reused;
                    (extra, 2 * m, 2 * (m + 1), 2, 1)
                }
                ProtectionKind::CheeKiah { heads, delta } => {
                    // Stored redundancy is only the tie-break checksum;
                    // the (heads − 1)·delta look-offset cells count as
                    // guards. Every data port gains (heads − 1)
                    // companion looks — the scheme pays in ports and
                    // read energy, not domains.
                    let codec =
                        CheeKiahCodec::new(heads as usize, delta as usize, geometry.data_len());
                    let offsets = (heads as usize - 1) * delta as usize;
                    let checksum = codec.overhead_bits_per_word() - offsets;
                    let ports = (heads as usize - 1) * geometry.num_ports();
                    (
                        checksum,
                        offsets + 2 * m,
                        ports,
                        0,
                        geometry.max_shift().max(1),
                    )
                }
                ProtectionKind::Vahid2di => {
                    // Interleaved VT syndromes stored in-track; decoding
                    // reads the serial stream through the existing data
                    // ports, so no extra ports at all.
                    let codec = Vahid2diCodec::new(geometry.data_len());
                    (
                        codec.overhead_bits_per_word(),
                        2 * m,
                        0,
                        0,
                        geometry.max_shift().max(1),
                    )
                }
            };
        Ok(Self {
            geometry,
            kind,
            code_domains,
            guard_domains,
            extra_read_ports,
            extra_write_ports,
            max_shift_per_op: max_shift,
        })
    }

    /// Total extra domains over the bare stripe (code + guards).
    pub fn extra_domains(&self) -> usize {
        self.code_domains + self.guard_domains
    }

    /// Total physical domains of the protected stripe.
    pub fn total_domains(&self) -> usize {
        self.geometry.total_len() + self.extra_domains()
    }

    /// Storage overhead: the fraction of the protected stripe's domains
    /// that hold p-ECC state rather than data or baseline overhead.
    /// This is the paper's Table 5 "cell" column — 17.6 % for the
    /// default 64×8 SECDED configuration (we compute 17.4 %).
    pub fn storage_overhead(&self) -> f64 {
        self.extra_domains() as f64 / self.total_domains() as f64
    }

    /// Total read-capable ports (data read/write ports + p-ECC taps).
    pub fn total_read_ports(&self) -> usize {
        self.geometry.num_ports() + self.extra_read_ports
    }
}

impl fmt::Display for PeccLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: +{} code domains, +{} guards, +{} read ports ({:.1}% storage overhead)",
            self.kind,
            self.geometry,
            self.code_domains,
            self.guard_domains,
            self.extra_read_ports,
            self.storage_overhead() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(data: usize, ports: usize) -> StripeGeometry {
        StripeGeometry::new(data, ports).unwrap()
    }

    #[test]
    fn sed_matches_fig5_example() {
        // Fig. 5: 8 data domains, 2 ports (Lseg = 4) → 5 code domains,
        // 1 extra read port.
        let l = PeccLayout::new(geom(8, 2), ProtectionKind::Sed).unwrap();
        assert_eq!(l.code_domains, 5);
        assert_eq!(l.guard_domains, 0);
        assert_eq!(l.extra_read_ports, 1);
        assert_eq!(l.extra_write_ports, 0);
    }

    #[test]
    fn secded_matches_fig6_example() {
        // Fig. 6: same stripe, SECDED → 9 code domains ("9 = 4 + 5"),
        // one guard per end, two read ports.
        let l = PeccLayout::new(geom(8, 2), ProtectionKind::SECDED).unwrap();
        assert_eq!(l.code_domains, 9);
        assert_eq!(l.guard_domains, 2);
        assert_eq!(l.extra_read_ports, 2);
        assert_eq!(l.max_shift_per_op, 3);
    }

    #[test]
    fn pecc_o_matches_fig8_example() {
        // Fig. 8: SECDED-O adds 4 domains and 2 ports per end, plus a
        // write port each end, and forces 1-step shifts.
        let l = PeccLayout::new(geom(8, 2), ProtectionKind::SECDED_O).unwrap();
        assert_eq!(l.extra_read_ports, 4);
        assert_eq!(l.extra_write_ports, 2);
        assert_eq!(l.max_shift_per_op, 1);
        // 4 per end = 8, minus the 3 overhead domains reused on the right.
        assert_eq!(l.code_domains, 5);
    }

    #[test]
    fn default_secded_storage_overhead_near_paper() {
        // Paper Table 5: 17.6 % capacity overhead for the 64×8 SECDED
        // configuration.
        let l = PeccLayout::new(geom(64, 8), ProtectionKind::SECDED).unwrap();
        let pct = l.storage_overhead() * 100.0;
        assert!((15.0..25.0).contains(&pct), "storage overhead {pct:.1}%");
    }

    #[test]
    fn pecc_o_beats_pecc_for_long_segments() {
        // Section 4.2.4: p-ECC-O wins when the segment is long.
        let long = geom(64, 2); // Lseg = 32
        let pecc = PeccLayout::new(long, ProtectionKind::SECDED).unwrap();
        let pecc_o = PeccLayout::new(long, ProtectionKind::SECDED_O).unwrap();
        assert!(pecc_o.extra_domains() < pecc.extra_domains());
        // ... and loses (or ties) on very short segments where the
        // dedicated region is already tiny.
        let short = geom(64, 32); // Lseg = 2... m=1 needs Lseg > 2
        assert!(PeccLayout::new(short, ProtectionKind::SECDED).is_err());
        let short = geom(64, 16); // Lseg = 4
        let pecc = PeccLayout::new(short, ProtectionKind::SECDED).unwrap();
        let pecc_o = PeccLayout::new(short, ProtectionKind::SECDED_O).unwrap();
        assert!(pecc.extra_domains() <= pecc_o.extra_domains() + 4);
    }

    #[test]
    fn strength_bound_enforced() {
        // m < Lseg − 1: for Lseg = 4 the maximum strength is 2.
        let g = geom(8, 2);
        assert!(PeccLayout::new(g, ProtectionKind::Correcting { m: 2 }).is_ok());
        assert_eq!(
            PeccLayout::new(g, ProtectionKind::Correcting { m: 3 }),
            Err(LayoutError::StrengthTooHigh { m: 3, lseg: 4 })
        );
    }

    #[test]
    fn stronger_codes_cost_more() {
        let g = geom(64, 4); // Lseg = 16
        let mut prev = 0;
        for m in 1..=4 {
            let l = PeccLayout::new(g, ProtectionKind::Correcting { m }).unwrap();
            assert!(l.extra_domains() > prev);
            assert_eq!(l.extra_read_ports, m as usize + 1);
            prev = l.extra_domains();
        }
    }

    #[test]
    fn none_has_zero_overhead() {
        let l = PeccLayout::new(geom(64, 8), ProtectionKind::None).unwrap();
        assert_eq!(l.extra_domains(), 0);
        assert_eq!(l.storage_overhead(), 0.0);
        assert_eq!(l.total_domains(), 71);
    }

    #[test]
    fn display_is_informative() {
        let l = PeccLayout::new(geom(64, 8), ProtectionKind::SECDED).unwrap();
        let s = l.to_string();
        assert!(s.contains("SECDED"));
        assert!(s.contains("read ports"));
    }

    #[test]
    fn kind_codes() {
        assert!(ProtectionKind::None.code().is_none());
        assert_eq!(ProtectionKind::Sed.code().unwrap().strength(), 0);
        assert_eq!(ProtectionKind::SECDED.code().unwrap().strength(), 1);
        assert_eq!(ProtectionKind::SECDED_O.code().unwrap().period(), 4);
    }

    #[test]
    fn stream_codecs_carry_markers_not_cyclic_codes() {
        for kind in [ProtectionKind::CHEE_KIAH, ProtectionKind::VAHID_2DI] {
            assert!(kind.code().is_none(), "{kind}: no cyclic pattern");
            let chk = kind.checker().unwrap();
            assert!(matches!(chk, StripeChecker::Marker(_)), "{kind}");
            assert_eq!(chk.strength(), 2);
            assert_eq!(kind.strength(), 2);
        }
        assert!(ProtectionKind::None.checker().is_none());
        assert!(matches!(
            ProtectionKind::SECDED.checker().unwrap(),
            StripeChecker::Cyclic(_)
        ));
    }

    #[test]
    fn kind_level_classify_matches_checker_semantics() {
        // Cyclic SECDED aliases at its period; the stream codecs do not.
        assert_eq!(ProtectionKind::SECDED.classify_offset(4), Verdict::Clean);
        for kind in [ProtectionKind::CHEE_KIAH, ProtectionKind::VAHID_2DI] {
            assert_eq!(kind.classify_offset(0), Verdict::Clean);
            for e in [-2, -1, 1, 2] {
                assert_eq!(
                    kind.classify_offset(e),
                    Verdict::Correctable(e),
                    "{kind} {e}"
                );
            }
            for e in [-4, -3, 3, 4, 64] {
                assert_eq!(
                    kind.classify_offset(e),
                    Verdict::Uncorrectable,
                    "{kind} {e}"
                );
            }
        }
        // Unprotected stripes are blind: everything is silent.
        assert_eq!(ProtectionKind::None.classify_offset(3), Verdict::Clean);
    }

    #[test]
    fn chee_kiah_budget_trades_domains_for_ports() {
        let g = geom(64, 8);
        let ck = PeccLayout::new(g, ProtectionKind::CHEE_KIAH).unwrap();
        let pecc = PeccLayout::new(g, ProtectionKind::SECDED).unwrap();
        // Far fewer extra domains than dedicated-region p-ECC...
        assert!(ck.extra_domains() < pecc.extra_domains());
        // ...but one companion look per data port.
        assert_eq!(ck.extra_read_ports, g.num_ports());
        assert!(ck.extra_read_ports > pecc.extra_read_ports);
        // 8-bit checksum for the 64-bit paper word.
        assert_eq!(ck.code_domains, 8);
    }

    #[test]
    fn vahid_budget_is_storage_heavy_and_port_free() {
        let g = geom(64, 8);
        let v = PeccLayout::new(g, ProtectionKind::VAHID_2DI).unwrap();
        // 21 syndrome bits on the 64-bit paper word, through existing
        // ports only.
        assert_eq!(v.code_domains, 21);
        assert_eq!(v.extra_read_ports, 0);
        assert_eq!(v.extra_write_ports, 0);
        let pecc = PeccLayout::new(g, ProtectionKind::SECDED).unwrap();
        assert!(v.storage_overhead() > pecc.storage_overhead());
    }
}
