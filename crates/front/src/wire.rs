//! Recording, replaying and answering wire-protocol traffic.
//!
//! The driver side records a [`FrontConfig`]'s arrival stream as
//! `Hello + Request* + Fin`; the server side rebuilds the session
//! table from the `Hello` and replays the requests through the same
//! [`FrontDoor`] admission path the internal experiment uses. Because
//! both paths share every decision-relevant component — the table,
//! the buckets, the serving simulator — a wire replay is bit-identical
//! to the internal run it was recorded from (asserted by tests and
//! the `bench-front --check` gate).

use std::fmt;

use crate::class::ClassSpec;
use crate::door::{FrontConfig, FrontDoor, FrontResult};
use crate::proto::{Frame, ProtoError};
use crate::session::FrontArrival;
use rtm_serve::{SchedPolicy, ServeSim};

/// Errors answering a recorded stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream did not start with a `Hello`.
    MissingHello,
    /// A frame kind that has no business in a request stream.
    UnexpectedFrame(&'static str),
    /// The `Hello` carried an unusable configuration.
    BadHello(String),
    /// The request count did not match the `Hello`'s `offered`.
    WrongRequestCount {
        /// What the `Hello` promised.
        expected: u64,
        /// What the stream carried.
        got: u64,
    },
    /// Decode error in the underlying byte stream.
    Proto(ProtoError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::MissingHello => write!(f, "stream must start with Hello"),
            WireError::UnexpectedFrame(kind) => {
                write!(f, "unexpected {kind} frame in request stream")
            }
            WireError::BadHello(why) => write!(f, "unusable Hello: {why}"),
            WireError::WrongRequestCount { expected, got } => {
                write!(
                    f,
                    "Hello promised {expected} requests, stream carried {got}"
                )
            }
            WireError::Proto(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ProtoError> for WireError {
    fn from(e: ProtoError) -> Self {
        WireError::Proto(e)
    }
}

/// Records a configuration's traffic as a request stream.
pub fn record_frames(cfg: &FrontConfig) -> Vec<Frame> {
    let mut frames = Vec::with_capacity(cfg.offered as usize + 2);
    frames.push(hello_frame(cfg));
    let mut prev_cycle = 0u64;
    for a in cfg.arrivals() {
        let gap = a.cycle - prev_cycle;
        debug_assert!(gap <= u32::MAX as u64, "inter-arrival gap fits the frame");
        frames.push(Frame::Request {
            tenant: a.tenant,
            class: a.class,
            addr: a.addr,
            is_write: a.is_write,
            gap: gap as u32,
        });
        prev_cycle = a.cycle;
    }
    frames.push(Frame::Fin);
    frames
}

/// The `Hello` describing a configuration.
pub fn hello_frame(cfg: &FrontConfig) -> Frame {
    Frame::Hello {
        tenants: cfg.tenants,
        seed: cfg.seed,
        offered: cfg.offered,
        window: cfg.window,
        capacity_req_per_kcycle: cfg.capacity_req_per_kcycle,
        think_scale: cfg.effective_think_scale(),
        classes: cfg.classes.entries().to_vec(),
    }
}

/// Reconstructs the [`FrontConfig`] a `Hello` describes.
///
/// # Errors
///
/// Rejects hellos whose fields cannot form a valid configuration.
pub fn config_of_hello(hello: &Frame) -> Result<FrontConfig, WireError> {
    let Frame::Hello {
        tenants,
        seed,
        offered,
        window,
        capacity_req_per_kcycle,
        think_scale,
        classes,
    } = hello
    else {
        return Err(WireError::MissingHello);
    };
    if *tenants == 0 {
        return Err(WireError::BadHello("zero tenants".into()));
    }
    if *offered == 0 {
        return Err(WireError::BadHello("zero offered requests".into()));
    }
    if *window == 0 {
        return Err(WireError::BadHello("zero admission window".into()));
    }
    if *capacity_req_per_kcycle == 0 {
        return Err(WireError::BadHello("zero capacity estimate".into()));
    }
    if !classes.iter().any(|(_, w)| *w > 0) {
        return Err(WireError::BadHello("no class with positive weight".into()));
    }
    for (i, (c, _)) in classes.iter().enumerate() {
        if classes[i + 1..].iter().any(|(o, _)| o == c) {
            return Err(WireError::BadHello(format!("class {c} repeated")));
        }
    }
    let mut cfg = FrontConfig::new(*tenants).with_classes(ClassSpec::new(classes));
    cfg.seed = *seed;
    cfg.offered = *offered;
    cfg.window = *window;
    cfg.capacity_req_per_kcycle = *capacity_req_per_kcycle;
    cfg.think_scale = *think_scale;
    Ok(cfg)
}

/// Replays decoded request frames as arrivals (exact inverse of the
/// gap encoding in [`record_frames`]).
struct ReplayArrivals<'a> {
    requests: std::slice::Iter<'a, Frame>,
    cycle: u64,
    seq: u64,
}

impl Iterator for ReplayArrivals<'_> {
    type Item = FrontArrival;

    fn next(&mut self) -> Option<FrontArrival> {
        loop {
            match self.requests.next()? {
                Frame::Request {
                    tenant,
                    class,
                    addr,
                    is_write,
                    gap,
                } => {
                    self.cycle += *gap as u64;
                    let seq = self.seq;
                    self.seq += 1;
                    return Some(FrontArrival {
                        cycle: self.cycle,
                        seq,
                        tenant: *tenant,
                        class: *class,
                        addr: *addr,
                        is_write: *is_write,
                    });
                }
                Frame::Fin => return None,
                // Validated before replay; skip defensively.
                _ => continue,
            }
        }
    }
}

/// Answers a recorded request stream: validates it, replays it through
/// the admission path under `policy`, and returns the run result plus
/// the response stream (`Response* + ClassSummary* + Summary + Fin`).
///
/// # Errors
///
/// Returns a [`WireError`] for malformed or inconsistent streams.
pub fn serve_frames(
    frames: &[Frame],
    policy: SchedPolicy,
) -> Result<(FrontResult, Vec<Frame>), WireError> {
    let Some(hello) = frames.first() else {
        return Err(WireError::MissingHello);
    };
    let cfg = config_of_hello(hello)?;
    let mut requests = 0u64;
    for f in &frames[1..] {
        match f {
            Frame::Request { .. } => requests += 1,
            Frame::Fin => {}
            Frame::Hello { .. } => return Err(WireError::UnexpectedFrame("Hello")),
            Frame::Response { .. } => return Err(WireError::UnexpectedFrame("Response")),
            Frame::ClassSummary { .. } => return Err(WireError::UnexpectedFrame("ClassSummary")),
            Frame::Summary { .. } => return Err(WireError::UnexpectedFrame("Summary")),
        }
    }
    if requests != cfg.offered {
        return Err(WireError::WrongRequestCount {
            expected: cfg.offered,
            got: requests,
        });
    }
    let arrivals = ReplayArrivals {
        requests: frames[1..].iter(),
        cycle: 0,
        seq: 0,
    };
    let mut door =
        FrontDoor::over(arrivals, cfg.table(), cfg.window, cfg.conn_clients).log_responses();
    let serve = ServeSim::new(cfg.serve_config(policy)).run_source(&mut door);
    let result = door.finish(serve);
    let response = response_frames(&result);
    Ok((result, response))
}

/// Builds the server's reply stream for a finished run.
pub fn response_frames(result: &FrontResult) -> Vec<Frame> {
    let mut frames = Vec::new();
    if let Some(log) = &result.responses {
        for r in log {
            frames.push(Frame::Response {
                seq: r.seq,
                verdict: r.verdict,
                cycle: r.cycle,
                total_cycles: r.total_cycles,
            });
        }
    }
    for c in &result.classes {
        frames.push(Frame::ClassSummary {
            class: c.class,
            tenants: c.tenants,
            admitted: c.admitted,
            shed: c.shed,
            deferred: c.deferred,
            completed: c.completed,
            p50: c.latency.p50,
            p95: c.latency.p95,
            p99: c.latency.p99,
        });
    }
    frames.push(Frame::Summary {
        cycles: result.serve.cycles,
        admitted: result.admitted(),
        shed: result.shed(),
        deferred: result.deferred(),
        completed: result.completed(),
        fairness_bits: result.fairness_ratio().to_bits(),
    });
    frames.push(Frame::Fin);
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::door::run_front;
    use crate::proto::{decode_all, encode_all, Loopback, Verdict};
    use std::io::Write;

    fn cfg() -> FrontConfig {
        FrontConfig::new(150).with_offered(5_000)
    }

    #[test]
    fn wire_replay_matches_internal_run_exactly() {
        let cfg = cfg();
        let internal = run_front(&cfg, SchedPolicy::ShiftAware);
        // Record, push through an in-memory byte stream, decode, serve.
        let mut chan = Loopback::new();
        chan.write_all(&encode_all(&record_frames(&cfg))).unwrap();
        let frames = crate::proto::read_frames(&mut chan).unwrap();
        let (replayed, response) = serve_frames(&frames, SchedPolicy::ShiftAware).unwrap();
        assert_eq!(replayed.classes, internal.classes);
        assert_eq!(replayed.serve, internal.serve);
        // The response stream covers every arrival plus summaries.
        let responses = response
            .iter()
            .filter(|f| matches!(f, Frame::Response { .. }))
            .count() as u64;
        assert_eq!(responses, cfg.offered);
        let done = response
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    Frame::Response {
                        verdict: Verdict::Done,
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(done, internal.completed());
        match response[response.len() - 2] {
            Frame::Summary { fairness_bits, .. } => {
                assert_eq!(f64::from_bits(fairness_bits), internal.fairness_ratio());
            }
            ref other => panic!("expected Summary before Fin, got {other:?}"),
        }
        assert_eq!(response.last(), Some(&Frame::Fin));
        // And the response stream survives its own byte round trip.
        assert_eq!(decode_all(&encode_all(&response)).unwrap(), response);
    }

    #[test]
    fn hello_config_round_trip() {
        let mut cfg = cfg();
        cfg.classes = ClassSpec::parse("latency:3,besteffort:2").unwrap();
        cfg.think_scale = 77;
        let back = config_of_hello(&hello_frame(&cfg)).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        assert_eq!(
            serve_frames(&[], SchedPolicy::Fcfs),
            Err(WireError::MissingHello)
        );
        assert_eq!(
            serve_frames(&[Frame::Fin], SchedPolicy::Fcfs),
            Err(WireError::MissingHello)
        );
        let mut frames = record_frames(&cfg());
        frames.pop();
        frames.pop(); // drop a request and the fin
        match serve_frames(&frames, SchedPolicy::Fcfs) {
            Err(WireError::WrongRequestCount { expected, got }) => {
                assert_eq!(expected, cfg().offered);
                assert_eq!(got, cfg().offered - 1);
            }
            other => panic!("expected WrongRequestCount, got {other:?}"),
        }
        let mut with_resp = record_frames(&cfg());
        with_resp.insert(
            1,
            Frame::Response {
                seq: 0,
                verdict: Verdict::Done,
                cycle: 0,
                total_cycles: 0,
            },
        );
        assert_eq!(
            serve_frames(&with_resp, SchedPolicy::Fcfs),
            Err(WireError::UnexpectedFrame("Response"))
        );
    }
}
