//! Multi-tenant serving frontend for the racetrack-memory LLC.
//!
//! `rtm-serve` (PRs 4-7) drives the racetrack LLC with a fixed
//! closed-loop client model. This crate adds the missing front door
//! for the "heavy traffic from millions of users" regime:
//!
//! * **tenant sessions** ([`session`]) — tens of thousands of
//!   deterministic [`rtm_trace::TenantStream`]s merged into one
//!   open-loop arrival sequence, each tenant owning a window of the
//!   tenant-strided address space;
//! * **SLO classes** ([`class`]) — `latency` / `throughput` /
//!   `besteffort`, each buying different token-bucket parameters
//!   relative to the tenant's fair share of backend capacity;
//! * **admission control** ([`door`]) — a deterministic token-bucket
//!   decision (admit / defer / shed) taken *before* the serving
//!   layer's bounded per-group queues can backpressure, implemented
//!   as an [`rtm_serve::RequestSource`] so completions flow back into
//!   per-class latency and fairness statistics;
//! * **a binary wire protocol** ([`proto`], [`wire`]) — compact
//!   little-endian frames plus an in-memory [`proto::Loopback`]
//!   transport, letting the `front-driver` binary replay recorded
//!   multi-tenant traffic against a standalone `front-server` process
//!   over any byte stream.
//!
//! Everything is deterministic: a [`door::FrontResult`] is a pure
//! function of the [`door::FrontConfig`] and scheduling policy, and a
//! wire replay of recorded traffic is bit-identical to the internal
//! run it was recorded from.
//!
//! # Examples
//!
//! ```
//! use rtm_front::{run_front, FrontConfig};
//! use rtm_serve::SchedPolicy;
//!
//! let cfg = FrontConfig::new(100).with_offered(2_000);
//! let r = run_front(&cfg, SchedPolicy::ShiftAware);
//! assert_eq!(r.admitted() + r.shed(), 2_000);
//! assert_eq!(r.completed(), r.admitted());
//! assert!(r.fairness_ratio() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod class;
pub mod door;
pub mod proto;
pub mod session;
pub mod wire;

pub use bucket::TokenBucket;
pub use class::{ClassSpec, SloClass};
pub use door::{run_front, ClassStats, FrontConfig, FrontDoor, FrontResult, FRONT_STRIDE};
pub use proto::{Frame, Loopback, ProtoError, Verdict};
pub use session::{FrontArrival, SessionArrivals, SessionTable};
pub use wire::{record_frames, serve_frames, WireError};
