//! SLO classes and the tenant-to-class assignment spec.

use std::fmt;

/// Service-level objective class of a tenant session.
///
/// The class picks the tenant's token-bucket parameters relative to its
/// fair share of the backend capacity: `latency` buys headroom and
/// sheds instead of queueing stale work, `throughput` buys burst depth
/// and patience, `besteffort` gets the leftovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// Interactive: 2x fair-share rate, shallow burst, sheds quickly.
    Latency,
    /// Batch-friendly: 1.2x fair-share rate, deep burst, defers long.
    Throughput,
    /// Scavenger: 0.6x fair-share rate, minimal burst, medium patience.
    BestEffort,
}

/// Admission parameters of one SLO class, relative to the tenant's
/// fair share of backend capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassParams {
    /// Token refill rate as a multiple of the fair share.
    pub rate_mult: f64,
    /// Bucket depth in whole tokens.
    pub burst: u64,
    /// Deferral patience in token periods: a request that cannot get a
    /// token within this many refill periods of its arrival is shed.
    pub defer_periods: u64,
}

impl SloClass {
    /// Every class, in canonical order.
    pub const ALL: [SloClass; 3] = [
        SloClass::Latency,
        SloClass::Throughput,
        SloClass::BestEffort,
    ];

    /// Stable lowercase label (also the wire/CLI spelling).
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Latency => "latency",
            SloClass::Throughput => "throughput",
            SloClass::BestEffort => "besteffort",
        }
    }

    /// Parses a label produced by [`Self::label`].
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.label() == name)
    }

    /// Dense index into per-class tables (canonical order).
    pub fn index(self) -> usize {
        match self {
            SloClass::Latency => 0,
            SloClass::Throughput => 1,
            SloClass::BestEffort => 2,
        }
    }

    /// Wire encoding (one byte).
    pub fn code(self) -> u8 {
        self.index() as u8
    }

    /// Decodes a wire byte.
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The class's admission parameters.
    pub fn params(self) -> ClassParams {
        match self {
            SloClass::Latency => ClassParams {
                rate_mult: 2.0,
                burst: 4,
                defer_periods: 1,
            },
            SloClass::Throughput => ClassParams {
                rate_mult: 1.2,
                burst: 8,
                defer_periods: 32,
            },
            SloClass::BestEffort => ClassParams {
                rate_mult: 0.6,
                burst: 2,
                defer_periods: 8,
            },
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Weighted class mix, e.g. `latency:1,throughput:2,besteffort:1`.
///
/// Tenants are assigned classes by a deterministic weighted
/// round-robin over the spec (the same expansion
/// `rtm_trace::MixedTraceGenerator` uses for profiles), so the mix of
/// a 10k-tenant population matches the weights exactly up to rounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    entries: Vec<(SloClass, u32)>,
    schedule: Vec<SloClass>,
}

impl ClassSpec {
    /// Builds a spec from explicit `(class, weight)` entries.
    ///
    /// # Panics
    ///
    /// Panics if no entry has positive weight or a class repeats.
    pub fn new(entries: &[(SloClass, u32)]) -> Self {
        assert!(
            entries.iter().any(|(_, w)| *w > 0),
            "at least one positive weight"
        );
        for (i, (c, _)) in entries.iter().enumerate() {
            assert!(
                entries[i + 1..].iter().all(|(o, _)| o != c),
                "class {c} repeated in spec"
            );
        }
        let mut remaining: Vec<u32> = entries.iter().map(|(_, w)| *w).collect();
        let mut schedule = Vec::new();
        while remaining.iter().any(|&w| w > 0) {
            for (i, w) in remaining.iter_mut().enumerate() {
                if *w > 0 {
                    *w -= 1;
                    schedule.push(entries[i].0);
                }
            }
        }
        Self {
            entries: entries.to_vec(),
            schedule,
        }
    }

    /// The default mix: every class with weight 1.
    pub fn balanced() -> Self {
        Self::new(&[
            (SloClass::Latency, 1),
            (SloClass::Throughput, 1),
            (SloClass::BestEffort, 1),
        ])
    }

    /// Parses `name[:weight]` entries separated by commas. A missing
    /// weight means 1; an empty string means [`Self::balanced`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.trim().is_empty() {
            return Ok(Self::balanced());
        }
        let mut entries = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let (name, weight) = match part.split_once(':') {
                Some((n, w)) => {
                    let w: u32 = w
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad weight in `{part}`"))?;
                    (n.trim(), w)
                }
                None => (part, 1),
            };
            let class = SloClass::by_name(name).ok_or_else(|| {
                format!("unknown class `{name}` (expected latency/throughput/besteffort)")
            })?;
            if entries.iter().any(|(c, _)| *c == class) {
                return Err(format!("class `{name}` repeated"));
            }
            entries.push((class, weight));
        }
        if !entries.iter().any(|(_, w)| *w > 0) {
            return Err("at least one class needs a positive weight".into());
        }
        Ok(Self::new(&entries))
    }

    /// The `(class, weight)` entries in spec order.
    pub fn entries(&self) -> &[(SloClass, u32)] {
        &self.entries
    }

    /// Classes that can actually receive tenants (positive weight), in
    /// canonical order.
    pub fn active_classes(&self) -> Vec<SloClass> {
        let mut present: Vec<SloClass> = self
            .entries
            .iter()
            .filter(|(_, w)| *w > 0)
            .map(|(c, _)| *c)
            .collect();
        present.sort_by_key(|c| c.index());
        present
    }

    /// The class of a tenant id under the round-robin assignment.
    pub fn class_of(&self, tenant: u32) -> SloClass {
        self.schedule[tenant as usize % self.schedule.len()]
    }

    /// How many of `tenants` land in `class`.
    pub fn population(&self, class: SloClass, tenants: u32) -> u32 {
        let len = self.schedule.len() as u32;
        let per_cycle = self.schedule.iter().filter(|&&c| c == class).count() as u32;
        let full = tenants / len;
        let tail = self.schedule[..(tenants % len) as usize]
            .iter()
            .filter(|&&c| c == class)
            .count() as u32;
        full * per_cycle + tail
    }
}

impl fmt::Display for ClassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (c, w)) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}:{w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for c in SloClass::ALL {
            assert_eq!(SloClass::by_name(c.label()), Some(c));
            assert_eq!(SloClass::from_code(c.code()), Some(c));
        }
        assert_eq!(SloClass::by_name("gold"), None);
        assert_eq!(SloClass::from_code(3), None);
    }

    #[test]
    fn parse_and_display_round_trip() {
        let spec = ClassSpec::parse("latency:2,besteffort:1").unwrap();
        assert_eq!(spec.to_string(), "latency:2,besteffort:1");
        assert_eq!(ClassSpec::parse(&spec.to_string()).unwrap(), spec);
        assert_eq!(ClassSpec::parse("").unwrap(), ClassSpec::balanced());
        assert_eq!(
            ClassSpec::parse("latency,throughput").unwrap().entries(),
            &[(SloClass::Latency, 1), (SloClass::Throughput, 1)]
        );
        assert!(ClassSpec::parse("gold:1").is_err());
        assert!(ClassSpec::parse("latency:x").is_err());
        assert!(ClassSpec::parse("latency:0").is_err());
        assert!(ClassSpec::parse("latency:1,latency:2").is_err());
    }

    #[test]
    fn assignment_matches_weights() {
        let spec = ClassSpec::parse("latency:1,throughput:2,besteffort:1").unwrap();
        // Expansion: L T B T (weighted round-robin passes).
        assert_eq!(spec.class_of(0), SloClass::Latency);
        assert_eq!(spec.class_of(1), SloClass::Throughput);
        assert_eq!(spec.class_of(2), SloClass::BestEffort);
        assert_eq!(spec.class_of(3), SloClass::Throughput);
        assert_eq!(spec.class_of(4), SloClass::Latency);
        let tenants = 10_000;
        let total: u32 = SloClass::ALL
            .iter()
            .map(|&c| spec.population(c, tenants))
            .sum();
        assert_eq!(total, tenants);
        assert_eq!(spec.population(SloClass::Throughput, tenants), 5_000);
        let counted = (0..tenants)
            .filter(|&t| spec.class_of(t) == SloClass::Throughput)
            .count() as u32;
        assert_eq!(counted, 5_000);
    }
}
