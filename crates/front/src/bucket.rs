//! A deterministic fixed-point token bucket.
//!
//! Rates are stored as integer tokens-per-cycle scaled by 2^20, so
//! refill arithmetic is exact: the bucket's state after any sequence
//! of `(cycle, take)` operations is a pure function of that sequence,
//! bit-identical across platforms and independent of how the caller's
//! work is partitioned over threads.

/// Fixed-point scale: the integer cost of one whole token.
pub const TOKEN: u64 = 1 << 20;

/// A token bucket with exact integer refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    /// Fixed-point tokens currently available.
    level: u64,
    /// Fixed-point capacity (burst depth).
    cap: u64,
    /// Fixed-point tokens gained per cycle.
    rate: u64,
    /// Cycle of the last refill (monotone).
    last: u64,
}

impl TokenBucket {
    /// A bucket refilling `rate_fp` fixed-point tokens per cycle with
    /// `burst` whole tokens of depth, starting full at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero (the bucket could never admit).
    pub fn new(rate_fp: u64, burst: u64) -> Self {
        assert!(burst > 0, "burst must hold at least one token");
        let cap = burst.saturating_mul(TOKEN);
        Self {
            level: cap,
            cap,
            rate: rate_fp,
            last: 0,
        }
    }

    /// Converts a tokens-per-cycle rate into the fixed-point unit,
    /// clamped to at least 1 so every bucket eventually refills.
    pub fn rate_fp(tokens_per_cycle: f64) -> u64 {
        let fp = (TOKEN as f64 * tokens_per_cycle).round();
        if fp < 1.0 {
            1
        } else if fp >= u64::MAX as f64 {
            u64::MAX
        } else {
            fp as u64
        }
    }

    /// The configured fixed-point refill rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Cycles for one whole token to accrue from empty (≥ 1).
    pub fn token_period(&self) -> u64 {
        if self.rate == 0 {
            u64::MAX
        } else {
            TOKEN.div_ceil(self.rate)
        }
    }

    /// Level after refilling to `now`, without mutating.
    fn level_at(&self, now: u64) -> u64 {
        let dt = now.saturating_sub(self.last) as u128;
        let gained = dt * self.rate as u128;
        ((self.level as u128 + gained).min(self.cap as u128)) as u64
    }

    /// Refills to `now` and takes one token if available.
    ///
    /// Time must not run backwards: `now` below the last observed
    /// cycle is treated as that cycle.
    pub fn try_take(&mut self, now: u64) -> bool {
        self.level = self.level_at(now);
        self.last = self.last.max(now);
        if self.level >= TOKEN {
            self.level -= TOKEN;
            true
        } else {
            false
        }
    }

    /// The earliest cycle `t >= now` at which [`Self::try_take`] would
    /// succeed with no intervening takes, or `u64::MAX` for a bucket
    /// that can never refill.
    pub fn next_available(&self, now: u64) -> u64 {
        let level = self.level_at(now) as u128;
        if level >= TOKEN as u128 {
            return now;
        }
        if self.rate == 0 {
            return u64::MAX;
        }
        let deficit = TOKEN as u128 - level;
        let wait = deficit.div_ceil(self.rate as u128);
        now.saturating_add(wait.min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_util::check::{run_cases, Gen};

    #[test]
    fn starts_full_and_enforces_rate() {
        let mut b = TokenBucket::new(TOKEN / 128, 2); // 1 token / 128 cycles
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst exhausted");
        assert!(!b.try_take(127), "token not yet accrued");
        assert!(b.try_take(128), "exactly one period later");
    }

    #[test]
    fn next_available_is_exact() {
        run_cases(200, |g: &mut Gen| {
            let rate = g.u64_in(1, 3 * TOKEN);
            let burst = g.u64_in(1, 8);
            let mut b = TokenBucket::new(rate, burst);
            let mut now = 0;
            for _ in 0..50 {
                now += g.u64_in(0, 500);
                let _ = b.try_take(now);
            }
            let t = b.next_available(now);
            assert!(t >= now);
            if t < u64::MAX {
                let mut probe = b;
                assert!(probe.try_take(t), "available when promised");
                if t > now {
                    let mut early = b;
                    assert!(!early.try_take(t - 1), "not available one cycle early");
                }
            }
        });
    }

    #[test]
    fn zero_rate_never_refills() {
        let mut b = TokenBucket::new(0, 1);
        assert!(b.try_take(0));
        assert!(!b.try_take(1_000_000));
        assert_eq!(b.next_available(1_000_000), u64::MAX);
        assert_eq!(b.token_period(), u64::MAX);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(TOKEN, 3); // 1 token/cycle, burst 3
        for _ in 0..3 {
            assert!(b.try_take(0));
        }
        assert!(!b.try_take(0));
        // A long idle period refills to the cap, not beyond.
        let mut after = b;
        for _ in 0..3 {
            assert!(after.try_take(1_000));
        }
        assert!(!after.try_take(1_000));
    }

    #[test]
    fn rate_fp_clamps() {
        assert_eq!(TokenBucket::rate_fp(0.0), 1);
        assert_eq!(TokenBucket::rate_fp(1.0), TOKEN);
        assert!(TokenBucket::rate_fp(1e-12) >= 1);
    }
}
