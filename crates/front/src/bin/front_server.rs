//! Standalone front-door server: answers a recorded request stream.
//!
//! Reads a `Hello + Request* + Fin` frame stream (stdin by default),
//! replays it through the admission path and the serving simulator,
//! and writes `Response* + ClassSummary* + Summary + Fin` (stdout by
//! default). The whole input is consumed before the first response
//! byte is written, so the exchange cannot deadlock over a pipe pair.

use std::fs::File;
use std::io::{self, Write};
use std::process::ExitCode;

use rtm_front::proto::{read_frames, write_frames};
use rtm_front::wire::serve_frames;
use rtm_serve::SchedPolicy;

struct Options {
    input: Option<String>,
    output: Option<String>,
    policy: SchedPolicy,
}

fn usage() -> ! {
    eprintln!(
        "usage: front-server [--in FILE] [--out FILE] [--policy fcfs|fr-fcfs|shift-aware]\n\
         \n\
         Reads a recorded front-door request stream (default: stdin),\n\
         serves it, and writes the response stream (default: stdout)."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: None,
        output: None,
        policy: SchedPolicy::ShiftAware,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--in" => opts.input = Some(args.next().unwrap_or_else(|| usage())),
            "--out" => opts.output = Some(args.next().unwrap_or_else(|| usage())),
            "--policy" => {
                let name = args.next().unwrap_or_else(|| usage());
                match SchedPolicy::by_name(&name) {
                    Some(p) => opts.policy = p,
                    None => {
                        eprintln!("front-server: unknown policy `{name}`");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("front-server: unknown argument `{other}`");
                usage();
            }
        }
    }
    opts
}

fn run(opts: &Options) -> io::Result<ExitCode> {
    let frames = match &opts.input {
        Some(path) => read_frames(&mut File::open(path)?)?,
        None => read_frames(&mut io::stdin().lock())?,
    };
    let (result, response) = match serve_frames(&frames, opts.policy) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("front-server: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    match &opts.output {
        Some(path) => write_frames(&mut File::create(path)?, &response)?,
        None => {
            let mut out = io::stdout().lock();
            write_frames(&mut out, &response)?;
            out.flush()?;
        }
    }
    eprintln!(
        "front-server: {} tenants, {} offered -> {} admitted, {} shed, {} deferrals, \
         {} cycles, fairness {:.2} ({})",
        result.tenants,
        result.admitted() + result.shed(),
        result.admitted(),
        result.shed(),
        result.deferred(),
        result.serve.cycles,
        result.fairness_ratio(),
        opts.policy.label(),
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let opts = parse_args();
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("front-server: {e}");
            ExitCode::FAILURE
        }
    }
}
