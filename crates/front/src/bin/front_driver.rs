//! Front-door traffic driver: records multi-tenant traffic and replays
//! it against a `front-server` over a byte stream.
//!
//! Default mode spawns the sibling `front-server` binary and exchanges
//! frames over its stdin/stdout pipes — the full process-separated
//! path. `--emit FILE` records the request stream to a file instead
//! (serve it later with `front-server --in`), and `--decode FILE`
//! pretty-prints a saved response stream. `--verify` additionally runs
//! the same configuration in-process and fails unless the server's
//! summaries match bit-for-bit.

use std::io::{Read, Write};
use std::process::{Command, ExitCode, Stdio};

use rtm_front::class::ClassSpec;
use rtm_front::door::{run_front, FrontConfig};
use rtm_front::proto::{decode_all, encode_all, Frame, Verdict};
use rtm_front::wire::record_frames;
use rtm_serve::SchedPolicy;

struct Options {
    cfg: FrontConfig,
    policy: SchedPolicy,
    emit: Option<String>,
    decode: Option<String>,
    verify: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: front-driver [--tenants N] [--offered N] [--classes SPEC] [--seed N]\n\
         \u{20}                   [--window N] [--policy P] [--emit FILE | --decode FILE]\n\
         \u{20}                   [--verify]\n\
         \n\
         Default: spawn the sibling front-server and replay the recorded\n\
         traffic over its stdin/stdout. SPEC example: latency:1,throughput:2"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        cfg: FrontConfig::new(1_000),
        policy: SchedPolicy::ShiftAware,
        emit: None,
        decode: None,
        verify: false,
    };
    let mut offered_set = false;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" => {
                opts.cfg.tenants = value(&mut args).parse().unwrap_or_else(|_| usage());
                if !offered_set {
                    opts.cfg.offered = (opts.cfg.tenants as u64).saturating_mul(12).max(24_000);
                }
            }
            "--offered" => {
                opts.cfg.offered = value(&mut args).parse().unwrap_or_else(|_| usage());
                offered_set = true;
            }
            "--classes" => match ClassSpec::parse(&value(&mut args)) {
                Ok(spec) => opts.cfg.classes = spec,
                Err(e) => {
                    eprintln!("front-driver: {e}");
                    usage();
                }
            },
            "--seed" => opts.cfg.seed = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--window" => opts.cfg.window = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                let name = value(&mut args);
                match SchedPolicy::by_name(&name) {
                    Some(p) => opts.policy = p,
                    None => {
                        eprintln!("front-driver: unknown policy `{name}`");
                        usage();
                    }
                }
            }
            "--emit" => opts.emit = Some(value(&mut args)),
            "--decode" => opts.decode = Some(value(&mut args)),
            "--verify" => opts.verify = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("front-driver: unknown argument `{other}`");
                usage();
            }
        }
    }
    opts
}

/// Prints the per-class table of a response stream's summaries.
fn print_summaries(frames: &[Frame]) {
    println!(
        "class       tenants   admitted       shed  deferrals  completed     p50     p95     p99"
    );
    for f in frames {
        if let Frame::ClassSummary {
            class,
            tenants,
            admitted,
            shed,
            deferred,
            completed,
            p50,
            p95,
            p99,
        } = f
        {
            println!(
                "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7} {:>7}",
                class.label(),
                tenants,
                admitted,
                shed,
                deferred,
                completed,
                p50,
                p95,
                p99
            );
        }
    }
    for f in frames {
        if let Frame::Summary {
            cycles,
            admitted,
            shed,
            deferred,
            completed,
            fairness_bits,
        } = f
        {
            println!(
                "total: {admitted} admitted, {shed} shed, {deferred} deferrals, \
                 {completed} completed in {cycles} cycles, fairness {:.2}",
                f64::from_bits(*fairness_bits)
            );
        }
    }
}

/// Checks the server's summaries against an in-process run.
fn verify(cfg: &FrontConfig, policy: SchedPolicy, response: &[Frame]) -> bool {
    let internal = run_front(cfg, policy);
    let mut ok = true;
    for f in response {
        if let Frame::Summary {
            cycles,
            admitted,
            shed,
            deferred,
            completed,
            fairness_bits,
        } = f
        {
            ok &= *cycles == internal.serve.cycles
                && *admitted == internal.admitted()
                && *shed == internal.shed()
                && *deferred == internal.deferred()
                && *completed == internal.completed()
                && *fairness_bits == internal.fairness_ratio().to_bits();
        }
        if let Frame::ClassSummary {
            class,
            admitted,
            shed,
            completed,
            p99,
            ..
        } = f
        {
            let local = internal.classes.iter().find(|c| c.class == *class);
            ok &= local.is_some_and(|c| {
                c.admitted == *admitted
                    && c.shed == *shed
                    && c.completed == *completed
                    && c.latency.p99 == *p99
            });
        }
    }
    if ok {
        eprintln!("front-driver: wire replay matches the in-process run bit-for-bit");
    } else {
        eprintln!("front-driver: MISMATCH between wire replay and in-process run");
    }
    ok
}

fn main() -> ExitCode {
    let opts = parse_args();

    if let Some(path) = &opts.decode {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("front-driver: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match decode_all(&bytes) {
            Ok(frames) => {
                print_summaries(&frames);
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("front-driver: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let request = encode_all(&record_frames(&opts.cfg));

    if let Some(path) = &opts.emit {
        if let Err(e) = std::fs::write(path, &request) {
            eprintln!("front-driver: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "front-driver: recorded {} requests ({} bytes) to {path}",
            opts.cfg.offered,
            request.len()
        );
        return ExitCode::SUCCESS;
    }

    // Spawn the sibling server and exchange frames over its pipes.
    let server = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("front-server")))
        .filter(|p| p.exists());
    let Some(server) = server else {
        eprintln!("front-driver: front-server binary not found next to front-driver");
        return ExitCode::FAILURE;
    };
    let mut child = match Command::new(&server)
        .arg("--policy")
        .arg(opts.policy.label())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("front-driver: spawning {}: {e}", server.display());
            return ExitCode::FAILURE;
        }
    };
    // The server reads its whole stdin before writing, so write-then-
    // read (with stdin dropped to signal EOF) cannot deadlock.
    {
        let mut stdin = child.stdin.take().expect("piped stdin");
        if let Err(e) = stdin.write_all(&request) {
            eprintln!("front-driver: writing request stream: {e}");
            let _ = child.kill();
            return ExitCode::FAILURE;
        }
    }
    let mut response_bytes = Vec::new();
    if let Err(e) = child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_end(&mut response_bytes)
    {
        eprintln!("front-driver: reading response stream: {e}");
        let _ = child.kill();
        return ExitCode::FAILURE;
    }
    match child.wait() {
        Ok(status) if status.success() => {}
        Ok(status) => {
            eprintln!("front-driver: server exited with {status}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("front-driver: waiting for server: {e}");
            return ExitCode::FAILURE;
        }
    }
    let response = match decode_all(&response_bytes) {
        Ok(frames) => frames,
        Err(e) => {
            eprintln!("front-driver: decoding response stream: {e}");
            return ExitCode::FAILURE;
        }
    };
    let answered = response
        .iter()
        .filter(|f| matches!(f, Frame::Response { .. }))
        .count() as u64;
    if answered != opts.cfg.offered {
        eprintln!(
            "front-driver: expected {} responses, got {answered}",
            opts.cfg.offered
        );
        return ExitCode::FAILURE;
    }
    let shed = response
        .iter()
        .filter(|f| {
            matches!(
                f,
                Frame::Response {
                    verdict: Verdict::Shed,
                    ..
                }
            )
        })
        .count() as u64;
    eprintln!(
        "front-driver: {} requests answered over the wire ({} done, {} shed)",
        answered,
        answered - shed,
        shed
    );
    print_summaries(&response);
    if opts.verify && !verify(&opts.cfg, opts.policy, &response) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
