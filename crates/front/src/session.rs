//! Tenant session tables and the merged arrival stream.
//!
//! [`SessionTable`] holds the admission-relevant state of every
//! tenant: its SLO class and its token bucket, with rates derived from
//! the tenant's *fair share* of the configured backend capacity.
//! [`SessionArrivals`] merges tens of thousands of per-tenant
//! [`TenantStream`]s into one open-loop arrival sequence ordered by
//! `(cycle, tenant)` — a deterministic event-heap merge, so the
//! sequence is a pure function of the configuration.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bucket::{TokenBucket, TOKEN};
use crate::class::{ClassSpec, SloClass};
use rtm_trace::{TenantStream, WorkloadProfile};
use rtm_util::rng::derive_seed;

/// Salt for the per-tenant arrival phase, so phases are independent of
/// the trace streams drawn from the same base seed.
const PHASE_SALT: u64 = 0xF0_0D_CA_FE;

/// One request arriving at the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontArrival {
    /// Arrival cycle.
    pub cycle: u64,
    /// Global arrival sequence number (0, 1, 2, ... in arrival order).
    pub seq: u64,
    /// Tenant id.
    pub tenant: u32,
    /// The tenant's SLO class.
    pub class: SloClass,
    /// Line address, already relocated into the tenant's window.
    pub addr: u64,
    /// Whether the access is a write.
    pub is_write: bool,
}

/// Per-tenant admission state shared by the internal and wire-replay
/// paths.
#[derive(Debug, Clone)]
pub struct SessionTable {
    spec: ClassSpec,
    tenants: u32,
    buckets: Vec<TokenBucket>,
    /// Shed threshold per class index: maximum cycles between a
    /// request's arrival and the earliest token before it is shed.
    max_defer: [u64; 3],
}

impl SessionTable {
    /// Builds the table: tenant `t` gets class `spec.class_of(t)` and
    /// a bucket refilling at `class.rate_mult x` its fair share of
    /// `capacity_req_per_kcycle` (the backend's sustainable rate split
    /// evenly over the population).
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn new(spec: &ClassSpec, tenants: u32, capacity_req_per_kcycle: u32) -> Self {
        assert!(tenants > 0, "at least one tenant");
        let fair = capacity_req_per_kcycle as f64 / 1000.0 / tenants as f64;
        let mut buckets = Vec::with_capacity(tenants as usize);
        let mut max_defer = [0u64; 3];
        for class in SloClass::ALL {
            let p = class.params();
            let rate = TokenBucket::rate_fp(fair * p.rate_mult);
            let period = TOKEN.div_ceil(rate);
            max_defer[class.index()] = p.defer_periods.saturating_mul(period);
        }
        for t in 0..tenants {
            let p = spec.class_of(t).params();
            let rate = TokenBucket::rate_fp(fair * p.rate_mult);
            buckets.push(TokenBucket::new(rate, p.burst));
        }
        Self {
            spec: spec.clone(),
            tenants,
            buckets,
            max_defer,
        }
    }

    /// Tenant population.
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// The class mix.
    pub fn spec(&self) -> &ClassSpec {
        &self.spec
    }

    /// The class of a tenant.
    pub fn class_of(&self, tenant: u32) -> SloClass {
        self.spec.class_of(tenant)
    }

    /// The tenant's token bucket.
    pub fn bucket_mut(&mut self, tenant: u32) -> &mut TokenBucket {
        &mut self.buckets[tenant as usize]
    }

    /// Immutable view of the tenant's bucket.
    pub fn bucket(&self, tenant: u32) -> &TokenBucket {
        &self.buckets[tenant as usize]
    }

    /// The shed threshold (cycles from arrival to earliest token) of a
    /// class.
    pub fn max_defer(&self, class: SloClass) -> u64 {
        self.max_defer[class.index()]
    }
}

/// Merges per-tenant streams into one arrival sequence.
///
/// Tenant `t` draws its accesses from
/// `TenantStream::strided(profile, seed, t, stride)` with
/// `profile = parsec()[t % 12]`; successive arrivals of the same
/// tenant are separated by the access's instruction gap scaled by the
/// think multiplier (open-loop "user think time"). The first arrival
/// of each tenant is offset by a deterministic per-tenant phase so a
/// large population spreads over time instead of stampeding cycle 0.
#[derive(Debug, Clone)]
pub struct SessionArrivals {
    streams: Vec<TenantStream>,
    spec: ClassSpec,
    /// Min-heap of `(next arrival cycle, tenant)`.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    think_scale: u64,
    emitted: u64,
    offered: u64,
}

impl SessionArrivals {
    /// Builds the merged stream for `tenants` sessions emitting
    /// `offered` arrivals in total.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn new(
        tenants: u32,
        spec: &ClassSpec,
        seed: u64,
        offered: u64,
        think_scale: u64,
        stride: u64,
    ) -> Self {
        assert!(tenants > 0, "at least one tenant");
        let profiles = WorkloadProfile::parsec();
        let think_scale = think_scale.max(1);
        let mut streams = Vec::with_capacity(tenants as usize);
        let mut heap = BinaryHeap::with_capacity(tenants as usize);
        for t in 0..tenants {
            let profile = profiles[t as usize % profiles.len()];
            streams.push(TenantStream::strided(profile, seed, t, stride));
            // Phase within one mean think period, so arrivals spread.
            let mean_gap = (profile.gap_instructions * think_scale as f64).max(1.0) as u64;
            let phase = derive_seed(seed ^ PHASE_SALT, t as u64) % mean_gap.max(1);
            heap.push(Reverse((phase, t)));
        }
        Self {
            streams,
            spec: spec.clone(),
            heap,
            think_scale,
            emitted: 0,
            offered,
        }
    }

    /// Arrivals emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl Iterator for SessionArrivals {
    type Item = FrontArrival;

    fn next(&mut self) -> Option<FrontArrival> {
        if self.emitted >= self.offered {
            return None;
        }
        let Reverse((cycle, tenant)) = self.heap.pop()?;
        let a = self.streams[tenant as usize].next_access();
        let gap = (a.gap_instructions as u64)
            .saturating_mul(self.think_scale)
            .max(1);
        self.heap.push(Reverse((cycle + gap, tenant)));
        let seq = self.emitted;
        self.emitted += 1;
        Some(FrontArrival {
            cycle,
            seq,
            tenant,
            class: self.spec.class_of(tenant),
            addr: a.addr,
            is_write: a.is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(tenants: u32, offered: u64) -> Vec<FrontArrival> {
        let spec = ClassSpec::balanced();
        SessionArrivals::new(tenants, &spec, 2015, offered, tenants as u64, 1 << 27).collect()
    }

    #[test]
    fn arrivals_are_deterministic_ordered_and_numbered() {
        let a = arrivals(500, 5_000);
        let b = arrivals(500, 5_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        for (i, x) in a.iter().enumerate() {
            assert_eq!(x.seq, i as u64);
            if i > 0 {
                assert!(x.cycle >= a[i - 1].cycle, "cycles are non-decreasing");
            }
        }
        // Every tenant in a modest population gets at least one turn.
        let mut seen = vec![false; 500];
        for x in &a {
            seen[x.tenant as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 450);
    }

    #[test]
    fn table_rates_follow_class_params() {
        let spec = ClassSpec::balanced();
        let table = SessionTable::new(&spec, 300, 130);
        // Tenants 0/1/2 are latency/throughput/besteffort under the
        // balanced round-robin.
        let latency = table.bucket(0).rate();
        let throughput = table.bucket(1).rate();
        let besteffort = table.bucket(2).rate();
        assert!(latency > throughput && throughput > besteffort);
        // Patience orders the other way for latency vs throughput.
        assert!(
            table.max_defer(SloClass::Latency) < table.max_defer(SloClass::Throughput),
            "latency sheds faster than throughput defers"
        );
    }
}
