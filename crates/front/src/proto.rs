//! The compact binary wire protocol between `front-driver` and
//! `front-server`.
//!
//! A conversation is a one-shot exchange over any byte stream (pipe,
//! socket, file, or the in-memory [`Loopback`]):
//!
//! ```text
//! driver -> server   Hello, Request*, Fin
//! server -> driver   Response*, ClassSummary*, Summary, Fin
//! ```
//!
//! Every frame is a kind byte followed by fixed-width little-endian
//! fields (`Hello` additionally carries a length-prefixed class list).
//! `Request` frames carry the arrival gap relative to the previous
//! request rather than an absolute cycle, so a recorded stream is
//! position-independent; the server reconstructs absolute arrival
//! cycles by exact prefix summation. Floats cross the wire as IEEE-754
//! bit patterns, so a round trip is bit-exact.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};

use crate::class::SloClass;

/// Frame kind bytes.
const KIND_HELLO: u8 = 0x00;
const KIND_REQUEST: u8 = 0x01;
const KIND_RESPONSE: u8 = 0x02;
const KIND_CLASS_SUMMARY: u8 = 0x03;
const KIND_SUMMARY: u8 = 0x04;
const KIND_FIN: u8 = 0x05;

/// Outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted and completed; the response carries the completion
    /// cycle and total latency.
    Done,
    /// Shed at the door.
    Shed,
}

impl Verdict {
    fn code(self) -> u8 {
        match self {
            Verdict::Done => 0,
            Verdict::Shed => 1,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Verdict::Done),
            1 => Some(Verdict::Shed),
            _ => None,
        }
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session setup: everything the server needs to rebuild the
    /// tenant table the traffic was recorded against.
    Hello {
        /// Tenant population.
        tenants: u32,
        /// Base seed of the recorded session.
        seed: u64,
        /// Request frames that follow.
        offered: u64,
        /// Admission window.
        window: u32,
        /// Fair-share capacity estimate (requests per kcycle).
        capacity_req_per_kcycle: u32,
        /// Think-time multiplier the arrivals were generated with.
        think_scale: u64,
        /// `(class, weight)` mix.
        classes: Vec<(SloClass, u32)>,
    },
    /// One recorded arrival.
    Request {
        /// Tenant id.
        tenant: u32,
        /// The tenant's SLO class.
        class: SloClass,
        /// Line address within the tenant-strided space.
        addr: u64,
        /// Write (true) or read (false).
        is_write: bool,
        /// Arrival gap in cycles since the previous request frame
        /// (the first frame's gap is its absolute arrival cycle).
        gap: u32,
    },
    /// The server's answer to one request.
    Response {
        /// Arrival sequence number (request frame index).
        seq: u64,
        /// Admitted-and-completed or shed.
        verdict: Verdict,
        /// Completion (or shed-decision) cycle.
        cycle: u64,
        /// Arrival-to-completion cycles (0 for shed).
        total_cycles: u64,
    },
    /// Per-class statistics of the whole run.
    ClassSummary {
        /// The class.
        class: SloClass,
        /// Tenants in the class.
        tenants: u32,
        /// Admitted requests.
        admitted: u64,
        /// Shed requests.
        shed: u64,
        /// Deferral events.
        deferred: u64,
        /// Completed requests.
        completed: u64,
        /// Median arrival-to-completion latency.
        p50: u64,
        /// 95th percentile latency.
        p95: u64,
        /// 99th percentile latency.
        p99: u64,
    },
    /// Whole-run totals.
    Summary {
        /// Cycle the run finished at.
        cycles: u64,
        /// Total admitted.
        admitted: u64,
        /// Total shed.
        shed: u64,
        /// Total deferral events.
        deferred: u64,
        /// Total completed.
        completed: u64,
        /// Fairness ratio as IEEE-754 bits (bit-exact round trip).
        fairness_bits: u64,
    },
    /// End of stream.
    Fin,
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended inside a frame.
    Truncated {
        /// Byte offset of the frame that ran short.
        at: usize,
    },
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Unknown SLO class byte.
    BadClass(u8),
    /// Unknown verdict byte.
    BadVerdict(u8),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { at } => write!(f, "frame truncated at byte {at}"),
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::BadClass(c) => write!(f, "unknown class code {c:#04x}"),
            ProtoError::BadVerdict(v) => write!(f, "unknown verdict code {v:#04x}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Appends one encoded frame to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Hello {
            tenants,
            seed,
            offered,
            window,
            capacity_req_per_kcycle,
            think_scale,
            classes,
        } => {
            out.push(KIND_HELLO);
            out.extend_from_slice(&tenants.to_le_bytes());
            out.extend_from_slice(&seed.to_le_bytes());
            out.extend_from_slice(&offered.to_le_bytes());
            out.extend_from_slice(&window.to_le_bytes());
            out.extend_from_slice(&capacity_req_per_kcycle.to_le_bytes());
            out.extend_from_slice(&think_scale.to_le_bytes());
            out.push(classes.len() as u8);
            for (class, weight) in classes {
                out.push(class.code());
                out.extend_from_slice(&weight.to_le_bytes());
            }
        }
        Frame::Request {
            tenant,
            class,
            addr,
            is_write,
            gap,
        } => {
            out.push(KIND_REQUEST);
            out.extend_from_slice(&tenant.to_le_bytes());
            out.push(class.code());
            out.extend_from_slice(&addr.to_le_bytes());
            out.push(u8::from(*is_write));
            out.extend_from_slice(&gap.to_le_bytes());
        }
        Frame::Response {
            seq,
            verdict,
            cycle,
            total_cycles,
        } => {
            out.push(KIND_RESPONSE);
            out.extend_from_slice(&seq.to_le_bytes());
            out.push(verdict.code());
            out.extend_from_slice(&cycle.to_le_bytes());
            out.extend_from_slice(&total_cycles.to_le_bytes());
        }
        Frame::ClassSummary {
            class,
            tenants,
            admitted,
            shed,
            deferred,
            completed,
            p50,
            p95,
            p99,
        } => {
            out.push(KIND_CLASS_SUMMARY);
            out.push(class.code());
            out.extend_from_slice(&tenants.to_le_bytes());
            for v in [admitted, shed, deferred, completed, p50, p95, p99] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Summary {
            cycles,
            admitted,
            shed,
            deferred,
            completed,
            fairness_bits,
        } => {
            out.push(KIND_SUMMARY);
            for v in [cycles, admitted, shed, deferred, completed, fairness_bits] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Fin => out.push(KIND_FIN),
    }
}

/// Encodes a frame sequence into one buffer.
pub fn encode_all(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        encode(f, &mut out);
    }
    out
}

/// A zero-copy frame decoder over a byte buffer.
#[derive(Debug, Clone)]
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Byte offset of the next frame.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, start: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Truncated { at: start });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, start: usize) -> Result<u8, ProtoError> {
        Ok(self.take(1, start)?[0])
    }

    fn u32(&mut self, start: usize) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4, start)?.try_into().unwrap()))
    }

    fn u64(&mut self, start: usize) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8, start)?.try_into().unwrap()))
    }

    fn class(&mut self, start: usize) -> Result<SloClass, ProtoError> {
        let code = self.u8(start)?;
        SloClass::from_code(code).ok_or(ProtoError::BadClass(code))
    }

    /// Decodes the next frame, or `None` at a clean end of buffer.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let start = self.pos;
        let kind = self.u8(start)?;
        let frame = match kind {
            KIND_HELLO => {
                let tenants = self.u32(start)?;
                let seed = self.u64(start)?;
                let offered = self.u64(start)?;
                let window = self.u32(start)?;
                let capacity_req_per_kcycle = self.u32(start)?;
                let think_scale = self.u64(start)?;
                let n = self.u8(start)?;
                let mut classes = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let class = self.class(start)?;
                    let weight = self.u32(start)?;
                    classes.push((class, weight));
                }
                Frame::Hello {
                    tenants,
                    seed,
                    offered,
                    window,
                    capacity_req_per_kcycle,
                    think_scale,
                    classes,
                }
            }
            KIND_REQUEST => Frame::Request {
                tenant: self.u32(start)?,
                class: self.class(start)?,
                addr: self.u64(start)?,
                is_write: self.u8(start)? != 0,
                gap: self.u32(start)?,
            },
            KIND_RESPONSE => {
                let seq = self.u64(start)?;
                let code = self.u8(start)?;
                let verdict = Verdict::from_code(code).ok_or(ProtoError::BadVerdict(code))?;
                Frame::Response {
                    seq,
                    verdict,
                    cycle: self.u64(start)?,
                    total_cycles: self.u64(start)?,
                }
            }
            KIND_CLASS_SUMMARY => Frame::ClassSummary {
                class: self.class(start)?,
                tenants: self.u32(start)?,
                admitted: self.u64(start)?,
                shed: self.u64(start)?,
                deferred: self.u64(start)?,
                completed: self.u64(start)?,
                p50: self.u64(start)?,
                p95: self.u64(start)?,
                p99: self.u64(start)?,
            },
            KIND_SUMMARY => Frame::Summary {
                cycles: self.u64(start)?,
                admitted: self.u64(start)?,
                shed: self.u64(start)?,
                deferred: self.u64(start)?,
                completed: self.u64(start)?,
                fairness_bits: self.u64(start)?,
            },
            KIND_FIN => Frame::Fin,
            other => return Err(ProtoError::BadKind(other)),
        };
        Ok(Some(frame))
    }
}

/// Decodes a whole buffer into frames.
pub fn decode_all(buf: &[u8]) -> Result<Vec<Frame>, ProtoError> {
    let mut reader = FrameReader::new(buf);
    let mut frames = Vec::new();
    while let Some(f) = reader.next_frame()? {
        frames.push(f);
    }
    Ok(frames)
}

/// Writes encoded frames to a byte sink.
///
/// # Errors
///
/// Propagates the sink's I/O error.
pub fn write_frames<W: Write>(w: &mut W, frames: &[Frame]) -> io::Result<()> {
    let buf = encode_all(frames);
    w.write_all(&buf)
}

/// Reads a byte stream to its end and decodes every frame.
///
/// # Errors
///
/// Returns the source's I/O error, or a decode error mapped onto
/// `io::ErrorKind::InvalidData`.
pub fn read_frames<R: Read>(r: &mut R) -> io::Result<Vec<Frame>> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    decode_all(&buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// An in-memory byte stream: what one side writes, the other reads.
///
/// The simplest possible transport for exercising the full
/// encode-transport-decode path without processes or sockets.
#[derive(Debug, Default, Clone)]
pub struct Loopback {
    buf: VecDeque<u8>,
}

impl Loopback {
    /// An empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Write for Loopback {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for Loopback {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.buf.pop_front().expect("length checked");
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_util::check::{run_cases, Gen};

    fn arbitrary_frame(g: &mut Gen) -> Frame {
        let class = |g: &mut Gen| SloClass::ALL[g.usize_in(0, 2)];
        match g.u64_in(0, 5) {
            0 => Frame::Hello {
                tenants: g.u32_in(1, u32::MAX),
                seed: g.u64(),
                offered: g.u64(),
                window: g.u32_in(0, u32::MAX),
                capacity_req_per_kcycle: g.u32_in(0, u32::MAX),
                think_scale: g.u64(),
                classes: g.vec_of(0, 3, |g| (class(g), g.u32_in(0, u32::MAX))),
            },
            1 => Frame::Request {
                tenant: g.u32_in(0, u32::MAX),
                class: class(g),
                addr: g.u64(),
                is_write: g.bool(),
                gap: g.u32_in(0, u32::MAX),
            },
            2 => Frame::Response {
                seq: g.u64(),
                verdict: if g.bool() {
                    Verdict::Done
                } else {
                    Verdict::Shed
                },
                cycle: g.u64(),
                total_cycles: g.u64(),
            },
            3 => Frame::ClassSummary {
                class: class(g),
                tenants: g.u32_in(0, u32::MAX),
                admitted: g.u64(),
                shed: g.u64(),
                deferred: g.u64(),
                completed: g.u64(),
                p50: g.u64(),
                p95: g.u64(),
                p99: g.u64(),
            },
            4 => Frame::Summary {
                cycles: g.u64(),
                admitted: g.u64(),
                shed: g.u64(),
                deferred: g.u64(),
                completed: g.u64(),
                fairness_bits: g.f64_in(0.0, 1e9).to_bits(),
            },
            _ => Frame::Fin,
        }
    }

    #[test]
    fn encode_decode_identity_over_random_frames() {
        run_cases(200, |g: &mut Gen| {
            let frames = g.vec_of(0, 40, arbitrary_frame);
            let buf = encode_all(&frames);
            let back = decode_all(&buf).expect("well-formed stream decodes");
            assert_eq!(back, frames);
        });
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        run_cases(100, |g: &mut Gen| {
            let frames = g.vec_of(1, 10, arbitrary_frame);
            let buf = encode_all(&frames);
            let cut = g.usize_in(0, buf.len());
            match decode_all(&buf[..cut]) {
                Ok(back) => {
                    // A cut on a frame boundary decodes a prefix.
                    assert!(back.len() <= frames.len());
                    assert_eq!(back[..], frames[..back.len()]);
                }
                Err(ProtoError::Truncated { at }) => assert!(at <= cut),
                Err(e) => panic!("unexpected decode error {e}"),
            }
        });
    }

    #[test]
    fn garbage_kind_and_codes_are_rejected() {
        assert_eq!(decode_all(&[0xFF]), Err(ProtoError::BadKind(0xFF)));
        // A request with a bad class byte.
        let mut buf = Vec::new();
        encode(
            &Frame::Request {
                tenant: 1,
                class: SloClass::Latency,
                addr: 2,
                is_write: false,
                gap: 3,
            },
            &mut buf,
        );
        buf[5] = 0x7F; // class byte follows the 4-byte tenant id
        assert_eq!(decode_all(&buf), Err(ProtoError::BadClass(0x7F)));
        let mut resp = Vec::new();
        encode(
            &Frame::Response {
                seq: 0,
                verdict: Verdict::Done,
                cycle: 0,
                total_cycles: 0,
            },
            &mut resp,
        );
        resp[9] = 9; // verdict byte follows the 8-byte seq
        assert_eq!(decode_all(&resp), Err(ProtoError::BadVerdict(9)));
    }

    #[test]
    fn loopback_transports_frames_byte_for_byte() {
        let frames = vec![
            Frame::Hello {
                tenants: 10,
                seed: 1,
                offered: 2,
                window: 3,
                capacity_req_per_kcycle: 4,
                think_scale: 5,
                classes: vec![(SloClass::Latency, 1), (SloClass::BestEffort, 2)],
            },
            Frame::Fin,
        ];
        let mut chan = Loopback::new();
        write_frames(&mut chan, &frames).unwrap();
        assert!(!chan.is_empty());
        let back = read_frames(&mut chan).unwrap();
        assert_eq!(back, frames);
        assert!(chan.is_empty());
    }
}
