//! The front door: SLO admission control in front of `rtm-serve`.
//!
//! [`FrontDoor`] implements [`RequestSource`]: the serving simulator
//! polls it at every admission opportunity, and the door decides —
//! *before* the bounded per-group queues can exert backpressure —
//! whether the earliest due request is admitted (token available),
//! deferred (token imminent within the class's patience) or shed.
//! Completions flow back through [`RequestSource::completed`], giving
//! exact per-class end-to-end latency and fairness statistics.
//!
//! Determinism: the door's decisions depend only on the arrival
//! sequence, the bucket states and the serve clock, all of which are
//! pure functions of the configuration; runs are bit-identical for
//! any sweep parallelisation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::class::{ClassSpec, SloClass};
use crate::proto::Verdict;
use crate::session::{FrontArrival, SessionArrivals, SessionTable};
use rtm_serve::{
    Completion, LatencySummary, RequestSource, SchedPolicy, ServeConfig, ServeResult, ServeSim,
    SourcePoll,
};
use rtm_trace::MemAccess;

/// Address stride between tenant windows: the canonical 128 MiB
/// window plus one 4 KiB page, so consecutive tenants land on
/// *different* cache sets and a 10k-tenant population spreads over
/// the whole set space instead of stacking its hot lines onto the
/// same few stripe groups.
pub const FRONT_STRIDE: u64 = (1 << 27) + 4096;

/// Configuration of one front-door run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontConfig {
    /// Simulated tenant sessions.
    pub tenants: u32,
    /// Class mix.
    pub classes: ClassSpec,
    /// Base seed (streams, phases).
    pub seed: u64,
    /// Total arrivals offered to the door.
    pub offered: u64,
    /// Maximum admitted-but-incomplete requests; at the cap the door
    /// holds work back until a completion frees a slot.
    pub window: u32,
    /// Backend capacity estimate used to size fair-share buckets
    /// (completed requests per thousand cycles).
    pub capacity_req_per_kcycle: u32,
    /// Think-time multiplier applied to trace instruction gaps
    /// (0 = auto: the tenant count, which offers roughly 2-3x the
    /// default capacity estimate and keeps admission control busy).
    pub think_scale: u64,
    /// Closed connections the admitted stream is multiplexed onto on
    /// the serve side.
    pub conn_clients: u8,
    /// Address stride between tenant windows.
    pub stride: u64,
}

impl FrontConfig {
    /// Defaults for a population of `tenants` sessions.
    pub fn new(tenants: u32) -> Self {
        Self {
            tenants,
            classes: ClassSpec::balanced(),
            seed: 2015,
            offered: (tenants as u64).saturating_mul(12).max(24_000),
            window: 1024,
            capacity_req_per_kcycle: 130,
            think_scale: 0,
            conn_clients: 64,
            stride: FRONT_STRIDE,
        }
    }

    /// Sets the class mix (builder style).
    pub fn with_classes(mut self, classes: ClassSpec) -> Self {
        self.classes = classes;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the offered arrival count (builder style).
    pub fn with_offered(mut self, offered: u64) -> Self {
        self.offered = offered;
        self
    }

    /// Sets the admission window (builder style).
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// The effective think multiplier.
    pub fn effective_think_scale(&self) -> u64 {
        if self.think_scale == 0 {
            (self.tenants as u64).max(1)
        } else {
            self.think_scale
        }
    }

    /// The arrival stream this configuration generates.
    pub fn arrivals(&self) -> SessionArrivals {
        SessionArrivals::new(
            self.tenants,
            &self.classes,
            self.seed,
            self.offered,
            self.effective_think_scale(),
            self.stride,
        )
    }

    /// The session table this configuration implies.
    pub fn table(&self) -> SessionTable {
        SessionTable::new(&self.classes, self.tenants, self.capacity_req_per_kcycle)
    }

    /// The serving-layer configuration behind the door: an open-loop
    /// drive (pacing is the door's job), wide connection multiplexing
    /// and a request target equal to the offered load, so the run ends
    /// exactly when the source is drained.
    pub fn serve_config(&self, policy: SchedPolicy) -> ServeConfig {
        ServeConfig::new(policy)
            .with_paced(false)
            .with_clients(self.conn_clients, 64)
            .with_queue_depth(16)
            .with_requests(self.offered)
    }

    fn validate(&self) {
        assert!(self.tenants > 0, "at least one tenant");
        assert!(self.offered > 0, "offer at least one request");
        assert!(self.window > 0, "window must admit something");
        assert!(self.conn_clients > 0, "at least one connection");
        assert!(self.capacity_req_per_kcycle > 0, "capacity estimate");
    }
}

/// An arrival waiting for admission (possibly deferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DueItem {
    /// Next admission attempt.
    due: u64,
    /// Global arrival sequence (total tie-break).
    seq: u64,
    /// Original arrival cycle (patience is measured from here).
    arrival: u64,
    tenant: u32,
    class: SloClass,
    addr: u64,
    is_write: bool,
}

impl Ord for DueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for DueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A response the door records for the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedResponse {
    /// Arrival sequence number the response answers.
    pub seq: u64,
    /// Admitted-and-completed or shed.
    pub verdict: Verdict,
    /// Completion (or shed-decision) cycle.
    pub cycle: u64,
    /// Arrival-to-completion cycles (0 for shed).
    pub total_cycles: u64,
}

/// Running totals of one SLO class.
#[derive(Debug, Clone, Default)]
struct ClassAccum {
    admitted: u64,
    shed: u64,
    deferred: u64,
    completed: u64,
    samples: Vec<u64>,
}

/// Admission control over an arrival stream.
#[derive(Debug)]
pub struct FrontDoor<A: Iterator<Item = FrontArrival>> {
    table: SessionTable,
    arrivals: A,
    lookahead: Option<FrontArrival>,
    arrivals_done: bool,
    work: BinaryHeap<Reverse<DueItem>>,
    window: u32,
    conn_clients: u8,
    outstanding: u32,
    /// Admission id -> (arrival seq, class); ids are sequential.
    admitted_of: Vec<(u64, SloClass)>,
    accum: [ClassAccum; 3],
    responses: Option<Vec<LoggedResponse>>,
}

impl FrontDoor<SessionArrivals> {
    /// Builds the door over the configuration's own arrival stream.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &FrontConfig) -> Self {
        cfg.validate();
        Self::over(cfg.arrivals(), cfg.table(), cfg.window, cfg.conn_clients)
    }
}

impl<A: Iterator<Item = FrontArrival>> FrontDoor<A> {
    /// Builds the door over an arbitrary arrival stream (the wire
    /// replay path feeds decoded frames through here).
    pub fn over(arrivals: A, table: SessionTable, window: u32, conn_clients: u8) -> Self {
        Self {
            table,
            arrivals,
            lookahead: None,
            arrivals_done: false,
            work: BinaryHeap::new(),
            window,
            conn_clients: conn_clients.max(1),
            outstanding: 0,
            admitted_of: Vec::new(),
            accum: Default::default(),
            responses: None,
        }
    }

    /// Enables per-request response logging (wire server mode).
    pub fn log_responses(mut self) -> Self {
        self.responses = Some(Vec::new());
        self
    }

    /// Moves every arrival due by `now` into the work heap.
    fn pull_arrivals(&mut self, now: u64) {
        loop {
            if self.lookahead.is_none() && !self.arrivals_done {
                self.lookahead = self.arrivals.next();
                self.arrivals_done = self.lookahead.is_none();
            }
            match self.lookahead {
                Some(a) if a.cycle <= now => {
                    self.work.push(Reverse(DueItem {
                        due: a.cycle,
                        seq: a.seq,
                        arrival: a.cycle,
                        tenant: a.tenant,
                        class: a.class,
                        addr: a.addr,
                        is_write: a.is_write,
                    }));
                    self.lookahead = None;
                }
                _ => break,
            }
        }
    }

    fn shed(&mut self, item: &DueItem, now: u64) {
        self.accum[item.class.index()].shed += 1;
        if let Some(log) = &mut self.responses {
            log.push(LoggedResponse {
                seq: item.seq,
                verdict: Verdict::Shed,
                cycle: now,
                total_cycles: 0,
            });
        }
    }

    /// Final per-class accounting, consuming the door. `serve` is the
    /// result of the run that drove this door.
    ///
    /// # Panics
    ///
    /// Panics if called while admitted requests are still incomplete
    /// (the serve run did not drain).
    pub fn finish(mut self, serve: ServeResult) -> FrontResult {
        assert_eq!(self.outstanding, 0, "admitted requests left incomplete");
        let mut classes = Vec::new();
        for class in self.table.spec().active_classes() {
            let acc = std::mem::take(&mut self.accum[class.index()]);
            classes.push(ClassStats {
                class,
                tenants: self.table.spec().population(class, self.table.tenants()),
                admitted: acc.admitted,
                shed: acc.shed,
                deferred: acc.deferred,
                completed: acc.completed,
                latency: LatencySummary::from_samples(acc.samples),
            });
        }
        let responses = self.responses.take().map(|mut log| {
            log.sort_by_key(|r| r.seq);
            log
        });
        FrontResult {
            tenants: self.table.tenants(),
            classes,
            responses,
            serve,
        }
    }
}

impl<A: Iterator<Item = FrontArrival>> RequestSource for FrontDoor<A> {
    fn poll(&mut self, now: u64) -> SourcePoll {
        loop {
            self.pull_arrivals(now);
            if self.outstanding >= self.window {
                // Admission window full: progress requires a
                // completion, which re-polls the door.
                return SourcePoll::NotBefore(u64::MAX);
            }
            match self.work.peek() {
                Some(Reverse(head)) if head.due <= now => {
                    let Reverse(item) = self.work.pop().expect("peeked head exists");
                    if self.table.bucket_mut(item.tenant).try_take(now) {
                        let acc = &mut self.accum[item.class.index()];
                        acc.admitted += 1;
                        self.outstanding += 1;
                        self.admitted_of.push((item.seq, item.class));
                        return SourcePoll::Ready(MemAccess {
                            addr: item.addr,
                            is_write: item.is_write,
                            core: (item.tenant % self.conn_clients as u32) as u8,
                            gap_instructions: 0,
                        });
                    }
                    let avail = self.table.bucket(item.tenant).next_available(now);
                    let patience = self.table.max_defer(item.class);
                    if avail != u64::MAX && avail.saturating_sub(item.arrival) <= patience {
                        // Defer: retry when the token accrues. Other
                        // tenants' due work is still considered now.
                        self.accum[item.class.index()].deferred += 1;
                        let mut item = item;
                        item.due = avail.max(now + 1);
                        self.work.push(Reverse(item));
                    } else {
                        self.shed(&item, now);
                    }
                }
                Some(Reverse(head)) => {
                    let mut wake = head.due;
                    if let Some(a) = self.lookahead {
                        wake = wake.min(a.cycle);
                    }
                    return SourcePoll::NotBefore(wake.max(now + 1));
                }
                None => match self.lookahead {
                    Some(a) => return SourcePoll::NotBefore(a.cycle.max(now + 1)),
                    None => return SourcePoll::Exhausted,
                },
            }
        }
    }

    fn admitted(&mut self, id: u64, _now: u64) {
        debug_assert_eq!(
            id + 1,
            self.admitted_of.len() as u64,
            "admission ids are sequential"
        );
    }

    fn completed(&mut self, c: &Completion) {
        let (seq, class) = self.admitted_of[c.id as usize];
        let acc = &mut self.accum[class.index()];
        acc.completed += 1;
        acc.samples.push(c.total);
        self.outstanding -= 1;
        if let Some(log) = &mut self.responses {
            log.push(LoggedResponse {
                seq,
                verdict: Verdict::Done,
                cycle: c.cycle,
                total_cycles: c.total,
            });
        }
    }
}

/// Final statistics of one SLO class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// The class.
    pub class: SloClass,
    /// Tenants assigned to it.
    pub tenants: u32,
    /// Requests admitted past the door.
    pub admitted: u64,
    /// Requests shed at the door.
    pub shed: u64,
    /// Deferral events (one request may defer repeatedly).
    pub deferred: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Arrival-to-completion latency of completed requests.
    pub latency: LatencySummary,
}

impl ClassStats {
    /// Arrivals that reached a decision (admitted + shed).
    pub fn offered(&self) -> u64 {
        self.admitted + self.shed
    }

    /// Per-tenant completion throughput (requests per tenant).
    pub fn per_tenant_completed(&self) -> f64 {
        if self.tenants == 0 {
            0.0
        } else {
            self.completed as f64 / self.tenants as f64
        }
    }
}

/// Result of one front-door run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontResult {
    /// Tenant population.
    pub tenants: u32,
    /// Per-class statistics, canonical class order.
    pub classes: Vec<ClassStats>,
    /// Per-request responses in arrival-sequence order (wire server
    /// mode only).
    pub responses: Option<Vec<LoggedResponse>>,
    /// The serving-layer result behind the door.
    pub serve: ServeResult,
}

impl FrontResult {
    /// Total admitted requests.
    pub fn admitted(&self) -> u64 {
        self.classes.iter().map(|c| c.admitted).sum()
    }

    /// Total shed requests.
    pub fn shed(&self) -> u64 {
        self.classes.iter().map(|c| c.shed).sum()
    }

    /// Total deferral events.
    pub fn deferred(&self) -> u64 {
        self.classes.iter().map(|c| c.deferred).sum()
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(|c| c.completed).sum()
    }

    /// Fairness: the max/min ratio of per-tenant completion
    /// throughput across classes with tenants (1.0 = perfectly even;
    /// `f64::MAX` if a populated class completed nothing).
    pub fn fairness_ratio(&self) -> f64 {
        let rates: Vec<f64> = self
            .classes
            .iter()
            .filter(|c| c.tenants > 0)
            .map(|c| c.per_tenant_completed())
            .collect();
        let Some(max) = rates.iter().cloned().reduce(f64::max) else {
            return 1.0;
        };
        let min = rates.iter().cloned().reduce(f64::min).unwrap_or(0.0);
        if min <= 0.0 {
            f64::MAX
        } else {
            max / min
        }
    }

    /// Records per-class counters and latency gauges into the global
    /// labeled-metrics registry (no-op while observability is off).
    pub fn record_labels(&self, policy: &str) {
        let labels = rtm_obs::global().labeled();
        if !labels.enabled() {
            return;
        }
        for c in &self.classes {
            let cell = [("policy", policy), ("class", c.class.label())];
            labels.counter_add_with("front.admitted", &cell, c.admitted);
            labels.counter_add_with("front.shed", &cell, c.shed);
            labels.counter_add_with("front.deferred", &cell, c.deferred);
            labels.counter_add_with("front.completed", &cell, c.completed);
            labels.gauge_set_with("front.p99_total_cycles", &cell, c.latency.p99 as f64);
        }
        labels.gauge_set_with(
            "front.fairness_ratio",
            &[("policy", policy)],
            self.fairness_ratio(),
        );
    }
}

/// Runs one front-door serving experiment end to end.
pub fn run_front(cfg: &FrontConfig, policy: SchedPolicy) -> FrontResult {
    let mut door = FrontDoor::new(cfg);
    let serve = ServeSim::new(cfg.serve_config(policy)).run_source(&mut door);
    door.finish(serve)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FrontConfig {
        FrontConfig::new(120).with_offered(4_000)
    }

    #[test]
    fn run_is_deterministic_and_conserves_requests() {
        let a = run_front(&small(), SchedPolicy::ShiftAware);
        let b = run_front(&small(), SchedPolicy::ShiftAware);
        assert_eq!(a, b);
        assert_eq!(a.admitted() + a.shed(), small().offered);
        assert_eq!(a.completed(), a.admitted());
        assert_eq!(a.serve.requests, a.admitted());
        assert!(a.admitted() > 0, "some load admitted");
    }

    #[test]
    fn admission_control_discriminates_by_class() {
        let r = run_front(&small(), SchedPolicy::ShiftAware);
        let by = |class: SloClass| {
            r.classes
                .iter()
                .find(|c| c.class == class)
                .expect("class present")
                .clone()
        };
        let lat = by(SloClass::Latency);
        let be = by(SloClass::BestEffort);
        assert!(r.shed() > 0, "overload sheds somewhere");
        assert!(r.deferred() > 0, "patient classes defer");
        let shed_frac = |c: &ClassStats| c.shed as f64 / c.offered().max(1) as f64;
        assert!(
            shed_frac(&be) > shed_frac(&lat),
            "besteffort sheds more than latency: {} vs {}",
            shed_frac(&be),
            shed_frac(&lat)
        );
        let fairness = r.fairness_ratio();
        assert!((1.0..f64::MAX).contains(&fairness), "fairness finite");
    }

    #[test]
    fn window_caps_outstanding_work() {
        let mut cfg = small();
        cfg.window = 8;
        let r = run_front(&cfg, SchedPolicy::Fcfs);
        assert!(r.serve.peak_in_flight + r.serve.peak_queued <= 2 * 8 + 2);
        assert_eq!(r.completed(), r.admitted());
    }

    #[test]
    fn logged_responses_cover_every_arrival() {
        let cfg = small();
        let mut door = FrontDoor::new(&cfg).log_responses();
        let serve = ServeSim::new(cfg.serve_config(SchedPolicy::Fcfs)).run_source(&mut door);
        let r = door.finish(serve);
        let log = r.responses.as_ref().expect("logging enabled");
        assert_eq!(log.len() as u64, cfg.offered);
        for (i, resp) in log.iter().enumerate() {
            assert_eq!(resp.seq, i as u64, "one response per arrival seq");
        }
        let done = log.iter().filter(|r| r.verdict == Verdict::Done).count() as u64;
        assert_eq!(done, r.completed());
    }
}
