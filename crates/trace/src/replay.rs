//! Trace recording and replay.
//!
//! Synthetic generation is deterministic given a seed, but downstream
//! users often want to exchange *exact* access streams (e.g. to compare
//! against another simulator, or to pin a regression). This module
//! provides a compact binary format:
//!
//! ```text
//! magic "RTMT" | version u16 | count u64 | records...
//! record: addr u64 | gap u32 | core u8 | flags u8   (14 bytes LE)
//! ```

use crate::generator::{MemAccess, TraceGenerator};
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RTMT";
const VERSION: u16 = 1;
const RECORD_BYTES: usize = 14;

/// Errors from trace (de)serialisation.
#[derive(Debug)]
pub enum ReplayError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The stream ended before the declared record count.
    Truncated {
        /// Records expected from the header.
        expected: u64,
        /// Records actually decoded.
        got: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "i/o: {e}"),
            ReplayError::BadMagic => write!(f, "not a racetrack trace (bad magic)"),
            ReplayError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReplayError::Truncated { expected, got } => {
                write!(f, "trace truncated: {got} of {expected} records")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Io(e)
    }
}

/// Writes `accesses` to `sink` in the binary trace format.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_trace<W: Write>(mut sink: W, accesses: &[MemAccess]) -> Result<(), ReplayError> {
    sink.write_all(MAGIC)?;
    sink.write_all(&VERSION.to_le_bytes())?;
    sink.write_all(&(accesses.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(accesses.len() * RECORD_BYTES);
    for a in accesses {
        buf.extend_from_slice(&a.addr.to_le_bytes());
        buf.extend_from_slice(&a.gap_instructions.to_le_bytes());
        buf.push(a.core);
        buf.push(u8::from(a.is_write));
    }
    sink.write_all(&buf)?;
    Ok(())
}

/// Reads a full trace from `source`.
///
/// # Errors
///
/// Returns [`ReplayError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut source: R) -> Result<Vec<MemAccess>, ReplayError> {
    let mut magic = [0u8; 4];
    source.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReplayError::BadMagic);
    }
    let mut v = [0u8; 2];
    source.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version != VERSION {
        return Err(ReplayError::BadVersion(version));
    }
    let mut c = [0u8; 8];
    source.read_exact(&mut c)?;
    let count = u64::from_le_bytes(c);

    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut rec = [0u8; RECORD_BYTES];
    for got in 0..count {
        if let Err(e) = source.read_exact(&mut rec) {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                return Err(ReplayError::Truncated {
                    expected: count,
                    got,
                });
            }
            return Err(e.into());
        }
        out.push(MemAccess {
            addr: u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
            gap_instructions: u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes")),
            core: rec[12],
            is_write: rec[13] != 0,
        });
    }
    Ok(out)
}

/// Records `n` accesses from a generator into a byte buffer (the
/// round-trip convenience used by tests and tooling).
pub fn record(gen: &mut TraceGenerator, n: usize) -> Vec<u8> {
    let accesses = gen.take_vec(n);
    let mut buf = Vec::new();
    write_trace(&mut buf, &accesses).expect("writing to a Vec cannot fail");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn sample(n: usize) -> Vec<MemAccess> {
        let p = WorkloadProfile::by_name("vips").unwrap();
        TraceGenerator::new(p, 9).take_vec(n)
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let accesses = sample(1000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &accesses).unwrap();
        assert_eq!(buf.len(), 14 + 1000 * RECORD_BYTES);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, accesses);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(ReplayError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(ReplayError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_detected_with_counts() {
        let accesses = sample(10);
        let mut buf = Vec::new();
        write_trace(&mut buf, &accesses).unwrap();
        buf.truncate(buf.len() - 5);
        match read_trace(buf.as_slice()) {
            Err(ReplayError::Truncated {
                expected: 10,
                got: 9,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn record_convenience_matches_manual() {
        let p = WorkloadProfile::by_name("x264").unwrap();
        let buf = record(&mut TraceGenerator::new(p, 3), 50);
        let via_gen = TraceGenerator::new(p, 3).take_vec(50);
        assert_eq!(read_trace(buf.as_slice()).unwrap(), via_gen);
    }

    #[test]
    fn errors_display_usefully() {
        let e = ReplayError::Truncated {
            expected: 5,
            got: 2,
        };
        assert!(e.to_string().contains("2 of 5"));
        assert!(ReplayError::BadMagic.to_string().contains("magic"));
    }
}
