//! The deterministic access-stream generator.

use crate::profile::WorkloadProfile;
use rtm_util::rng::SmallRng64;

/// One memory access at the CPU/L1 boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address within the workload's address space.
    pub addr: u64,
    /// Write (store) versus read (load).
    pub is_write: bool,
    /// Issuing core (round-robins over the configured core count).
    pub core: u8,
    /// Non-memory instructions retired since the previous access (for
    /// execution-time accounting).
    pub gap_instructions: u32,
}

/// Deterministic synthetic trace generator for one workload.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SmallRng64,
    stream_pos: u64,
    cores: u8,
    next_core: u8,
    generated: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded by `seed`, with the
    /// paper's 4-core system.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        Self::with_cores(profile, seed, 4)
    }

    /// Creates a generator with an explicit core count.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid or `cores == 0`.
    pub fn with_cores(profile: WorkloadProfile, seed: u64, cores: u8) -> Self {
        profile.validate().expect("profile must be valid");
        assert!(cores > 0, "at least one core");
        Self {
            profile,
            rng: SmallRng64::new(seed ^ 0xACCE_55ED),
            stream_pos: 0,
            cores,
            next_core: 0,
            generated: 0,
        }
    }

    /// The profile being synthesised.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of accesses generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Produces the next access.
    pub fn next_access(&mut self) -> MemAccess {
        let p = &self.profile;
        let u = self.rng.next_f64();
        let addr = if u < p.hot_fraction {
            // Hot set at the bottom of the address space, with strongly
            // skewed temporal locality (real hot sets are not uniform:
            // the power-law bias keeps most hot traffic within an
            // L1-sized core of the hot region).
            let frac = self.rng.next_f64().powi(10);
            (frac * p.hot_set_bytes.max(64) as f64) as u64
        } else if u < p.hot_fraction + p.stream_fraction {
            // Sequential streaming through the working set, one word at
            // a time, wrapping around.
            self.stream_pos = (self.stream_pos + 8) % p.working_set_bytes;
            self.stream_pos
        } else {
            // Scattered access over the whole working set.
            self.rng.next_below(p.working_set_bytes)
        };
        // Word-align like a real load/store stream.
        let addr = addr & !0x7;
        let is_write = self.rng.chance(p.write_fraction);
        // Geometric-ish gap around the profile mean.
        let gap = (p.gap_instructions * (0.5 + self.rng.next_f64())).round() as u32;
        let core = self.next_core;
        self.next_core = (self.next_core + 1) % self.cores;
        self.generated += 1;
        MemAccess {
            addr,
            is_write,
            core,
            gap_instructions: gap,
        }
    }

    /// Generates `n` accesses into a vector (convenience for tests).
    pub fn take_vec(&mut self, n: usize) -> Vec<MemAccess> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

impl Iterator for TraceGenerator {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        Some(self.next_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn gen(name: &str, seed: u64) -> TraceGenerator {
        TraceGenerator::new(WorkloadProfile::by_name(name).unwrap(), seed)
    }

    #[test]
    fn deterministic_across_runs() {
        let a = gen("canneal", 7).take_vec(1000);
        let b = gen("canneal", 7).take_vec(1000);
        assert_eq!(a, b);
        let c = gen("canneal", 8).take_vec(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let p = WorkloadProfile::by_name("ferret").unwrap();
        let mut g = TraceGenerator::new(p, 3);
        for _ in 0..50_000 {
            let a = g.next_access();
            assert!(a.addr < p.working_set_bytes);
            assert_eq!(a.addr % 8, 0, "word aligned");
        }
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let p = WorkloadProfile::by_name("fluidanimate").unwrap();
        let mut g = TraceGenerator::new(p, 11);
        let n = 100_000;
        let writes = (0..n).filter(|_| g.next_access().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - p.write_fraction).abs() < 0.01, "write frac {frac}");
    }

    #[test]
    fn hot_set_absorbs_expected_share() {
        let p = WorkloadProfile::by_name("swaptions").unwrap();
        let mut g = TraceGenerator::new(p, 5);
        let n = 100_000;
        let hot = (0..n)
            .filter(|_| g.next_access().addr < p.hot_set_bytes)
            .count();
        let frac = hot as f64 / n as f64;
        // Hot fraction plus incidental stream/scatter hits below the
        // hot boundary.
        assert!(frac > p.hot_fraction, "hot share {frac}");
    }

    #[test]
    fn streaming_workload_touches_more_unique_lines() {
        let lines = |name: &str| {
            let mut g = gen(name, 9);
            let set: HashSet<u64> = (0..50_000).map(|_| g.next_access().addr >> 6).collect();
            set.len()
        };
        // streamcluster streams 60 % of its accesses; swaptions sits in
        // a 128 KB hot set.
        assert!(lines("streamcluster") > 2 * lines("swaptions"));
    }

    #[test]
    fn cores_round_robin() {
        let mut g = gen("vips", 1);
        let cores: Vec<u8> = (0..8).map(|_| g.next_access().core).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn gaps_center_on_profile_mean() {
        let p = WorkloadProfile::by_name("blackscholes").unwrap();
        let mut g = TraceGenerator::new(p, 2);
        let n = 100_000;
        let total: u64 = (0..n)
            .map(|_| g.next_access().gap_instructions as u64)
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - p.gap_instructions).abs() < 0.5, "gap mean {mean}");
    }

    #[test]
    fn iterator_interface_works() {
        let g = gen("x264", 4);
        let v: Vec<MemAccess> = g.take(10).collect();
        assert_eq!(v.len(), 10);
    }
}
