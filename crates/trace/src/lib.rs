//! Synthetic PARSEC-like workload trace generation.
//!
//! The paper evaluates on the PARSEC suite under gem5. Real traces are
//! not redistributable, so this crate generates *synthetic* memory
//! access streams whose cache-relevant statistics are tuned per
//! workload: working-set size (capacity sensitivity), hot-set locality,
//! streaming share, read/write mix and memory intensity. The twelve
//! profiles carry the PARSEC program names they impersonate; the
//! substitution is documented in DESIGN.md.
//!
//! # Examples
//!
//! ```
//! use rtm_trace::{TraceGenerator, WorkloadProfile};
//!
//! let profile = WorkloadProfile::by_name("canneal").unwrap();
//! let mut gen = TraceGenerator::new(profile, 42);
//! let a = gen.next_access();
//! assert!(a.addr < profile.working_set_bytes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod mixed;
pub mod profile;
pub mod replay;
pub mod session;

pub use generator::{MemAccess, TraceGenerator};
pub use mixed::MixedTraceGenerator;
pub use profile::WorkloadProfile;
pub use session::TenantStream;
