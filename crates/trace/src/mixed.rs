//! Multi-tenant trace mixing.
//!
//! [`MixedTraceGenerator`] interleaves several per-tenant
//! [`TraceGenerator`](crate::TraceGenerator)-backed
//! [`TenantStream`]s into one access stream with a deterministic
//! weighted round-robin schedule. Each tenant gets its own derived
//! seed and a disjoint 128 MiB address window; windows are set-aligned
//! for the paper's LLC geometry, so tenants contend for the same cache
//! sets (and therefore the same stripe groups) with distinct tags —
//! the contended multi-programmed scenario the serving layer's
//! schedulers are evaluated under.

use crate::generator::MemAccess;
use crate::profile::WorkloadProfile;
use crate::session::TenantStream;

/// Address-space stride between tenants (128 MiB). A multiple of the
/// LLC set span (128 Ki sets × 64 B lines = 8 MiB), so every tenant's
/// address `a` maps to the same set as any other tenant's `a`.
pub const TENANT_STRIDE: u64 = 1 << 27;

/// Interleaves several workload profiles into one multi-tenant stream.
#[derive(Debug, Clone)]
pub struct MixedTraceGenerator {
    tenants: Vec<TenantStream>,
    schedule: Vec<usize>,
    pos: usize,
    generated: u64,
}

impl MixedTraceGenerator {
    /// Mixes `profiles` with equal weights. Tenant `i` draws from
    /// `derive_seed(seed, i)` and issues as core `i` from its own
    /// 128 MiB address window.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or longer than 256 tenants.
    pub fn new(profiles: &[WorkloadProfile], seed: u64) -> Self {
        let weighted: Vec<(WorkloadProfile, u32)> = profiles.iter().map(|&p| (p, 1)).collect();
        Self::with_weights(&weighted, seed)
    }

    /// Mixes profiles with explicit per-tenant weights. The schedule is
    /// a deterministic weighted round-robin: repeated passes pick every
    /// tenant with remaining weight once, until all weights are spent,
    /// then the pattern repeats. Weights `[3, 2, 1]` yield the cycle
    /// `t0 t1 t2 t0 t1 t0`.
    ///
    /// # Panics
    ///
    /// Panics if no tenant has positive weight, there are more than 256
    /// tenants, or a profile fails validation.
    pub fn with_weights(entries: &[(WorkloadProfile, u32)], seed: u64) -> Self {
        assert!(!entries.is_empty(), "at least one tenant");
        assert!(entries.len() <= 256, "core ids are 8-bit");
        assert!(
            entries.iter().any(|(_, w)| *w > 0),
            "at least one positive weight"
        );
        let tenants: Vec<TenantStream> = entries
            .iter()
            .enumerate()
            .map(|(i, (p, _))| TenantStream::new(*p, seed, i as u32))
            .collect();
        let mut remaining: Vec<u32> = entries.iter().map(|(_, w)| *w).collect();
        let mut schedule = Vec::new();
        while remaining.iter().any(|&w| w > 0) {
            for (i, w) in remaining.iter_mut().enumerate() {
                if *w > 0 {
                    *w -= 1;
                    schedule.push(i);
                }
            }
        }
        Self {
            tenants,
            schedule,
            pos: 0,
            generated: 0,
        }
    }

    /// Number of tenants in the mix.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The repeating tenant schedule.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Accesses generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Produces the next access: the scheduled tenant's next access,
    /// already relocated into its address window and stamped with the
    /// tenant index as the core by its [`TenantStream`].
    pub fn next_access(&mut self) -> MemAccess {
        let tenant = self.schedule[self.pos];
        self.pos = (self.pos + 1) % self.schedule.len();
        self.generated += 1;
        self.tenants[tenant].next_access()
    }

    /// Generates `n` accesses into a vector (convenience for tests).
    pub fn take_vec(&mut self, n: usize) -> Vec<MemAccess> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

impl Iterator for MixedTraceGenerator {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        Some(self.next_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use rtm_util::rng::derive_seed;

    fn profiles(names: &[&str]) -> Vec<WorkloadProfile> {
        names
            .iter()
            .map(|n| WorkloadProfile::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn equal_weights_round_robin() {
        let mut g = MixedTraceGenerator::new(&profiles(&["canneal", "ferret", "vips"]), 1);
        assert_eq!(g.schedule(), &[0, 1, 2]);
        let cores: Vec<u8> = (0..6).map(|_| g.next_access().core).collect();
        assert_eq!(cores, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn weighted_schedule_matches_doc() {
        let p = WorkloadProfile::by_name("canneal").unwrap();
        let g = MixedTraceGenerator::with_weights(&[(p, 3), (p, 2), (p, 1)], 1);
        assert_eq!(g.schedule(), &[0, 1, 2, 0, 1, 0]);
    }

    #[test]
    fn tenants_live_in_disjoint_aligned_windows() {
        let mut g = MixedTraceGenerator::new(&profiles(&["canneal", "canneal"]), 9);
        for _ in 0..2_000 {
            let a = g.next_access();
            let window = a.addr / TENANT_STRIDE;
            assert_eq!(window, a.core as u64, "address stays in tenant window");
        }
        // The stride is set-aligned for the paper LLC (128 Ki sets).
        assert_eq!(TENANT_STRIDE % (131_072 * 64), 0);
    }

    #[test]
    fn mixing_is_deterministic_and_tenant_streams_are_independent() {
        let ps = profiles(&["canneal", "dedup"]);
        let a = MixedTraceGenerator::new(&ps, 5).take_vec(500);
        let b = MixedTraceGenerator::new(&ps, 5).take_vec(500);
        assert_eq!(a, b);
        // A tenant's sub-stream equals a solo generator with the same
        // derived seed (modulo relocation).
        let solo = TraceGenerator::with_cores(ps[1], derive_seed(5, 1), 1).take_vec(250);
        let tenant1: Vec<_> = a.iter().filter(|x| x.core == 1).copied().collect();
        assert_eq!(tenant1.len(), 250);
        for (mixed, alone) in tenant1.iter().zip(&solo) {
            assert_eq!(mixed.addr, alone.addr + TENANT_STRIDE);
            assert_eq!(mixed.is_write, alone.is_write);
            assert_eq!(mixed.gap_instructions, alone.gap_instructions);
        }
    }

    #[test]
    #[should_panic]
    fn zero_weights_rejected() {
        let p = WorkloadProfile::by_name("vips").unwrap();
        let _ = MixedTraceGenerator::with_weights(&[(p, 0)], 1);
    }
}
