//! Per-tenant session streams.
//!
//! A [`TenantStream`] is one tenant's deterministic slice of the
//! tenant-strided address space: a solo [`TraceGenerator`] seeded from
//! `derive_seed(seed, tenant)` whose addresses are relocated into the
//! tenant's private window. [`MixedTraceGenerator`] interleaves up to
//! 256 of them behind an 8-bit core id; the serving frontend
//! (`rtm-front`) owns tens of thousands and schedules them by arrival
//! time instead, which is why the stream itself carries a full `u32`
//! tenant id.
//!
//! [`MixedTraceGenerator`]: crate::MixedTraceGenerator

use crate::generator::{MemAccess, TraceGenerator};
use crate::mixed::TENANT_STRIDE;
use crate::profile::WorkloadProfile;
use rtm_util::rng::derive_seed;

/// One tenant's deterministic, relocated access stream.
#[derive(Debug, Clone)]
pub struct TenantStream {
    tenant: u32,
    base: u64,
    gen: TraceGenerator,
}

impl TenantStream {
    /// A session for `tenant` on the canonical 128 MiB
    /// [`TENANT_STRIDE`] grid (set-aligned: tenants contend for the
    /// same cache sets with distinct tags).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: WorkloadProfile, seed: u64, tenant: u32) -> Self {
        Self::strided(profile, seed, tenant, TENANT_STRIDE)
    }

    /// A session on an explicit stride. A stride that is *not* a
    /// multiple of the LLC set span (8 MiB for the paper geometry)
    /// offsets each tenant's window within the set index space, which
    /// spreads a large population across sets instead of piling every
    /// tenant's hot lines onto the same few stripe groups.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation or if the window base
    /// (`tenant * stride`) overflows.
    pub fn strided(profile: WorkloadProfile, seed: u64, tenant: u32, stride: u64) -> Self {
        let base = (tenant as u64)
            .checked_mul(stride)
            .expect("tenant window base overflows");
        Self {
            tenant,
            base,
            gen: TraceGenerator::with_cores(profile, derive_seed(seed, tenant as u64), 1),
        }
    }

    /// The tenant id this stream belongs to.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Base address of this tenant's window.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The next access, relocated into the tenant window. The 8-bit
    /// `core` carries the low byte of the tenant id; consumers with
    /// more than 256 tenants keep their own tenant bookkeeping.
    pub fn next_access(&mut self) -> MemAccess {
        let mut a = self.gen.next_access();
        a.addr += self.base;
        a.core = (self.tenant % 256) as u8;
        a
    }
}

impl Iterator for TenantStream {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        Some(self.next_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str) -> WorkloadProfile {
        WorkloadProfile::by_name(name).unwrap()
    }

    #[test]
    fn stream_is_deterministic_and_relocated() {
        let a: Vec<_> = TenantStream::new(profile("canneal"), 7, 3)
            .take(300)
            .collect();
        let b: Vec<_> = TenantStream::new(profile("canneal"), 7, 3)
            .take(300)
            .collect();
        assert_eq!(a, b);
        let solo =
            TraceGenerator::with_cores(profile("canneal"), derive_seed(7, 3), 1).take_vec(300);
        for (s, alone) in a.iter().zip(&solo) {
            assert_eq!(s.addr, alone.addr + 3 * TENANT_STRIDE);
            assert_eq!(s.is_write, alone.is_write);
            assert_eq!(s.gap_instructions, alone.gap_instructions);
            assert_eq!(s.core, 3);
        }
    }

    #[test]
    fn custom_stride_offsets_windows() {
        let stride = TENANT_STRIDE + 4096;
        let mut s = TenantStream::strided(profile("ferret"), 1, 10_000, stride);
        assert_eq!(s.base(), 10_000 * stride);
        assert_eq!(s.tenant(), 10_000);
        for _ in 0..100 {
            let a = s.next_access();
            assert!(a.addr >= s.base());
            assert_eq!(a.core, (10_000 % 256) as u8);
        }
    }

    #[test]
    fn distinct_tenants_draw_distinct_streams() {
        let a: Vec<_> = TenantStream::new(profile("vips"), 5, 0).take(64).collect();
        let b: Vec<_> = TenantStream::new(profile("vips"), 5, 1).take(64).collect();
        let a_rel: Vec<u64> = a.iter().map(|x| x.addr).collect();
        let b_rel: Vec<u64> = b.iter().map(|x| x.addr - TENANT_STRIDE).collect();
        assert_ne!(a_rel, b_rel, "derived seeds decorrelate tenants");
    }
}
