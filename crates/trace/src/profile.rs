//! Per-workload synthesis parameters.
//!
//! Each profile is tuned so that the simulated cache hierarchy
//! reproduces the workload's *qualitative* role in the paper's figures:
//! capacity-sensitive programs have working sets between the STT-RAM
//! (32 MB) and racetrack (128 MB) LLC capacities so the bigger LLC
//! visibly pays off; capacity-insensitive ones fit in a few megabytes;
//! streaming programs touch lines sequentially (short shifts), pointer-
//! chasing ones jump randomly (long shifts).

/// Synthesis parameters for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// The PARSEC program this profile impersonates.
    pub name: &'static str,
    /// Total touched memory (bytes).
    pub working_set_bytes: u64,
    /// Size of the hot set (bytes) absorbing most accesses.
    pub hot_set_bytes: u64,
    /// Probability an access targets the hot set.
    pub hot_fraction: f64,
    /// Probability an access continues a sequential stream (the rest
    /// scatter uniformly over the working set).
    pub stream_fraction: f64,
    /// Probability an access is a write.
    pub write_fraction: f64,
    /// Mean non-memory instructions between memory accesses (drives
    /// memory intensity and thus shift intensity).
    pub gap_instructions: f64,
    /// Whether the paper's Fig. 16 groups this workload as capacity
    /// sensitive.
    pub capacity_sensitive: bool,
}

impl WorkloadProfile {
    /// The twelve PARSEC-like profiles, in the paper's display order
    /// (capacity sensitive first).
    pub fn parsec() -> [WorkloadProfile; 12] {
        const MB: u64 = 1 << 20;
        const KB: u64 = 1 << 10;
        [
            // --- capacity sensitive: working sets beyond 32 MB ---
            WorkloadProfile {
                name: "canneal",
                working_set_bytes: 100 * MB,
                hot_set_bytes: 2 * MB,
                hot_fraction: 0.35,
                stream_fraction: 0.05,
                write_fraction: 0.25,
                gap_instructions: 2.5,
                capacity_sensitive: true,
            },
            WorkloadProfile {
                name: "dedup",
                working_set_bytes: 80 * MB,
                hot_set_bytes: 4 * MB,
                hot_fraction: 0.45,
                stream_fraction: 0.35,
                write_fraction: 0.30,
                gap_instructions: 3.0,
                capacity_sensitive: true,
            },
            WorkloadProfile {
                name: "facesim",
                working_set_bytes: 72 * MB,
                hot_set_bytes: 3 * MB,
                hot_fraction: 0.50,
                stream_fraction: 0.25,
                write_fraction: 0.35,
                gap_instructions: 3.5,
                capacity_sensitive: true,
            },
            WorkloadProfile {
                name: "ferret",
                working_set_bytes: 64 * MB,
                hot_set_bytes: 2 * MB,
                hot_fraction: 0.40,
                stream_fraction: 0.15,
                write_fraction: 0.20,
                gap_instructions: 2.8,
                capacity_sensitive: true,
            },
            WorkloadProfile {
                name: "fluidanimate",
                working_set_bytes: 56 * MB,
                hot_set_bytes: 4 * MB,
                hot_fraction: 0.55,
                stream_fraction: 0.20,
                write_fraction: 0.40,
                gap_instructions: 3.2,
                capacity_sensitive: true,
            },
            WorkloadProfile {
                name: "freqmine",
                working_set_bytes: 90 * MB,
                hot_set_bytes: 3 * MB,
                hot_fraction: 0.45,
                stream_fraction: 0.10,
                write_fraction: 0.25,
                gap_instructions: 2.6,
                capacity_sensitive: true,
            },
            // --- capacity insensitive: working sets within a few MB ---
            WorkloadProfile {
                name: "blackscholes",
                working_set_bytes: 2 * MB,
                hot_set_bytes: 256 * KB,
                hot_fraction: 0.80,
                stream_fraction: 0.15,
                write_fraction: 0.20,
                gap_instructions: 6.0,
                capacity_sensitive: false,
            },
            WorkloadProfile {
                name: "bodytrack",
                working_set_bytes: 8 * MB,
                hot_set_bytes: 512 * KB,
                hot_fraction: 0.70,
                stream_fraction: 0.20,
                write_fraction: 0.25,
                gap_instructions: 4.5,
                capacity_sensitive: false,
            },
            WorkloadProfile {
                name: "streamcluster",
                working_set_bytes: 16 * MB,
                hot_set_bytes: 256 * KB,
                hot_fraction: 0.30,
                stream_fraction: 0.60,
                write_fraction: 0.15,
                gap_instructions: 1.8,
                capacity_sensitive: false,
            },
            WorkloadProfile {
                name: "swaptions",
                working_set_bytes: MB,
                hot_set_bytes: 128 * KB,
                hot_fraction: 0.85,
                stream_fraction: 0.10,
                write_fraction: 0.20,
                gap_instructions: 7.0,
                capacity_sensitive: false,
            },
            WorkloadProfile {
                name: "vips",
                working_set_bytes: 12 * MB,
                hot_set_bytes: MB,
                hot_fraction: 0.55,
                stream_fraction: 0.40,
                write_fraction: 0.35,
                gap_instructions: 4.0,
                capacity_sensitive: false,
            },
            WorkloadProfile {
                name: "x264",
                working_set_bytes: 10 * MB,
                hot_set_bytes: MB,
                hot_fraction: 0.60,
                stream_fraction: 0.30,
                write_fraction: 0.30,
                gap_instructions: 4.2,
                capacity_sensitive: false,
            },
        ]
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        Self::parsec().into_iter().find(|p| p.name == name)
    }

    /// Validates internal consistency (fractions in range, hot set
    /// inside working set).
    pub fn validate(&self) -> Result<(), String> {
        let frac = |v: f64, what: &str| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{what} {v} outside [0, 1] for {}", self.name))
            }
        };
        frac(self.hot_fraction, "hot_fraction")?;
        frac(self.stream_fraction, "stream_fraction")?;
        frac(self.write_fraction, "write_fraction")?;
        if self.hot_fraction + self.stream_fraction > 1.0 {
            return Err(format!("hot + stream fractions exceed 1 for {}", self.name));
        }
        if self.hot_set_bytes > self.working_set_bytes {
            return Err(format!("hot set exceeds working set for {}", self.name));
        }
        if self.working_set_bytes == 0 || self.gap_instructions < 0.0 {
            return Err(format!("degenerate sizes for {}", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_profiles_all_valid() {
        let all = WorkloadProfile::parsec();
        assert_eq!(all.len(), 12);
        for p in &all {
            p.validate().unwrap();
        }
    }

    #[test]
    fn names_are_unique() {
        let all = WorkloadProfile::parsec();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i].name, all[j].name);
            }
        }
    }

    #[test]
    fn capacity_split_is_six_six() {
        let all = WorkloadProfile::parsec();
        let sensitive = all.iter().filter(|p| p.capacity_sensitive).count();
        assert_eq!(sensitive, 6);
    }

    #[test]
    fn sensitive_working_sets_straddle_the_llc_gap() {
        // Sensitive workloads exceed the 32 MB STT-RAM LLC but fit the
        // 128 MB racetrack LLC; insensitive ones fit everywhere small.
        for p in WorkloadProfile::parsec() {
            if p.capacity_sensitive {
                assert!(p.working_set_bytes > 32 << 20, "{}", p.name);
                assert!(p.working_set_bytes <= 128 << 20, "{}", p.name);
            } else {
                assert!(p.working_set_bytes <= 16 << 20, "{}", p.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(WorkloadProfile::by_name("canneal").is_some());
        assert!(WorkloadProfile::by_name("doom").is_none());
    }

    #[test]
    fn validate_catches_bad_profiles() {
        let mut p = WorkloadProfile::by_name("vips").unwrap();
        p.hot_fraction = 0.9;
        p.stream_fraction = 0.4;
        assert!(p.validate().is_err());
        let mut p = WorkloadProfile::by_name("vips").unwrap();
        p.hot_set_bytes = p.working_set_bytes + 1;
        assert!(p.validate().is_err());
    }
}
