//! Property tests for the synthetic trace generator and the replay
//! format.

use proptest::prelude::*;
use rtm_trace::replay::{read_trace, write_trace};
use rtm_trace::{MemAccess, TraceGenerator, WorkloadProfile};

fn profiles() -> Vec<WorkloadProfile> {
    WorkloadProfile::parsec().to_vec()
}

proptest! {
    /// Every profile generates addresses inside its working set, word
    /// aligned, with cores cycling over the configured count.
    #[test]
    fn generation_respects_profile(pidx in 0usize..12, seed in 0u64..1000, n in 1usize..500) {
        let p = profiles()[pidx];
        let mut g = TraceGenerator::new(p, seed);
        for i in 0..n {
            let a = g.next_access();
            prop_assert!(a.addr < p.working_set_bytes);
            prop_assert_eq!(a.addr % 8, 0);
            prop_assert_eq!(a.core as usize, i % 4);
        }
        prop_assert_eq!(g.generated(), n as u64);
    }

    /// Two generators with the same seed stay in lock-step regardless
    /// of how the draws are interleaved.
    #[test]
    fn determinism_under_interleaving(seed in 0u64..1000, chunks in proptest::collection::vec(1usize..50, 1..8)) {
        let p = WorkloadProfile::by_name("ferret").unwrap();
        let mut a = TraceGenerator::new(p, seed);
        let mut b = TraceGenerator::new(p, seed);
        // a draws everything at once; b draws in chunks.
        let total: usize = chunks.iter().sum();
        let ones = a.take_vec(total);
        let mut twos = Vec::new();
        for c in &chunks {
            twos.extend(b.take_vec(*c));
        }
        prop_assert_eq!(ones, twos);
    }

    /// Replay round-trips arbitrary access records, not just generated
    /// ones (full field-range coverage).
    #[test]
    fn replay_round_trips_arbitrary_records(
        records in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<u8>(), any::<bool>()),
            0..200,
        )
    ) {
        let accesses: Vec<MemAccess> = records
            .iter()
            .map(|&(addr, gap, core, w)| MemAccess {
                addr,
                gap_instructions: gap,
                core,
                is_write: w,
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &accesses).expect("vec write");
        prop_assert_eq!(read_trace(buf.as_slice()).expect("read"), accesses);
    }

    /// The serialised size is exactly header + 14 bytes per record.
    #[test]
    fn replay_size_is_exact(n in 0usize..300) {
        let p = WorkloadProfile::by_name("vips").unwrap();
        let accesses = TraceGenerator::new(p, 1).take_vec(n);
        let mut buf = Vec::new();
        write_trace(&mut buf, &accesses).expect("vec write");
        prop_assert_eq!(buf.len(), 14 + n * 14);
    }
}
