//! Property tests for the synthetic trace generator and the replay
//! format.

use rtm_trace::mixed::TENANT_STRIDE;
use rtm_trace::replay::{read_trace, write_trace};
use rtm_trace::{MemAccess, MixedTraceGenerator, TraceGenerator, WorkloadProfile};
use rtm_util::check::{run_cases, Gen};

fn profiles() -> Vec<WorkloadProfile> {
    WorkloadProfile::parsec().to_vec()
}

/// Every profile generates addresses inside its working set, word
/// aligned, with cores cycling over the configured count.
#[test]
fn generation_respects_profile() {
    run_cases(64, |g: &mut Gen| {
        let pidx = g.usize_in(0, 11);
        let seed = g.u64_in(0, 999);
        let n = g.usize_in(1, 499);
        let p = profiles()[pidx];
        let mut gen = TraceGenerator::new(p, seed);
        for i in 0..n {
            let a = gen.next_access();
            assert!(a.addr < p.working_set_bytes);
            assert_eq!(a.addr % 8, 0);
            assert_eq!(a.core as usize, i % 4);
        }
        assert_eq!(gen.generated(), n as u64);
    });
}

/// Two generators with the same seed stay in lock-step regardless
/// of how the draws are interleaved.
#[test]
fn determinism_under_interleaving() {
    run_cases(64, |g: &mut Gen| {
        let seed = g.u64_in(0, 999);
        let chunks = g.vec_of(1, 7, |g| g.usize_in(1, 49));
        let p = WorkloadProfile::by_name("ferret").unwrap();
        let mut a = TraceGenerator::new(p, seed);
        let mut b = TraceGenerator::new(p, seed);
        // a draws everything at once; b draws in chunks.
        let total: usize = chunks.iter().sum();
        let ones = a.take_vec(total);
        let mut twos = Vec::new();
        for c in &chunks {
            twos.extend(b.take_vec(*c));
        }
        assert_eq!(ones, twos);
    });
}

/// Replay round-trips arbitrary access records, not just generated
/// ones (full field-range coverage).
#[test]
fn replay_round_trips_arbitrary_records() {
    run_cases(64, |g: &mut Gen| {
        let accesses = g.vec_of(0, 199, |g| MemAccess {
            addr: g.u64(),
            gap_instructions: g.u32_in(0, u32::MAX),
            core: g.u32_in(0, 255) as u8,
            is_write: g.bool(),
        });
        let mut buf = Vec::new();
        write_trace(&mut buf, &accesses).expect("vec write");
        assert_eq!(read_trace(buf.as_slice()).expect("read"), accesses);
    });
}

/// The serialised size is exactly header + 14 bytes per record.
#[test]
fn replay_size_is_exact() {
    run_cases(64, |g: &mut Gen| {
        let n = g.usize_in(0, 299);
        let p = WorkloadProfile::by_name("vips").unwrap();
        let accesses = TraceGenerator::new(p, 1).take_vec(n);
        let mut buf = Vec::new();
        write_trace(&mut buf, &accesses).expect("vec write");
        assert_eq!(buf.len(), 14 + n * 14);
    });
}

/// A recorded stream replays to the exact generated stream — the
/// generate → serialise → replay pipeline loses nothing for any
/// profile, seed or length.
#[test]
fn recorded_stream_replays_identically() {
    run_cases(64, |g: &mut Gen| {
        let p = profiles()[g.usize_in(0, 11)];
        let seed = g.u64();
        let n = g.usize_in(1, 399);
        let buf = rtm_trace::replay::record(&mut TraceGenerator::new(p, seed), n);
        let replayed = read_trace(buf.as_slice()).expect("read");
        assert_eq!(replayed, TraceGenerator::new(p, seed).take_vec(n));
    });
}

/// Distinct seeds must yield distinct streams (the generator really
/// keys off its seed), while equal seeds stay bit-identical.
#[test]
fn seeds_select_distinct_deterministic_streams() {
    run_cases(64, |g: &mut Gen| {
        let p = profiles()[g.usize_in(0, 11)];
        let s1 = g.u64();
        let s2 = g.u64();
        let a = TraceGenerator::new(p, s1).take_vec(300);
        let b = TraceGenerator::new(p, s2).take_vec(300);
        if s1 == s2 {
            assert_eq!(a, b);
        } else {
            // Addresses are randomised every draw; 300 identical draws
            // from different seeds would be astronomically unlikely.
            assert_ne!(a, b, "seeds {s1} and {s2} produced the same stream");
        }
        assert_eq!(a, TraceGenerator::new(p, s1).take_vec(300));
    });
}

/// The multi-tenant mixer keeps every tenant inside its own
/// set-aligned window, follows its published schedule, and is a pure
/// function of (profiles, weights, seed).
#[test]
fn mixed_streams_are_scheduled_and_windowed() {
    run_cases(48, |g: &mut Gen| {
        let all = profiles();
        let entries: Vec<(WorkloadProfile, u32)> = (0..g.usize_in(1, 5))
            .map(|_| (all[g.usize_in(0, 11)], g.u32_in(1, 4)))
            .collect();
        let seed = g.u64();
        let n = g.usize_in(1, 299);
        let mut m = MixedTraceGenerator::with_weights(&entries, seed);
        let schedule: Vec<usize> = m.schedule().to_vec();
        assert_eq!(
            schedule.len() as u64,
            entries.iter().map(|&(_, w)| u64::from(w)).sum::<u64>()
        );
        let stream = m.take_vec(n);
        for (i, a) in stream.iter().enumerate() {
            let tenant = schedule[i % schedule.len()];
            assert_eq!(a.core as usize, tenant);
            let base = tenant as u64 * TENANT_STRIDE;
            assert!(a.addr >= base && a.addr - base < entries[tenant].0.working_set_bytes);
        }
        let again = MixedTraceGenerator::with_weights(&entries, seed).take_vec(n);
        assert_eq!(stream, again);
    });
}
