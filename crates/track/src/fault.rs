//! Pluggable shift fault models.
//!
//! A fault model answers one question: *what happened physically when a
//! stripe was commanded to shift `d` steps?* Three implementations:
//!
//! * [`IdealFaultModel`] — every shift succeeds (functional modelling,
//!   p-ECC layout tests);
//! * [`CalibratedFaultModel`] — draws out-of-step errors from the
//!   paper's Table 2 calibration ([`rtm_model::OutOfStepRates`]),
//!   assuming STS so stop-in-middle never occurs;
//! * [`ScriptedFaultModel`] — replays a fixed outcome sequence, for
//!   deterministic tests of detection/correction logic.

use rtm_model::rates::OutOfStepRates;
use rtm_model::shift::ShiftOutcome;
use rtm_util::rng::SmallRng64;

/// Decides the physical outcome of each commanded shift.
pub trait FaultModel {
    /// Samples the outcome of a shift of `distance` steps
    /// (`distance >= 1`; direction does not affect the error physics).
    fn sample(&mut self, distance: u32) -> ShiftOutcome;
}

/// All shifts succeed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealFaultModel;

impl FaultModel for IdealFaultModel {
    fn sample(&mut self, _distance: u32) -> ShiftOutcome {
        ShiftOutcome::Pinned { offset: 0 }
    }
}

/// Draws out-of-step errors at the calibrated Table 2 rates.
///
/// STS is assumed active, so every outcome is `Pinned`; the ± direction
/// follows the calibration's over-shift fraction.
#[derive(Debug, Clone)]
pub struct CalibratedFaultModel {
    rates: OutOfStepRates,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl CalibratedFaultModel {
    /// Creates a model over the given rate table.
    pub fn new(rates: OutOfStepRates, seed: u64) -> Self {
        Self {
            rates,
            rng: SmallRng64::new(seed),
            injected: 0,
            sampled: 0,
        }
    }

    /// Model with the paper's Table 2 rates.
    pub fn paper(seed: u64) -> Self {
        Self::new(OutOfStepRates::paper_calibration(), seed)
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// The underlying rate table.
    pub fn rates(&self) -> &OutOfStepRates {
        &self.rates
    }
}

impl FaultModel for CalibratedFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let u = self.rng.next_f64();
        // Walk the k ladder; k=1 dominates so this loop almost always
        // exits on its first comparison.
        let mut acc = 0.0;
        for k in 1..=3u32 {
            let rate = self.rates.rate(distance, k);
            acc += rate;
            if u < acc {
                self.injected += 1;
                let plus = self.rng.chance(self.rates.plus_fraction());
                let signed = if plus { k as i32 } else { -(k as i32) };
                return ShiftOutcome::Pinned { offset: signed };
            }
        }
        ShiftOutcome::Pinned { offset: 0 }
    }
}

/// Replays a scripted sequence of outcomes, then succeeds forever.
#[derive(Debug, Clone, Default)]
pub struct ScriptedFaultModel {
    script: std::collections::VecDeque<ShiftOutcome>,
}

impl ScriptedFaultModel {
    /// Creates a model that replays `outcomes` in order.
    pub fn new<I: IntoIterator<Item = ShiftOutcome>>(outcomes: I) -> Self {
        Self {
            script: outcomes.into_iter().collect(),
        }
    }

    /// Remaining scripted outcomes.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl FaultModel for ScriptedFaultModel {
    fn sample(&mut self, _distance: u32) -> ShiftOutcome {
        self.script
            .pop_front()
            .unwrap_or(ShiftOutcome::Pinned { offset: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_never_errs() {
        let mut m = IdealFaultModel;
        for d in 1..=7 {
            assert!(m.sample(d).is_success());
        }
    }

    #[test]
    fn scripted_replays_then_succeeds() {
        let mut m = ScriptedFaultModel::new([
            ShiftOutcome::Pinned { offset: 1 },
            ShiftOutcome::StopInMiddle {
                lower: 0,
                frac: 0.5,
            },
        ]);
        assert_eq!(m.remaining(), 2);
        assert_eq!(m.sample(3), ShiftOutcome::Pinned { offset: 1 });
        assert!(matches!(m.sample(3), ShiftOutcome::StopInMiddle { .. }));
        assert!(m.sample(3).is_success());
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn calibrated_rate_tracks_table() {
        let mut m = CalibratedFaultModel::paper(77);
        let trials = 2_000_000u64;
        let mut errors = 0u64;
        for _ in 0..trials {
            if !m.sample(7).is_success() {
                errors += 1;
            }
        }
        let rate = errors as f64 / trials as f64;
        let expect = OutOfStepRates::paper_calibration().any_error_rate(7);
        assert!(
            (rate / expect - 1.0).abs() < 0.25,
            "rate {rate:.3e} vs expected {expect:.3e}"
        );
        assert_eq!(m.sampled(), trials);
        assert_eq!(m.injected(), errors);
    }

    #[test]
    fn calibrated_short_shifts_much_safer() {
        let mut m = CalibratedFaultModel::paper(5);
        let trials = 500_000;
        let errs_1: u64 = (0..trials).filter(|_| !m.sample(1).is_success()).count() as u64;
        let errs_7: u64 = (0..trials).filter(|_| !m.sample(7).is_success()).count() as u64;
        assert!(errs_7 > errs_1 * 3, "1-step {errs_1} vs 7-step {errs_7}");
    }

    #[test]
    fn calibrated_errors_are_mostly_positive() {
        let mut m = CalibratedFaultModel::paper(9);
        let (mut plus, mut minus) = (0u64, 0u64);
        for _ in 0..3_000_000 {
            match m.sample(7) {
                ShiftOutcome::Pinned { offset } if offset > 0 => plus += 1,
                ShiftOutcome::Pinned { offset } if offset < 0 => minus += 1,
                _ => {}
            }
        }
        assert!(plus > 5 * minus.max(1), "plus {plus} minus {minus}");
    }
}
