//! Pluggable shift fault models.
//!
//! A fault model answers one question: *what happened physically when a
//! stripe was commanded to shift `d` steps?* Implementations:
//!
//! * [`IdealFaultModel`] — every shift succeeds (functional modelling,
//!   p-ECC layout tests);
//! * [`CalibratedFaultModel`] — draws out-of-step errors from the
//!   paper's Table 2 calibration ([`rtm_model::OutOfStepRates`]),
//!   assuming STS so stop-in-middle never occurs;
//! * [`GaussianFaultModel`] — the first-principles noise model: draws
//!   the continuous displacement error, settles it, applies STS;
//! * [`AliasFaultModel`] — distribution-equivalent to the Gaussian
//!   model but one RNG draw + two array reads per shift via the
//!   precomputed alias tables of [`rtm_model::alias`];
//! * [`EngineFaultModel`] — dispatches between the last two by
//!   [`rtm_model::Engine`], for `--engine` plumbing;
//! * [`PinningFaultModel`] — position-dependent sticky defect pinning
//!   in the style of Roxy/Jones (arXiv 2203.08303): seed-placed pin
//!   sites activate as the walls traverse them and hold the track back
//!   one step per shift until released, producing bursty, under-shift
//!   dominated errors; [`PinningFaultModel::effective_rates`] exposes
//!   the stationary rates so the analytic pipeline keeps working;
//! * [`ScriptedFaultModel`] — replays a fixed outcome sequence, for
//!   deterministic tests of detection/correction logic.
//!
//! [`FaultModelChoice`] names the user-selectable fault processes (the
//! `--fault-model` axis of the scheme × fault-model matrix) and builds
//! the matching [`SelectedFaultModel`] dispatcher.

use rtm_model::analytic::Engine;
use rtm_model::params::DeviceParams;
use rtm_model::rates::OutOfStepRates;
use rtm_model::shift::{NoiseModel, ShiftOutcome};
use rtm_util::rng::SmallRng64;

/// Decides the physical outcome of each commanded shift.
pub trait FaultModel {
    /// Samples the outcome of a shift of `distance` steps
    /// (`distance >= 1`; direction does not affect the error physics).
    fn sample(&mut self, distance: u32) -> ShiftOutcome;
}

/// All shifts succeed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealFaultModel;

impl FaultModel for IdealFaultModel {
    fn sample(&mut self, _distance: u32) -> ShiftOutcome {
        ShiftOutcome::Pinned { offset: 0 }
    }
}

/// Draws out-of-step errors at the calibrated Table 2 rates.
///
/// STS is assumed active, so every outcome is `Pinned`; the ± direction
/// follows the calibration's over-shift fraction.
#[derive(Debug, Clone)]
pub struct CalibratedFaultModel {
    rates: OutOfStepRates,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl CalibratedFaultModel {
    /// Creates a model over the given rate table.
    pub fn new(rates: OutOfStepRates, seed: u64) -> Self {
        Self {
            rates,
            rng: SmallRng64::new(seed),
            injected: 0,
            sampled: 0,
        }
    }

    /// Model with the paper's Table 2 rates.
    pub fn paper(seed: u64) -> Self {
        Self::new(OutOfStepRates::paper_calibration(), seed)
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// The underlying rate table.
    pub fn rates(&self) -> &OutOfStepRates {
        &self.rates
    }
}

impl FaultModel for CalibratedFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let u = self.rng.next_f64();
        // Walk the k ladder; k=1 dominates so this loop almost always
        // exits on its first comparison.
        let mut acc = 0.0;
        for k in 1..=3u32 {
            let rate = self.rates.rate(distance, k);
            acc += rate;
            if u < acc {
                self.injected += 1;
                let plus = self.rng.chance(self.rates.plus_fraction());
                let signed = if plus { k as i32 } else { -(k as i32) };
                return ShiftOutcome::Pinned { offset: signed };
            }
        }
        ShiftOutcome::Pinned { offset: 0 }
    }
}

/// Draws shift outcomes from the first-principles displacement noise
/// model: sample the continuous error, settle it against the capture
/// window, apply the STS stage-2 push. Every outcome is `Pinned`.
///
/// This is the reference stochastic path (two Box-Muller draws plus
/// branches per shift); [`AliasFaultModel`] samples the identical
/// distribution in O(1).
#[derive(Debug, Clone)]
pub struct GaussianFaultModel {
    noise: NoiseModel,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl GaussianFaultModel {
    /// Model over the noise model derived from `params`.
    pub fn new(params: &DeviceParams, seed: u64) -> Self {
        Self {
            noise: NoiseModel::from_params(params),
            rng: SmallRng64::new(seed),
            injected: 0,
            sampled: 0,
        }
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }
}

impl FaultModel for GaussianFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let e = self.noise.sample_error(distance, &mut self.rng);
        let out = self.noise.apply_sts(self.noise.settle(e));
        if !out.is_success() {
            self.injected += 1;
        }
        out
    }
}

/// Draws STS shift outcomes from precomputed Walker alias tables —
/// distribution-equivalent to [`GaussianFaultModel`] at one RNG draw
/// and two array reads per shift.
#[derive(Debug, Clone)]
pub struct AliasFaultModel {
    sampler: rtm_model::OutcomeAliasSampler,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl AliasFaultModel {
    /// Model with tables for distances
    /// `1..=rtm_model::rates::MAX_TABULATED_DISTANCE`.
    pub fn new(params: &DeviceParams, seed: u64) -> Self {
        Self {
            sampler: rtm_model::OutcomeAliasSampler::from_params(
                params,
                rtm_model::rates::MAX_TABULATED_DISTANCE,
            ),
            rng: SmallRng64::new(seed),
            injected: 0,
            sampled: 0,
        }
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }
}

impl FaultModel for AliasFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let out = self.sampler.sample_sts(distance, &mut self.rng);
        if !out.is_success() {
            self.injected += 1;
        }
        out
    }
}

/// A fault model selected by [`Engine`]: the Gaussian reference path
/// for Monte-Carlo, the alias fast path for analytic.
#[derive(Debug, Clone)]
pub enum EngineFaultModel {
    /// Direct Gaussian sampling (validation oracle).
    Gaussian(GaussianFaultModel),
    /// Alias-table sampling (fast path).
    Alias(AliasFaultModel),
}

impl EngineFaultModel {
    /// Builds the fault model the engine prescribes.
    pub fn new(engine: Engine, params: &DeviceParams, seed: u64) -> Self {
        match engine {
            Engine::MonteCarlo => Self::Gaussian(GaussianFaultModel::new(params, seed)),
            Engine::Analytic => Self::Alias(AliasFaultModel::new(params, seed)),
        }
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        match self {
            Self::Gaussian(m) => m.injected(),
            Self::Alias(m) => m.injected(),
        }
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        match self {
            Self::Gaussian(m) => m.sampled(),
            Self::Alias(m) => m.sampled(),
        }
    }
}

impl FaultModel for EngineFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        match self {
            Self::Gaussian(m) => m.sample(distance),
            Self::Alias(m) => m.sample(distance),
        }
    }
}

/// Position-dependent sticky pinning faults (Roxy/Jones-style).
///
/// Fabrication defects (edge roughness, notches) create *pin sites* at
/// fixed positions along a track. When a shift drags the domain walls
/// across an intact pin site, the site may *activate*: one wall snags
/// and the track advances one step short (`Pinned { offset: −1 }`).
/// The site is sticky — every subsequent shift under-shoots by one
/// more step until the drive current happens to depin it (release),
/// after which shifts succeed again. The result is exactly the error
/// process the stream codecs' under-shift hypothesis models: bursts of
/// repeated single under-shifts, minus-signed, at positions fixed per
/// track rather than i.i.d. per shift.
///
/// Everything is deterministic in the seed: site positions are placed
/// by the construction-time RNG and the activate/release draws come
/// from the same stream, so equal seeds replay equal fault sequences.
#[derive(Debug, Clone)]
pub struct PinningFaultModel {
    /// Sorted pin-site positions in `[0, track_len)`.
    sites: Vec<u32>,
    track_len: u32,
    /// Activation probability per pin site traversed while free.
    p_activate: f64,
    /// Release probability per shift while stuck.
    p_release: f64,
    /// Current wall position modulo `track_len`.
    position: u32,
    stuck: bool,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl PinningFaultModel {
    /// A model with `site_count` pin sites placed by `seed` on a
    /// `track_len`-domain track.
    pub fn new(
        track_len: u32,
        site_count: usize,
        p_activate: f64,
        p_release: f64,
        seed: u64,
    ) -> Self {
        assert!(track_len > 0, "track must have domains");
        assert!(
            (site_count as u32) <= track_len,
            "at most one site per domain"
        );
        assert!((0.0..=1.0).contains(&p_activate), "probability in [0,1]");
        assert!(p_release > 0.0 && p_release <= 1.0, "release in (0,1]");
        let mut rng = SmallRng64::new(seed);
        // Seed-placed sites: draw without replacement.
        let mut sites = Vec::with_capacity(site_count);
        while sites.len() < site_count {
            let s = rng.next_below(track_len as u64) as u32;
            if !sites.contains(&s) {
                sites.push(s);
            }
        }
        sites.sort_unstable();
        Self {
            sites,
            track_len,
            p_activate,
            p_release,
            position: 0,
            stuck: false,
            rng,
            injected: 0,
            sampled: 0,
        }
    }

    /// Defaults calibrated so the stationary any-error rate at the
    /// longest paper shift distance (7 steps) matches the Table 2
    /// column (~1.1e-3): 4 sites on a 64-domain track, activation
    /// 8.5e-4 per traversal, release 0.5 per shift.
    pub fn paper_like(seed: u64) -> Self {
        Self::new(64, 4, 8.5e-4, 0.5, seed)
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Pin-site positions (sorted).
    pub fn sites(&self) -> &[u32] {
        &self.sites
    }

    /// Whether a wall is currently snagged on an active site.
    pub fn is_stuck(&self) -> bool {
        self.stuck
    }

    /// Number of pin sites in `[position, position + distance)`,
    /// wrapping around the track.
    fn sites_traversed(&self, distance: u32) -> u32 {
        let full_laps = distance / self.track_len;
        let rest = distance % self.track_len;
        let start = self.position;
        let end = (self.position + rest) % self.track_len;
        let in_arc = |s: u32| -> bool {
            if start <= end {
                s >= start && s < end
            } else {
                s >= start || s < end
            }
        };
        let partial = if rest == 0 {
            0
        } else {
            self.sites.iter().filter(|&&s| in_arc(s)).count() as u32
        };
        full_laps * self.sites.len() as u32 + partial
    }

    /// The stationary per-shift error rates this model converges to,
    /// as a rate table the analytic reliability pipeline can consume.
    ///
    /// Treating shifts of a fixed `distance` as a two-state Markov
    /// chain (free/stuck): a free shift errs (and sticks) with the
    /// activation probability `a(d) = 1 − (1 − p_act)^E[sites crossed]`,
    /// and every stuck shift errs by −1 then releases with `p_rel`, so
    /// the stationary error rate is `π_free·a + π_stuck` with
    /// `π_stuck = a / (a + p_rel)`. All errors are single under-steps,
    /// so the k=2 column is zero and the plus fraction is zero.
    pub fn effective_rates(&self) -> OutOfStepRates {
        let density = self.sites.len() as f64 / self.track_len as f64;
        let mut k1 = Vec::new();
        for d in 1..=crate::fault::MAX_RATE_DISTANCE {
            let crossed = density * d as f64;
            let a = 1.0 - (1.0 - self.p_activate).powf(crossed);
            let pi_stuck = a / (a + self.p_release);
            let pi_free = 1.0 - pi_stuck;
            k1.push(pi_free * a + pi_stuck);
        }
        let k2 = vec![0.0; k1.len()];
        OutOfStepRates::from_columns(k1, k2, 0.0)
    }
}

/// Distances tabulated by [`PinningFaultModel::effective_rates`]
/// (matches the paper's Table 2 span).
const MAX_RATE_DISTANCE: u32 = rtm_model::rates::MAX_TABULATED_DISTANCE;

impl FaultModel for PinningFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let outcome = if self.stuck {
            // Snagged: this shift loses a step, then maybe depins.
            self.injected += 1;
            if self.rng.chance(self.p_release) {
                self.stuck = false;
            }
            ShiftOutcome::Pinned { offset: -1 }
        } else {
            let crossed = self.sites_traversed(distance);
            let activated = (0..crossed).any(|_| self.rng.chance(self.p_activate));
            if activated {
                self.stuck = true;
                self.injected += 1;
                ShiftOutcome::Pinned { offset: -1 }
            } else {
                ShiftOutcome::Pinned { offset: 0 }
            }
        };
        self.position = (self.position + distance % self.track_len) % self.track_len;
        outcome
    }
}

/// The fault-process axis of the scheme × fault-model matrix: which
/// error physics drives a simulation, independent of the protection
/// scheme checking for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultModelChoice {
    /// Engine-prescribed displacement sampling — Gaussian reference
    /// path under Monte-Carlo, alias fast path under analytic. The
    /// default, and the paper's own noise model.
    #[default]
    Engine,
    /// Rate-table sampling at the paper's calibrated Table 2 rates.
    Calibrated,
    /// Sticky pinning-site faults ([`PinningFaultModel`]): bursty,
    /// minus-signed, position-dependent.
    Pinning,
}

impl FaultModelChoice {
    /// Every selectable fault model, in display order.
    pub const ALL: [FaultModelChoice; 3] = [
        FaultModelChoice::Engine,
        FaultModelChoice::Calibrated,
        FaultModelChoice::Pinning,
    ];

    /// Canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultModelChoice::Engine => "engine",
            FaultModelChoice::Calibrated => "calibrated",
            FaultModelChoice::Pinning => "pinning",
        }
    }

    /// Parses a CLI name; `gaussian` and `alias` are accepted aliases
    /// for `engine` (they name its two halves).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "engine" | "gaussian" | "alias" => Some(FaultModelChoice::Engine),
            "calibrated" => Some(FaultModelChoice::Calibrated),
            "pinning" => Some(FaultModelChoice::Pinning),
            _ => None,
        }
    }

    /// Builds the sampling fault model this choice prescribes.
    pub fn build(&self, engine: Engine, params: &DeviceParams, seed: u64) -> SelectedFaultModel {
        match self {
            FaultModelChoice::Engine => {
                SelectedFaultModel::Engine(EngineFaultModel::new(engine, params, seed))
            }
            FaultModelChoice::Calibrated => {
                SelectedFaultModel::Calibrated(CalibratedFaultModel::paper(seed))
            }
            FaultModelChoice::Pinning => {
                SelectedFaultModel::Pinning(PinningFaultModel::paper_like(seed))
            }
        }
    }

    /// The rate table the analytic reliability path should use for
    /// this fault process: the paper calibration for the displacement
    /// processes (which it was fitted to), the stationary Markov rates
    /// for pinning.
    pub fn analytic_rates(&self) -> OutOfStepRates {
        match self {
            FaultModelChoice::Engine | FaultModelChoice::Calibrated => {
                OutOfStepRates::paper_calibration()
            }
            FaultModelChoice::Pinning => PinningFaultModel::paper_like(0).effective_rates(),
        }
    }
}

impl std::fmt::Display for FaultModelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault model built from a [`FaultModelChoice`] — the runtime
/// dispatcher the memory hierarchy samples through.
#[derive(Debug, Clone)]
pub enum SelectedFaultModel {
    /// Engine-prescribed displacement sampling.
    Engine(EngineFaultModel),
    /// Calibrated Table 2 rate sampling.
    Calibrated(CalibratedFaultModel),
    /// Sticky pinning-site sampling.
    Pinning(PinningFaultModel),
}

impl SelectedFaultModel {
    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        match self {
            Self::Engine(m) => m.injected(),
            Self::Calibrated(m) => m.injected(),
            Self::Pinning(m) => m.injected(),
        }
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        match self {
            Self::Engine(m) => m.sampled(),
            Self::Calibrated(m) => m.sampled(),
            Self::Pinning(m) => m.sampled(),
        }
    }
}

impl FaultModel for SelectedFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        match self {
            Self::Engine(m) => m.sample(distance),
            Self::Calibrated(m) => m.sample(distance),
            Self::Pinning(m) => m.sample(distance),
        }
    }
}

/// Replays a scripted sequence of outcomes, then succeeds forever.
#[derive(Debug, Clone, Default)]
pub struct ScriptedFaultModel {
    script: std::collections::VecDeque<ShiftOutcome>,
}

impl ScriptedFaultModel {
    /// Creates a model that replays `outcomes` in order.
    pub fn new<I: IntoIterator<Item = ShiftOutcome>>(outcomes: I) -> Self {
        Self {
            script: outcomes.into_iter().collect(),
        }
    }

    /// Remaining scripted outcomes.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl FaultModel for ScriptedFaultModel {
    fn sample(&mut self, _distance: u32) -> ShiftOutcome {
        self.script
            .pop_front()
            .unwrap_or(ShiftOutcome::Pinned { offset: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_never_errs() {
        let mut m = IdealFaultModel;
        for d in 1..=7 {
            assert!(m.sample(d).is_success());
        }
    }

    #[test]
    fn scripted_replays_then_succeeds() {
        let mut m = ScriptedFaultModel::new([
            ShiftOutcome::Pinned { offset: 1 },
            ShiftOutcome::StopInMiddle {
                lower: 0,
                frac: 0.5,
            },
        ]);
        assert_eq!(m.remaining(), 2);
        assert_eq!(m.sample(3), ShiftOutcome::Pinned { offset: 1 });
        assert!(matches!(m.sample(3), ShiftOutcome::StopInMiddle { .. }));
        assert!(m.sample(3).is_success());
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn calibrated_rate_tracks_table() {
        let mut m = CalibratedFaultModel::paper(77);
        let trials = 2_000_000u64;
        let mut errors = 0u64;
        for _ in 0..trials {
            if !m.sample(7).is_success() {
                errors += 1;
            }
        }
        let rate = errors as f64 / trials as f64;
        let expect = OutOfStepRates::paper_calibration().any_error_rate(7);
        assert!(
            (rate / expect - 1.0).abs() < 0.25,
            "rate {rate:.3e} vs expected {expect:.3e}"
        );
        assert_eq!(m.sampled(), trials);
        assert_eq!(m.injected(), errors);
    }

    #[test]
    fn calibrated_short_shifts_much_safer() {
        let mut m = CalibratedFaultModel::paper(5);
        let trials = 500_000;
        let errs_1: u64 = (0..trials).filter(|_| !m.sample(1).is_success()).count() as u64;
        let errs_7: u64 = (0..trials).filter(|_| !m.sample(7).is_success()).count() as u64;
        assert!(errs_7 > errs_1 * 3, "1-step {errs_1} vs 7-step {errs_7}");
    }

    #[test]
    fn gaussian_and_alias_models_agree_in_distribution() {
        let params = DeviceParams::table1();
        let mut gauss = GaussianFaultModel::new(&params, 71);
        let mut alias = AliasFaultModel::new(&params, 72);
        let trials = 2_000_000u64;
        let mut g_err = 0u64;
        let mut a_err = 0u64;
        for _ in 0..trials {
            if !gauss.sample(7).is_success() {
                g_err += 1;
            }
            if !alias.sample(7).is_success() {
                a_err += 1;
            }
        }
        assert_eq!(gauss.sampled(), trials);
        assert_eq!(alias.sampled(), trials);
        assert_eq!(gauss.injected(), g_err);
        assert_eq!(alias.injected(), a_err);
        // Same underlying distribution: rates within two pooled
        // binomial sigmas of each other.
        let p = (g_err + a_err) as f64 / (2 * trials) as f64;
        let sigma = (2.0 * p * (1.0 - p) / trials as f64).sqrt();
        let diff = (g_err as f64 - a_err as f64).abs() / trials as f64;
        assert!(
            diff < 3.0 * sigma,
            "gaussian {g_err} vs alias {a_err} (3sigma {:.1})",
            3.0 * sigma * trials as f64
        );
    }

    #[test]
    fn engine_model_dispatches_by_engine() {
        let params = DeviceParams::table1();
        let mut mc = EngineFaultModel::new(Engine::MonteCarlo, &params, 4);
        let mut an = EngineFaultModel::new(Engine::Analytic, &params, 4);
        assert!(matches!(mc, EngineFaultModel::Gaussian(_)));
        assert!(matches!(an, EngineFaultModel::Alias(_)));
        for _ in 0..1000 {
            assert!(mc.sample(3).step_offset().is_some());
            assert!(an.sample(3).step_offset().is_some());
        }
        assert_eq!(mc.sampled(), 1000);
        assert_eq!(an.sampled(), 1000);
    }

    #[test]
    fn pinning_is_deterministic_in_the_seed() {
        let mut a = PinningFaultModel::paper_like(42);
        let mut b = PinningFaultModel::paper_like(42);
        assert_eq!(a.sites(), b.sites());
        for i in 0..200_000u32 {
            let d = 1 + i % 7;
            assert_eq!(a.sample(d), b.sample(d), "diverged at draw {i}");
        }
        assert_eq!(a.injected(), b.injected());
        // A different seed places different sites.
        let c = PinningFaultModel::paper_like(43);
        assert_ne!(a.sites(), c.sites());
    }

    #[test]
    fn scripted_replay_of_a_pinning_trace_is_faithful() {
        // Record a pin/release sequence, load it into the scripted
        // model, and check a same-seed pinning model reproduces it
        // outcome for outcome — the replay contract the deterministic
        // fault-injection tests rely on.
        let distances: Vec<u32> = (0..50_000u32).map(|i| 1 + i % 7).collect();
        let mut live = PinningFaultModel::paper_like(2015);
        let trace: Vec<ShiftOutcome> = distances.iter().map(|&d| live.sample(d)).collect();
        assert!(live.injected() > 0, "trace must contain pin events");
        let mut replay = ScriptedFaultModel::new(trace);
        let mut fresh = PinningFaultModel::paper_like(2015);
        for (i, &d) in distances.iter().enumerate() {
            assert_eq!(fresh.sample(d), replay.sample(d), "diverged at draw {i}");
        }
        assert_eq!(replay.remaining(), 0);
        assert_eq!(fresh.injected(), live.injected());
    }

    #[test]
    fn pinning_errors_are_minus_signed_and_bursty() {
        let mut m = PinningFaultModel::paper_like(7);
        let mut burst = 0u32;
        let mut bursts = Vec::new();
        for _ in 0..2_000_000 {
            match m.sample(7) {
                ShiftOutcome::Pinned { offset: -1 } => burst += 1,
                ShiftOutcome::Pinned { offset: 0 } => {
                    if burst > 0 {
                        bursts.push(burst);
                    }
                    burst = 0;
                }
                other => panic!("pinning produced {other:?}"),
            }
        }
        assert!(!bursts.is_empty(), "no faults in 2M shifts");
        // Sticky release at 0.5 → mean burst length 2, so multi-error
        // bursts must show up — the signature i.i.d. models lack.
        assert!(
            bursts.iter().any(|&b| b >= 2),
            "no sticky bursts: {bursts:?}"
        );
    }

    #[test]
    fn pinning_effective_rates_match_simulation() {
        let mut m = PinningFaultModel::paper_like(11);
        let trials = 4_000_000u64;
        let mut errors = 0u64;
        for _ in 0..trials {
            if !m.sample(7).is_success() {
                errors += 1;
            }
        }
        let rate = errors as f64 / trials as f64;
        let expect = m.effective_rates().any_error_rate(7);
        assert!(
            (rate / expect - 1.0).abs() < 0.25,
            "rate {rate:.3e} vs stationary {expect:.3e}"
        );
        // Calibration target: same order as the paper's Table 2 column.
        let paper = OutOfStepRates::paper_calibration().any_error_rate(7);
        assert!(
            (expect / paper) > 0.3 && (expect / paper) < 3.0,
            "pinning rate {expect:.3e} not Table-2-like ({paper:.3e})"
        );
    }

    #[test]
    fn pinning_rates_are_all_under_shifts() {
        let rates = PinningFaultModel::paper_like(1).effective_rates();
        assert_eq!(rates.plus_fraction(), 0.0);
        assert!(rates.minus_rate(7, 1) > 0.0);
        assert_eq!(rates.rate(7, 2), 0.0);
    }

    #[test]
    fn calibrated_errors_are_mostly_positive() {
        let mut m = CalibratedFaultModel::paper(9);
        let (mut plus, mut minus) = (0u64, 0u64);
        for _ in 0..3_000_000 {
            match m.sample(7) {
                ShiftOutcome::Pinned { offset } if offset > 0 => plus += 1,
                ShiftOutcome::Pinned { offset } if offset < 0 => minus += 1,
                _ => {}
            }
        }
        assert!(plus > 5 * minus.max(1), "plus {plus} minus {minus}");
    }
}
