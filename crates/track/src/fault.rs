//! Pluggable shift fault models.
//!
//! A fault model answers one question: *what happened physically when a
//! stripe was commanded to shift `d` steps?* Implementations:
//!
//! * [`IdealFaultModel`] — every shift succeeds (functional modelling,
//!   p-ECC layout tests);
//! * [`CalibratedFaultModel`] — draws out-of-step errors from the
//!   paper's Table 2 calibration ([`rtm_model::OutOfStepRates`]),
//!   assuming STS so stop-in-middle never occurs;
//! * [`GaussianFaultModel`] — the first-principles noise model: draws
//!   the continuous displacement error, settles it, applies STS;
//! * [`AliasFaultModel`] — distribution-equivalent to the Gaussian
//!   model but one RNG draw + two array reads per shift via the
//!   precomputed alias tables of [`rtm_model::alias`];
//! * [`EngineFaultModel`] — dispatches between the last two by
//!   [`rtm_model::Engine`], for `--engine` plumbing;
//! * [`ScriptedFaultModel`] — replays a fixed outcome sequence, for
//!   deterministic tests of detection/correction logic.

use rtm_model::analytic::Engine;
use rtm_model::params::DeviceParams;
use rtm_model::rates::OutOfStepRates;
use rtm_model::shift::{NoiseModel, ShiftOutcome};
use rtm_util::rng::SmallRng64;

/// Decides the physical outcome of each commanded shift.
pub trait FaultModel {
    /// Samples the outcome of a shift of `distance` steps
    /// (`distance >= 1`; direction does not affect the error physics).
    fn sample(&mut self, distance: u32) -> ShiftOutcome;
}

/// All shifts succeed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealFaultModel;

impl FaultModel for IdealFaultModel {
    fn sample(&mut self, _distance: u32) -> ShiftOutcome {
        ShiftOutcome::Pinned { offset: 0 }
    }
}

/// Draws out-of-step errors at the calibrated Table 2 rates.
///
/// STS is assumed active, so every outcome is `Pinned`; the ± direction
/// follows the calibration's over-shift fraction.
#[derive(Debug, Clone)]
pub struct CalibratedFaultModel {
    rates: OutOfStepRates,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl CalibratedFaultModel {
    /// Creates a model over the given rate table.
    pub fn new(rates: OutOfStepRates, seed: u64) -> Self {
        Self {
            rates,
            rng: SmallRng64::new(seed),
            injected: 0,
            sampled: 0,
        }
    }

    /// Model with the paper's Table 2 rates.
    pub fn paper(seed: u64) -> Self {
        Self::new(OutOfStepRates::paper_calibration(), seed)
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// The underlying rate table.
    pub fn rates(&self) -> &OutOfStepRates {
        &self.rates
    }
}

impl FaultModel for CalibratedFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let u = self.rng.next_f64();
        // Walk the k ladder; k=1 dominates so this loop almost always
        // exits on its first comparison.
        let mut acc = 0.0;
        for k in 1..=3u32 {
            let rate = self.rates.rate(distance, k);
            acc += rate;
            if u < acc {
                self.injected += 1;
                let plus = self.rng.chance(self.rates.plus_fraction());
                let signed = if plus { k as i32 } else { -(k as i32) };
                return ShiftOutcome::Pinned { offset: signed };
            }
        }
        ShiftOutcome::Pinned { offset: 0 }
    }
}

/// Draws shift outcomes from the first-principles displacement noise
/// model: sample the continuous error, settle it against the capture
/// window, apply the STS stage-2 push. Every outcome is `Pinned`.
///
/// This is the reference stochastic path (two Box-Muller draws plus
/// branches per shift); [`AliasFaultModel`] samples the identical
/// distribution in O(1).
#[derive(Debug, Clone)]
pub struct GaussianFaultModel {
    noise: NoiseModel,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl GaussianFaultModel {
    /// Model over the noise model derived from `params`.
    pub fn new(params: &DeviceParams, seed: u64) -> Self {
        Self {
            noise: NoiseModel::from_params(params),
            rng: SmallRng64::new(seed),
            injected: 0,
            sampled: 0,
        }
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }
}

impl FaultModel for GaussianFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let e = self.noise.sample_error(distance, &mut self.rng);
        let out = self.noise.apply_sts(self.noise.settle(e));
        if !out.is_success() {
            self.injected += 1;
        }
        out
    }
}

/// Draws STS shift outcomes from precomputed Walker alias tables —
/// distribution-equivalent to [`GaussianFaultModel`] at one RNG draw
/// and two array reads per shift.
#[derive(Debug, Clone)]
pub struct AliasFaultModel {
    sampler: rtm_model::OutcomeAliasSampler,
    rng: SmallRng64,
    injected: u64,
    sampled: u64,
}

impl AliasFaultModel {
    /// Model with tables for distances
    /// `1..=rtm_model::rates::MAX_TABULATED_DISTANCE`.
    pub fn new(params: &DeviceParams, seed: u64) -> Self {
        Self {
            sampler: rtm_model::OutcomeAliasSampler::from_params(
                params,
                rtm_model::rates::MAX_TABULATED_DISTANCE,
            ),
            rng: SmallRng64::new(seed),
            injected: 0,
            sampled: 0,
        }
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }
}

impl FaultModel for AliasFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        self.sampled += 1;
        let out = self.sampler.sample_sts(distance, &mut self.rng);
        if !out.is_success() {
            self.injected += 1;
        }
        out
    }
}

/// A fault model selected by [`Engine`]: the Gaussian reference path
/// for Monte-Carlo, the alias fast path for analytic.
#[derive(Debug, Clone)]
pub enum EngineFaultModel {
    /// Direct Gaussian sampling (validation oracle).
    Gaussian(GaussianFaultModel),
    /// Alias-table sampling (fast path).
    Alias(AliasFaultModel),
}

impl EngineFaultModel {
    /// Builds the fault model the engine prescribes.
    pub fn new(engine: Engine, params: &DeviceParams, seed: u64) -> Self {
        match engine {
            Engine::MonteCarlo => Self::Gaussian(GaussianFaultModel::new(params, seed)),
            Engine::Analytic => Self::Alias(AliasFaultModel::new(params, seed)),
        }
    }

    /// Number of faulty outcomes produced so far.
    pub fn injected(&self) -> u64 {
        match self {
            Self::Gaussian(m) => m.injected(),
            Self::Alias(m) => m.injected(),
        }
    }

    /// Number of outcomes sampled so far.
    pub fn sampled(&self) -> u64 {
        match self {
            Self::Gaussian(m) => m.sampled(),
            Self::Alias(m) => m.sampled(),
        }
    }
}

impl FaultModel for EngineFaultModel {
    fn sample(&mut self, distance: u32) -> ShiftOutcome {
        match self {
            Self::Gaussian(m) => m.sample(distance),
            Self::Alias(m) => m.sample(distance),
        }
    }
}

/// Replays a scripted sequence of outcomes, then succeeds forever.
#[derive(Debug, Clone, Default)]
pub struct ScriptedFaultModel {
    script: std::collections::VecDeque<ShiftOutcome>,
}

impl ScriptedFaultModel {
    /// Creates a model that replays `outcomes` in order.
    pub fn new<I: IntoIterator<Item = ShiftOutcome>>(outcomes: I) -> Self {
        Self {
            script: outcomes.into_iter().collect(),
        }
    }

    /// Remaining scripted outcomes.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl FaultModel for ScriptedFaultModel {
    fn sample(&mut self, _distance: u32) -> ShiftOutcome {
        self.script
            .pop_front()
            .unwrap_or(ShiftOutcome::Pinned { offset: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_never_errs() {
        let mut m = IdealFaultModel;
        for d in 1..=7 {
            assert!(m.sample(d).is_success());
        }
    }

    #[test]
    fn scripted_replays_then_succeeds() {
        let mut m = ScriptedFaultModel::new([
            ShiftOutcome::Pinned { offset: 1 },
            ShiftOutcome::StopInMiddle {
                lower: 0,
                frac: 0.5,
            },
        ]);
        assert_eq!(m.remaining(), 2);
        assert_eq!(m.sample(3), ShiftOutcome::Pinned { offset: 1 });
        assert!(matches!(m.sample(3), ShiftOutcome::StopInMiddle { .. }));
        assert!(m.sample(3).is_success());
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn calibrated_rate_tracks_table() {
        let mut m = CalibratedFaultModel::paper(77);
        let trials = 2_000_000u64;
        let mut errors = 0u64;
        for _ in 0..trials {
            if !m.sample(7).is_success() {
                errors += 1;
            }
        }
        let rate = errors as f64 / trials as f64;
        let expect = OutOfStepRates::paper_calibration().any_error_rate(7);
        assert!(
            (rate / expect - 1.0).abs() < 0.25,
            "rate {rate:.3e} vs expected {expect:.3e}"
        );
        assert_eq!(m.sampled(), trials);
        assert_eq!(m.injected(), errors);
    }

    #[test]
    fn calibrated_short_shifts_much_safer() {
        let mut m = CalibratedFaultModel::paper(5);
        let trials = 500_000;
        let errs_1: u64 = (0..trials).filter(|_| !m.sample(1).is_success()).count() as u64;
        let errs_7: u64 = (0..trials).filter(|_| !m.sample(7).is_success()).count() as u64;
        assert!(errs_7 > errs_1 * 3, "1-step {errs_1} vs 7-step {errs_7}");
    }

    #[test]
    fn gaussian_and_alias_models_agree_in_distribution() {
        let params = DeviceParams::table1();
        let mut gauss = GaussianFaultModel::new(&params, 71);
        let mut alias = AliasFaultModel::new(&params, 72);
        let trials = 2_000_000u64;
        let mut g_err = 0u64;
        let mut a_err = 0u64;
        for _ in 0..trials {
            if !gauss.sample(7).is_success() {
                g_err += 1;
            }
            if !alias.sample(7).is_success() {
                a_err += 1;
            }
        }
        assert_eq!(gauss.sampled(), trials);
        assert_eq!(alias.sampled(), trials);
        assert_eq!(gauss.injected(), g_err);
        assert_eq!(alias.injected(), a_err);
        // Same underlying distribution: rates within two pooled
        // binomial sigmas of each other.
        let p = (g_err + a_err) as f64 / (2 * trials) as f64;
        let sigma = (2.0 * p * (1.0 - p) / trials as f64).sqrt();
        let diff = (g_err as f64 - a_err as f64).abs() / trials as f64;
        assert!(
            diff < 3.0 * sigma,
            "gaussian {g_err} vs alias {a_err} (3sigma {:.1})",
            3.0 * sigma * trials as f64
        );
    }

    #[test]
    fn engine_model_dispatches_by_engine() {
        let params = DeviceParams::table1();
        let mut mc = EngineFaultModel::new(Engine::MonteCarlo, &params, 4);
        let mut an = EngineFaultModel::new(Engine::Analytic, &params, 4);
        assert!(matches!(mc, EngineFaultModel::Gaussian(_)));
        assert!(matches!(an, EngineFaultModel::Alias(_)));
        for _ in 0..1000 {
            assert!(mc.sample(3).step_offset().is_some());
            assert!(an.sample(3).step_offset().is_some());
        }
        assert_eq!(mc.sampled(), 1000);
        assert_eq!(an.sampled(), 1000);
    }

    #[test]
    fn calibrated_errors_are_mostly_positive() {
        let mut m = CalibratedFaultModel::paper(9);
        let (mut plus, mut minus) = (0u64, 0u64);
        for _ in 0..3_000_000 {
            match m.sample(7) {
                ShiftOutcome::Pinned { offset } if offset > 0 => plus += 1,
                ShiftOutcome::Pinned { offset } if offset < 0 => minus += 1,
                _ => {}
            }
        }
        assert!(plus > 5 * minus.max(1), "plus {plus} minus {minus}");
    }
}
