//! Bit-accurate racetrack memory stripes and arrays.
//!
//! A racetrack stripe is a magnetic nanowire storing one bit per domain;
//! access ports are fixed transistor stacks the data must be *shifted*
//! past. This crate models that tape physically:
//!
//! * [`bit`] — the three-valued domain content (`0`, `1`, unknown —
//!   freshly shifted-in domains and misaligned reads are indeterminate);
//! * [`geometry`] — segment/port layout, overhead region sizing and
//!   head-position arithmetic for a data stripe;
//! * [`stripe`] — the physical tape: cells, the alignment state, and
//!   shift application with data falling off the ends;
//! * [`fault`] — pluggable shift fault models (ideal, calibrated to the
//!   paper's Table 2, scripted for tests);
//! * [`array`](mod@array) — lockstep groups of stripes holding one cache line
//!   (the paper interleaves a 64 B line over 512 stripes).
//!
//! # Examples
//!
//! ```
//! use rtm_track::geometry::StripeGeometry;
//! use rtm_track::stripe::SegmentedStripe;
//! use rtm_track::bit::Bit;
//!
//! // 64 data domains served by 8 read/write ports (Lseg = 8).
//! let geom = StripeGeometry::new(64, 8).unwrap();
//! let mut stripe = SegmentedStripe::zeroed(geom);
//! stripe.write_domain(13, Bit::One).unwrap();
//! assert_eq!(stripe.read_domain(13).unwrap(), Bit::One);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bit;
pub mod fault;
pub mod geometry;
pub mod ports;
pub mod stripe;

pub use array::StripeArray;
pub use bit::Bit;
pub use fault::{
    AliasFaultModel, CalibratedFaultModel, EngineFaultModel, FaultModel, FaultModelChoice,
    GaussianFaultModel, IdealFaultModel, PinningFaultModel, ScriptedFaultModel, SelectedFaultModel,
};
pub use geometry::StripeGeometry;
pub use stripe::{SegmentedStripe, Stripe};
