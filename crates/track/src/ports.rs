//! Access-port device semantics — the physical layer of the paper's
//! Fig. 2(a).
//!
//! A **read-only port** is a fixed reference domain stacked over the
//! stripe: together with the domain currently under it, it forms an
//! MTJ whose resistance encodes the stored bit (parallel = low = `0`,
//! anti-parallel = high = `1`). A **read/write port** adds one more
//! transistor and *two* reference domains with opposite pinned
//! directions; a write selects the reference holding the desired value
//! and shifts it into the data domain — the "shift-based write" of
//! Section 2.1, which needs less current than an STT-style write.

use crate::bit::Bit;
use crate::stripe::{Stripe, StripeError};
use std::fmt;

/// Magnetisation direction of a pinned reference domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Magnetisation {
    /// Reference direction (reads as parallel for a stored `0`).
    Up,
    /// Opposite direction.
    Down,
}

/// MTJ resistance state sensed by a read port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resistance {
    /// Parallel stack: low resistance, decoded as `0`.
    Low,
    /// Anti-parallel stack: high resistance, decoded as `1`.
    High,
    /// The junction straddles a domain wall (misaligned stripe) or an
    /// unwritten domain: the sensed value is indeterminate.
    Indeterminate,
}

impl Resistance {
    /// Decodes the resistance into a bit.
    pub fn decode(self) -> Bit {
        match self {
            Resistance::Low => Bit::Zero,
            Resistance::High => Bit::One,
            Resistance::Indeterminate => Bit::Unknown,
        }
    }
}

/// What kind of access stack sits at a port site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// One reference domain + one transistor: read only.
    ReadOnly,
    /// Two opposed reference domains + two transistors: read and
    /// shift-based write.
    ReadWrite,
}

/// A physical access port over a stripe slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPort {
    kind: PortKind,
    slot: usize,
}

impl AccessPort {
    /// Creates a read-only port over `slot`.
    pub fn read_only(slot: usize) -> Self {
        Self {
            kind: PortKind::ReadOnly,
            slot,
        }
    }

    /// Creates a read/write port over `slot`.
    pub fn read_write(slot: usize) -> Self {
        Self {
            kind: PortKind::ReadWrite,
            slot,
        }
    }

    /// The port kind.
    pub fn kind(&self) -> PortKind {
        self.kind
    }

    /// The stripe slot this port senses.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Number of access transistors in the stack (area accounting:
    /// read/write ports are the expensive ones — see `rtm-cost`).
    pub fn transistors(&self) -> u32 {
        match self.kind {
            PortKind::ReadOnly => 1,
            PortKind::ReadWrite => 2,
        }
    }

    /// Senses the MTJ resistance at this port.
    ///
    /// # Errors
    ///
    /// Propagates [`StripeError::SlotOutOfRange`].
    pub fn sense(&self, stripe: &Stripe) -> Result<Resistance, StripeError> {
        let bit = stripe.read_slot(self.slot)?;
        Ok(match bit {
            Bit::Zero => Resistance::Low,
            Bit::One => Resistance::High,
            Bit::Unknown => Resistance::Indeterminate,
        })
    }

    /// Reads the decoded bit at this port.
    ///
    /// # Errors
    ///
    /// Propagates [`StripeError::SlotOutOfRange`].
    pub fn read(&self, stripe: &Stripe) -> Result<Bit, StripeError> {
        Ok(self.sense(stripe)?.decode())
    }

    /// Performs a shift-based write: selects the reference domain
    /// matching `bit` and shifts its magnetisation into the data
    /// domain. Counts as one local 1-step shift event for the energy
    /// model (returned as [`WriteCost`]).
    ///
    /// # Errors
    ///
    /// * [`StripeError::Misaligned`] while walls are mid-flat (the
    ///   write current would program an unpredictable domain);
    /// * [`StripeError::SlotOutOfRange`] for a bad slot.
    ///
    /// # Panics
    ///
    /// Panics if called on a read-only port (programming error); use
    /// [`AccessPort::try_write`] for a fallible variant.
    pub fn write(&self, stripe: &mut Stripe, bit: Bit) -> Result<WriteCost, StripeError> {
        assert_eq!(
            self.kind,
            PortKind::ReadWrite,
            "write through a read-only port is a design error"
        );
        stripe.write_slot(self.slot, bit)?;
        Ok(WriteCost {
            local_shift_steps: 1,
            reference: if bit == Bit::One {
                Magnetisation::Down
            } else {
                Magnetisation::Up
            },
        })
    }

    /// Fallible write that reports unsupported ports instead of
    /// panicking: returns `Ok(None)` for read-only ports.
    ///
    /// # Errors
    ///
    /// Propagates the same [`StripeError`] cases as
    /// [`AccessPort::write`].
    pub fn try_write(
        &self,
        stripe: &mut Stripe,
        bit: Bit,
    ) -> Result<Option<WriteCost>, StripeError> {
        if self.kind != PortKind::ReadWrite {
            return Ok(None);
        }
        self.write(stripe, bit).map(Some)
    }
}

impl fmt::Display for AccessPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            PortKind::ReadOnly => "R",
            PortKind::ReadWrite => "R/W",
        };
        write!(f, "{k} port @ slot {}", self.slot)
    }
}

/// Cost record of one shift-based write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteCost {
    /// Local shift steps consumed (always 1 for a shift-based write;
    /// an STT-style write would be 0 steps but a larger transistor).
    pub local_shift_steps: u32,
    /// Which reference domain supplied the value.
    pub reference: Magnetisation,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe_with(bits: &[Bit]) -> Stripe {
        Stripe::with_cells(bits.to_vec())
    }

    #[test]
    fn sense_decodes_all_states() {
        let s = stripe_with(&[Bit::Zero, Bit::One, Bit::Unknown]);
        assert_eq!(AccessPort::read_only(0).sense(&s).unwrap(), Resistance::Low);
        assert_eq!(
            AccessPort::read_only(1).sense(&s).unwrap(),
            Resistance::High
        );
        assert_eq!(
            AccessPort::read_only(2).sense(&s).unwrap(),
            Resistance::Indeterminate
        );
        assert_eq!(AccessPort::read_only(1).read(&s).unwrap(), Bit::One);
    }

    #[test]
    fn misaligned_stripe_senses_indeterminate() {
        let mut s = stripe_with(&[Bit::One; 4]);
        s.apply_shift(
            1,
            rtm_model::shift::ShiftOutcome::StopInMiddle {
                lower: 0,
                frac: 0.5,
            },
        );
        let r = AccessPort::read_only(2).sense(&s).unwrap();
        assert_eq!(r, Resistance::Indeterminate);
    }

    #[test]
    fn shift_based_write_selects_reference() {
        let mut s = stripe_with(&[Bit::Zero; 4]);
        let port = AccessPort::read_write(2);
        let cost = port.write(&mut s, Bit::One).unwrap();
        assert_eq!(cost.local_shift_steps, 1);
        assert_eq!(cost.reference, Magnetisation::Down);
        assert_eq!(port.read(&s).unwrap(), Bit::One);
        let cost = port.write(&mut s, Bit::Zero).unwrap();
        assert_eq!(cost.reference, Magnetisation::Up);
        assert_eq!(port.read(&s).unwrap(), Bit::Zero);
    }

    #[test]
    fn read_only_port_cannot_write() {
        let mut s = stripe_with(&[Bit::Zero; 2]);
        let port = AccessPort::read_only(0);
        assert_eq!(port.try_write(&mut s, Bit::One).unwrap(), None);
        assert_eq!(s.read_slot(0).unwrap(), Bit::Zero, "data untouched");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = port.write(&mut s, Bit::One);
        }));
        assert!(r.is_err(), "direct write must panic");
    }

    #[test]
    fn write_blocked_while_misaligned() {
        let mut s = stripe_with(&[Bit::Zero; 4]);
        s.apply_shift(
            1,
            rtm_model::shift::ShiftOutcome::StopInMiddle {
                lower: 0,
                frac: 0.3,
            },
        );
        let port = AccessPort::read_write(1);
        assert_eq!(port.write(&mut s, Bit::One), Err(StripeError::Misaligned));
    }

    #[test]
    fn transistor_budget() {
        assert_eq!(AccessPort::read_only(0).transistors(), 1);
        assert_eq!(AccessPort::read_write(0).transistors(), 2);
    }

    #[test]
    fn display_labels() {
        assert_eq!(AccessPort::read_write(5).to_string(), "R/W port @ slot 5");
    }
}
