//! Segment/port layout and head-position arithmetic.
//!
//! The convention used throughout the workspace (matching the paper's
//! Fig. 2): data domains start at physical slot 0, the *overhead region*
//! of `Lseg − 1` spare domains sits at the right end, and access port
//! `p` is fixed over physical slot `(p + 1)·Lseg − 1` (the right edge of
//! its segment). A cumulative right-shift `s` — the **head position** —
//! then ranges over `[0, Lseg − 1]`:
//!
//! * at `s = 0` each port sees the *last* domain of its segment;
//! * to read domain `p·Lseg + j` the head must move to
//!   `s = Lseg − 1 − j`, so every in-range target is reachable with
//!   right shifts only and data pushed right is caught by the overhead
//!   region.

use std::fmt;

/// Errors constructing a stripe geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// `data_len` was zero.
    EmptyData,
    /// `num_ports` was zero.
    NoPorts,
    /// `data_len` is not divisible by `num_ports`.
    UnevenSegments {
        /// Requested data length.
        data_len: usize,
        /// Requested port count.
        num_ports: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyData => write!(f, "stripe must hold at least one data domain"),
            GeometryError::NoPorts => write!(f, "stripe needs at least one access port"),
            GeometryError::UnevenSegments {
                data_len,
                num_ports,
            } => write!(
                f,
                "data length {data_len} is not divisible by port count {num_ports}"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// The segment/port layout of a data stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StripeGeometry {
    data_len: usize,
    num_ports: usize,
}

impl StripeGeometry {
    /// Creates a geometry with `data_len` data domains served by
    /// `num_ports` uniformly spaced read/write ports.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if either count is zero or the data
    /// length does not divide evenly into segments.
    pub fn new(data_len: usize, num_ports: usize) -> Result<Self, GeometryError> {
        if data_len == 0 {
            return Err(GeometryError::EmptyData);
        }
        if num_ports == 0 {
            return Err(GeometryError::NoPorts);
        }
        if !data_len.is_multiple_of(num_ports) {
            return Err(GeometryError::UnevenSegments {
                data_len,
                num_ports,
            });
        }
        Ok(Self {
            data_len,
            num_ports,
        })
    }

    /// The paper's default stripe: 64 data domains, 8 ports (Lseg = 8).
    pub fn paper_default() -> Self {
        Self::new(64, 8).expect("64/8 is a valid geometry")
    }

    /// Number of data domains.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of read/write access ports.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Domains per segment (`Lseg`).
    pub fn segment_len(&self) -> usize {
        self.data_len / self.num_ports
    }

    /// Longest shift ever required: `Lseg − 1` steps.
    pub fn max_shift(&self) -> usize {
        self.segment_len() - 1
    }

    /// Size of the overhead region (spare domains at the right end)
    /// needed so no data is lost at the maximum head position.
    pub fn overhead_len(&self) -> usize {
        self.max_shift()
    }

    /// Total physical slots of the bare stripe (data + overhead),
    /// before any p-ECC additions.
    pub fn total_len(&self) -> usize {
        self.data_len + self.overhead_len()
    }

    /// Physical slot of port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= num_ports`.
    pub fn port_slot(&self, p: usize) -> usize {
        assert!(p < self.num_ports, "port {p} out of range");
        (p + 1) * self.segment_len() - 1
    }

    /// The port serving data domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= data_len`.
    pub fn port_of_domain(&self, d: usize) -> usize {
        assert!(d < self.data_len, "domain {d} out of range");
        d / self.segment_len()
    }

    /// Head position (cumulative right shift) aligning domain `d` with
    /// its port.
    ///
    /// # Panics
    ///
    /// Panics if `d >= data_len`.
    pub fn head_position_for(&self, d: usize) -> usize {
        assert!(d < self.data_len, "domain {d} out of range");
        self.segment_len() - 1 - (d % self.segment_len())
    }

    /// The signed shift needed to move the head from `from` to `to`
    /// (positive = shift right).
    ///
    /// # Panics
    ///
    /// Panics if either position exceeds [`StripeGeometry::max_shift`].
    pub fn shift_between(&self, from: usize, to: usize) -> i64 {
        assert!(
            from <= self.max_shift(),
            "head position {from} out of range"
        );
        assert!(to <= self.max_shift(), "head position {to} out of range");
        to as i64 - from as i64
    }

    /// Physical slot of data domain `d` at head position `s`.
    ///
    /// # Panics
    ///
    /// Panics if `d` or `s` is out of range.
    pub fn domain_slot(&self, d: usize, s: usize) -> usize {
        assert!(d < self.data_len, "domain {d} out of range");
        assert!(s <= self.max_shift(), "head position {s} out of range");
        d + s
    }
}

impl fmt::Display for StripeGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} domains x {} ports (Lseg = {})",
            self.data_len,
            self.num_ports,
            self.segment_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_layout() {
        let g = StripeGeometry::paper_default();
        assert_eq!(g.data_len(), 64);
        assert_eq!(g.num_ports(), 8);
        assert_eq!(g.segment_len(), 8);
        assert_eq!(g.max_shift(), 7);
        assert_eq!(g.overhead_len(), 7);
        assert_eq!(g.total_len(), 71);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        assert_eq!(StripeGeometry::new(0, 1), Err(GeometryError::EmptyData));
        assert_eq!(StripeGeometry::new(8, 0), Err(GeometryError::NoPorts));
        assert_eq!(
            StripeGeometry::new(10, 3),
            Err(GeometryError::UnevenSegments {
                data_len: 10,
                num_ports: 3
            })
        );
    }

    #[test]
    fn port_slots_are_segment_right_edges() {
        let g = StripeGeometry::new(16, 4).unwrap();
        assert_eq!(g.port_slot(0), 3);
        assert_eq!(g.port_slot(1), 7);
        assert_eq!(g.port_slot(3), 15);
    }

    #[test]
    fn every_domain_is_reachable_at_its_port() {
        let g = StripeGeometry::paper_default();
        for d in 0..g.data_len() {
            let s = g.head_position_for(d);
            assert!(s <= g.max_shift());
            let port = g.port_of_domain(d);
            assert_eq!(g.domain_slot(d, s), g.port_slot(port), "domain {d}");
        }
    }

    #[test]
    fn head_positions_cover_full_range() {
        let g = StripeGeometry::paper_default();
        // Domain 7 (last of segment 0) needs s = 0; domain 0 needs s = 7.
        assert_eq!(g.head_position_for(7), 0);
        assert_eq!(g.head_position_for(0), 7);
    }

    #[test]
    fn shift_between_is_signed() {
        let g = StripeGeometry::paper_default();
        assert_eq!(g.shift_between(0, 7), 7);
        assert_eq!(g.shift_between(7, 3), -4);
        assert_eq!(g.shift_between(4, 4), 0);
    }

    #[test]
    fn data_never_leaves_physical_stripe() {
        let g = StripeGeometry::paper_default();
        for s in 0..=g.max_shift() {
            for d in 0..g.data_len() {
                assert!(g.domain_slot(d, s) < g.total_len());
            }
        }
    }

    #[test]
    fn single_port_geometry() {
        let g = StripeGeometry::new(8, 1).unwrap();
        assert_eq!(g.segment_len(), 8);
        assert_eq!(g.port_slot(0), 7);
        assert_eq!(g.head_position_for(0), 7);
    }

    #[test]
    #[should_panic]
    fn out_of_range_port_panics() {
        let g = StripeGeometry::paper_default();
        let _ = g.port_slot(8);
    }
}
